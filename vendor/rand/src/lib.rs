//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of the `rand` 0.9 API it uses: [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`Rng::random_range`]/[`Rng::random_bool`].
//!
//! [`rngs::StdRng`] here is xoshiro256++ seeded through SplitMix64 — a
//! different stream than the real crate's ChaCha12, but with the same
//! contract the workspace relies on: deterministic under a seed, uniform,
//! and statistically well-behaved at the modest draw counts used for
//! measurement noise and synthetic traces.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = unit_f64(rng.next_u64());
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        // 53-bit resolution makes hitting the closed end a measure-zero
        // event; sampling the half-open range is indistinguishable here.
        let u = unit_f64(rng.next_u64());
        lo + u * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift uniform mapping; bias is < 2^-64 per draw,
                // far below anything the workspace's draw counts can see.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi - lo) as u64 + 1;
                let drawn = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + drawn as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Draws `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator (xoshiro256++ under the
    /// hood; see the crate docs for the contract).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible_and_distinct() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<f64> = (0..8).map(|_| a.random_range(0.0..1.0)).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.random_range(0.0..1.0)).collect();
        let zs: Vec<f64> = (0..8).map(|_| c.random_range(0.0..1.0)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.random_range(-0.25..0.25);
            assert!((-0.25..0.25).contains(&f));
            let i = rng.random_range(3usize..9);
            assert!((3..9).contains(&i));
            let j = rng.random_range(10u64..=12);
            assert!((10..=12).contains(&j));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.random_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
