//! No-op `#[derive(Serialize, Deserialize)]` macros for the vendored
//! offline `serde` stub.
//!
//! The stub's `Serialize`/`Deserialize` traits are blanket-implemented
//! for every type, so the derives only need to *accept* the attribute
//! grammar (`#[serde(...)]` helper attributes included) and emit nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` helpers); emits
/// nothing — the stub trait is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` helpers); emits
/// nothing — the stub trait is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
