//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small slice of the `bytes` API it actually uses: [`Bytes`],
//! [`BytesMut`], and the little-endian [`Buf`]/[`BufMut`] accessors the
//! PMU firmware codec needs. Semantics match the real crate for this
//! subset; `Bytes` is a cheaply clonable immutable buffer, `BytesMut` an
//! append-only builder that freezes into one.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    inner: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self { inner: Arc::from(&[][..]) }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { inner: Arc::from(data) }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.inner[..] == other.inner[..]
    }
}

impl Eq for Bytes {}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { inner: Arc::from(v.into_boxed_slice()) }
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self { inner: Vec::new() }
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { inner: Vec::with_capacity(capacity) }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

/// Read access to a byte cursor (little-endian accessors only).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads `n` bytes, advancing the cursor.
    fn copy_to_array<const N: usize>(&mut self) -> [u8; N];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.copy_to_array::<1>()[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.copy_to_array())
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.copy_to_array())
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.copy_to_array())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.copy_to_array())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(self.len() >= N, "buffer underrun: {} < {N}", self.len());
        let (head, tail) = self.split_at(N);
        let mut out = [0u8; N];
        out.copy_from_slice(head);
        *self = tail;
        out
    }
}

/// Append access to a byte buffer (little-endian accessors only).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_little_endian() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u16_le(7);
        buf.put_u8(3);
        buf.put_f64_le(1.5);
        let frozen = buf.freeze();
        let mut cursor = &frozen[..];
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u16_le(), 7);
        assert_eq!(cursor.get_u8(), 3);
        assert_eq!(cursor.get_f64_le(), 1.5);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn bytes_equality_and_clone() {
        let a = Bytes::copy_from_slice(b"abc");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }
}
