//! Offline stand-in for the `serde` facade.
//!
//! The build environment has no network access, and nothing in the
//! workspace serialises at runtime (no `serde_json`/`bincode` backend is
//! compiled in) — the derives exist so the model types *are* serialisable
//! the moment a real backend is added. This stub keeps the exact consumer
//! grammar compiling: `use serde::{Deserialize, Serialize}`, the derives,
//! and `#[serde(...)]` attributes, with both traits blanket-implemented.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for serialisable types (blanket-implemented offline stand-in).
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for deserialisable types (blanket-implemented offline
/// stand-in).
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Owned-deserialisation alias mirroring `serde::de::DeserializeOwned`.
pub mod de {
    /// Types deserialisable without borrowing from the input.
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}

    impl<T: for<'de> super::Deserialize<'de>> DeserializeOwned for T {}
}

#[cfg(test)]
mod tests {
    #[derive(super::Serialize, super::Deserialize)]
    #[serde(transparent)]
    #[allow(dead_code)]
    struct Newtype(f64);

    fn assert_bounds<T: super::Serialize + for<'de> super::Deserialize<'de>>() {}

    #[test]
    fn derive_and_blanket_impls_compose() {
        assert_bounds::<Newtype>();
        assert_bounds::<Vec<String>>();
    }
}
