//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of the criterion API its benches use: [`Criterion`],
//! [`criterion_group!`]/[`criterion_main!`], benchmark groups with
//! `sample_size`/`bench_function`/`bench_with_input`, and
//! [`Bencher::iter`].
//!
//! It is a real measuring harness, just a simple one: each benchmark is
//! warmed up, then timed over `sample_size` samples of an adaptively
//! chosen iteration batch, and the per-iteration median/min/max are
//! printed. There are no saved baselines, HTML reports, or statistical
//! regression tests.

use std::fmt;
use std::time::{Duration, Instant};

/// Target wall time for one measurement sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(8);

/// Warmup budget per benchmark.
const WARMUP_TARGET: Duration = Duration::from_millis(40);

/// The benchmark manager: hands out groups and collects results.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 30 }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_benchmark(&id.to_string(), 30, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_benchmark(&format!("{}/{id}", self.name), self.sample_size, f);
        self
    }

    /// Benchmarks a closure that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&format!("{}/{id}", self.name), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self { id: format!("{function}/{parameter}") }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    measured: bool,
}

impl Bencher {
    /// Times `f`, recording one sample of `iters_per_sample` calls.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        self.measured = true;
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            std::hint::black_box(f());
        }
        self.samples.push(start.elapsed());
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Warmup + batch sizing: grow the batch until one sample of it costs
    // roughly SAMPLE_TARGET.
    let mut iters = 1u64;
    let warmup_start = Instant::now();
    loop {
        let mut b = Bencher { iters_per_sample: iters, samples: Vec::new(), measured: false };
        f(&mut b);
        if !b.measured {
            println!("{label:<48} (no measurement: closure never called iter)");
            return;
        }
        let cost = b.samples.iter().sum::<Duration>();
        if cost >= SAMPLE_TARGET || warmup_start.elapsed() >= WARMUP_TARGET {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iters_per_sample: iters, samples: Vec::new(), measured: false };
        f(&mut b);
        let total: Duration = b.samples.iter().sum();
        samples.push(total.as_secs_f64() / iters as f64);
    }
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{label:<48} time: [{} {} {}]  ({} samples x {} iters)",
        format_time(min),
        format_time(median),
        format_time(max),
        samples.len(),
        iters,
    );
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.2} s")
    }
}

/// Declares a bench group function invoking each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_prints() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub");
        g.sample_size(3);
        let mut hits = 0u32;
        g.bench_function("trivial", |b| {
            hits += 1;
            b.iter(|| 1 + 1)
        });
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| b.iter(|| x * 2));
        g.finish();
        assert!(hits >= 3, "closure must run warmup + samples: {hits}");
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_time(2.5e-9).ends_with("ns"));
        assert!(format_time(2.5e-6).ends_with("us"));
        assert!(format_time(2.5e-3).ends_with("ms"));
        assert!(format_time(2.5).ends_with("s"));
    }
}
