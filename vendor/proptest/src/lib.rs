//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of the proptest API its property tests use: the [`proptest!`]
//! macro, [`Strategy`] with `prop_filter`/`prop_filter_map`/`prop_map`,
//! range, tuple, [`option::of`], [`collection::vec`], and
//! [`sample::subsequence`]/[`sample::Index`] strategies, [`Just`],
//! [`prop_oneof!`], the `prop_assert*` macros, and
//! [`ProptestConfig::with_cases`].
//!
//! Semantics: each test function runs `cases` times with inputs drawn
//! from a generator seeded deterministically from the test's module path
//! and case index, so failures reproduce exactly across runs. Unlike the
//! real crate there is no shrinking — a failing case panics with the
//! drawn inputs left in the assertion message.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// The generator handed to strategies (re-exported for custom
/// strategies).
pub type TestRng = StdRng;

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value drawn.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Rejects drawn values failing `pred`, retrying (up to an internal
    /// cap) until one passes. `reason` labels the filter in panics.
    fn prop_filter<R, F>(self, reason: R, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason: reason.into(), pred }
    }

    /// Maps drawn values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Maps drawn values through `f`, rejecting draws it returns `None`
    /// for and retrying (up to an internal cap) until one maps. `reason`
    /// labels the filter in panics.
    fn prop_filter_map<R, O, F>(self, reason: R, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap { inner: self, reason: reason.into(), f }
    }

    /// Type-erases the strategy (the form [`prop_oneof!`] stores).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy yielding a fixed (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-range strategy (the slice of upstream
/// `proptest::arbitrary::Arbitrary` the workspace uses).
pub trait Arbitrary {
    /// Draws one value spanning the type's full range.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.random_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

int_arbitrary!(usize, u64, u32, u16, u8);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.random_bool(0.5)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Raw-bit reinterpretation, like upstream's full f64 domain:
        // deliberately includes NaN, infinities, and subnormals — the
        // values robustness tests care about.
        f64::from_bits(rng.random_range(u64::MIN..=u64::MAX))
    }
}

/// Strategy drawing from a type's full value range.
#[derive(Debug, Clone)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T` (upstream `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy { _marker: std::marker::PhantomData }
}

/// The [`Strategy::prop_filter`] combinator.
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        const MAX_REJECTS: u32 = 10_000;
        for _ in 0..MAX_REJECTS {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected {MAX_REJECTS} consecutive draws", self.reason);
    }
}

/// The [`Strategy::prop_filter_map`] combinator.
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        const MAX_REJECTS: u32 = 10_000;
        for _ in 0..MAX_REJECTS {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map '{}' rejected {MAX_REJECTS} consecutive draws", self.reason);
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between type-erased alternatives (built by
/// [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over non-empty `arms`.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.random_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Strategies for `Option<T>`.
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// The [`of`] strategy.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.random_bool(0.5) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// `None` half the time, otherwise `Some` of a drawn inner value.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// The accepted size specifications of [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            Self { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    impl SizeRange {
        pub(crate) fn draw(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.lo..self.hi)
        }
    }

    /// Strategy for vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// The [`vec`] strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies drawing from fixed collections.
pub mod sample {
    use super::{collection::SizeRange, Arbitrary, Strategy, TestRng};
    use rand::Rng;

    /// The [`subsequence`] strategy.
    #[derive(Debug, Clone)]
    pub struct Subsequence<T: Clone> {
        values: Vec<T>,
        size: SizeRange,
    }

    /// Order-preserving subsets of `values` whose length is drawn from
    /// `size` (clamped to `values.len()`).
    pub fn subsequence<T: Clone>(values: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        Subsequence { values, size: size.into() }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;

        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let len = self.size.draw(rng).min(self.values.len());
            // Draw `len` distinct positions, then emit them in the
            // collection's own order.
            let mut picked = vec![false; self.values.len()];
            let mut remaining = len;
            while remaining > 0 {
                let i = rng.random_range(0..self.values.len());
                if !picked[i] {
                    picked[i] = true;
                    remaining -= 1;
                }
            }
            self.values.iter().zip(&picked).filter(|&(_, &p)| p).map(|(v, _)| v.clone()).collect()
        }
    }

    /// A position into a collection of unknown length, resolved against
    /// a concrete length with [`Index::index`] (upstream
    /// `proptest::sample::Index`).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// Maps the drawn position into `0..len`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index into an empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(usize::arbitrary(rng))
        }
    }
}

/// Per-test run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Support machinery used by the [`proptest!`] expansion.
pub mod test_runner {
    use super::TestRng;
    use rand::SeedableRng;
    use std::hash::{DefaultHasher, Hash, Hasher};

    /// A deterministic generator for one (test, case) pair.
    pub fn fresh_rng(test_path: &str, case: u32) -> TestRng {
        let mut h = DefaultHasher::new();
        test_path.hash(&mut h);
        TestRng::seed_from_u64(h.finish() ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::fresh_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                // Bodies run inside a Result-returning closure so that
                // `return Ok(())` early-exits a case, as upstream allows.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::core::result::Result<(), ::std::string::String> = (|| {
                    $body
                    Ok(())
                })();
                if let Err(__msg) = __outcome {
                    panic!("proptest case {__case} failed: {__msg}");
                }
            }
        }
    )*};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The glob import every property-test file starts from.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_filters_compose(
            x in (0.0f64..10.0).prop_filter("positive", |v| *v > 0.0),
            n in 1usize..5,
            mut ys in prop::collection::vec(0.0f64..1.0, 2..6),
        ) {
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!((1..5).contains(&n));
            prop_assert!(ys.len() >= 2 && ys.len() < 6);
            ys.push(0.5);
            prop_assert!(ys.iter().all(|y| (0.0..=1.0).contains(y)));
        }

        #[test]
        fn oneof_draws_every_arm(choice in prop_oneof![Just(1u32), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&choice));
        }

        #[test]
        fn subsequence_preserves_order_and_bounds(
            sub in prop::sample::subsequence(vec![1u32, 2, 3, 4, 5], 0..=4),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(sub.len() <= 4);
            prop_assert!(sub.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(idx.index(7) < 7);
        }

        #[test]
        fn filter_map_keeps_only_mapped_draws(
            even in (0usize..100).prop_filter_map("even", |v| (v % 2 == 0).then_some(v / 2)),
        ) {
            prop_assert!(even < 50);
        }

        #[test]
        fn any_spans_the_domain(bytes in prop::collection::vec(any::<u8>(), 32..64)) {
            // 32+ independent full-range bytes are all identical with
            // probability 256^-31 per case; all-equal means `any` is
            // broken (e.g. a constant generator).
            prop_assert!(bytes.iter().any(|&b| b != bytes[0]));
            prop_assert!(bytes.len() >= 32);
        }
    }

    #[test]
    fn draws_are_deterministic_per_case() {
        let s = 0.0f64..1.0;
        let mut a = crate::test_runner::fresh_rng("t", 3);
        let mut b = crate::test_runner::fresh_rng("t", 3);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn prop_map_applies() {
        let doubled = (1usize..10).prop_map(|v| v * 2);
        let mut rng = crate::test_runner::fresh_rng("map", 0);
        for _ in 0..100 {
            let v = doubled.generate(&mut rng);
            assert_eq!(v % 2, 0);
        }
    }
}
