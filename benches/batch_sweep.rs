//! `batch_sweep`: the batch engine's parallel speed-up on the paper's
//! design-space lattice — 7 TDPs × 9 ARs × 4 PDN topologies — comparing
//! the serial path against the scoped worker pool.
//!
//! Run with: `cargo bench --bench batch_sweep`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdnspot::prelude::*;

const TDPS: [f64; 7] = [4.0, 10.0, 18.0, 25.0, 36.0, 44.0, 50.0];
const ARS: [f64; 9] = [0.40, 0.45, 0.50, 0.56, 0.60, 0.65, 0.70, 0.75, 0.80];

fn batch_sweep(c: &mut Criterion) {
    let params = ModelParams::paper_defaults();
    let ivr = IvrPdn::new(params.clone());
    let mbvr = MbvrPdn::new(params.clone());
    let ldo = LdoPdn::new(params.clone());
    let iplus = IPlusMbvrPdn::new(params);
    let pdns: [&dyn Pdn; 4] = [&ivr, &mbvr, &ldo, &iplus];
    let grid = SweepGrid::active(&TDPS, &[WorkloadType::MultiThread], &ARS)
        .expect("static lattice is valid");

    let mut group = c.benchmark_group("batch_sweep");
    group.sample_size(10);
    for (label, workers) in [("serial", Workers::Serial), ("parallel", Workers::Auto)] {
        group.bench_with_input(
            BenchmarkId::new("evaluate_grid", label),
            &workers,
            |b, &workers| {
                let cfg = EngineConfig::builder().workers(workers).build().expect("valid config");
                b.iter(|| {
                    let outcome = evaluate(&pdns, &grid, &ClientSoc, &cfg, None);
                    assert_eq!(outcome.stats.failed, 0);
                    outcome
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, batch_sweep);
criterion_main!(benches);
