//! Umbrella crate for the FlexWatts / PDNspot reproduction workspace.
//!
//! This crate re-exports the public API of every workspace member so that the
//! examples and integration tests in the repository root can exercise the
//! whole system through a single dependency. Downstream users should normally
//! depend on the individual crates ([`flexwatts`], [`pdnspot`], …) directly.
//!
//! # Examples
//!
//! ```
//! use flexwatts_repro::pdnspot::params::ModelParams;
//!
//! let params = ModelParams::paper_defaults();
//! assert!(params.leakage_exponent > 2.0);
//! ```

pub use flexwatts;
pub use pdn_bench;
pub use pdn_pmu;
pub use pdn_proc;
pub use pdn_units;
pub use pdn_vr;
pub use pdn_workload;
pub use pdnspot;
