//! The paper's qualitative results, pinned as integration tests.
//!
//! Each assertion corresponds to a claim in §5/§7 of the FlexWatts paper.
//! Two known reproduction deviations are pinned with their own
//! (documented) tolerances — see EXPERIMENTS.md:
//!
//! 1. the ETEE-vs-AR trend of MBVR/LDO at fixed TDP is flat-to-slightly-
//!    falling here, where the paper measures mildly rising;
//! 2. the 36–50 W performance rows are frequency-limited in our model, so
//!    the high-TDP performance separation appears at 18–25 W instead.

use flexwatts::{FlexWattsAuto, FlexWattsPdn, PdnMode};
use pdn_proc::{client_soc, PackageCState};
use pdn_units::{ApplicationRatio, Watts};
use pdn_workload::{BatteryLifeWorkload, WorkloadType};
use pdnspot::perf::battery_life_average_power;
use pdnspot::{IPlusMbvrPdn, IvrPdn, LdoPdn, MbvrPdn, ModelParams, Pdn, Scenario};

fn ar(v: f64) -> ApplicationRatio {
    ApplicationRatio::new(v).unwrap()
}

fn etee_at(pdn: &dyn Pdn, tdp: f64, wl: WorkloadType, a: f64) -> f64 {
    let soc = client_soc(Watts::new(tdp));
    let s = Scenario::active_fixed_tdp_frequency(&soc, wl, ar(a)).unwrap();
    pdn.evaluate(&s).unwrap().etee.get()
}

#[test]
fn observation_1_low_tdp_favours_single_stage_high_tdp_favours_ivr() {
    let params = ModelParams::paper_defaults();
    let ivr = IvrPdn::new(params.clone());
    let mbvr = MbvrPdn::new(params.clone());
    let ldo = LdoPdn::new(params);
    let wl = WorkloadType::MultiThread;

    // 4 W: MBVR and LDO clearly beat IVR (gap ≈ 7-9 % ETEE).
    let gap = etee_at(&mbvr, 4.0, wl, 0.56) - etee_at(&ivr, 4.0, wl, 0.56);
    assert!((0.05..=0.10).contains(&gap), "4 W MBVR-IVR gap {gap:.3}");
    assert!(etee_at(&ldo, 4.0, wl, 0.56) > etee_at(&ivr, 4.0, wl, 0.56) + 0.05);

    // 50 W: IVR beats both across the tested AR range.
    for a in [0.4, 0.56, 0.8] {
        assert!(
            etee_at(&ivr, 50.0, wl, a) > etee_at(&mbvr, 50.0, wl, a),
            "IVR must beat MBVR at 50 W, AR {a}"
        );
        assert!(
            etee_at(&ivr, 50.0, wl, a) > etee_at(&ldo, 50.0, wl, a) - 0.005,
            "IVR must match/beat LDO at 50 W, AR {a}"
        );
    }

    // The SPEC crossover sits near 18 W.
    let at_18 = etee_at(&mbvr, 18.0, wl, 0.56) - etee_at(&ivr, 18.0, wl, 0.56);
    assert!(at_18.abs() < 0.03, "18 W is the near-crossover point: {at_18:.3}");
}

#[test]
fn observation_2_workload_type_matters() {
    let params = ModelParams::paper_defaults();
    let ivr = IvrPdn::new(params.clone());
    let mbvr = MbvrPdn::new(params.clone());
    let ldo = LdoPdn::new(params);

    // LDO beats MBVR for CPU workloads but loses ground on graphics
    // (deep regulation of the low-voltage core rail).
    let cpu_gap = etee_at(&ldo, 18.0, WorkloadType::MultiThread, 0.6)
        - etee_at(&mbvr, 18.0, WorkloadType::MultiThread, 0.6);
    let gfx_gap = etee_at(&ldo, 18.0, WorkloadType::Graphics, 0.6)
        - etee_at(&mbvr, 18.0, WorkloadType::Graphics, 0.6);
    assert!(cpu_gap > 0.0, "LDO > MBVR for CPU workloads: {cpu_gap:.3}");
    assert!(gfx_gap < cpu_gap, "graphics must erode LDO's edge: {gfx_gap:.3}");

    // The graphics crossover sits above 18 W (paper: ≈ 21 W).
    assert!(
        etee_at(&mbvr, 18.0, WorkloadType::Graphics, 0.56)
            > etee_at(&ivr, 18.0, WorkloadType::Graphics, 0.56),
        "at 18 W graphics, IVR still loses"
    );
    assert!(
        etee_at(&ivr, 25.0, WorkloadType::Graphics, 0.56)
            > etee_at(&mbvr, 25.0, WorkloadType::Graphics, 0.56) - 0.01,
        "by 25 W graphics, IVR catches up"
    );

    // Known deviation: the AR trend is nearly flat here (paper: rising).
    let lo = etee_at(&mbvr, 18.0, WorkloadType::MultiThread, 0.4);
    let hi = etee_at(&mbvr, 18.0, WorkloadType::MultiThread, 0.8);
    assert!((hi - lo).abs() < 0.02, "AR trend must be nearly flat: {lo:.3} → {hi:.3}");
}

#[test]
fn observation_3_idle_states_punish_the_ivr_pdn() {
    let params = ModelParams::paper_defaults();
    let ivr = IvrPdn::new(params.clone());
    let mbvr = MbvrPdn::new(params.clone());
    let soc = client_soc(Watts::new(18.0));
    for state in PackageCState::ALL {
        let s = Scenario::idle(&soc, state);
        let gap = mbvr.evaluate(&s).unwrap().etee.get() - ivr.evaluate(&s).unwrap().etee.get();
        assert!(gap > 0.0, "{state}: MBVR must beat IVR in idle");
    }
    // Video playback: 9-16 % lower average power on MBVR (paper: 12 %).
    let wl = BatteryLifeWorkload::VideoPlayback;
    let p_ivr = battery_life_average_power(&soc, &ivr, wl).unwrap();
    let p_mbvr = battery_life_average_power(&soc, &mbvr, wl).unwrap();
    let saving = 1.0 - p_mbvr.get() / p_ivr.get();
    assert!((0.09..=0.16).contains(&saving), "video playback saving {saving:.3}");
}

#[test]
fn flexwatts_tracks_the_best_static_pdn_with_shared_resources() {
    let params = ModelParams::paper_defaults();
    let fw = FlexWattsAuto::new(params.clone());
    let ivr = IvrPdn::new(params.clone());
    let mbvr = MbvrPdn::new(params.clone());
    let ldo = LdoPdn::new(params.clone());
    let iplus = IPlusMbvrPdn::new(params);
    let wl = WorkloadType::MultiThread;

    for tdp in pdn_proc::PAPER_TDPS {
        let soc = client_soc(Watts::new(tdp));
        let s = Scenario::active_fixed_tdp_frequency(&soc, wl, ar(0.6)).unwrap();
        let fw_etee = fw.evaluate(&s).unwrap().etee.get();
        let best = [&ivr as &dyn Pdn, &mbvr, &ldo, &iplus]
            .iter()
            .map(|p| p.evaluate(&s).unwrap().etee.get())
            .fold(0.0, f64::max);
        assert!(
            fw_etee > best - 0.015,
            "{tdp} W: FlexWatts {fw_etee:.3} must trail the best PDN {best:.3} by < 1.5 %"
        );
    }
}

#[test]
fn flexwatts_mode_crossover_near_18w() {
    let params = ModelParams::paper_defaults();
    let auto = FlexWattsAuto::new(params);
    let wl = WorkloadType::MultiThread;
    let mode_at = |tdp: f64| {
        let soc = client_soc(Watts::new(tdp));
        let s = Scenario::active_fixed_tdp_frequency(&soc, wl, ar(0.6)).unwrap();
        auto.best_mode(&s).unwrap()
    };
    assert_eq!(mode_at(4.0), PdnMode::LdoMode);
    assert_eq!(mode_at(8.0), PdnMode::LdoMode);
    assert_eq!(mode_at(36.0), PdnMode::IvrMode);
    assert_eq!(mode_at(50.0), PdnMode::IvrMode);
}

#[test]
fn flexwatts_battery_life_headline() {
    // Headline: ~11 % lower video-playback power than IVR across TDPs.
    let params = ModelParams::paper_defaults();
    let fw = FlexWattsPdn::new(params.clone(), PdnMode::LdoMode);
    let ivr = IvrPdn::new(params);
    for tdp in [4.0, 18.0, 50.0] {
        let soc = client_soc(Watts::new(tdp));
        let p_fw =
            battery_life_average_power(&soc, &fw, BatteryLifeWorkload::VideoPlayback).unwrap();
        let p_ivr =
            battery_life_average_power(&soc, &ivr, BatteryLifeWorkload::VideoPlayback).unwrap();
        let saving = 1.0 - p_fw.get() / p_ivr.get();
        assert!(
            (0.07..=0.18).contains(&saving),
            "{tdp} W: FlexWatts video-playback saving {saving:.3}"
        );
    }
}

#[test]
fn bom_and_area_orderings() {
    use pdnspot::areabom::{pdn_footprint, VrCatalog};
    let params = ModelParams::paper_defaults();
    let catalog = VrCatalog::paper_calibrated();
    for tdp in [4.0, 18.0, 50.0] {
        let soc = client_soc(Watts::new(tdp));
        let f = |p: &dyn Pdn| pdn_footprint(p, &soc, &catalog).unwrap();
        let ivr = f(&IvrPdn::new(params.clone()));
        let mbvr = f(&MbvrPdn::new(params.clone()));
        let ldo = f(&LdoPdn::new(params.clone()));
        let fw = f(&FlexWattsPdn::new(params.clone(), PdnMode::IvrMode));
        // Fig. 8d/e: MBVR ≫ LDO > FlexWatts ≈ IVR.
        assert!(mbvr.cost > ldo.cost, "{tdp} W BOM ordering");
        assert!(ldo.cost.get() > ivr.cost.get() * 1.15, "{tdp} W: LDO above IVR");
        assert!(fw.cost.get() < ivr.cost.get() * 1.5, "{tdp} W: FlexWatts ≈ IVR BOM");
        assert!(mbvr.area > ldo.area, "{tdp} W area ordering");
        assert!(fw.area.get() < ivr.area.get() * 1.55, "{tdp} W: FlexWatts ≈ IVR area");
    }
}
