//! Property-based tests of the batch engine's determinism contract:
//! for *any* sweep grid and *any* worker count, the parallel result is
//! bit-identical to the serial one — scheduling may only change the
//! timings in `BatchStats`, never a value.

use pdnspot::prelude::*;
use proptest::collection::vec;
use proptest::prelude::*;

fn workload_type() -> impl Strategy<Value = WorkloadType> {
    prop_oneof![
        Just(WorkloadType::SingleThread),
        Just(WorkloadType::MultiThread),
        Just(WorkloadType::Graphics),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// An [`EteeSurface`] computed on N workers carries exactly the same
    /// floating-point bits as the serial one.
    #[test]
    fn parallel_surface_is_bit_identical_to_serial(
        tdps in vec(4.0f64..50.0, 1..5),
        ars in vec(0.30f64..0.95, 1..5),
        wl in workload_type(),
        workers in 2usize..9,
    ) {
        let params = ModelParams::paper_defaults();
        let ivr = IvrPdn::new(params.clone());
        let mbvr = MbvrPdn::new(params.clone());
        let ldo = LdoPdn::new(params);
        let pdns: [&dyn Pdn; 3] = [&ivr, &mbvr, &ldo];
        let grid = SweepGrid::active(&tdps, &[wl], &ars).map_err(|e| e.to_string())?;
        let serial_cfg = EngineConfig::builder().workers(Workers::Serial).build().unwrap();
        let parallel_cfg =
            EngineConfig::builder().workers(Workers::Fixed(workers)).build().unwrap();
        let (serial, _) = surfaces(&pdns, &grid, &ClientSoc, &serial_cfg, None)
            .map_err(|e| e.to_string())?;
        let (parallel, stats) = surfaces(&pdns, &grid, &ClientSoc, &parallel_cfg, None)
            .map_err(|e| e.to_string())?;
        prop_assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            prop_assert_eq!(&s.pdn, &p.pdn);
            prop_assert_eq!(s.values.len(), p.values.len());
            for (sv, pv) in s.values.iter().zip(&p.values) {
                prop_assert_eq!(sv.to_bits(), pv.to_bits(), "surface {} diverged", s.pdn);
            }
        }
        // Every lattice point was evaluated for every PDN, none failed.
        prop_assert_eq!(stats.failed, 0);
        prop_assert_eq!(stats.evaluations, pdns.len() * grid.n_points());
    }

    /// The generic fan-out primitive preserves input order for any
    /// worker count and item count.
    #[test]
    fn par_map_is_order_preserving(
        items in vec(0u64..1_000_000, 0..64),
        workers in 1usize..9,
    ) {
        let doubled = par_map(&items, Workers::Fixed(workers), |i, &x| (i, x * 2));
        let expected: Vec<(usize, u64)> =
            items.iter().enumerate().map(|(i, &x)| (i, x * 2)).collect();
        prop_assert_eq!(doubled, expected);
    }
}
