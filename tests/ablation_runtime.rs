//! Runtime ablations called out in DESIGN.md: hysteresis margin vs switch
//! count/energy, predictor firmware round trip through the runtime, and
//! the maximum-current protection in action.

use flexwatts::{FlexWattsRuntime, ModePredictor, PdnMode, RuntimeConfig};
use pdn_proc::{client_soc, PackageCState};
use pdn_units::{ApplicationRatio, Seconds, Watts};
use pdn_workload::{Trace, TraceInterval, WorkloadType};
use pdnspot::ModelParams;

fn bursty_trace(bursts: usize) -> Trace {
    let mut intervals = Vec::new();
    for _ in 0..bursts {
        intervals.push(TraceInterval::active(
            Seconds::from_millis(30.0),
            WorkloadType::MultiThread,
            ApplicationRatio::new(0.85).unwrap(),
        ));
        intervals.push(TraceInterval::idle(Seconds::from_millis(30.0), PackageCState::C0Min));
    }
    Trace::new("ablation-bursty", intervals)
}

fn base_predictor() -> ModePredictor {
    ModePredictor::train(
        &ModelParams::paper_defaults(),
        &[4.0, 10.0, 18.0, 25.0, 36.0, 50.0],
        &[0.4, 0.6, 0.8],
    )
    .unwrap()
}

#[test]
fn hysteresis_trades_switches_for_energy() {
    let params = ModelParams::paper_defaults();
    let soc = client_soc(Watts::new(36.0));
    let trace = bursty_trace(8);
    let base = base_predictor();

    let mut switch_counts = Vec::new();
    let mut oracle_efficiencies = Vec::new();
    for margin in [0.0, 0.004, 0.03, 0.20] {
        let runtime = FlexWattsRuntime::new(
            soc.clone(),
            params.clone(),
            base.clone().with_hysteresis(margin),
            RuntimeConfig::default(),
        );
        let report = runtime.run(&trace).unwrap();
        switch_counts.push(report.switches.len());
        oracle_efficiencies.push(report.energy_efficiency_vs_oracle());
    }
    // More hysteresis → never more switches.
    for pair in switch_counts.windows(2) {
        assert!(pair[1] <= pair[0], "switch counts must fall: {switch_counts:?}");
    }
    // A prohibitive margin pins the boot mode: at most the protection or
    // nothing moves it.
    assert!(switch_counts[3] <= 1, "20 % margin must pin the mode: {switch_counts:?}");
    // ...at an energy cost relative to the oracle.
    assert!(
        oracle_efficiencies[3] <= oracle_efficiencies[1] + 1e-9,
        "pinned mode cannot beat the adaptive one: {oracle_efficiencies:?}"
    );
    // The paper-default margin keeps the runtime within 2 % of the oracle.
    assert!(oracle_efficiencies[1] > 0.98, "{oracle_efficiencies:?}");
}

#[test]
fn flashed_predictor_drives_the_runtime_identically() {
    let params = ModelParams::paper_defaults();
    let soc = client_soc(Watts::new(18.0));
    let trace = bursty_trace(4);
    let trained = base_predictor();
    let [ivr_img, ldo_img] = trained.firmware_images();
    let flashed = ModePredictor::from_firmware(ivr_img.as_bytes(), ldo_img.as_bytes()).unwrap();

    let run = |p: ModePredictor| {
        FlexWattsRuntime::new(soc.clone(), params.clone(), p, RuntimeConfig::default())
            .run(&trace)
            .unwrap()
    };
    let a = run(trained);
    let b = run(flashed);
    assert_eq!(a.switches.len(), b.switches.len());
    assert!((a.energy_joules - b.energy_joules).abs() < 1e-12);
    assert_eq!(a.time_in_mode, b.time_in_mode);
}

#[test]
fn protection_fires_on_sustained_heavy_ldo_pressure() {
    // Train a deliberately wrong predictor whose tables only know the low
    // TDPs — at 50 W it keeps voting LDO-Mode, and only the
    // maximum-current protection stands between that vote and the rail.
    let params = ModelParams::paper_defaults();
    let myopic = ModePredictor::train(&params, &[4.0, 6.0], &[0.4, 0.8]).unwrap();
    let soc = client_soc(Watts::new(50.0));
    let runtime = FlexWattsRuntime::new(
        soc,
        params,
        myopic,
        RuntimeConfig { initial_mode: PdnMode::LdoMode, ..RuntimeConfig::default() },
    );
    let trace = Trace::new(
        "virus-pressure",
        vec![TraceInterval::active(
            Seconds::from_millis(60.0),
            WorkloadType::MultiThread,
            ApplicationRatio::new(1.0).unwrap(),
        )],
    );
    let report = runtime.run(&trace).unwrap();
    assert!(
        report.protection_overrides > 0,
        "the max-current protection must override the myopic predictor"
    );
    let ivr_time = report.time_in_mode[&PdnMode::IvrMode];
    assert!(
        ivr_time.get() > 0.9 * report.total_time.get(),
        "overridden runtime must spend its time in IVR-Mode"
    );
}

#[test]
fn protection_can_be_disabled_for_what_if_studies() {
    let params = ModelParams::paper_defaults();
    let myopic = ModePredictor::train(&params, &[4.0, 6.0], &[0.4, 0.8]).unwrap();
    let soc = client_soc(Watts::new(50.0));
    let runtime = FlexWattsRuntime::new(
        soc,
        params,
        myopic,
        RuntimeConfig {
            initial_mode: PdnMode::LdoMode,
            max_current_protection: false,
            ..RuntimeConfig::default()
        },
    );
    let trace = Trace::new(
        "virus-pressure",
        vec![TraceInterval::active(
            Seconds::from_millis(40.0),
            WorkloadType::MultiThread,
            ApplicationRatio::new(1.0).unwrap(),
        )],
    );
    let report = runtime.run(&trace).unwrap();
    assert_eq!(report.protection_overrides, 0);
    assert!(report.time_in_mode[&PdnMode::LdoMode].get() > 0.0);
}
