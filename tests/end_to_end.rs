//! Cross-crate end-to-end tests: workload traces → PMU estimation →
//! mode prediction → switch flow → PDNspot energy accounting.

use flexwatts::{FlexWattsRuntime, ModePredictor, PdnMode, RuntimeConfig};
use pdn_proc::client_soc;
use pdn_units::{Seconds, Watts};
use pdn_workload::{BatteryLifeWorkload, TraceGenerator, WorkloadType};
use pdnspot::ModelParams;

fn predictor(params: &ModelParams) -> ModePredictor {
    ModePredictor::train(params, &[4.0, 10.0, 18.0, 25.0, 36.0, 50.0], &[0.4, 0.6, 0.8]).unwrap()
}

#[test]
fn random_trace_families_run_cleanly_at_every_tdp() {
    let params = ModelParams::paper_defaults();
    let predictor = predictor(&params);
    for tdp in [4.0, 18.0, 50.0] {
        let runtime = FlexWattsRuntime::new(
            client_soc(Watts::new(tdp)),
            params.clone(),
            predictor.clone(),
            RuntimeConfig::default(),
        );
        for trace in TraceGenerator::new(2026).generate_family("e2e", 3, 30) {
            let report = runtime.run(&trace).unwrap();
            // Time accounting closes.
            let mode_time: Seconds = report.time_in_mode.values().copied().sum();
            assert!(
                (mode_time + report.switch_overhead() - report.total_time).abs().get() < 1e-9,
                "time must be fully attributed ({tdp} W, {})",
                trace.name()
            );
            // Energy is bounded below by the oracle.
            assert!(report.oracle_energy_joules <= report.energy_joules + 1e-9);
            // The oracle gap stays small: the predictor works.
            assert!(
                report.energy_efficiency_vs_oracle() > 0.95,
                "{tdp} W {}: oracle efficiency {:.3}",
                trace.name(),
                report.energy_efficiency_vs_oracle()
            );
            // Power must be physically plausible for the TDP class.
            let avg = report.average_power().get();
            assert!(avg > 0.05 && avg < tdp * 1.5, "{tdp} W: average power {avg:.2}");
        }
    }
}

#[test]
fn battery_life_workloads_favour_ldo_mode_time() {
    let params = ModelParams::paper_defaults();
    let runtime = FlexWattsRuntime::new(
        client_soc(Watts::new(18.0)),
        params.clone(),
        predictor(&params),
        RuntimeConfig::default(),
    );
    for wl in BatteryLifeWorkload::ALL {
        let report = runtime.run(&wl.as_trace(30)).unwrap();
        let ldo_time = report.time_in_mode[&PdnMode::LdoMode].get();
        let ivr_time = report.time_in_mode[&PdnMode::IvrMode].get();
        assert!(
            ldo_time > ivr_time,
            "{wl}: LDO-Mode should dominate ({ldo_time:.3}s vs {ivr_time:.3}s)"
        );
    }
}

#[test]
fn sensor_noise_does_not_derail_the_predictor() {
    let params = ModelParams::paper_defaults();
    let p = predictor(&params);
    // Three differently-calibrated sensor banks must reach the same
    // steady-state decisions on a clear-cut workload.
    let mut switch_counts = Vec::new();
    for seed in [1, 2, 3] {
        let runtime = FlexWattsRuntime::new(
            client_soc(Watts::new(4.0)),
            params.clone(),
            p.clone(),
            RuntimeConfig {
                sensor_seed: seed,
                initial_mode: PdnMode::IvrMode,
                ..RuntimeConfig::default()
            },
        );
        let trace = TraceGenerator::new(77)
            .with_type(WorkloadType::SingleThread)
            .with_active_probability(1.0)
            .generate("steady", 40);
        let report = runtime.run(&trace).unwrap();
        switch_counts.push(report.switches.len());
        assert!(
            report.time_in_mode[&PdnMode::LdoMode].get() > 0.9 * report.total_time.get(),
            "4 W single-thread must settle in LDO-Mode (seed {seed})"
        );
    }
    // One boot switch each, regardless of sensor calibration.
    assert!(switch_counts.iter().all(|&c| c == 1), "{switch_counts:?}");
}

#[test]
fn ctdp_reconfiguration_flips_the_decision() {
    // The same workload on the same silicon, but reconfigured from 10 W
    // to 36 W cTDP: the predictor's best mode flips from LDO to IVR.
    let params = ModelParams::paper_defaults();
    let p = predictor(&params);
    let inputs = |tdp: f64| flexwatts::PredictorInputs {
        tdp: Watts::new(tdp),
        ar: pdn_units::ApplicationRatio::new(0.7).unwrap(),
        workload_type: WorkloadType::MultiThread,
        power_state: None,
    };
    assert_eq!(p.predict(inputs(10.0)), PdnMode::LdoMode);
    assert_eq!(p.predict(inputs(36.0)), PdnMode::IvrMode);
}

#[test]
fn spec_trace_through_runtime_matches_static_evaluation() {
    // Running a steady SPEC benchmark through the runtime must converge
    // to the same power PDNspot computes statically for the chosen mode.
    let params = ModelParams::paper_defaults();
    let soc = client_soc(Watts::new(4.0));
    let runtime = FlexWattsRuntime::new(
        soc.clone(),
        params.clone(),
        predictor(&params),
        RuntimeConfig::default(),
    );
    let bench = &pdn_workload::spec::spec_cpu2006()[10];
    let trace = bench.as_trace(Seconds::from_millis(200.0));
    let report = runtime.run(&trace).unwrap();

    let scenario =
        pdnspot::Scenario::active_fixed_tdp_frequency(&soc, WorkloadType::SingleThread, bench.ar)
            .unwrap();
    let static_power =
        pdnspot::Pdn::evaluate(&flexwatts::FlexWattsPdn::new(params, PdnMode::LdoMode), &scenario)
            .unwrap()
            .input_power;
    let avg = report.average_power().get();
    assert!(
        (avg - static_power.get()).abs() / static_power.get() < 0.02,
        "runtime avg {avg:.3} vs static {static_power}"
    );
}
