//! The §4.3 validation campaign at paper scale: 200 traces per PDN model
//! against independently seeded reference units.

use pdn_proc::{client_soc, PackageCState};
use pdn_units::{ApplicationRatio, Watts};
use pdn_workload::{TraceGenerator, WorkloadType};
use pdnspot::validation::{validate, ReferenceSystem};
use pdnspot::{IvrPdn, LdoPdn, MbvrPdn, ModelParams, Pdn, Scenario};

/// Builds a 200-scenario campaign shaped like the paper's validation
/// subset: single-thread, multi-programmed, and graphics traces with
/// varying ARs, plus the battery-life power states.
fn paper_scale_scenarios() -> Vec<Scenario> {
    let mut scenarios = Vec::new();
    // 3 TDPs × 3 types × ~20 AR draws from seeded traces = 180 active...
    let gen = TraceGenerator::new(0xC0FFEE);
    for (i, tdp) in [4.0, 18.0, 50.0].into_iter().enumerate() {
        let soc = client_soc(Watts::new(tdp));
        for (j, wl) in WorkloadType::ACTIVE_TYPES.into_iter().enumerate() {
            let traces = gen.generate_family(&format!("val-{i}-{j}"), 20, 4);
            for t in traces {
                let ar = t.mean_active_ar().unwrap_or_else(|| ApplicationRatio::new(0.6).unwrap());
                // Clamp into the validated 40-80 % band like the paper.
                let ar = ApplicationRatio::new(ar.get().clamp(0.4, 0.8)).unwrap();
                scenarios.push(Scenario::active_fixed_tdp_frequency(&soc, wl, ar).unwrap());
            }
        }
    }
    // Plus the power states (Fig. 4j) at two TDPs.
    for tdp in [4.0, 50.0] {
        let soc = client_soc(Watts::new(tdp));
        for state in PackageCState::ALL {
            scenarios.push(Scenario::idle(&soc, state));
        }
    }
    scenarios
}

#[test]
fn two_hundred_trace_campaign_meets_the_paper_accuracy_band() {
    let scenarios = paper_scale_scenarios();
    assert!(scenarios.len() >= 190, "paper-scale campaign: {}", scenarios.len());

    let params = ModelParams::paper_defaults();
    let reference = ReferenceSystem::new(2020);
    // Paper §4.3: average (min/max) accuracy 99.1 (98.7/99.3), 99.4
    // (98.9/99.7), 99.2 (98.6/99.6) for IVR/MBVR/LDO.
    let pdns: Vec<(Box<dyn Pdn>, f64)> = vec![
        (Box::new(IvrPdn::new(params.clone())), 0.985),
        (Box::new(MbvrPdn::new(params.clone())), 0.985),
        (Box::new(LdoPdn::new(params)), 0.985),
    ];
    for (pdn, floor) in pdns {
        let report = validate(pdn.as_ref(), &reference, &scenarios).unwrap();
        let mean = report.mean_accuracy();
        assert!(mean >= floor, "{}: mean accuracy {:.4} below the paper band", pdn.kind(), mean);
        assert!(
            report.min_accuracy() > 0.95,
            "{}: min accuracy {:.4}",
            pdn.kind(),
            report.min_accuracy()
        );
    }
}

#[test]
fn accuracy_is_stable_across_bench_units() {
    // Different physical units (seeds) must all validate: the model is not
    // tuned to one unit's quirks.
    let scenarios: Vec<Scenario> = paper_scale_scenarios().into_iter().step_by(8).collect();
    let params = ModelParams::paper_defaults();
    let pdn = MbvrPdn::new(params);
    for seed in [1, 42, 777, 31337] {
        let reference = ReferenceSystem::new(seed);
        let report = validate(&pdn, &reference, &scenarios).unwrap();
        assert!(report.mean_accuracy() > 0.98, "unit {seed}: {:.4}", report.mean_accuracy());
    }
}
