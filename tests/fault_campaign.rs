//! Integration sweep of the fault-injection harness: seeds × fault mixes
//! over a mode-toggling trace, asserting the safety invariants the
//! FlexWatts degradation contract promises — no interval above the trip
//! current, conserved energy/time ledgers, internally consistent fault
//! accounting — and bit-identical reports for the same seed and plan.

use flexwatts::{
    DegradationPolicy, FaultCounts, FaultMix, FaultPlan, FlexWattsRuntime, ModePredictor,
    RuntimeConfig,
};
use pdn_proc::client_soc;
use pdn_units::{ApplicationRatio, Seconds, Watts};
use pdn_workload::{Trace, TraceInterval, WorkloadType};
use pdnspot::batch::Workers;
use pdnspot::ModelParams;

fn runtime(tdp: f64) -> FlexWattsRuntime {
    let predictor = ModePredictor::train(
        &ModelParams::paper_defaults(),
        &[4.0, 10.0, 18.0, 25.0, 50.0],
        &[0.4, 0.6, 0.8],
    )
    .unwrap();
    FlexWattsRuntime::new(
        client_soc(Watts::new(tdp)),
        ModelParams::paper_defaults(),
        predictor,
        RuntimeConfig::default(),
    )
}

/// A 36 W burst/idle trace: the bursts prefer IVR-Mode and the idle
/// phases prefer LDO-Mode, so every fault class (including switch-flow
/// faults) meets live state.
fn toggling_trace() -> Trace {
    let mut intervals = Vec::new();
    for _ in 0..4 {
        intervals.push(TraceInterval::active(
            Seconds::from_millis(30.0),
            WorkloadType::MultiThread,
            ApplicationRatio::new(0.8).unwrap(),
        ));
        intervals
            .push(TraceInterval::idle(Seconds::from_millis(30.0), pdn_proc::PackageCState::C0Min));
    }
    Trace::new("toggling", intervals)
}

fn mixes() -> Vec<(&'static str, FaultMix)> {
    vec![
        ("none", FaultMix::none()),
        ("sensors", FaultMix::sensors()),
        ("electrical", FaultMix::electrical()),
        ("switch-flow", FaultMix::switch_flow()),
        ("firmware", FaultMix::firmware()),
        ("chaos", FaultMix::chaos()),
    ]
}

#[test]
fn seeds_by_mixes_sweep_holds_every_invariant() {
    let trace = toggling_trace();
    let rt = runtime(36.0);
    let policy = DegradationPolicy::default();
    let mut total_injected = 0u64;
    for seed in [0xF1E2u64, 1, 2] {
        for (name, mix) in mixes() {
            let plan = FaultPlan::generate(seed, trace.intervals().len(), &mix);
            let report = rt
                .run_faulted(&trace, &plan, &policy)
                .unwrap_or_else(|e| panic!("seed {seed} mix {name}: {e}"));
            assert!(
                report.invariants.holds(),
                "seed {seed} mix {name} violated an invariant: {}",
                report.invariants
            );
            assert!(
                report.counts.consistent(),
                "seed {seed} mix {name} fault ledger inconsistent: {:?}",
                report.counts
            );
            assert!(
                report.runtime.energy_efficiency_vs_oracle() <= 1.0 + 1e-12,
                "seed {seed} mix {name}: oracle must lower-bound energy"
            );
            assert!(
                report.runtime.total_time >= trace.total_duration(),
                "seed {seed} mix {name}: faults only ever add time"
            );
            if name == "none" {
                assert_eq!(report.counts, FaultCounts::default(), "empty mix must stay clean");
            }
            total_injected += report.counts.injected;
        }
    }
    assert!(total_injected > 0, "the sweep must actually exercise faults");
}

#[test]
fn same_seed_and_plan_reports_are_bit_identical() {
    let trace = toggling_trace();
    let policy = DegradationPolicy::default();
    let plan = FaultPlan::generate(7, trace.intervals().len(), &FaultMix::chaos());
    let a = runtime(36.0).run_faulted(&trace, &plan, &policy).unwrap();
    let b = runtime(36.0).run_faulted(&trace, &plan, &policy).unwrap();
    assert_eq!(a, b, "identical seed + plan must reproduce bitwise");
    assert_eq!(a.runtime.energy_joules.to_bits(), b.runtime.energy_joules.to_bits());
    // The worker pool only fans out pure work; injection replays
    // serially, so the report is worker-count independent too.
    let serial = runtime(36.0).run_faulted_with(&trace, &plan, &policy, Workers::Serial).unwrap();
    let pooled = runtime(36.0).run_faulted_with(&trace, &plan, &policy, Workers::Fixed(3)).unwrap();
    assert_eq!(serial, pooled);
    assert_eq!(a, serial);
}

#[test]
fn different_seeds_produce_different_campaigns() {
    let trace = toggling_trace();
    let policy = DegradationPolicy::default();
    let rt = runtime(36.0);
    let a = rt
        .run_faulted(
            &trace,
            &FaultPlan::generate(1, trace.intervals().len(), &FaultMix::chaos()),
            &policy,
        )
        .unwrap();
    let b = rt
        .run_faulted(
            &trace,
            &FaultPlan::generate(2, trace.intervals().len(), &FaultMix::chaos()),
            &policy,
        )
        .unwrap();
    assert_ne!(a, b, "different seeds must drive different campaigns");
}
