//! Property-based tests over the PDN models: physical invariants that must
//! hold for *any* valid scenario, not just the paper's operating points.

use flexwatts::{FlexWattsPdn, PdnMode};
use pdn_proc::{client_soc, PackageCState};
use pdn_units::{ApplicationRatio, Hertz, Watts};
use pdn_workload::WorkloadType;
use pdnspot::{IPlusMbvrPdn, IvrPdn, LdoPdn, MbvrPdn, ModelParams, Pdn, Scenario};
use proptest::prelude::*;

fn all_pdns() -> Vec<Box<dyn Pdn>> {
    let params = ModelParams::paper_defaults();
    vec![
        Box::new(IvrPdn::new(params.clone())),
        Box::new(MbvrPdn::new(params.clone())),
        Box::new(LdoPdn::new(params.clone())),
        Box::new(IPlusMbvrPdn::new(params.clone())),
        Box::new(FlexWattsPdn::new(params.clone(), PdnMode::IvrMode)),
        Box::new(FlexWattsPdn::new(params, PdnMode::LdoMode)),
    ]
}

fn workload_type() -> impl Strategy<Value = WorkloadType> {
    prop_oneof![
        Just(WorkloadType::SingleThread),
        Just(WorkloadType::MultiThread),
        Just(WorkloadType::Graphics),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Energy conservation and ETEE bounds hold for any active scenario.
    #[test]
    fn any_active_scenario_conserves_power(
        tdp in 4.0f64..50.0,
        wl in workload_type(),
        ar in 0.2f64..1.0,
        t_cores in 0.0f64..1.0,
        t_gfx in 0.0f64..1.0,
    ) {
        let soc = client_soc(Watts::new(tdp));
        let cores = soc.domain(pdn_proc::DomainKind::Core0);
        let gfx = soc.domain(pdn_proc::DomainKind::Gfx);
        let f_cores = Hertz::new(
            cores.fmin.get() + t_cores * (cores.fmax.get() - cores.fmin.get()),
        );
        let f_gfx = Hertz::new(gfx.fmin.get() + t_gfx * (gfx.fmax.get() - gfx.fmin.get()));
        let scenario = Scenario::active(
            &soc,
            wl,
            ApplicationRatio::new(ar).unwrap(),
            f_cores,
            f_gfx,
        )
        .unwrap();
        for pdn in all_pdns() {
            let e = pdn.evaluate(&scenario).unwrap();
            // ETEE ∈ (0, 1]; a PDN cannot create energy.
            prop_assert!(e.etee.get() > 0.0 && e.etee.get() <= 1.0);
            prop_assert!(e.input_power >= e.nominal_power);
            // The loss breakdown accounts for every lost watt.
            let accounted = (e.nominal_power + e.breakdown.total() - e.input_power)
                .abs()
                .get();
            prop_assert!(accounted < 1e-6, "{}: unaccounted {accounted}", pdn.kind());
            // No negative loss categories.
            prop_assert!(e.breakdown.vr_loss.get() >= -1e-12);
            prop_assert!(e.breakdown.conduction_compute.get() >= -1e-12);
            prop_assert!(e.breakdown.conduction_sa_io.get() >= -1e-12);
            prop_assert!(e.breakdown.other.get() >= -1e-12);
            // Chip input current is positive and plausible.
            prop_assert!(e.chip_input_current.get() > 0.0);
            prop_assert!(e.chip_input_current.get() < 100.0);
        }
    }

    /// Idle scenarios hold the same invariants in every package state.
    #[test]
    fn any_idle_scenario_conserves_power(tdp in 4.0f64..50.0, state_idx in 0usize..6) {
        let soc = client_soc(Watts::new(tdp));
        let state = PackageCState::ALL[state_idx];
        let scenario = Scenario::idle(&soc, state);
        for pdn in all_pdns() {
            let e = pdn.evaluate(&scenario).unwrap();
            prop_assert!(e.etee.get() > 0.0 && e.etee.get() <= 1.0);
            prop_assert!(e.input_power >= e.nominal_power);
            let accounted = (e.nominal_power + e.breakdown.total() - e.input_power)
                .abs()
                .get();
            prop_assert!(accounted < 1e-9);
        }
    }

    /// Rail-sizing is monotone in TDP for every topology.
    #[test]
    fn rail_sizing_monotone_in_tdp(lo in 4.0f64..20.0, extra in 5.0f64..30.0) {
        let hi = lo + extra;
        for pdn in all_pdns() {
            let small: f64 = pdn
                .offchip_rails(&client_soc(Watts::new(lo)))
                .unwrap()
                .iter()
                .map(|r| r.iccmax.get())
                .sum();
            let large: f64 = pdn
                .offchip_rails(&client_soc(Watts::new(hi)))
                .unwrap()
                .iter()
                .map(|r| r.iccmax.get())
                .sum();
            prop_assert!(
                large >= small * 0.99,
                "{}: Iccmax {small:.1} A at {lo:.0} W vs {large:.1} A at {hi:.0} W",
                pdn.kind()
            );
        }
    }

    /// The guardbanded virus power never undershoots the running power.
    #[test]
    fn rail_virus_dominates_running_power(
        tdp in 4.0f64..50.0,
        wl in workload_type(),
        ar in 0.2f64..1.0,
    ) {
        let soc = client_soc(Watts::new(tdp));
        let scenario =
            Scenario::active_fixed_tdp_frequency(&soc, wl, ApplicationRatio::new(ar).unwrap())
                .unwrap();
        let running = scenario.total_nominal_power();
        let virus = scenario.rail_virus_power(&pdn_proc::DomainKind::ALL, running);
        prop_assert!(virus >= running);
    }

    /// Scenario nominal power is monotone in frequency for CPU workloads.
    #[test]
    fn nominal_power_monotone_in_frequency(
        tdp in 4.0f64..50.0,
        ar in 0.3f64..1.0,
        f_lo_t in 0.0f64..0.9,
    ) {
        let soc = client_soc(Watts::new(tdp));
        let cores = soc.domain(pdn_proc::DomainKind::Core0);
        let span = cores.fmax.get() - cores.fmin.get();
        let f_lo = Hertz::new(cores.fmin.get() + f_lo_t * span);
        let f_hi = Hertz::new(f_lo.get() + 0.1 * span);
        let ar = ApplicationRatio::new(ar).unwrap();
        let gfx_f = soc.domain(pdn_proc::DomainKind::Gfx).fmin;
        let lo = Scenario::active(&soc, WorkloadType::MultiThread, ar, f_lo, gfx_f).unwrap();
        let hi = Scenario::active(&soc, WorkloadType::MultiThread, ar, f_hi, gfx_f).unwrap();
        prop_assert!(hi.total_nominal_power() >= lo.total_nominal_power());
    }
}
