//! Configurable-TDP scenario: the same silicon reconfigured across cTDP
//! levels at runtime (§1/§6 of the paper). A static PDN is optimal at only
//! one end; FlexWatts's predictor follows the configured TDP because the
//! PMU feeds it the live cTDP value.
//!
//! Run with: `cargo run --example ctdp_reconfiguration`

use flexwatts::{FlexWattsAuto, ModePredictor, PredictorInputs};
use pdn_proc::{client_soc, ConfigurableTdp};
use pdn_units::{ApplicationRatio, Watts};
use pdn_workload::WorkloadType;
use pdnspot::{IvrPdn, MbvrPdn, ModelParams, Pdn, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = ModelParams::paper_defaults();
    println!("Training the mode predictor...");
    let predictor =
        ModePredictor::train(&params, &[4.0, 10.0, 18.0, 25.0, 36.0, 50.0], &[0.4, 0.6, 0.8])?;

    // A convertible laptop-tablet: 10 W docked-quiet, 18 W nominal,
    // 25 W docked-performance.
    let mut ctdp =
        ConfigurableTdp::new(vec![Watts::new(10.0), Watts::new(18.0), Watts::new(25.0)], 1)?;
    let ar = ApplicationRatio::new(0.65)?;
    let wl = WorkloadType::MultiThread;

    let ivr = IvrPdn::new(params.clone());
    let mbvr = MbvrPdn::new(params.clone());
    let flexwatts = FlexWattsAuto::new(params);

    println!("\nMulti-thread workload (AR = {ar}) across cTDP levels:\n");
    println!(
        "{:<8} {:>10} {:>10} {:>11} {:>14}",
        "cTDP", "IVR ETEE", "MBVR ETEE", "FlexWatts", "predicted mode"
    );
    ctdp.configure(Watts::new(10.0))?;
    loop {
        let tdp = ctdp.current();
        let soc = client_soc(tdp);
        let scenario = Scenario::active_fixed_tdp_frequency(&soc, wl, ar)?;
        let mode =
            predictor.predict(PredictorInputs { tdp, ar, workload_type: wl, power_state: None });
        println!(
            "{:<8} {:>10} {:>10} {:>11} {:>14}",
            format!("{tdp}"),
            format!("{:.1}%", ivr.evaluate(&scenario)?.etee.percent()),
            format!("{:.1}%", mbvr.evaluate(&scenario)?.etee.percent()),
            format!("{:.1}%", flexwatts.evaluate(&scenario)?.etee.percent()),
            mode.to_string(),
        );
        if ctdp.step_up() == tdp {
            break;
        }
    }
    println!("\nThe static PDNs trade places across the cTDP range; FlexWatts");
    println!("flips its mode with the configured TDP and stays near the best.");
    Ok(())
}
