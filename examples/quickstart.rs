//! Quickstart: evaluate the five PDN architectures on one workload.
//!
//! Builds the paper's client SoC at a chosen TDP, constructs a
//! CPU-intensive scenario, and prints every PDN's end-to-end
//! power-conversion efficiency (ETEE) and loss breakdown.
//!
//! Run with: `cargo run --example quickstart [TDP_WATTS]`

use flexwatts::FlexWattsAuto;
use pdn_proc::client_soc;
use pdn_units::{ApplicationRatio, Watts};
use pdn_workload::WorkloadType;
use pdnspot::{IPlusMbvrPdn, IvrPdn, LdoPdn, MbvrPdn, ModelParams, Pdn, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tdp: f64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(4.0);
    let params = ModelParams::paper_defaults();
    let soc = client_soc(Watts::new(tdp));
    let ar = ApplicationRatio::new(0.6)?;
    let scenario = Scenario::active_fixed_tdp_frequency(&soc, WorkloadType::MultiThread, ar)?;

    println!(
        "SoC: {} | workload: multi-thread, AR = {} | nominal load = {:.2}",
        soc.name,
        ar,
        scenario.total_nominal_power()
    );
    println!(
        "{:<10} {:>7} {:>9} {:>10} {:>12} {:>10} {:>8}",
        "PDN", "ETEE", "input", "VR loss", "I2R compute", "I2R SA/IO", "other"
    );

    let pdns: Vec<Box<dyn Pdn>> = vec![
        Box::new(IvrPdn::new(params.clone())),
        Box::new(MbvrPdn::new(params.clone())),
        Box::new(LdoPdn::new(params.clone())),
        Box::new(IPlusMbvrPdn::new(params.clone())),
        Box::new(FlexWattsAuto::new(params)),
    ];
    for pdn in &pdns {
        let e = pdn.evaluate(&scenario)?;
        println!(
            "{:<10} {:>7} {:>8.2}W {:>9.2}W {:>11.2}W {:>9.2}W {:>7.2}W",
            pdn.kind().to_string(),
            format!("{:.1}%", e.etee.percent()),
            e.input_power.get(),
            e.breakdown.vr_loss.get(),
            e.breakdown.conduction_compute.get(),
            e.breakdown.conduction_sa_io.get(),
            e.breakdown.other.get(),
        );
    }

    println!("\nTip: rerun with a different TDP (e.g. `cargo run --example quickstart 50`)");
    println!("to watch the winner flip from LDO/MBVR (low TDP) to IVR/FlexWatts (high TDP).");
    Ok(())
}
