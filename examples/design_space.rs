//! Design-space exploration: sweep TDP × workload type × AR with PDNspot
//! and print which PDN wins each cell — the §5 observations at a glance —
//! plus the per-cell FlexWatts mode the predictor would pick.
//!
//! Run with: `cargo run --example design_space`

use flexwatts::FlexWattsAuto;
use pdn_proc::client_soc;
use pdn_units::{ApplicationRatio, Watts};
use pdn_workload::WorkloadType;
use pdnspot::{IvrPdn, LdoPdn, MbvrPdn, ModelParams, Pdn, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = ModelParams::paper_defaults();
    let pdns: Vec<(&str, Box<dyn Pdn>)> = vec![
        ("IVR", Box::new(IvrPdn::new(params.clone()))),
        ("MBVR", Box::new(MbvrPdn::new(params.clone()))),
        ("LDO", Box::new(LdoPdn::new(params.clone()))),
    ];
    let flexwatts = FlexWattsAuto::new(params);

    println!("Best baseline PDN per (TDP, workload, AR) cell, and FlexWatts's mode:\n");
    println!(
        "{:<6} {:<13} {:>4}  {:>18}  {:>18}",
        "TDP", "workload", "AR", "best baseline", "FlexWatts (mode)"
    );
    for tdp in pdn_proc::PAPER_TDPS {
        let soc = client_soc(Watts::new(tdp));
        for wl in WorkloadType::ACTIVE_TYPES {
            for ar_pct in [40.0, 60.0, 80.0] {
                let ar = ApplicationRatio::from_percent(ar_pct)?;
                let scenario = Scenario::active_fixed_tdp_frequency(&soc, wl, ar)?;
                let mut best = ("?", 0.0);
                for (name, pdn) in &pdns {
                    let etee = pdn.evaluate(&scenario)?.etee.get();
                    if etee > best.1 {
                        best = (name, etee);
                    }
                }
                let fw = flexwatts.evaluate(&scenario)?;
                let mode = flexwatts.best_mode(&scenario)?;
                println!(
                    "{:<6} {:<13} {:>3.0}%  {:>10} {:>6.1}%  {:>6.1}% ({})",
                    format!("{tdp}W"),
                    wl.to_string(),
                    ar_pct,
                    best.0,
                    best.1 * 100.0,
                    fw.etee.percent(),
                    mode,
                );
            }
        }
        println!();
    }
    println!("Reading: at low TDPs the single-stage PDNs win and FlexWatts runs LDO-Mode;");
    println!("at high TDPs the crossover flips and FlexWatts follows with IVR-Mode (§5/§6).");
    Ok(())
}
