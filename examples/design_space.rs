//! Design-space exploration: sweep TDP × workload type × AR with PDNspot
//! and print which PDN wins each cell — the §5 observations at a glance —
//! plus the per-cell FlexWatts mode the predictor would pick.
//!
//! The sweep runs on the `pdnspot::batch` engine: one `SweepGrid`
//! describes the lattice, `batch::evaluate` fans the three baselines out
//! over the worker pool (sharing one scenario build per cell), and the
//! run's `BatchStats` close the report.
//!
//! Run with: `cargo run --example design_space`

use flexwatts::FlexWattsAuto;
use pdnspot::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = ModelParams::paper_defaults();
    let ivr = IvrPdn::new(params.clone());
    let mbvr = MbvrPdn::new(params.clone());
    let ldo = LdoPdn::new(params.clone());
    let names = ["IVR", "MBVR", "LDO"];
    let pdns: [&dyn Pdn; 3] = [&ivr, &mbvr, &ldo];
    let flexwatts = FlexWattsAuto::new(params);

    let grid = SweepGrid::builder()
        .tdps(&pdn_proc::PAPER_TDPS)
        .workload_types(&WorkloadType::ACTIVE_TYPES)
        .ars(&[0.40, 0.60, 0.80])
        .build()?;
    let outcome = evaluate(&pdns, &grid, &ClientSoc, &EngineConfig::default(), None);
    // The FlexWatts predictor wants the scenarios themselves; the second
    // build is served from the same deterministic lattice order.
    let (scenarios, _) = build_scenarios(&grid, &ClientSoc, Workers::Auto);

    println!("Best baseline PDN per (TDP, workload, AR) cell, and FlexWatts's mode:\n");
    println!(
        "{:<6} {:<13} {:>4}  {:>18}  {:>18}",
        "TDP", "workload", "AR", "best baseline", "FlexWatts (mode)"
    );
    let mut last_tdp = 0;
    for (idx, point) in grid.points().into_iter().enumerate() {
        let LatticePoint::Active { tdp_idx, wl_idx, ar_idx } = point else {
            continue;
        };
        if tdp_idx != last_tdp {
            println!();
            last_tdp = tdp_idx;
        }
        let mut best = ("?", 0.0);
        for (p, name) in names.iter().enumerate() {
            let etee =
                outcome.for_pdn(p)[idx].result.as_ref().map_err(|e| e.to_string())?.etee.get();
            if etee > best.1 {
                best = (*name, etee);
            }
        }
        let scenario = scenarios[idx].as_ref().map_err(|e| e.to_string())?;
        let fw = flexwatts.evaluate(scenario)?;
        let mode = flexwatts.best_mode(scenario)?;
        println!(
            "{:<6} {:<13} {:>3.0}%  {:>10} {:>6.1}%  {:>6.1}% ({})",
            format!("{}W", grid.tdps()[tdp_idx]),
            grid.workload_types()[wl_idx].to_string(),
            grid.ars()[ar_idx] * 100.0,
            best.0,
            best.1 * 100.0,
            fw.etee.percent(),
            mode,
        );
    }
    println!();
    println!("Reading: at low TDPs the single-stage PDNs win and FlexWatts runs LDO-Mode;");
    println!("at high TDPs the crossover flips and FlexWatts follows with IVR-Mode (§5/§6).");
    println!("{}", outcome.stats);
    Ok(())
}
