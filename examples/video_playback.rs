//! Battery-life scenario: run FlexWatts's closed loop (sensors →
//! predictor → mode switch) over a video-playback trace and compare its
//! average power against the static IVR PDN — the paper's headline 11 %
//! battery-life saving.
//!
//! Run with: `cargo run --example video_playback`

use flexwatts::{FlexWattsRuntime, ModePredictor, RuntimeConfig};
use pdn_proc::client_soc;
use pdn_units::Watts;
use pdn_workload::BatteryLifeWorkload;
use pdnspot::perf::battery_life_average_power;
use pdnspot::{IvrPdn, ModelParams, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = ModelParams::paper_defaults();
    let soc = client_soc(Watts::new(18.0));

    println!("Training the mode predictor (tabulating PMU firmware curves)...");
    let predictor =
        ModePredictor::train(&params, &[4.0, 10.0, 18.0, 25.0, 50.0], &[0.4, 0.5, 0.6, 0.7, 0.8])?;

    let runtime =
        FlexWattsRuntime::new(soc.clone(), params.clone(), predictor, RuntimeConfig::default());

    println!("Simulating one second of 60 fps video playback...\n");
    let trace = BatteryLifeWorkload::VideoPlayback.as_trace(60);
    let report = runtime.run(&trace)?;

    let ivr = IvrPdn::new(params);
    let ivr_power = battery_life_average_power(&soc, &ivr, BatteryLifeWorkload::VideoPlayback)?;

    println!("FlexWatts average power : {:.3}", report.average_power());
    println!("IVR PDN average power   : {ivr_power:.3}");
    let saving = 1.0 - report.average_power().get() / ivr_power.get();
    println!("saving vs IVR           : {:.1}% (paper: ~11%)", saving * 100.0);
    println!();
    println!("mode switches           : {}", report.switches.len());
    println!("switch overhead         : {:.0} us", report.switch_overhead().micros());
    for (mode, time) in &report.time_in_mode {
        println!("time in {mode:<9}      : {:.1} ms", time.millis());
    }
    println!("predictor evaluations   : {}", report.predictor_evaluations);
    println!("prediction accuracy     : {:.1}%", report.prediction_accuracy * 100.0);
    println!(
        "energy vs oracle        : {:.2}% of optimal",
        report.energy_efficiency_vs_oracle() * 100.0
    );
    // Per §5: the nominal (pre-PDN) average of the video workload.
    let nominal: f64 = [(2.5, 0.10), (1.2, 0.05), (0.13, 0.85)].iter().map(|(p, r)| p * r).sum();
    println!("\nnominal workload power  : {nominal:.3} W (ETEE turns this into the above)");
    let c8 = Scenario::idle(&soc, pdn_proc::PackageCState::C8);
    println!(
        "(85% of frame time sits in {}, nominal {:.2} W)",
        c8.name,
        c8.total_nominal_power().get()
    );
    Ok(())
}
