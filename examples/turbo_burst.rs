//! Dynamic-workload scenario: a bursty desktop workload alternating Turbo
//! Boost-style compute bursts with near-idle periods on a 36 W part.
//! FlexWatts rides the bursts in IVR-Mode and drops to LDO-Mode for the
//! light phases, paying ~94 µs per switch.
//!
//! Run with: `cargo run --example turbo_burst`

use flexwatts::{FlexWattsPdn, FlexWattsRuntime, ModePredictor, PdnMode, RuntimeConfig};
use pdn_proc::{client_soc, PackageCState};
use pdn_units::{ApplicationRatio, Seconds, Watts};
use pdn_workload::{Trace, TraceInterval, WorkloadType};
use pdnspot::{ModelParams, Pdn, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = ModelParams::paper_defaults();
    let soc = client_soc(Watts::new(36.0));

    // A foreground application: 60 ms of heavy multi-thread compute, then
    // 40 ms at the low-frequency active floor while the user thinks.
    let mut intervals = Vec::new();
    for _ in 0..10 {
        intervals.push(TraceInterval::active(
            Seconds::from_millis(60.0),
            WorkloadType::MultiThread,
            ApplicationRatio::new(0.85)?,
        ));
        intervals.push(TraceInterval::idle(Seconds::from_millis(40.0), PackageCState::C0Min));
    }
    let trace = Trace::new("turbo-burst", intervals);

    println!("Training the mode predictor...");
    let predictor =
        ModePredictor::train(&params, &[4.0, 10.0, 18.0, 25.0, 36.0, 50.0], &[0.4, 0.6, 0.8])?;
    let runtime =
        FlexWattsRuntime::new(soc.clone(), params.clone(), predictor, RuntimeConfig::default());

    println!("Simulating 1 s of bursty execution on a {} part...\n", soc.tdp);
    let report = runtime.run(&trace)?;

    println!("mode switches        : {}", report.switches.len());
    if let Some(first) = report.switches.first() {
        println!(
            "first switch         : {} -> {} ({:.0} us = {:.0} entry + {:.0} VR + {:.0} exit)",
            first.from,
            first.to,
            first.total().micros(),
            first.c6_entry.micros(),
            first.vr_adjust.micros(),
            first.c6_exit.micros()
        );
    }
    println!(
        "switch overhead      : {:.0} us over {:.0} ms ({:.3}% of time)",
        report.switch_overhead().micros(),
        report.total_time.millis(),
        report.switch_overhead().get() / report.total_time.get() * 100.0
    );
    for (mode, time) in &report.time_in_mode {
        println!("time in {mode:<9}   : {:.1} ms", time.millis());
    }
    println!("average power        : {:.2}", report.average_power());
    println!("energy vs oracle     : {:.2}%", report.energy_efficiency_vs_oracle() * 100.0);

    // Show why the switches pay off: per-phase ETEE of the two modes.
    let burst = Scenario::active_fixed_tdp_frequency(
        &soc,
        WorkloadType::MultiThread,
        ApplicationRatio::new(0.85)?,
    )?;
    let lull = Scenario::idle(&soc, PackageCState::C0Min);
    let ivr_mode = FlexWattsPdn::new(params.clone(), PdnMode::IvrMode);
    let ldo_mode = FlexWattsPdn::new(params, PdnMode::LdoMode);
    println!("\nper-phase ETEE:");
    println!(
        "  burst : IVR-Mode {} vs LDO-Mode {}",
        ivr_mode.evaluate(&burst)?.etee,
        ldo_mode.evaluate(&burst)?.etee
    );
    println!(
        "  lull  : IVR-Mode {} vs LDO-Mode {}",
        ivr_mode.evaluate(&lull)?.etee,
        ldo_mode.evaluate(&lull)?.etee
    );
    Ok(())
}
