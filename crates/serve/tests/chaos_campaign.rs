//! A single-seed chaos smoke: the quick campaign must survive every
//! mix with the exactly-once ledger intact. (The full multi-seed
//! campaign runs via `pdn-serve chaos` in CI; this keeps `cargo test`
//! seconds-scale while still driving a real daemon through disconnects,
//! stalls, floods, and injected engine faults.)

use pdn_serve::chaos::{self, CampaignConfig};

#[test]
fn quick_campaign_survives_every_mix() {
    let cfg = CampaignConfig { seeds: vec![0x000C_4A05], quick: true, out: None };
    let report = chaos::campaign(&cfg).expect("campaign runs");

    assert_eq!(report.runs.len(), 4, "one run per mix");
    for run in &report.runs {
        assert!(run.survived, "mix {} seed {} failed: {run:?}", run.mix, run.seed);
        assert_eq!(run.lost, 0, "mix {} lost replies", run.mix);
        assert_eq!(run.duplicated, 0, "mix {} duplicated replies", run.mix);
        assert_eq!(
            run.overloaded_without_hint, 0,
            "mix {} sent Overloaded without a RetryAfter hint",
            run.mix
        );
        assert!(run.accepted > 0, "mix {} accepted nothing", run.mix);
    }
    assert!((report.survival_rate - 1.0).abs() < f64::EPSILON);
    assert!(report.snapshot_corruption_cold_start, "snapshot corruption leg failed");

    // The engine-fault mix must actually exercise panic isolation.
    let faulted =
        report.runs.iter().find(|r| r.mix == "engine-faults").expect("engine-faults mix present");
    assert!(faulted.panics_isolated > 0, "no panics were injected and isolated");
}
