//! Property-based tests of the protocol's robustness contract,
//! mirroring the firmware parser's: every well-formed frame round-trips
//! exactly; truncated, oversized, or bit-flipped bytes **never panic**
//! the decoder — they surface typed errors; and the
//! `ServeError` ↔ `PdnError` conversion is lossless.

use pdn_proc::PackageCState;
use pdn_serve::protocol::{
    decode_request, decode_response, encode_request, encode_response, PdnId, PointSpec, Request,
    RequestBody, Response, ResponseBody, ServeError, ServerStats, TenantStats,
};
use pdn_serve::wire::{self, FrameError};
use pdn_units::{Amps, Efficiency, Volts, Watts};
use pdn_workload::WorkloadType;
use pdnspot::sweep::{Crossover, EteeSurface};
use pdnspot::{ErrorCode, LossBreakdown, PdnError, PdnEvaluation, RailReport};
use proptest::collection::vec;
use proptest::prelude::*;

/// ASCII text up to `max` bytes (the vendored stub has no regex
/// strategies, so strings are drawn as printable-byte vectors).
fn text(max: usize) -> impl Strategy<Value = String> {
    vec(32u8..127, 0..max + 1)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ASCII is valid UTF-8"))
}

fn pdn_id() -> impl Strategy<Value = PdnId> {
    prop_oneof![
        Just(PdnId::Ivr),
        Just(PdnId::Mbvr),
        Just(PdnId::Ldo),
        Just(PdnId::IPlusMbvr),
        Just(PdnId::FlexWatts),
    ]
}

fn workload() -> impl Strategy<Value = WorkloadType> {
    prop_oneof![
        Just(WorkloadType::SingleThread),
        Just(WorkloadType::MultiThread),
        Just(WorkloadType::Graphics),
        Just(WorkloadType::BatteryLife),
    ]
}

fn cstate() -> impl Strategy<Value = PackageCState> {
    prop_oneof![
        Just(PackageCState::C0Min),
        Just(PackageCState::C2),
        Just(PackageCState::C3),
        Just(PackageCState::C6),
        Just(PackageCState::C7),
        Just(PackageCState::C8),
    ]
}

fn point_spec() -> impl Strategy<Value = PointSpec> {
    prop_oneof![
        (1.0f64..100.0, workload(), 0.01f64..1.0)
            .prop_map(|(tdp, workload, ar)| PointSpec::Active { tdp, workload, ar }),
        (1.0f64..100.0, cstate()).prop_map(|(tdp, state)| PointSpec::Idle { tdp, state }),
    ]
}

fn request_body() -> impl Strategy<Value = RequestBody> {
    prop_oneof![
        Just(RequestBody::Ping),
        Just(RequestBody::Stats),
        Just(RequestBody::Snapshot),
        Just(RequestBody::Shutdown),
        (pdn_id(), point_spec()).prop_map(|(pdn, point)| RequestBody::Eval { pdn, point }),
        (pdn_id(), workload(), 1.0f64..100.0, 0.01f64..1.0)
            .prop_map(|(pdn, workload, tdp, ar)| RequestBody::Sample { pdn, workload, tdp, ar }),
        (
            vec(pdn_id(), 1..4),
            vec(1.0f64..100.0, 1..5),
            vec(workload(), 1..3),
            vec(0.01f64..1.0, 1..5),
        )
            .prop_map(|(pdns, tdps, workloads, ars)| RequestBody::Sweep {
                pdns,
                tdps,
                workloads,
                ars
            }),
        (pdn_id(), pdn_id(), workload(), 0.01f64..1.0, 1.0f64..20.0, 20.0f64..60.0).prop_map(
            |(a, b, workload, ar, lo, hi)| RequestBody::Crossover {
                a,
                b,
                workload,
                ar,
                range: (lo, hi)
            }
        ),
    ]
}

fn evaluation() -> impl Strategy<Value = PdnEvaluation> {
    (
        0.1f64..100.0,
        0.1f64..120.0,
        0.01f64..1.0,
        vec((0.0f64..10.0, 0.0f64..3.0, 0.0f64..20.0, 0.01f64..1.0), 0..4),
    )
        .prop_map(|(nominal, input, etee, rails)| PdnEvaluation {
            nominal_power: Watts::new(nominal),
            input_power: Watts::new(input),
            etee: Efficiency::new(etee).expect("strategy keeps etee in (0, 1)"),
            breakdown: LossBreakdown {
                vr_loss: Watts::new(nominal * 0.1),
                conduction_compute: Watts::new(nominal * 0.02),
                conduction_sa_io: Watts::new(nominal * 0.01),
                other: Watts::new(0.3),
            },
            chip_input_current: Amps::new(input / 1.8),
            rails: rails
                .into_iter()
                .enumerate()
                .map(|(i, (v, a, p, eff))| RailReport {
                    name: format!("rail-{i}"),
                    voltage: Volts::new(v),
                    current: Amps::new(a),
                    input_power: Watts::new(p),
                    efficiency: if i % 2 == 0 {
                        Some(Efficiency::new(eff).expect("strategy keeps eff in (0, 1)"))
                    } else {
                        None
                    },
                })
                .collect(),
        })
}

fn serve_error() -> impl Strategy<Value = ServeError> {
    let leaf = prop_oneof![
        text(40).prop_map(|m| ServeError::new(ErrorCode::Vr, m)),
        text(40).prop_map(|m| ServeError::from_pdn(&PdnError::Scenario(m))),
        (text(20), text(20)).prop_map(|(component, reason)| ServeError::from_pdn(
            &PdnError::Degraded { component, reason }
        )),
    ];
    // One level of lattice nesting exercises the recursive codec; an
    // optional backoff hint exercises the v2 retry-after field.
    (leaf, proptest::option::of(text(16)), text(24), proptest::option::of(1u32..60_000)).prop_map(
        |(cause, pdn, point, retry)| {
            let err = ServeError::from_pdn(&PdnError::Lattice {
                pdn,
                point,
                source: Box::new(cause.into_pdn()),
            });
            match retry {
                Some(ms) => err.with_retry_after(ms),
                None => err,
            }
        },
    )
}

fn response_body() -> impl Strategy<Value = ResponseBody> {
    prop_oneof![
        Just(ResponseBody::Pong),
        Just(ResponseBody::ShuttingDown),
        evaluation().prop_map(ResponseBody::Eval),
        proptest::option::of(0.01f64..1.0).prop_map(ResponseBody::Sample),
        (pdn_id(), workload(), vec(1.0f64..100.0, 1..4), vec(0.01f64..1.0, 1..4)).prop_map(
            |(pdn, wl, tdps, ars)| {
                let values = vec![0.5; tdps.len() * ars.len()];
                ResponseBody::Sweep(vec![EteeSurface {
                    pdn: pdn.to_string(),
                    workload_type: wl,
                    tdps,
                    ars,
                    values,
                }])
            }
        ),
        prop_oneof![
            Just(Crossover::AlwaysFirst),
            Just(Crossover::AlwaysSecond),
            (1.0f64..60.0).prop_map(|t| Crossover::At(Watts::new(t))),
        ]
        .prop_map(ResponseBody::Crossover),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(hits, misses, evictions, requests)| {
                ResponseBody::Stats {
                    tenant: TenantStats {
                        hits,
                        misses,
                        evictions,
                        bypasses: 0,
                        entries: hits.min(misses),
                        capacity: 1 << 14,
                    },
                    server: ServerStats {
                        requests,
                        coalesced: misses / 2,
                        tenants: 3,
                        ..ServerStats::default()
                    },
                }
            }
        ),
        (any::<u64>(), any::<u64>())
            .prop_map(|(bytes, entries)| ResponseBody::SnapshotDone { bytes, entries }),
        serve_error().prop_map(ResponseBody::Error),
    ]
}

fn assert_eval_bits(a: &PdnEvaluation, b: &PdnEvaluation) {
    assert_eq!(a.nominal_power.get().to_bits(), b.nominal_power.get().to_bits());
    assert_eq!(a.input_power.get().to_bits(), b.input_power.get().to_bits());
    assert_eq!(a.etee.get().to_bits(), b.etee.get().to_bits());
    assert_eq!(a.chip_input_current.get().to_bits(), b.chip_input_current.get().to_bits());
    assert_eq!(a.rails.len(), b.rails.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every request round-trips exactly through its frame body.
    #[test]
    fn request_round_trips(tenant in any::<u32>(), id in any::<u64>(), deadline_ms in any::<u32>(), body in request_body()) {
        let request = Request { tenant, id, deadline_ms, body };
        let bytes = encode_request(&request);
        let decoded = decode_request(&bytes).expect("well-formed request decodes");
        prop_assert_eq!(decoded, request);
    }

    /// Every response round-trips exactly — floating-point fields
    /// bit-for-bit.
    #[test]
    fn response_round_trips(id in any::<u64>(), body in response_body()) {
        let response = Response { id, body };
        let bytes = encode_response(&response);
        let decoded = decode_response(&bytes).expect("well-formed response decodes");
        if let (ResponseBody::Eval(a), ResponseBody::Eval(b)) = (&response.body, &decoded.body) {
            assert_eval_bits(a, b);
        }
        prop_assert_eq!(decoded, response);
    }

    /// Arbitrary bytes never panic either body decoder.
    #[test]
    fn arbitrary_bodies_never_panic(data in vec(any::<u8>(), 0..512)) {
        let _ = decode_request(&data);
        let _ = decode_response(&data);
    }

    /// Arbitrary bytes never panic the frame decoder.
    #[test]
    fn arbitrary_frames_never_panic(data in vec(any::<u8>(), 0..512)) {
        let _ = wire::decode_frame(&data);
    }

    /// Every truncation of a well-formed frame is rejected, never
    /// panics, and never yields a different body.
    #[test]
    fn truncated_frames_are_rejected(body in request_body(), cut_seed in any::<usize>()) {
        let request = Request { tenant: 1, id: 2, deadline_ms: 0, body };
        let frame = wire::encode_frame(&encode_request(&request));
        let cut = cut_seed % frame.len();
        prop_assert_eq!(wire::decode_frame(&frame[..cut]).unwrap_err(), FrameError::Truncated);
    }

    /// Flipping any single bit of a framed request is detected by the
    /// CRC (or the magic/length checks) — a flipped frame never decodes
    /// into a *different* valid request.
    #[test]
    fn bit_flips_never_smuggle_a_frame(body in request_body(), flip_seed in any::<usize>()) {
        let request = Request { tenant: 9, id: 77, deadline_ms: 40, body };
        let mut frame = wire::encode_frame(&encode_request(&request));
        let bit = flip_seed % (frame.len() * 8);
        frame[bit / 8] ^= 1 << (bit % 8);
        match wire::decode_frame(&frame) {
            Err(_) => {}
            Ok((decoded_body, _)) => {
                // A flip inside the length prefix can only shrink the
                // frame to a prefix that still checksums; the decoded
                // request must then fail or equal the original.
                if let Ok(decoded) = decode_request(decoded_body) {
                    prop_assert_eq!(decoded, request);
                }
            }
        }
    }

    /// An oversized length prefix is rejected before any allocation.
    #[test]
    fn oversized_length_prefixes_are_rejected(body in request_body()) {
        let request = Request { tenant: 0, id: 0, deadline_ms: 0, body };
        let mut frame = wire::encode_frame(&encode_request(&request));
        frame[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        prop_assert_eq!(wire::decode_frame(&frame).unwrap_err(), FrameError::Oversized(u32::MAX as usize));
    }

    /// `ServeError → PdnError → ServeError` is the identity, and the
    /// rebuilt library error preserves code and rendered message.
    #[test]
    fn serve_error_conversion_is_lossless(err in serve_error()) {
        let lib = err.clone().into_pdn();
        // The library error has no transport concept of backoff, so the
        // round trip preserves everything except the retry hint.
        let mut expect = err.clone();
        expect.retry_after_ms = None;
        prop_assert_eq!(ServeError::from_pdn(&lib), expect);
        prop_assert_eq!(lib.code(), err.code);
        prop_assert_eq!(lib.to_string(), err.message);
    }
}
