//! Served-vs-library bit-identity, per request type, plus a TCP
//! loopback smoke test: every value the daemon returns must carry
//! exactly the bits the library computes for the same inputs — across
//! the handler, the admission/coalescing path, the wire codec, and a
//! snapshot/restore cycle.

use flexwatts::FlexWattsAuto;
use pdn_serve::engine::{ServeEngine, SERVE_ARS, SERVE_TDPS};
use pdn_serve::protocol::{PdnId, PointSpec, Request, RequestBody, Response, ResponseBody};
use pdn_serve::server::{spawn_tcp, Client};
use pdn_serve::{snapshot, wire};
use pdn_units::ApplicationRatio;
use pdn_workload::WorkloadType;
use pdnspot::sweep::{self, EteeSurface};
use pdnspot::{
    ClientSoc, EngineConfig, ErrorCode, IPlusMbvrPdn, IvrPdn, LdoPdn, MbvrPdn, ModelParams, Pdn,
    PdnEvaluation, SweepGrid, Workers,
};
use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

fn config() -> EngineConfig {
    EngineConfig::builder()
        .workers(Workers::Serial)
        .memo_capacity(1 << 12)
        .build()
        .expect("valid config")
}

/// Library-side topologies built independently of the engine, from the
/// same paper-default parameters.
fn library_pdns() -> Vec<Box<dyn Pdn>> {
    let params = ModelParams::paper_defaults();
    vec![
        Box::new(IvrPdn::new(params.clone())),
        Box::new(MbvrPdn::new(params.clone())),
        Box::new(LdoPdn::new(params.clone())),
        Box::new(IPlusMbvrPdn::new(params.clone())),
        Box::new(FlexWattsAuto::new(params)),
    ]
}

fn assert_eval_bits(served: &PdnEvaluation, direct: &PdnEvaluation, what: &str) {
    let pairs = [
        ("nominal_power", served.nominal_power.get(), direct.nominal_power.get()),
        ("input_power", served.input_power.get(), direct.input_power.get()),
        ("etee", served.etee.get(), direct.etee.get()),
        ("vr_loss", served.breakdown.vr_loss.get(), direct.breakdown.vr_loss.get()),
        (
            "conduction_compute",
            served.breakdown.conduction_compute.get(),
            direct.breakdown.conduction_compute.get(),
        ),
        (
            "conduction_sa_io",
            served.breakdown.conduction_sa_io.get(),
            direct.breakdown.conduction_sa_io.get(),
        ),
        ("other", served.breakdown.other.get(), direct.breakdown.other.get()),
        ("chip_input_current", served.chip_input_current.get(), direct.chip_input_current.get()),
    ];
    for (field, s, d) in pairs {
        assert_eq!(s.to_bits(), d.to_bits(), "{what}: {field} differs from the library");
    }
    assert_eq!(served.rails.len(), direct.rails.len(), "{what}: rail count");
    for (s, d) in served.rails.iter().zip(&direct.rails) {
        assert_eq!(s.name, d.name, "{what}: rail name");
        assert_eq!(s.voltage.get().to_bits(), d.voltage.get().to_bits(), "{what}: rail V");
        assert_eq!(s.current.get().to_bits(), d.current.get().to_bits(), "{what}: rail A");
        assert_eq!(s.input_power.get().to_bits(), d.input_power.get().to_bits(), "{what}: rail W");
        assert_eq!(
            s.efficiency.map(|e| e.get().to_bits()),
            d.efficiency.map(|e| e.get().to_bits()),
            "{what}: rail efficiency"
        );
    }
}

fn assert_surface_bits(served: &EteeSurface, direct: &EteeSurface) {
    assert_eq!(served.pdn, direct.pdn);
    assert_eq!(served.workload_type, direct.workload_type);
    assert_eq!(served.tdps.len(), direct.tdps.len());
    assert_eq!(served.ars.len(), direct.ars.len());
    assert_eq!(served.values.len(), direct.values.len());
    for (s, d) in served.values.iter().zip(&direct.values) {
        assert_eq!(s.to_bits(), d.to_bits(), "surface {} value differs", served.pdn);
    }
}

fn eval_body(response: ResponseBody) -> PdnEvaluation {
    match response {
        ResponseBody::Eval(eval) => eval,
        other => panic!("expected Eval, got {other:?}"),
    }
}

/// Every topology, active and idle: the served evaluation is
/// bit-identical to evaluating the library's own `Pdn` directly.
#[test]
fn served_eval_is_bit_identical_per_topology() {
    let engine = ServeEngine::new(config()).expect("engine boots");
    let library = library_pdns();
    let points = [
        PointSpec::Active { tdp: 15.0, workload: WorkloadType::SingleThread, ar: 0.56 },
        PointSpec::Active { tdp: 45.0, workload: WorkloadType::Graphics, ar: 0.75 },
        PointSpec::Idle { tdp: 15.0, state: pdn_proc::PackageCState::C6 },
    ];
    for (idx, id) in PdnId::ALL.into_iter().enumerate() {
        for point in &points {
            let served = eval_body(engine.handle(1, &RequestBody::Eval { pdn: id, point: *point }));
            let scenario = ServeEngine::scenario_for(point).expect("scenario");
            let direct = library[idx].evaluate(&scenario).expect("library evaluates");
            assert_eval_bits(&served, &direct, &format!("{id} @ {point:?}"));
        }
    }
}

/// A served Sample answers from the same surface the library tabulates
/// over the daemon's resident grid, bit-for-bit (including bilinear
/// interpolation off the lattice).
#[test]
fn served_sample_is_bit_identical_to_library_surface() {
    let engine = ServeEngine::new(config()).expect("engine boots");
    let library = library_pdns();
    let refs: Vec<&dyn Pdn> = library.iter().map(Box::as_ref).collect();
    let grid = SweepGrid::active(&SERVE_TDPS, &WorkloadType::ACTIVE_TYPES, &SERVE_ARS)
        .expect("resident grid");
    let cfg = config();
    let (surfaces, _) = sweep::surfaces(&refs, &grid, &ClientSoc, &cfg, None).expect("tabulates");

    // One on-lattice and one off-lattice query per topology.
    for id in PdnId::ALL {
        let name = engine.pdn(id).kind().to_string();
        let direct = surfaces
            .iter()
            .find(|s| s.pdn == name && s.workload_type == WorkloadType::MultiThread)
            .expect("library surface exists");
        for (tdp, ar) in [(15.0, 0.56), (23.5, 0.61)] {
            let served = engine.handle(
                2,
                &RequestBody::Sample { pdn: id, workload: WorkloadType::MultiThread, tdp, ar },
            );
            let served = match served {
                ResponseBody::Sample(v) => v,
                other => panic!("expected Sample, got {other:?}"),
            };
            assert_eq!(
                served.map(f64::to_bits),
                direct.sample(tdp, ar).map(f64::to_bits),
                "{name} sample({tdp}, {ar})"
            );
        }
    }
}

/// A served Sweep returns surfaces bit-identical to the library's
/// `sweep::surfaces` over the same custom grid.
#[test]
fn served_sweep_is_bit_identical_to_library_sweep() {
    let engine = ServeEngine::new(config()).expect("engine boots");
    let library = library_pdns();
    let tdps = [9.0, 20.0, 33.0];
    let workloads = [WorkloadType::SingleThread, WorkloadType::MultiThread];
    let ars = [0.45, 0.62, 0.78];

    let served = engine.handle(
        3,
        &RequestBody::Sweep {
            pdns: vec![PdnId::Ivr, PdnId::Ldo, PdnId::FlexWatts],
            tdps: tdps.to_vec(),
            workloads: workloads.to_vec(),
            ars: ars.to_vec(),
        },
    );
    let served = match served {
        ResponseBody::Sweep(surfaces) => surfaces,
        other => panic!("expected Sweep, got {other:?}"),
    };

    let refs = [library[0].as_ref(), library[2].as_ref(), library[4].as_ref()];
    let grid = SweepGrid::active(&tdps, &workloads, &ars).expect("grid");
    let cfg = config();
    let (direct, _) = sweep::surfaces(&refs, &grid, &ClientSoc, &cfg, None).expect("library sweep");

    assert_eq!(served.len(), direct.len(), "surface count");
    for (s, d) in served.iter().zip(&direct) {
        assert_surface_bits(s, d);
    }
}

/// A served Crossover returns exactly the library's verdict, including
/// the bisected wattage bits.
#[test]
fn served_crossover_is_bit_identical_to_library_crossover() {
    let engine = ServeEngine::new(config()).expect("engine boots");
    let library = library_pdns();
    let ar = ApplicationRatio::new(0.56).expect("valid ar");
    let cfg = config();

    let served = engine.handle(
        4,
        &RequestBody::Crossover {
            a: PdnId::Ivr,
            b: PdnId::Ldo,
            workload: WorkloadType::MultiThread,
            ar: 0.56,
            range: (4.0, 58.0),
        },
    );
    let served = match served {
        ResponseBody::Crossover(v) => v,
        other => panic!("expected Crossover, got {other:?}"),
    };
    let direct = sweep::crossover(
        library[0].as_ref(),
        library[2].as_ref(),
        WorkloadType::MultiThread,
        ar,
        (4.0, 58.0),
        &ClientSoc,
        &cfg,
        None,
    )
    .expect("library crossover");

    match (&served, &direct) {
        (sweep::Crossover::At(s), sweep::Crossover::At(d)) => {
            assert_eq!(s.get().to_bits(), d.get().to_bits(), "crossover TDP bits");
        }
        _ => assert_eq!(served, direct),
    }
}

/// End-to-end over TCP: a fleet of pipelined clients receives
/// bit-identical evaluations through the admission queue and wire
/// codec; snapshot + shutdown over the wire; a warm restart from the
/// snapshot file serves replayed points from cache (hit rate > 0).
#[test]
fn tcp_loopback_round_trip_snapshot_and_warm_restart() {
    let snap_path: PathBuf =
        std::env::temp_dir().join(format!("pdn-serve-test-{}.snapshot", std::process::id()));
    let _ = std::fs::remove_file(&snap_path);

    let engine =
        Arc::new(ServeEngine::new(config()).expect("engine boots").with_snapshot_path(&snap_path));
    let handle = spawn_tcp(Arc::clone(&engine), "127.0.0.1:0").expect("binds loopback");
    let addr = handle.addr;

    let points: Vec<(PdnId, PointSpec)> = PdnId::ALL
        .into_iter()
        .flat_map(|id| {
            [
                (
                    id,
                    PointSpec::Active { tdp: 15.0, workload: WorkloadType::MultiThread, ar: 0.56 },
                ),
                (id, PointSpec::Active { tdp: 28.0, workload: WorkloadType::Graphics, ar: 0.65 }),
            ]
        })
        .collect();

    // Fleet: four tenants, each pipelining every point on one connection.
    std::thread::scope(|s| {
        for tenant in 0..4u32 {
            let points = &points;
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connects");
                for (i, (pdn, point)) in points.iter().enumerate() {
                    client
                        .send(&Request {
                            tenant,
                            id: u64::from(tenant) << 32 | i as u64,
                            deadline_ms: 0,
                            body: RequestBody::Eval { pdn: *pdn, point: *point },
                        })
                        .expect("sends");
                }
                // Responses may arrive out of order; match by id.
                let mut got: HashMap<u64, PdnEvaluation> = HashMap::new();
                for _ in 0..points.len() {
                    let Response { id, body } = client.recv().expect("receives");
                    got.insert(id, eval_body(body));
                }
                let library = library_pdns();
                for (i, (pdn, point)) in points.iter().enumerate() {
                    let served = &got[&(u64::from(tenant) << 32 | i as u64)];
                    let scenario = ServeEngine::scenario_for(point).expect("scenario");
                    let direct =
                        library[pdn.index()].evaluate(&scenario).expect("library evaluates");
                    assert_eval_bits(served, &direct, &format!("tcp {pdn} @ {point:?}"));
                }
            });
        }
    });

    // A malformed body yields a typed protocol error, not a hangup panic.
    {
        let mut raw = TcpStream::connect(addr).expect("connects raw");
        // Valid version prefix, garbage after: a malformed request, not
        // a version mismatch.
        let mut garbage = pdn_serve::protocol::PROTOCOL_VERSION.to_le_bytes().to_vec();
        garbage.extend_from_slice(b"not a request");
        raw.write_all(&wire::encode_frame(&garbage)).expect("writes garbage");
        let body = wire::read_frame(&mut raw).expect("frame ok").expect("response arrives");
        let response = pdn_serve::protocol::decode_response(&body).expect("decodes");
        match response.body {
            ResponseBody::Error(e) => assert_eq!(e.code, ErrorCode::Protocol),
            other => panic!("expected Error, got {other:?}"),
        }
    }

    // Control client: stats, snapshot to disk, then graceful shutdown.
    let mut control = Client::connect(addr).expect("control connects");
    let stats = control
        .call(&Request { tenant: 0, id: 900, deadline_ms: 0, body: RequestBody::Stats })
        .expect("stats round trip");
    match stats.body {
        ResponseBody::Stats { tenant, server } => {
            assert!(tenant.misses > 0, "tenant 0 evaluated cold points");
            assert!(server.requests > 0, "server counted admitted requests");
        }
        other => panic!("expected Stats, got {other:?}"),
    }
    let snap = control
        .call(&Request { tenant: 0, id: 901, deadline_ms: 0, body: RequestBody::Snapshot })
        .expect("snapshot round trip");
    match snap.body {
        ResponseBody::SnapshotDone { bytes, entries } => {
            assert!(bytes > 0, "snapshot file written");
            assert!(entries > 0, "snapshot captured warm memo entries");
        }
        other => panic!("expected SnapshotDone, got {other:?}"),
    }
    let bye = control
        .call(&Request { tenant: 0, id: 902, deadline_ms: 0, body: RequestBody::Shutdown })
        .expect("shutdown round trip");
    assert!(matches!(bye.body, ResponseBody::ShuttingDown));
    handle.join();

    // Warm restart: the same points, replayed in-process, hit the
    // restored caches without re-evaluating.
    let snap = snapshot::read_file(&snap_path).expect("snapshot reads back");
    let warm = ServeEngine::from_snapshot(config(), &snap).expect("warm boot");
    for (pdn, point) in &points {
        let _ = eval_body(warm.handle(0, &RequestBody::Eval { pdn: *pdn, point: *point }));
    }
    let stats = warm.tenant(0).cache.stats();
    assert!(stats.hits > 0, "warm restart answers from the restored cache");
    assert_eq!(stats.misses, 0, "every replayed point was captured by the snapshot");
    let _ = std::fs::remove_file(&snap_path);
}
