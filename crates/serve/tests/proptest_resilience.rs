//! Property tests for the resilience layer.
//!
//! Two surfaces that must never misbehave no matter the input:
//!
//! * **snapshot restore** — arbitrary corruption (bit flips anywhere,
//!   truncation to any length) must produce a typed error, never a
//!   panic and never a silently-wrong snapshot; `restore_latest` must
//!   fall back across rotated generations and report a cold start when
//!   nothing intact remains;
//! * **admission** — under any randomized interleaving of submissions
//!   and drains, the queue never exceeds its depth, never lets one
//!   tenant exceed its per-generation budget, and every submission is
//!   either queued (drained exactly once) or rejected with a
//!   classified [`Rejection`].

use pdn_serve::admission::{AdmissionQueue, Job, Rejection, ReplyHandle};
use pdn_serve::protocol::{Request, RequestBody};
use pdn_serve::snapshot::{self, Snapshot};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::mpsc::sync_channel;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Snapshot corruption
// ---------------------------------------------------------------------------

fn snapshot() -> impl Strategy<Value = Snapshot> {
    (vec(any::<u8>(), 1..48), vec(any::<u8>(), 1..48)).prop_map(|(ivr, ldo)| Snapshot {
        ivr_firmware: ivr,
        ldo_firmware: ldo,
        tenants: Vec::new(),
    })
}

fn temp_path(tag: &str, salt: u64) -> PathBuf {
    std::env::temp_dir()
        .join(format!("pdn-serve-proptest-{tag}-{}-{salt:x}.snapshot", std::process::id()))
}

fn cleanup(path: &std::path::Path, keep: usize) {
    for generation in 0..keep {
        let _ = std::fs::remove_file(snapshot::generation_path(path, generation));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A flipped bit anywhere in the file is always detected: decode
    /// returns a typed error (the trailer CRC covers every byte) and
    /// never panics.
    #[test]
    fn bit_flips_never_decode(
        snap in snapshot(),
        at in any::<u64>(),
        mask in 1u32..256,
    ) {
        let mut bytes = snapshot::encode(&snap);
        let at = (at as usize) % bytes.len();
        bytes[at] ^= mask as u8;
        prop_assert!(snapshot::decode(&bytes).is_err(), "corrupt byte {at} decoded");
    }

    /// A truncated file is always detected, down to the empty file.
    #[test]
    fn truncations_never_decode(snap in snapshot(), cut in any::<u64>()) {
        let bytes = snapshot::encode(&snap);
        let cut = (cut as usize) % bytes.len();
        prop_assert!(snapshot::decode(&bytes[..cut]).is_err(), "truncation to {cut} decoded");
    }

    /// `restore_latest` over rotated generations: whichever single
    /// generation is left intact is the one restored (with one defect
    /// recorded per corrupted newer generation); corrupting all of
    /// them is a clean cold start, never a panic.
    #[test]
    fn restore_walks_generations_and_cold_starts(
        snap in snapshot(),
        intact in 0u64..3,
        seed in any::<u64>(),
    ) {
        let keep = 3;
        let intact = intact as usize;
        let path = temp_path("walk", seed);
        // Write three generations (oldest first semantics come from
        // rotation: after three writes, gen 0 is the newest).
        for _ in 0..keep {
            snapshot::write_file_rotated(&path, &snap, keep).expect("write rotated");
        }
        // Corrupt every generation except `intact`.
        for generation in 0..keep {
            if generation == intact {
                continue;
            }
            let gen_path = snapshot::generation_path(&path, generation);
            let mut bytes = std::fs::read(&gen_path).expect("read generation");
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x01;
            std::fs::write(&gen_path, &bytes).expect("rewrite generation");
        }
        let (restored, defects) = snapshot::restore_latest(&path, keep);
        prop_assert!(restored.is_some(), "intact generation {intact} not restored");
        prop_assert_eq!(defects.len(), intact, "one defect per corrupted newer generation");
        prop_assert_eq!(restored.unwrap().ivr_firmware, snap.ivr_firmware.clone());

        // Now corrupt the intact one too: cold start.
        let gen_path = snapshot::generation_path(&path, intact);
        let mut bytes = std::fs::read(&gen_path).expect("read generation");
        bytes.truncate(bytes.len() / 2);
        std::fs::write(&gen_path, &bytes).expect("rewrite generation");
        let (cold, cold_defects) = snapshot::restore_latest(&path, keep);
        prop_assert!(cold.is_none(), "total corruption must cold start");
        prop_assert_eq!(cold_defects.len(), keep, "every generation reported defective");
        cleanup(&path, keep);
    }
}

// ---------------------------------------------------------------------------
// Admission interleavings
// ---------------------------------------------------------------------------

/// One step of a randomized schedule.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Submit a ping for the tenant.
    Submit(u32),
    /// Drain everything queued (resets tenant budgets).
    Drain,
    /// Close the queue (everything after is rejected `Closed`).
    Close,
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    vec(
        prop_oneof![
            (0u32..5).prop_map(Step::Submit),
            Just(Step::Drain),
            // Rare: most schedules never close.
            (0u32..10).prop_map(|r| if r == 0 { Step::Close } else { Step::Drain }),
        ],
        1..120,
    )
}

fn ping_job(tenant: u32, id: u64) -> Job {
    // The receiver is dropped: these schedules never deliver, they
    // only exercise admission and draining.
    let (tx, _rx) = sync_channel(1);
    let reply = ReplyHandle::new(tx, Arc::new(AtomicBool::new(false)));
    Job::new(Request { tenant, id, deadline_ms: 0, body: RequestBody::Ping }, reply)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Under any interleaving of submissions, drains, and a close:
    /// depth and per-generation tenant budgets are enforced, every
    /// submission is queued or rejected with the right classification,
    /// and drained ids are exactly the queued ids, each exactly once.
    #[test]
    fn admission_schedule_invariants(schedule in steps(), depth in 1usize..12, quota in 0usize..8) {
        let queue = AdmissionQueue::new(depth, quota);
        let effective_quota = if quota == 0 { depth } else { quota.min(depth) };
        let mut queued: Vec<u64> = Vec::new(); // ids admitted, not yet drained
        let mut drained: Vec<u64> = Vec::new();
        let mut held: HashMap<u32, usize> = HashMap::new(); // model budgets
        let mut closed = false;
        let mut next_id = 0u64;

        for step in schedule {
            match step {
                Step::Submit(tenant) => {
                    let id = next_id;
                    next_id += 1;
                    match queue.submit(ping_job(tenant, id)) {
                        Ok(()) => {
                            prop_assert!(!closed, "closed queue admitted a job");
                            queued.push(id);
                            *held.entry(tenant).or_insert(0) += 1;
                            prop_assert!(queued.len() <= depth, "queue exceeded depth");
                            prop_assert!(
                                held[&tenant] <= effective_quota,
                                "tenant {tenant} exceeded budget {effective_quota}"
                            );
                        }
                        Err((job, why)) => {
                            prop_assert_eq!(job.request.id, id, "rejection returns the job");
                            match why {
                                Rejection::Closed => prop_assert!(closed, "spurious Closed"),
                                Rejection::Overloaded { depth: d } => {
                                    prop_assert_eq!(d, depth);
                                    prop_assert_eq!(queued.len(), depth, "early Overloaded");
                                }
                                Rejection::TenantBudget { quota: q } => {
                                    prop_assert_eq!(q, effective_quota);
                                    prop_assert_eq!(
                                        held.get(&tenant).copied().unwrap_or(0),
                                        effective_quota,
                                        "early TenantBudget"
                                    );
                                }
                            }
                        }
                    }
                }
                Step::Drain => {
                    if queued.is_empty() {
                        // drain() would block on an empty open queue.
                        continue;
                    }
                    let batch = queue.drain().expect("open queue with jobs drains");
                    let ids: Vec<u64> = batch.iter().map(|j| j.request.id).collect();
                    prop_assert_eq!(&ids, &queued, "drain returns queued jobs in order");
                    drained.extend(ids);
                    queued.clear();
                    held.clear(); // budgets reset each generation
                }
                Step::Close => {
                    queue.close();
                    closed = true;
                }
            }
        }

        // Whatever is still queued drains exactly once, even closed.
        if !queued.is_empty() {
            let batch = queue.drain().expect("jobs remain");
            let ids: Vec<u64> = batch.iter().map(|j| j.request.id).collect();
            prop_assert_eq!(&ids, &queued, "final drain returns the remainder");
            drained.extend(ids);
        }
        // Exactly-once: drained ids are unique and account for every
        // admitted id.
        let mut unique = drained.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(unique.len(), drained.len(), "a job drained twice");
        if closed {
            // A closed, drained queue reports exactly that.
            let rejected_closed =
                matches!(queue.submit(ping_job(0, u64::MAX)), Err((_, Rejection::Closed)));
            prop_assert!(rejected_closed, "closed queue did not reject with Closed");
        }
    }
}
