//! The daemon's outer frame codec and byte-level primitives.
//!
//! Every message — request or response, TCP or stdio — travels inside
//! one frame:
//!
//! ```text
//! magic  u32 LE   "PDNS"
//! length u32 LE   body byte count (bounded by MAX_BODY)
//! body   [u8]     protocol payload (see `protocol`)
//! crc32  u32 LE   CRC-32 (IEEE) of the body
//! ```
//!
//! The codec mirrors the PMU firmware-image contract
//! (`pdn_pmu::firmware`): decoding arbitrary bytes **never panics** —
//! truncated, oversized, or bit-flipped input surfaces a typed
//! [`FrameError`] instead. The same CRC-32 polynomial is used so both
//! wire formats share one checksum idiom.

use std::fmt;
use std::io::{self, Read, Write};

/// Frame magic: the ASCII bytes `PDNS` read as a little-endian `u32`.
pub const MAGIC: u32 = u32::from_le_bytes(*b"PDNS");

/// Hard upper bound on one frame's body, protecting the daemon from a
/// hostile or corrupted length prefix. Large sweep responses fit with
/// room to spare.
pub const MAX_BODY: usize = 4 << 20;

/// Bytes of framing overhead around a body (magic + length + CRC).
pub const OVERHEAD: usize = 12;

/// CRC-32 (IEEE 802.3, reflected) — the same algorithm the PMU
/// firmware images use, kept here so the wire crate has no dependency
/// on firmware internals.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Why a frame could not be read or decoded.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than the header or the declared body length.
    Truncated,
    /// The first four bytes are not [`MAGIC`].
    BadMagic(u32),
    /// The declared body length exceeds [`MAX_BODY`].
    Oversized(usize),
    /// The body failed its CRC-32 check.
    ChecksumMismatch {
        /// CRC carried by the frame trailer.
        expected: u32,
        /// CRC computed over the received body.
        found: u32,
    },
    /// An I/O error from the underlying transport.
    Io(io::ErrorKind),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            FrameError::Oversized(len) => {
                write!(f, "frame body of {len} bytes exceeds the {MAX_BODY}-byte bound")
            }
            FrameError::ChecksumMismatch { expected, found } => {
                write!(f, "frame checksum mismatch: header {expected:#010x}, body {found:#010x}")
            }
            FrameError::Io(kind) => write!(f, "frame transport error: {kind}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e.kind())
    }
}

/// Wraps `body` in a complete frame.
#[must_use]
pub fn encode_frame(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + OVERHEAD);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&(u32::try_from(body.len()).unwrap_or(u32::MAX)).to_le_bytes());
    out.extend_from_slice(body);
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out
}

/// Decodes one frame from the front of `buf`, returning the body slice
/// and the total bytes consumed. Never panics on malformed input.
///
/// # Errors
///
/// Returns a [`FrameError`] describing the first defect found.
pub fn decode_frame(buf: &[u8]) -> Result<(&[u8], usize), FrameError> {
    if buf.len() < 8 {
        return Err(FrameError::Truncated);
    }
    let magic = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let len = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]) as usize;
    if len > MAX_BODY {
        return Err(FrameError::Oversized(len));
    }
    let total = OVERHEAD + len;
    if buf.len() < total {
        return Err(FrameError::Truncated);
    }
    let body = &buf[8..8 + len];
    let expected = u32::from_le_bytes([buf[8 + len], buf[9 + len], buf[10 + len], buf[11 + len]]);
    let found = crc32(body);
    if expected != found {
        return Err(FrameError::ChecksumMismatch { expected, found });
    }
    Ok((body, total))
}

/// Reads one frame from a stream. Returns `Ok(None)` on a clean EOF at
/// a frame boundary (the peer closed between messages).
///
/// # Errors
///
/// Returns a [`FrameError`] on transport errors or malformed frames.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; 8];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as usize;
    if len > MAX_BODY {
        return Err(FrameError::Oversized(len));
    }
    let mut rest = vec![0u8; len + 4];
    r.read_exact(&mut rest).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::from(e)
        }
    })?;
    let body = &rest[..len];
    let expected = u32::from_le_bytes([rest[len], rest[len + 1], rest[len + 2], rest[len + 3]]);
    let found = crc32(body);
    if expected != found {
        return Err(FrameError::ChecksumMismatch { expected, found });
    }
    Ok(Some(rest[..len].to_vec()))
}

/// Writes `body` as one complete frame and flushes.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> Result<(), FrameError> {
    w.write_all(&encode_frame(body))?;
    w.flush()?;
    Ok(())
}

/// Why a frame body could not be decoded into a protocol message.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The body ended before the field being read.
    Truncated,
    /// An enum discriminant outside the protocol's range.
    BadTag {
        /// Which field carried the tag.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A length prefix exceeding the protocol's per-field bound.
    BadLength {
        /// Which field carried the length.
        what: &'static str,
        /// The offending length.
        len: usize,
    },
    /// A string field holding invalid UTF-8.
    Utf8,
    /// A value outside its domain (e.g. an efficiency beyond (0, 1]).
    Invalid(&'static str),
    /// Bytes left over after the message was fully decoded.
    Trailing(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "message truncated"),
            DecodeError::BadTag { what, tag } => write!(f, "bad {what} tag {tag}"),
            DecodeError::BadLength { what, len } => write!(f, "{what} length {len} out of range"),
            DecodeError::Utf8 => write!(f, "invalid UTF-8 in string field"),
            DecodeError::Invalid(what) => write!(f, "invalid {what}"),
            DecodeError::Trailing(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Longest string the protocol accepts (error messages, PDN names).
pub const MAX_STR: usize = 4096;

/// Longest list the protocol accepts (rails, surface values).
pub const MAX_LIST: usize = 8192;

/// Append-only body writer. Infallible: bounds are enforced on decode.
#[derive(Debug, Default)]
pub struct BodyWriter {
    buf: Vec<u8>,
}

impl BodyWriter {
    /// A fresh, empty body.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (exact round-trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(u32::try_from(s.len()).unwrap_or(u32::MAX));
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends length-prefixed raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u32(u32::try_from(b.len()).unwrap_or(u32::MAX));
        self.buf.extend_from_slice(b);
    }
}

/// Bounds-checked body reader. Every accessor fails with a typed
/// [`DecodeError`] instead of panicking.
#[derive(Debug)]
pub struct BodyReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BodyReader<'a> {
    /// Wraps a body slice.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string (bounded by [`MAX_STR`]).
    pub fn str(&mut self, what: &'static str) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        if len > MAX_STR {
            return Err(DecodeError::BadLength { what, len });
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::Utf8)
    }

    /// Reads length-prefixed raw bytes with an explicit bound.
    pub fn bytes(&mut self, what: &'static str, max: usize) -> Result<Vec<u8>, DecodeError> {
        let len = self.u32()? as usize;
        if len > max {
            return Err(DecodeError::BadLength { what, len });
        }
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a list length prefix, bounded by `max`.
    pub fn list_len(&mut self, what: &'static str, max: usize) -> Result<usize, DecodeError> {
        let len = self.u32()? as usize;
        if len > max {
            return Err(DecodeError::BadLength { what, len });
        }
        Ok(len)
    }

    /// Asserts the body was fully consumed.
    pub fn finish(self) -> Result<(), DecodeError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(DecodeError::Trailing(n)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn frame_round_trips() {
        let body = b"hello pdn".to_vec();
        let frame = encode_frame(&body);
        let (decoded, used) = decode_frame(&frame).expect("valid frame");
        assert_eq!(decoded, &body[..]);
        assert_eq!(used, frame.len());
    }

    #[test]
    fn truncated_and_corrupted_frames_are_typed_errors() {
        let frame = encode_frame(b"payload");
        for cut in 0..frame.len() {
            assert_eq!(decode_frame(&frame[..cut]).unwrap_err(), FrameError::Truncated);
        }
        let mut bad_magic = frame.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(decode_frame(&bad_magic), Err(FrameError::BadMagic(_))));
        let mut flipped = frame.clone();
        flipped[9] ^= 0x01;
        assert!(matches!(decode_frame(&flipped), Err(FrameError::ChecksumMismatch { .. })));
        let mut oversized = frame;
        oversized[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_frame(&oversized), Err(FrameError::Oversized(_))));
    }

    #[test]
    fn stream_reader_handles_eof_and_sequential_frames() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode_frame(b"one"));
        stream.extend_from_slice(&encode_frame(b"two"));
        let mut cursor = std::io::Cursor::new(stream);
        assert_eq!(read_frame(&mut cursor).unwrap().as_deref(), Some(&b"one"[..]));
        assert_eq!(read_frame(&mut cursor).unwrap().as_deref(), Some(&b"two"[..]));
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn body_reader_bounds_every_access() {
        let mut w = BodyWriter::new();
        w.u8(7);
        w.f64(1.5);
        w.str("rail");
        let bytes = w.into_bytes();
        let mut r = BodyReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.f64().unwrap().to_bits(), 1.5f64.to_bits());
        assert_eq!(r.str("name").unwrap(), "rail");
        r.finish().unwrap();

        let mut short = BodyReader::new(&bytes[..3]);
        short.u8().unwrap();
        assert_eq!(short.f64().unwrap_err(), DecodeError::Truncated);
    }
}
