//! Admission control: a bounded request queue plus a dispatcher that
//! coalesces concurrent point queries into batch jobs on the existing
//! work-stealing pool.
//!
//! Connections enqueue decoded requests; a full queue rejects the
//! request immediately with [`ErrorCode::Overloaded`] (retryable by
//! contract) instead of buffering without bound. The dispatcher drains
//! whatever has accumulated, dedupes Eval queries that name the same
//! `(tenant, pdn, point)` bit-for-bit, fans the unique points out via
//! [`pdnspot::batch::par_map`] — the same scheduler the figure sweeps
//! use — and answers every waiter, the duplicates from their twin's
//! result. Non-Eval requests (sweeps, crossovers, stats, snapshots)
//! run inline in the dispatcher; sweeps and crossovers parallelise
//! internally through the same pool.

use crate::engine::ServeEngine;
use crate::protocol::{PdnId, PointSpec, Request, RequestBody, Response, ResponseBody, ServeError};
use pdnspot::batch::par_map;
use pdnspot::ErrorCode;
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};

/// One admitted request waiting for the dispatcher.
#[derive(Debug)]
pub struct Job {
    /// The decoded request (tenant, correlation id, body).
    pub request: Request,
    /// Where the response goes (the connection's writer).
    pub reply: Sender<Response>,
}

#[derive(Debug)]
struct QueueState {
    jobs: VecDeque<Job>,
    open: bool,
}

/// The bounded admission queue shared by all transports.
#[derive(Debug)]
pub struct AdmissionQueue {
    state: Mutex<QueueState>,
    available: Condvar,
    depth: usize,
}

impl AdmissionQueue {
    /// A queue admitting at most `depth` waiting requests.
    #[must_use]
    pub fn new(depth: usize) -> Self {
        Self {
            state: Mutex::new(QueueState { jobs: VecDeque::new(), open: true }),
            available: Condvar::new(),
            depth: depth.max(1),
        }
    }

    /// The configured depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Admits a job, or returns it when the queue is full or closed —
    /// the caller answers with [`ErrorCode::Overloaded`] /
    /// [`ErrorCode::Shutdown`].
    ///
    /// # Errors
    ///
    /// Returns the rejected job.
    #[allow(clippy::result_large_err)] // handing the job back is the contract
    pub fn submit(&self, job: Job) -> Result<(), Job> {
        let mut state = self.state.lock().expect("admission queue lock");
        if !state.open || state.jobs.len() >= self.depth {
            return Err(job);
        }
        state.jobs.push_back(job);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Closes the queue: future submissions are rejected and the
    /// dispatcher exits once drained.
    pub fn close(&self) {
        self.state.lock().expect("admission queue lock").open = false;
        self.available.notify_all();
    }

    /// Blocks until jobs are available, returning everything queued.
    /// `None` means the queue is closed and drained.
    fn drain(&self) -> Option<Vec<Job>> {
        let mut state = self.state.lock().expect("admission queue lock");
        loop {
            if !state.jobs.is_empty() {
                return Some(state.jobs.drain(..).collect());
            }
            if !state.open {
                return None;
            }
            state = self.available.wait(state).expect("admission queue wait");
        }
    }
}

/// The response an over-capacity queue sends back.
#[must_use]
pub fn overloaded_response(id: u64, depth: usize) -> Response {
    Response {
        id,
        body: ResponseBody::Error(ServeError::new(
            ErrorCode::Overloaded,
            format!("admission queue full ({depth} requests waiting); retry"),
        )),
    }
}

/// The response a closed (shutting-down) queue sends back.
#[must_use]
pub fn shutdown_response(id: u64) -> Response {
    Response {
        id,
        body: ResponseBody::Error(ServeError::new(ErrorCode::Shutdown, "daemon is shutting down")),
    }
}

/// The dispatcher loop: drains batches until the queue closes.
pub fn dispatch(engine: &ServeEngine, queue: &AdmissionQueue) {
    while let Some(batch) = queue.drain() {
        run_batch(engine, batch);
    }
}

/// The bit-exact identity of one eval query: tenant, topology wire id,
/// and the [`PointSpec::key`] encoding. Concurrent queries sharing a
/// key are coalesced into one evaluation.
type CoalesceKey = (u32, u8, (u8, u64, u8, u64));

/// Answers one drained batch. Exposed for the loopback tests.
pub fn run_batch(engine: &ServeEngine, batch: Vec<Job>) {
    let mut evals: Vec<(Job, usize)> = Vec::new();
    let mut unique: Vec<(u32, PdnId, PointSpec)> = Vec::new();
    let mut index: HashMap<CoalesceKey, usize> = HashMap::new();
    let mut others: Vec<Job> = Vec::new();

    for job in batch {
        if let RequestBody::Eval { pdn, point } = &job.request.body {
            let key = (job.request.tenant, pdn.to_wire(), point.key());
            let slot = *index.entry(key).or_insert_with(|| {
                unique.push((job.request.tenant, *pdn, *point));
                unique.len() - 1
            });
            evals.push((job, slot));
        } else {
            others.push(job);
        }
    }

    if !unique.is_empty() {
        engine.note_coalesced((evals.len() - unique.len()) as u64);
        let results = par_map(&unique, engine.config().workers(), |_, (tenant, pdn, point)| {
            engine.handle(*tenant, &RequestBody::Eval { pdn: *pdn, point: *point })
        });
        for (job, slot) in evals {
            let response = Response { id: job.request.id, body: results[slot].clone() };
            let _ = job.reply.send(response);
        }
    }

    for job in others {
        let body = engine.handle(job.request.tenant, &job.request.body);
        let _ = job.reply.send(Response { id: job.request.id, body });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn ping_job(id: u64, reply: Sender<Response>) -> Job {
        Job { request: Request { tenant: 0, id, body: RequestBody::Ping }, reply }
    }

    #[test]
    fn queue_rejects_past_depth_and_after_close() {
        let queue = AdmissionQueue::new(2);
        let (tx, _rx) = channel();
        queue.submit(ping_job(1, tx.clone())).expect("first admitted");
        queue.submit(ping_job(2, tx.clone())).expect("second admitted");
        assert!(queue.submit(ping_job(3, tx.clone())).is_err(), "third rejected at depth 2");
        queue.close();
        // Drain what was admitted, then confirm closed behaviour.
        assert_eq!(queue.drain().expect("drains queued jobs").len(), 2);
        assert!(queue.drain().is_none(), "closed and empty");
        assert!(queue.submit(ping_job(4, tx)).is_err(), "closed queue rejects");
    }

    #[test]
    fn overload_response_is_retryable() {
        let resp = overloaded_response(9, 16);
        assert_eq!(resp.id, 9);
        match resp.body {
            ResponseBody::Error(e) => {
                assert_eq!(e.code, ErrorCode::Overloaded);
                assert!(e.code.is_retryable());
            }
            other => panic!("expected error, got {other:?}"),
        }
    }
}
