//! Admission control: a bounded request queue plus a dispatcher that
//! coalesces concurrent point queries into batch jobs on the existing
//! work-stealing pool.
//!
//! Connections enqueue decoded requests; the queue classifies every
//! rejection instead of answering a blanket `Overloaded`:
//!
//! * a full queue rejects with [`ErrorCode::Overloaded`] and a
//!   `RetryAfter` hint;
//! * a tenant over its admission budget rejects with `Overloaded` and
//!   a shorter hint (the rest of the queue may well have room);
//! * a closed (shutting-down) queue rejects with
//!   [`ErrorCode::Shutdown`], which is terminal.
//!
//! The dispatcher drains whatever has accumulated and applies the
//! resilience pipeline to each drained batch:
//!
//! 1. **deadline expiry** — a request whose [`Request::deadline_ms`]
//!    budget lapsed in the queue is answered
//!    [`ErrorCode::DeadlineExceeded`] without evaluation;
//! 2. **age shedding** — under sustained overload, requests older than
//!    [`EngineConfig::shed_age_ms`] are shed (`Overloaded` +
//!    `RetryAfter`) instead of burning pool time on abandoned work;
//! 3. **quarantine** — a request whose bit-exact body already panicked
//!    the engine [`POISON_THRESHOLD`] times is answered
//!    [`ErrorCode::Poisoned`] (terminal) instead of crash-looping;
//! 4. **coalescing with refcounted cancellation** — Evals sharing a
//!    bit-exact `(tenant, pdn, point)` key become one evaluation. The
//!    evaluation runs as long as *any* waiter's deadline is still
//!    live; a timed-out querent never cancels work other waiters
//!    still want. Individually expired waiters get
//!    `DeadlineExceeded` even when the value was computed.
//! 5. **panic isolation** — every evaluation runs under
//!    [`std::panic::catch_unwind`] *inside* the worker closure (a
//!    worker panic would otherwise propagate at thread join), and a
//!    caught panic is answered [`ErrorCode::Internal`] (retryable —
//!    the quarantine bounds the retries).
//!
//! [`EngineConfig::shed_age_ms`]: pdnspot::EngineConfig::shed_age_ms

use crate::engine::{poison_key, ServeEngine, POISON_THRESHOLD};
use crate::protocol::{PdnId, PointSpec, Request, RequestBody, Response, ResponseBody, ServeError};
use pdnspot::batch::par_map;
use pdnspot::ErrorCode;
use std::collections::{HashMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// `RetryAfter` hint when the whole queue is full.
pub const RETRY_AFTER_FULL_MS: u32 = 100;

/// `RetryAfter` hint when only the tenant's budget is exhausted.
pub const RETRY_AFTER_TENANT_MS: u32 = 50;

/// `RetryAfter` hint when a request was shed by queue age.
pub const RETRY_AFTER_SHED_MS: u32 = 25;

/// A non-blocking response path to one connection's writer.
///
/// Delivery never blocks the dispatcher: the underlying channel is
/// bounded, and a full buffer marks the connection evicted instead of
/// waiting for the slow client to drain it.
#[derive(Debug, Clone)]
pub struct ReplyHandle {
    tx: SyncSender<Response>,
    evicted: Arc<AtomicBool>,
}

impl ReplyHandle {
    /// Wraps a bounded sender and its connection's eviction flag.
    #[must_use]
    pub fn new(tx: SyncSender<Response>, evicted: Arc<AtomicBool>) -> Self {
        Self { tx, evicted }
    }

    /// Delivers a response without ever blocking. Returns `false` when
    /// the connection is evicted, its buffer is full (which evicts
    /// it), or its writer is gone.
    pub fn deliver(&self, response: Response) -> bool {
        if self.is_evicted() {
            return false;
        }
        match self.tx.try_send(response) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) => {
                self.evict();
                false
            }
            Err(TrySendError::Disconnected(_)) => false,
        }
    }

    /// Whether the connection has been evicted.
    #[must_use]
    pub fn is_evicted(&self) -> bool {
        self.evicted.load(Ordering::Acquire)
    }

    /// Marks the connection evicted (slow client, write failure).
    pub fn evict(&self) {
        self.evicted.store(true, Ordering::Release);
    }
}

/// One admitted request waiting for the dispatcher.
#[derive(Debug)]
pub struct Job {
    /// The decoded request (tenant, correlation id, deadline, body).
    pub request: Request,
    /// Where the response goes (the connection's writer).
    pub reply: ReplyHandle,
    /// When the request was admitted; deadlines and age shedding are
    /// measured from here.
    pub enqueued: Instant,
}

impl Job {
    /// Wraps a request for admission, stamping the admission instant.
    #[must_use]
    pub fn new(request: Request, reply: ReplyHandle) -> Self {
        Self { request, reply, enqueued: Instant::now() }
    }

    /// The absolute deadline, if the request carries one.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        match self.request.deadline_ms {
            0 => None,
            ms => Some(self.enqueued + Duration::from_millis(u64::from(ms))),
        }
    }

    /// Whether the deadline has lapsed at `now`.
    #[must_use]
    pub fn expired(&self, now: Instant) -> bool {
        self.deadline().is_some_and(|d| now >= d)
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// The whole queue is at depth.
    Overloaded {
        /// The configured queue depth.
        depth: usize,
    },
    /// The submitting tenant is over its admission budget.
    TenantBudget {
        /// The tenant's budget.
        quota: usize,
    },
    /// The queue is closed (daemon shutting down).
    Closed,
}

impl Rejection {
    /// The wire response this rejection is reported as.
    #[must_use]
    pub fn response(self, id: u64) -> Response {
        let body = match self {
            Rejection::Overloaded { depth } => ResponseBody::Error(
                ServeError::new(
                    ErrorCode::Overloaded,
                    format!("admission queue full ({depth} requests waiting); retry"),
                )
                .with_retry_after(RETRY_AFTER_FULL_MS),
            ),
            Rejection::TenantBudget { quota } => ResponseBody::Error(
                ServeError::new(
                    ErrorCode::Overloaded,
                    format!("tenant admission budget exhausted ({quota} requests in queue); retry"),
                )
                .with_retry_after(RETRY_AFTER_TENANT_MS),
            ),
            Rejection::Closed => {
                ResponseBody::Error(ServeError::new(ErrorCode::Shutdown, "daemon is shutting down"))
            }
        };
        Response { id, body }
    }
}

#[derive(Debug)]
struct QueueState {
    jobs: VecDeque<Job>,
    per_tenant: HashMap<u32, usize>,
    open: bool,
}

/// The bounded admission queue shared by all transports.
#[derive(Debug)]
pub struct AdmissionQueue {
    state: Mutex<QueueState>,
    available: Condvar,
    depth: usize,
    tenant_quota: usize,
}

impl AdmissionQueue {
    /// A queue admitting at most `depth` waiting requests, with each
    /// tenant bounded to `tenant_quota` of them (`0` = `depth`, i.e.
    /// unlimited within the queue bound).
    #[must_use]
    pub fn new(depth: usize, tenant_quota: usize) -> Self {
        let depth = depth.max(1);
        Self {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                per_tenant: HashMap::new(),
                open: true,
            }),
            available: Condvar::new(),
            depth,
            tenant_quota: if tenant_quota == 0 { depth } else { tenant_quota.min(depth) },
        }
    }

    /// The configured depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The per-tenant admission budget.
    #[must_use]
    pub fn tenant_quota(&self) -> usize {
        self.tenant_quota
    }

    /// Admits a job, or hands it back with the classified rejection —
    /// the caller answers with [`Rejection::response`].
    ///
    /// # Errors
    ///
    /// Returns the rejected job and why.
    #[allow(clippy::result_large_err)] // handing the job back is the contract
    pub fn submit(&self, job: Job) -> Result<(), (Job, Rejection)> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if !state.open {
            return Err((job, Rejection::Closed));
        }
        if state.jobs.len() >= self.depth {
            return Err((job, Rejection::Overloaded { depth: self.depth }));
        }
        let held = state.per_tenant.entry(job.request.tenant).or_insert(0);
        if *held >= self.tenant_quota {
            return Err((job, Rejection::TenantBudget { quota: self.tenant_quota }));
        }
        *held += 1;
        state.jobs.push_back(job);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Closes the queue: future submissions are rejected and the
    /// dispatcher exits once drained.
    pub fn close(&self) {
        self.state.lock().unwrap_or_else(PoisonError::into_inner).open = false;
        self.available.notify_all();
    }

    /// How many jobs are waiting right now.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().unwrap_or_else(PoisonError::into_inner).jobs.len()
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks until jobs are available, returning everything queued
    /// (and resetting every tenant's budget for the next generation).
    /// `None` means the queue is closed and drained.
    pub fn drain(&self) -> Option<Vec<Job>> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if !state.jobs.is_empty() {
                state.per_tenant.clear();
                return Some(state.jobs.drain(..).collect());
            }
            if !state.open {
                return None;
            }
            state = self.available.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// The response an over-capacity queue sends back (kept for the
/// stdio/test paths; the classified form is [`Rejection::response`]).
#[must_use]
pub fn overloaded_response(id: u64, depth: usize) -> Response {
    Rejection::Overloaded { depth }.response(id)
}

/// The response a closed (shutting-down) queue sends back.
#[must_use]
pub fn shutdown_response(id: u64) -> Response {
    Rejection::Closed.response(id)
}

/// The response a deadline-expired request gets.
#[must_use]
pub fn deadline_response(id: u64) -> Response {
    Response {
        id,
        body: ResponseBody::Error(ServeError::new(
            ErrorCode::DeadlineExceeded,
            "request deadline exceeded before a result was ready",
        )),
    }
}

/// The response a queue-age-shed request gets.
#[must_use]
pub fn shed_response(id: u64, age_ms: u64) -> Response {
    Response {
        id,
        body: ResponseBody::Error(
            ServeError::new(
                ErrorCode::Overloaded,
                format!("shed under load after {age_ms} ms in the admission queue; retry"),
            )
            .with_retry_after(RETRY_AFTER_SHED_MS),
        ),
    }
}

/// The terminal response a quarantined (poison) request gets.
#[must_use]
pub fn poisoned_response(id: u64) -> Response {
    Response {
        id,
        body: ResponseBody::Error(ServeError::new(
            ErrorCode::Poisoned,
            format!(
                "this exact request has crashed evaluation {POISON_THRESHOLD} times and is \
                 quarantined; do not retry"
            ),
        )),
    }
}

/// The retryable response a caught evaluation panic gets.
#[must_use]
pub fn panic_response(id: u64, what: &str) -> Response {
    Response {
        id,
        body: ResponseBody::Error(ServeError::new(
            ErrorCode::Internal,
            format!("evaluation panicked (isolated): {what}"),
        )),
    }
}

/// The dispatcher loop: drains batches until the queue closes.
pub fn dispatch(engine: &ServeEngine, queue: &AdmissionQueue) {
    while let Some(batch) = queue.drain() {
        run_batch(engine, batch);
    }
}

/// The bit-exact identity of one eval query: tenant, topology wire id,
/// and the [`PointSpec::key`] encoding. Concurrent queries sharing a
/// key are coalesced into one evaluation.
type CoalesceKey = (u32, u8, (u8, u64, u8, u64));

/// One coalesced evaluation: the point, its poison-quarantine key, and
/// the latest live deadline across its waiters (`None` = at least one
/// waiter never expires).
struct UniqueEval {
    tenant: u32,
    pdn: PdnId,
    point: PointSpec,
    poison: u64,
    latest_deadline: Option<Instant>,
}

/// What one coalesced evaluation produced.
enum EvalOutcome {
    /// The engine answered (value or typed error).
    Done(ResponseBody),
    /// Every waiter's deadline lapsed before the evaluation started;
    /// the work was cancelled (refcount reached zero).
    AllExpired,
    /// The request body is quarantined.
    Quarantined,
    /// The evaluation panicked; the panic was caught and isolated.
    Panicked(String),
}

/// Renders a caught panic payload.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Answers one drained batch. Exposed for the loopback tests.
pub fn run_batch(engine: &ServeEngine, batch: Vec<Job>) {
    let shed_age_ms = engine.config().shed_age_ms();
    let now = Instant::now();

    let mut evals: Vec<(Job, usize)> = Vec::new();
    let mut unique: Vec<UniqueEval> = Vec::new();
    let mut index: HashMap<CoalesceKey, usize> = HashMap::new();
    let mut others: Vec<Job> = Vec::new();

    for job in batch {
        if job.reply.is_evicted() {
            // The connection is gone; nobody is waiting for this answer.
            continue;
        }
        if job.expired(now) {
            engine.note_deadline_expired();
            job.reply.deliver(deadline_response(job.request.id));
            continue;
        }
        let age = now.duration_since(job.enqueued);
        if shed_age_ms > 0 && age.as_millis() as u64 > shed_age_ms {
            engine.note_shed();
            job.reply.deliver(shed_response(job.request.id, age.as_millis() as u64));
            continue;
        }
        if let RequestBody::Eval { pdn, point } = &job.request.body {
            let key = (job.request.tenant, pdn.to_wire(), point.key());
            let deadline = job.deadline();
            match index.get(&key) {
                Some(&slot) => {
                    // Refcount semantics: the coalesced work lives as
                    // long as its *latest* waiter deadline.
                    let entry = &mut unique[slot];
                    entry.latest_deadline = match (entry.latest_deadline, deadline) {
                        (Some(a), Some(b)) => Some(a.max(b)),
                        _ => None,
                    };
                    evals.push((job, slot));
                }
                None => {
                    unique.push(UniqueEval {
                        tenant: job.request.tenant,
                        pdn: *pdn,
                        point: *point,
                        poison: poison_key(&job.request.body),
                        latest_deadline: deadline,
                    });
                    index.insert(key, unique.len() - 1);
                    evals.push((job, unique.len() - 1));
                }
            }
        } else {
            others.push(job);
        }
    }

    if !unique.is_empty() {
        engine.note_coalesced((evals.len() - unique.len()) as u64);
        let results = par_map(&unique, engine.config().workers(), |_, entry| {
            if engine.is_quarantined(entry.poison) {
                return EvalOutcome::Quarantined;
            }
            // Cancellation check at evaluation start: run only while
            // at least one waiter is still live.
            if entry.latest_deadline.is_some_and(|d| Instant::now() >= d) {
                return EvalOutcome::AllExpired;
            }
            let body = RequestBody::Eval { pdn: entry.pdn, point: entry.point };
            match panic::catch_unwind(AssertUnwindSafe(|| engine.handle(entry.tenant, &body))) {
                Ok(response) => EvalOutcome::Done(response),
                Err(payload) => {
                    engine.note_panic(entry.poison);
                    EvalOutcome::Panicked(panic_text(payload.as_ref()))
                }
            }
        });
        let answered = Instant::now();
        for (job, slot) in evals {
            let id = job.request.id;
            // A waiter whose own deadline lapsed while the batch ran is
            // answered DeadlineExceeded even when the value exists —
            // the contract is "a result within the deadline".
            if job.expired(answered) {
                engine.note_deadline_expired();
                job.reply.deliver(deadline_response(id));
                continue;
            }
            let response = match &results[slot] {
                EvalOutcome::Done(body) => Response { id, body: body.clone() },
                EvalOutcome::AllExpired => {
                    engine.note_deadline_expired();
                    deadline_response(id)
                }
                EvalOutcome::Quarantined => {
                    engine.note_quarantine_hit();
                    poisoned_response(id)
                }
                EvalOutcome::Panicked(what) => panic_response(id, what),
            };
            job.reply.deliver(response);
        }
    }

    for job in others {
        let id = job.request.id;
        let poison = poison_key(&job.request.body);
        if engine.is_quarantined(poison) {
            engine.note_quarantine_hit();
            job.reply.deliver(poisoned_response(id));
            continue;
        }
        let tenant = job.request.tenant;
        let outcome =
            panic::catch_unwind(AssertUnwindSafe(|| engine.handle(tenant, &job.request.body)));
        let response = match outcome {
            Ok(body) => {
                if job.expired(Instant::now()) {
                    engine.note_deadline_expired();
                    deadline_response(id)
                } else {
                    Response { id, body }
                }
            }
            Err(payload) => {
                engine.note_panic(poison);
                panic_response(id, &panic_text(payload.as_ref()))
            }
        };
        job.reply.deliver(response);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;

    fn handle(bound: usize) -> (ReplyHandle, std::sync::mpsc::Receiver<Response>) {
        let (tx, rx) = sync_channel(bound);
        (ReplyHandle::new(tx, Arc::new(AtomicBool::new(false))), rx)
    }

    fn ping_job(tenant: u32, id: u64, reply: ReplyHandle) -> Job {
        Job::new(Request { tenant, id, deadline_ms: 0, body: RequestBody::Ping }, reply)
    }

    #[test]
    fn queue_rejects_past_depth_and_after_close() {
        let queue = AdmissionQueue::new(2, 0);
        let (reply, _rx) = handle(8);
        queue.submit(ping_job(0, 1, reply.clone())).expect("first admitted");
        queue.submit(ping_job(0, 2, reply.clone())).expect("second admitted");
        let (_, why) = queue.submit(ping_job(0, 3, reply.clone())).expect_err("third rejected");
        assert_eq!(why, Rejection::Overloaded { depth: 2 });
        queue.close();
        assert_eq!(queue.drain().expect("drains queued jobs").len(), 2);
        assert!(queue.drain().is_none(), "closed and empty");
        let (_, why) = queue.submit(ping_job(0, 4, reply)).expect_err("closed queue rejects");
        assert_eq!(why, Rejection::Closed);
    }

    #[test]
    fn tenant_budget_rejects_before_the_queue_fills() {
        let queue = AdmissionQueue::new(8, 2);
        let (reply, _rx) = handle(16);
        queue.submit(ping_job(1, 1, reply.clone())).expect("admitted");
        queue.submit(ping_job(1, 2, reply.clone())).expect("admitted");
        let (_, why) =
            queue.submit(ping_job(1, 3, reply.clone())).expect_err("tenant 1 over budget");
        assert_eq!(why, Rejection::TenantBudget { quota: 2 });
        // Another tenant still has room.
        queue.submit(ping_job(2, 4, reply.clone())).expect("tenant 2 admitted");
        // Draining resets the budgets.
        queue.close();
        assert_eq!(queue.drain().expect("drains").len(), 3);
    }

    #[test]
    fn rejections_carry_the_retryability_contract() {
        let overload = Rejection::Overloaded { depth: 16 }.response(9);
        match overload.body {
            ResponseBody::Error(e) => {
                assert_eq!(e.code, ErrorCode::Overloaded);
                assert!(e.code.is_retryable());
                assert_eq!(e.retry_after_ms, Some(RETRY_AFTER_FULL_MS));
            }
            other => panic!("expected error, got {other:?}"),
        }
        let budget = Rejection::TenantBudget { quota: 4 }.response(9);
        match budget.body {
            ResponseBody::Error(e) => {
                assert_eq!(e.code, ErrorCode::Overloaded);
                assert_eq!(e.retry_after_ms, Some(RETRY_AFTER_TENANT_MS));
            }
            other => panic!("expected error, got {other:?}"),
        }
        let closed = Rejection::Closed.response(9);
        match closed.body {
            ResponseBody::Error(e) => {
                assert_eq!(e.code, ErrorCode::Shutdown);
                assert!(!e.code.is_retryable(), "shutdown is terminal");
                assert_eq!(e.retry_after_ms, None);
            }
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn reply_handle_never_blocks_and_evicts_on_overflow() {
        let (tx, _rx) = sync_channel(1);
        let reply = ReplyHandle::new(tx, Arc::new(AtomicBool::new(false)));
        let resp = deadline_response(1);
        assert!(reply.deliver(resp.clone()), "first fits the buffer");
        assert!(!reply.deliver(resp.clone()), "second overflows and evicts");
        assert!(reply.is_evicted());
        assert!(!reply.deliver(resp), "evicted handles drop silently");
    }

    #[test]
    fn deadlines_expire_and_jobs_without_them_never_do() {
        let (reply, _rx) = handle(4);
        let eternal = ping_job(0, 1, reply.clone());
        assert_eq!(eternal.deadline(), None);
        assert!(!eternal.expired(Instant::now() + Duration::from_secs(3600)));
        let bounded =
            Job::new(Request { tenant: 0, id: 2, deadline_ms: 10, body: RequestBody::Ping }, reply);
        assert!(!bounded.expired(bounded.enqueued));
        assert!(bounded.expired(bounded.enqueued + Duration::from_millis(11)));
    }
}
