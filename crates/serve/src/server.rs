//! Transports: the TCP daemon loop, the stdio loop, and the framed
//! client used by tests, the bench harness, and the CLI.
//!
//! Both transports funnel every decoded request through the same
//! [`AdmissionQueue`] and dispatcher, so admission control and
//! coalescing behave identically whether the daemon listens on a
//! socket or on stdin/stdout.

use crate::admission::{self, AdmissionQueue, Job, ReplyHandle};
use crate::engine::ServeEngine;
use crate::protocol::{
    decode_request, decode_response, encode_request, encode_response, Request, Response,
    ResponseBody, ServeError,
};
use crate::wire::{self, DecodeError, FrameError};
use pdnspot::ErrorCode;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// How long the accept loop sleeps between polls of the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Per-connection read timeout, so idle readers notice shutdown.
const READ_POLL: Duration = Duration::from_millis(50);

/// Maps a request-decode failure onto the wire error it is reported as.
#[must_use]
pub fn decode_failure(err: &DecodeError) -> ServeError {
    let code = match err {
        DecodeError::Invalid("protocol version") => ErrorCode::Unsupported,
        _ => ErrorCode::Protocol,
    };
    ServeError::new(code, format!("malformed request: {err}"))
}

/// An incremental frame reader that survives read timeouts without
/// losing partial bytes, and drains back-to-back frames from one read.
#[derive(Debug)]
struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Reads the next frame body. `Ok(None)` means the peer closed (or
    /// shutdown / eviction was requested) at a frame boundary.
    fn next(
        &mut self,
        stream: &mut TcpStream,
        stop: &AtomicBool,
        evicted: &AtomicBool,
    ) -> Result<Option<Vec<u8>>, FrameError> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match wire::decode_frame(&self.buf) {
                Ok((body, used)) => {
                    let body = body.to_vec();
                    self.buf.drain(..used);
                    return Ok(Some(body));
                }
                Err(FrameError::Truncated) => {}
                Err(e) => return Err(e),
            }
            match stream.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() { Ok(None) } else { Err(FrameError::Truncated) }
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if stop.load(Ordering::Acquire) || evicted.load(Ordering::Acquire) {
                        return Ok(None);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }
}

fn connection_loop(
    mut stream: TcpStream,
    engine: &ServeEngine,
    queue: &AdmissionQueue,
    stop: &AtomicBool,
) -> Result<(), FrameError> {
    stream.set_read_timeout(Some(READ_POLL))?;
    let mut writer = stream.try_clone()?;
    writer.set_write_timeout(Some(Duration::from_millis(engine.config().write_timeout_ms())))?;
    // Slow-client defense: the dispatcher delivers through a *bounded*
    // buffer via try_send and never blocks. A client that stalls its
    // socket long enough to fill the buffer (or to trip the write
    // deadline below) is evicted, not waited on.
    let evicted = Arc::new(AtomicBool::new(false));
    let (tx, rx) = sync_channel::<Response>(engine.config().write_buffer());
    let reply = ReplyHandle::new(tx, Arc::clone(&evicted));
    let write_thread: JoinHandle<()> = {
        let evicted = Arc::clone(&evicted);
        thread::spawn(move || {
            while let Ok(resp) = rx.recv() {
                if evicted.load(Ordering::Acquire) {
                    break;
                }
                if wire::write_frame(&mut writer, &encode_response(&resp)).is_err() {
                    // Write failure or lapsed write deadline: evict.
                    evicted.store(true, Ordering::Release);
                    break;
                }
            }
            // Drain anything still buffered so late deliver() calls see
            // a live (if pointless) channel until the reader drops tx.
            while rx.try_recv().is_ok() {}
        })
    };

    let mut frames = FrameBuffer::new();
    let result = loop {
        if reply.is_evicted() {
            engine.note_eviction();
            break Ok(());
        }
        match frames.next(&mut stream, stop, &evicted) {
            Ok(Some(body)) => match decode_request(&body) {
                Ok(request) => {
                    if let Err((job, why)) = queue.submit(Job::new(request, reply.clone())) {
                        job.reply.deliver(why.response(job.request.id));
                    }
                }
                Err(e) => {
                    // The stream may be desynchronised; report and close.
                    reply
                        .deliver(Response { id: 0, body: ResponseBody::Error(decode_failure(&e)) });
                    break Ok(());
                }
            },
            Ok(None) => break Ok(()),
            Err(e) => break Err(e),
        }
    };
    drop(reply);
    let _ = write_thread.join();
    result
}

/// A running TCP daemon.
#[derive(Debug)]
pub struct ServerHandle {
    /// The bound address (useful with port 0).
    pub addr: SocketAddr,
    engine: Arc<ServeEngine>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Flags the daemon to stop accepting and drain.
    pub fn shutdown(&self) {
        self.engine.request_shutdown();
        self.stop.store(true, Ordering::Release);
    }

    /// Blocks until the accept loop and dispatcher exit.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
    }
}

/// Boots the TCP transport: an accept loop, one reader/writer pair per
/// connection, and the shared admission dispatcher.
///
/// # Errors
///
/// Propagates socket-binding failures.
pub fn spawn_tcp(engine: Arc<ServeEngine>, addr: impl ToSocketAddrs) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let depth = engine.config().admission_depth();
    let quota = engine.config().tenant_quota_for(depth);
    let queue = Arc::new(AdmissionQueue::new(depth, quota));
    let stop = Arc::new(AtomicBool::new(false));

    let dispatcher = {
        let engine = Arc::clone(&engine);
        let queue = Arc::clone(&queue);
        thread::spawn(move || admission::dispatch(&engine, &queue))
    };

    let accept = {
        let engine = Arc::clone(&engine);
        let queue = Arc::clone(&queue);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut connections: Vec<JoinHandle<()>> = Vec::new();
            loop {
                if stop.load(Ordering::Acquire) || engine.shutdown_requested() {
                    stop.store(true, Ordering::Release);
                    break;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let engine = Arc::clone(&engine);
                        let queue = Arc::clone(&queue);
                        let stop = Arc::clone(&stop);
                        connections.push(thread::spawn(move || {
                            let _ = connection_loop(stream, &engine, &queue, &stop);
                        }));
                        // Reap finished connections so a storm of
                        // short-lived clients doesn't grow the handle
                        // list without bound.
                        connections.retain(|h| !h.is_finished());
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => break,
                }
            }
            queue.close();
            for handle in connections {
                let _ = handle.join();
            }
        })
    };

    Ok(ServerHandle { addr, engine, stop, accept: Some(accept), dispatcher: Some(dispatcher) })
}

/// Serves the framed protocol over arbitrary reader/writer pairs — the
/// stdio transport (`pdn-serve serve --stdio`). Requests still pass
/// through an admission queue and the coalescing dispatcher.
///
/// # Errors
///
/// Returns the first fatal frame error; a clean EOF returns `Ok`.
pub fn serve_streams(
    engine: &Arc<ServeEngine>,
    input: &mut impl Read,
    output: &mut impl io::Write,
) -> Result<(), FrameError> {
    let depth = engine.config().admission_depth();
    let quota = engine.config().tenant_quota_for(depth);
    let queue = Arc::new(AdmissionQueue::new(depth, quota));
    let dispatcher = {
        let engine = Arc::clone(engine);
        let queue = Arc::clone(&queue);
        thread::spawn(move || admission::dispatch(&engine, &queue))
    };
    let result = (|| {
        while let Some(body) = wire::read_frame(input)? {
            let response = match decode_request(&body) {
                Ok(request) => {
                    let id = request.id;
                    let (tx, rx) = sync_channel::<Response>(1);
                    let reply = ReplyHandle::new(tx, Arc::new(AtomicBool::new(false)));
                    match queue.submit(Job::new(request, reply)) {
                        Ok(()) => rx.recv().unwrap_or_else(|_| admission::shutdown_response(id)),
                        Err((job, why)) => why.response(job.request.id),
                    }
                }
                Err(e) => Response { id: 0, body: ResponseBody::Error(decode_failure(&e)) },
            };
            let shutting_down = matches!(response.body, ResponseBody::ShuttingDown);
            wire::write_frame(output, &encode_response(&response))?;
            if shutting_down {
                break;
            }
        }
        Ok(())
    })();
    queue.close();
    let _ = dispatcher.join();
    result
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport or framing failed.
    Frame(FrameError),
    /// The response body was malformed.
    Decode(DecodeError),
    /// The server closed the connection mid-conversation.
    Closed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "client transport: {e}"),
            ClientError::Decode(e) => write!(f, "client decode: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<DecodeError> for ClientError {
    fn from(e: DecodeError) -> Self {
        ClientError::Decode(e)
    }
}

/// A blocking framed client. Supports pipelining: issue several
/// [`Client::send`]s, then collect with [`Client::recv`], matching
/// responses to requests by correlation id.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Sends one request without waiting.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        wire::write_frame(&mut self.stream, &encode_request(request))?;
        Ok(())
    }

    /// Receives the next response (blocking).
    ///
    /// # Errors
    ///
    /// Propagates transport and decode errors; [`ClientError::Closed`]
    /// if the server hung up.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        match wire::read_frame(&mut self.stream)? {
            Some(body) => Ok(decode_response(&body)?),
            None => Err(ClientError::Closed),
        }
    }

    /// One synchronous round trip.
    ///
    /// # Errors
    ///
    /// Propagates [`Client::send`]/[`Client::recv`] errors.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.send(request)?;
        self.recv()
    }
}
