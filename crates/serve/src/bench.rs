//! The synthetic load generator behind `pdn-serve bench`.
//!
//! Boots an in-process daemon on a loopback socket, then replays
//! thousands of logical querents — each a deterministic stream of
//! zipf-skewed design-point queries — multiplexed over a bounded pool
//! of pipelined connections. Per-request latency is measured from
//! frame send to matched response (correlation id), and the run closes
//! with a snapshot/restore pass that proves a restarted daemon answers
//! from the persisted memo shards. Results land in `BENCH_serve.json`.
//!
//! Everything is seeded: the querent→point assignment, the zipf draws,
//! and the warm-restart replay derive from [`BenchConfig::seed`], so
//! two runs issue the same request stream.

use crate::engine::{ServeEngine, SERVE_ARS, SERVE_TDPS};
use crate::protocol::{PdnId, PointSpec, Request, RequestBody, Response, ResponseBody};
use crate::server::{self, Client};
use crate::snapshot;
use pdn_workload::WorkloadType;
use pdnspot::EngineConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Logical concurrent querents (each an independent request
    /// stream).
    pub clients: usize,
    /// Total requests across all querents.
    pub requests: usize,
    /// TCP connections multiplexing the querents.
    pub connections: usize,
    /// Pipelining window per connection (requests in flight).
    pub window: usize,
    /// Distinct tenants the querents map onto.
    pub tenants: u32,
    /// Design-point universe size the zipf law ranks.
    pub universe: usize,
    /// Zipf exponent (1.0 = classic).
    pub zipf_exponent: f64,
    /// Seed for every random choice in the run.
    pub seed: u64,
    /// Where to write the JSON report (`None` = don't write).
    pub out: Option<PathBuf>,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            clients: 2000,
            requests: 20_000,
            connections: 24,
            window: 32,
            tenants: 8,
            universe: 512,
            zipf_exponent: 1.0,
            seed: 0x7D4A_11CE,
            out: Some(PathBuf::from("BENCH_serve.json")),
        }
    }
}

impl BenchConfig {
    /// A seconds-scale configuration for CI smoke jobs and tests.
    #[must_use]
    pub fn quick() -> Self {
        Self { clients: 200, requests: 2000, connections: 8, ..Self::default() }
    }
}

/// Latency percentiles in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyUs {
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Worst observed.
    pub max: u64,
}

/// What the warm-restart pass observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarmRestart {
    /// Memo hit rate of the replay against the restored daemon.
    pub hit_rate: f64,
    /// Snapshot file size in bytes.
    pub snapshot_bytes: u64,
    /// Memo entries persisted across all tenants.
    pub snapshot_entries: u64,
    /// Requests replayed against the restored engine.
    pub replayed: usize,
}

/// One complete bench run.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// The configuration that produced it.
    pub config: BenchConfig,
    /// Requests answered successfully.
    pub completed: usize,
    /// Requests answered with a protocol error body.
    pub errors: usize,
    /// End-to-end wall time in seconds.
    pub wall_seconds: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Latency percentiles.
    pub latency: LatencyUs,
    /// The snapshot/restore observation.
    pub warm_restart: WarmRestart,
}

impl BenchReport {
    /// Renders the report as the `BENCH_serve.json` document
    /// (hand-rolled: the vendored serde is a no-op stand-in).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"schema\": \"pdn-serve-bench/v1\",\n  \"config\": {{\n    \"clients\": {},\n    \"connections\": {},\n    \"requests\": {},\n    \"window\": {},\n    \"tenants\": {},\n    \"universe\": {},\n    \"zipf_exponent\": {},\n    \"seed\": {}\n  }},\n  \"completed\": {},\n  \"errors\": {},\n  \"wall_seconds\": {:.6},\n  \"throughput_rps\": {:.3},\n  \"latency_us\": {{\n    \"p50\": {},\n    \"p95\": {},\n    \"p99\": {},\n    \"max\": {}\n  }},\n  \"warm_restart\": {{\n    \"hit_rate\": {:.6},\n    \"snapshot_bytes\": {},\n    \"snapshot_entries\": {},\n    \"replayed\": {}\n  }}\n}}\n",
            self.config.clients,
            self.config.connections,
            self.config.requests,
            self.config.window,
            self.config.tenants,
            self.config.universe,
            self.config.zipf_exponent,
            self.config.seed,
            self.completed,
            self.errors,
            self.wall_seconds,
            self.throughput_rps,
            self.latency.p50,
            self.latency.p95,
            self.latency.p99,
            self.latency.max,
            self.warm_restart.hit_rate,
            self.warm_restart.snapshot_bytes,
            self.warm_restart.snapshot_entries,
            self.warm_restart.replayed,
        )
    }
}

impl fmt::Display for BenchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} querents over {} connections: {} requests in {:.2}s ({:.0} req/s, {} errors)",
            self.config.clients,
            self.config.connections,
            self.completed,
            self.wall_seconds,
            self.throughput_rps,
            self.errors,
        )?;
        writeln!(
            f,
            "latency p50/p95/p99/max = {}/{}/{}/{} us",
            self.latency.p50, self.latency.p95, self.latency.p99, self.latency.max
        )?;
        write!(
            f,
            "warm restart: hit rate {:.1}% over {} replayed ({} entries, {} bytes on disk)",
            self.warm_restart.hit_rate * 100.0,
            self.warm_restart.replayed,
            self.warm_restart.snapshot_entries,
            self.warm_restart.snapshot_bytes,
        )
    }
}

/// The deterministic design-point universe the zipf law ranks. Point
/// `rank` is a pure function of `(rank, universe)` — every querent and
/// the warm-restart replay see the same points.
fn universe_point(rank: usize) -> (PdnId, PointSpec) {
    let pdn = PdnId::ALL[rank % PdnId::ALL.len()];
    let wl = WorkloadType::ACTIVE_TYPES[(rank / 5) % WorkloadType::ACTIVE_TYPES.len()];
    let tdp = SERVE_TDPS[(rank / 15) % SERVE_TDPS.len()];
    let ar = SERVE_ARS[(rank / 105) % SERVE_ARS.len()];
    (pdn, PointSpec::Active { tdp, workload: wl, ar })
}

/// Cumulative zipf weights over `universe` ranks.
fn zipf_cdf(universe: usize, exponent: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(universe);
    let mut total = 0.0;
    for rank in 0..universe {
        total += 1.0 / ((rank + 1) as f64).powf(exponent);
        cdf.push(total);
    }
    for value in &mut cdf {
        *value /= total;
    }
    cdf
}

fn zipf_draw(cdf: &[f64], rng: &mut StdRng) -> usize {
    let u: f64 = rng.random_range(0.0..1.0);
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

/// Builds the request body a querent issues for a universe rank:
/// mostly point evaluations, with every fifth rank queried as a
/// resident-surface sample instead.
fn request_for(rank: usize, tenant: u32, id: u64) -> Request {
    let (pdn, point) = universe_point(rank);
    let body = if rank % 5 == 4 {
        match point {
            PointSpec::Active { tdp, workload, ar } => {
                RequestBody::Sample { pdn, workload, tdp, ar }
            }
            PointSpec::Idle { .. } => RequestBody::Eval { pdn, point },
        }
    } else {
        RequestBody::Eval { pdn, point }
    };
    Request { tenant, id, deadline_ms: 0, body }
}

struct ConnOutcome {
    latencies_us: Vec<u64>,
    errors: usize,
}

fn run_connection(
    addr: std::net::SocketAddr,
    cfg: &BenchConfig,
    conn_idx: usize,
    quota: usize,
    cdf: &[f64],
) -> Result<ConnOutcome, server::ClientError> {
    let mut client = Client::connect(addr)
        .map_err(|e| server::ClientError::Frame(crate::wire::FrameError::Io(e.kind())))?;
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (conn_idx as u64).wrapping_mul(0x9E37_79B9));
    let querents_per_conn = (cfg.clients / cfg.connections.max(1)).max(1);
    let mut in_flight: HashMap<u64, Instant> = HashMap::new();
    let mut latencies_us = Vec::with_capacity(quota);
    let mut errors = 0usize;

    let mut settle = |resp: Response, in_flight: &mut HashMap<u64, Instant>| {
        if let Some(sent) = in_flight.remove(&resp.id) {
            latencies_us.push(u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX));
        }
        if matches!(resp.body, ResponseBody::Error(_)) {
            errors += 1;
        }
    };

    for seq in 0..quota {
        // Each request is attributed to one of this connection's logical
        // querents; the querent fixes the tenant.
        let querent = conn_idx * querents_per_conn + rng.random_range(0..querents_per_conn);
        let tenant = (querent as u32) % cfg.tenants.max(1);
        let rank = zipf_draw(cdf, &mut rng);
        let id = ((conn_idx as u64) << 32) | seq as u64;
        let request = request_for(rank, tenant, id);
        while in_flight.len() >= cfg.window.max(1) {
            let resp = client.recv()?;
            settle(resp, &mut in_flight);
        }
        in_flight.insert(id, Instant::now());
        client.send(&request)?;
    }
    while !in_flight.is_empty() {
        let resp = client.recv()?;
        settle(resp, &mut in_flight);
    }
    Ok(ConnOutcome { latencies_us, errors })
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs the full load test: boot, fan out querents, snapshot, restore,
/// replay, and (optionally) write the JSON report.
///
/// # Errors
///
/// Returns a rendered description of the first boot, transport, or
/// snapshot failure.
pub fn run(cfg: &BenchConfig) -> Result<BenchReport, String> {
    let snapshot_path = std::env::temp_dir().join(format!(
        "pdn-serve-bench-{}-{:x}.snapshot",
        std::process::id(),
        cfg.seed
    ));
    let engine_config = EngineConfig::default();
    let engine = ServeEngine::new(engine_config.clone())
        .map_err(|e| format!("engine boot: {e}"))?
        .with_snapshot_path(&snapshot_path);
    let handle =
        server::spawn_tcp(Arc::new(engine), "127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = handle.addr;

    let cdf = zipf_cdf(cfg.universe.max(1), cfg.zipf_exponent);
    let connections = cfg.connections.clamp(1, cfg.requests.max(1));
    let base_quota = cfg.requests / connections;
    let remainder = cfg.requests % connections;

    let started = Instant::now();
    let outcomes: Vec<Result<ConnOutcome, server::ClientError>> = thread::scope(|scope| {
        let mut workers = Vec::with_capacity(connections);
        for conn_idx in 0..connections {
            let quota = base_quota + usize::from(conn_idx < remainder);
            let cdf = &cdf;
            workers.push(scope.spawn(move || run_connection(addr, cfg, conn_idx, quota, cdf)));
        }
        workers.into_iter().map(|w| w.join().expect("bench connection thread")).collect()
    });
    let wall_seconds = started.elapsed().as_secs_f64();

    let mut latencies: Vec<u64> = Vec::with_capacity(cfg.requests);
    let mut errors = 0usize;
    for outcome in outcomes {
        let outcome = outcome.map_err(|e| format!("bench connection: {e}"))?;
        latencies.extend_from_slice(&outcome.latencies_us);
        errors += outcome.errors;
    }
    latencies.sort_unstable();
    let completed = latencies.len();

    // Persist the warm state, then shut the daemon down.
    let mut control = Client::connect(addr).map_err(|e| format!("control connect: {e}"))?;
    let snap_resp = control
        .call(&Request { tenant: 0, id: u64::MAX - 1, deadline_ms: 0, body: RequestBody::Snapshot })
        .map_err(|e| format!("snapshot request: {e}"))?;
    let (snapshot_bytes, snapshot_entries) = match snap_resp.body {
        ResponseBody::SnapshotDone { bytes, entries } => (bytes, entries),
        other => return Err(format!("snapshot request failed: {other:?}")),
    };
    let _ = control.call(&Request {
        tenant: 0,
        id: u64::MAX,
        deadline_ms: 0,
        body: RequestBody::Shutdown,
    });
    handle.join();

    // Restore into a fresh engine and replay a zipf-matched sample of
    // Eval queries: the head of the distribution must hit the imported
    // memo shards.
    let snap = snapshot::read_file(&snapshot_path).map_err(|e| format!("snapshot read: {e}"))?;
    let warm =
        ServeEngine::from_snapshot(engine_config, &snap).map_err(|e| format!("warm boot: {e}"))?;
    let mut replay_rng = StdRng::seed_from_u64(cfg.seed ^ 0xDEAD_BEEF);
    let replayed = 512.min(cfg.requests.max(1));
    for seq in 0..replayed {
        let rank = zipf_draw(&cdf, &mut replay_rng);
        let tenant = (seq as u32) % cfg.tenants.max(1);
        let (pdn, point) = universe_point(rank);
        let _ = warm.handle(tenant, &RequestBody::Eval { pdn, point });
    }
    let (mut hits, mut misses) = (0u64, 0u64);
    for tenant in 0..cfg.tenants.max(1) {
        let stats = warm.tenant(tenant).cache.stats();
        hits += stats.hits;
        misses += stats.misses;
    }
    let hit_rate = if hits + misses == 0 { 0.0 } else { hits as f64 / (hits + misses) as f64 };
    let _ = std::fs::remove_file(&snapshot_path);

    let report = BenchReport {
        config: cfg.clone(),
        completed,
        errors,
        wall_seconds,
        throughput_rps: if wall_seconds > 0.0 { completed as f64 / wall_seconds } else { 0.0 },
        latency: LatencyUs {
            p50: percentile(&latencies, 0.50),
            p95: percentile(&latencies, 0.95),
            p99: percentile(&latencies, 0.99),
            max: latencies.last().copied().unwrap_or(0),
        },
        warm_restart: WarmRestart { hit_rate, snapshot_bytes, snapshot_entries, replayed },
    };

    if let Some(out) = &cfg.out {
        std::fs::write(out, report.to_json()).map_err(|e| format!("write {out:?}: {e}"))?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_cdf_is_monotone_and_normalised() {
        let cdf = zipf_cdf(64, 1.0);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        assert!((cdf.last().copied().unwrap() - 1.0).abs() < 1e-12);
        // The head rank dominates: P(rank 0) > P(rank 63) by a wide margin.
        let head = cdf[0];
        let tail = cdf[63] - cdf[62];
        assert!(head > 10.0 * tail, "head {head} vs tail {tail}");
    }

    #[test]
    fn universe_points_are_deterministic() {
        assert_eq!(universe_point(17), universe_point(17));
        let (pdn, _) = universe_point(3);
        assert_eq!(pdn, PdnId::IPlusMbvr);
    }

    #[test]
    fn percentiles_pick_sorted_positions() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.50), 51);
        assert_eq!(percentile(&sorted, 0.99), 99);
        assert_eq!(percentile(&sorted, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
    }
}
