//! Warm-state persistence: memo shards and trained predictor firmware
//! on disk, so a restarted daemon serves hot.
//!
//! File layout (all little-endian, CRC-32 trailer over everything
//! before it — the firmware-image idiom):
//!
//! ```text
//! magic    u32   "PDNW"
//! version  u16
//! reserved u16
//! ivr firmware    u32 len + bytes   (PMU firmware image)
//! ldo firmware    u32 len + bytes
//! tenant count    u32
//! per tenant:     id u32, entry count u32,
//!                 entries: pdn_token u64, scenario_fingerprint u64,
//!                          PdnEvaluation (protocol codec)
//! crc32    u32
//! ```
//!
//! Decoding untrusted bytes never panics; every defect is a typed
//! [`SnapshotError`]. Memo entries re-stripe deterministically on
//! import, so a snapshot taken under one shard count restores cleanly
//! under another.

use crate::protocol::{decode_evaluation, encode_evaluation};
use crate::wire::{crc32, BodyReader, BodyWriter, DecodeError};
use pdnspot::memo::MemoEntry;
use std::ffi::OsString;
use std::fmt;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Snapshot magic: the ASCII bytes `PDNW` read as a little-endian `u32`.
pub const MAGIC: u32 = u32::from_le_bytes(*b"PDNW");

/// Snapshot format revision.
pub const VERSION: u16 = 1;

/// Upper bound on one firmware image inside a snapshot.
const MAX_FIRMWARE: usize = 1 << 20;

/// Upper bound on tenants and on memo entries per tenant.
const MAX_TENANTS: usize = 1 << 16;
const MAX_ENTRIES: usize = 1 << 22;

/// A daemon's persistable warm state.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The predictor's IVR-mode firmware image.
    pub ivr_firmware: Vec<u8>,
    /// The predictor's LDO-mode firmware image.
    pub ldo_firmware: Vec<u8>,
    /// Per-tenant memo entries, tenant ids ascending.
    pub tenants: Vec<(u32, Vec<MemoEntry>)>,
}

impl Snapshot {
    /// Total memo entries across all tenants.
    #[must_use]
    pub fn entry_count(&self) -> usize {
        self.tenants.iter().map(|(_, e)| e.len()).sum()
    }
}

/// Why a snapshot could not be read or decoded.
#[derive(Debug)]
pub enum SnapshotError {
    /// The bytes are not a snapshot (wrong magic).
    BadMagic(u32),
    /// A format revision this build does not understand.
    BadVersion(u16),
    /// The CRC-32 trailer does not match the content.
    ChecksumMismatch {
        /// CRC carried by the trailer.
        expected: u32,
        /// CRC computed over the content.
        found: u32,
    },
    /// A malformed interior field.
    Decode(DecodeError),
    /// An I/O failure reading or writing the file.
    Io(io::Error),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic(m) => write!(f, "bad snapshot magic {m:#010x}"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::ChecksumMismatch { expected, found } => write!(
                f,
                "snapshot checksum mismatch: trailer {expected:#010x}, content {found:#010x}"
            ),
            SnapshotError::Decode(e) => write!(f, "malformed snapshot: {e}"),
            SnapshotError::Io(e) => write!(f, "snapshot i/o: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Decode(e) => Some(e),
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for SnapshotError {
    fn from(e: DecodeError) -> Self {
        SnapshotError::Decode(e)
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Serialises a snapshot, CRC trailer included.
#[must_use]
pub fn encode(snap: &Snapshot) -> Vec<u8> {
    let mut w = BodyWriter::new();
    w.u32(MAGIC);
    w.u16(VERSION);
    w.u16(0);
    w.bytes(&snap.ivr_firmware);
    w.bytes(&snap.ldo_firmware);
    w.u32(u32::try_from(snap.tenants.len()).unwrap_or(u32::MAX));
    for (tenant, entries) in &snap.tenants {
        w.u32(*tenant);
        w.u32(u32::try_from(entries.len()).unwrap_or(u32::MAX));
        for entry in entries {
            w.u64(entry.pdn_token);
            w.u64(entry.scenario_fingerprint);
            encode_evaluation(&mut w, &entry.value);
        }
    }
    let mut bytes = w.into_bytes();
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    bytes
}

/// Decodes a snapshot from raw bytes. Never panics.
///
/// # Errors
///
/// Returns a [`SnapshotError`] describing the first defect found.
pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
    if bytes.len() < 4 + 4 {
        return Err(SnapshotError::Decode(DecodeError::Truncated));
    }
    let (content, trailer) = bytes.split_at(bytes.len() - 4);
    let expected = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let found = crc32(content);
    if expected != found {
        return Err(SnapshotError::ChecksumMismatch { expected, found });
    }
    let mut r = BodyReader::new(content);
    let magic = r.u32()?;
    if magic != MAGIC {
        return Err(SnapshotError::BadMagic(magic));
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let _reserved = r.u16()?;
    let ivr_firmware = r.bytes("ivr firmware", MAX_FIRMWARE)?;
    let ldo_firmware = r.bytes("ldo firmware", MAX_FIRMWARE)?;
    let n_tenants = r.list_len("tenants", MAX_TENANTS)?;
    let mut tenants = Vec::with_capacity(n_tenants);
    for _ in 0..n_tenants {
        let tenant = r.u32()?;
        let n_entries = r.list_len("memo entries", MAX_ENTRIES)?;
        let mut entries = Vec::with_capacity(n_entries.min(1 << 12));
        for _ in 0..n_entries {
            let pdn_token = r.u64()?;
            let scenario_fingerprint = r.u64()?;
            let value = decode_evaluation(&mut r)?;
            entries.push(MemoEntry { pdn_token, scenario_fingerprint, value });
        }
        tenants.push((tenant, entries));
    }
    r.finish()?;
    Ok(Snapshot { ivr_firmware, ldo_firmware, tenants })
}

/// How many rotated generations [`write_file_rotated`] keeps by
/// default (`path`, `path.1`, `path.2`).
pub const DEFAULT_KEEP: usize = 3;

/// The path of rotated generation `n` (`0` is `path` itself; `n ≥ 1`
/// appends `.n` to the file name).
#[must_use]
pub fn generation_path(path: &Path, n: usize) -> PathBuf {
    if n == 0 {
        return path.to_path_buf();
    }
    let mut name = path.file_name().map_or_else(OsString::new, OsString::from);
    name.push(format!(".{n}"));
    path.with_file_name(name)
}

/// Writes a snapshot file crash-safely, returning the byte count:
/// the bytes land in a uniquely named temp file in the target
/// directory, are fsynced, and only then renamed over `path` (with a
/// best-effort directory fsync after). A crash at any instant leaves
/// either the old snapshot or the new one — never a torn file.
///
/// # Errors
///
/// Returns a [`SnapshotError`] on I/O failure (the temp file is
/// removed on a failed write).
pub fn write_file(path: &Path, snap: &Snapshot) -> Result<u64, SnapshotError> {
    let bytes = encode(snap);
    let mut name = path.file_name().map_or_else(OsString::new, OsString::from);
    name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(name);
    let write = (|| -> io::Result<()> {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
        Ok(())
    })();
    if let Err(e) = write {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    // Persist the rename itself. Directory fsync is platform-dependent;
    // failure here cannot un-rename, so it is best-effort.
    if let Some(parent) = path.parent() {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(bytes.len() as u64)
}

/// [`write_file`] plus versioned rotation: before the new snapshot
/// lands on `path`, the existing generations shift down
/// (`path.{keep-2}` → `path.{keep-1}`, …, `path` → `path.1`), keeping
/// at most `keep` generations in total. A corrupt latest snapshot
/// therefore never costs the older good ones —
/// [`restore_latest`] walks the generations until one decodes.
///
/// # Errors
///
/// Returns a [`SnapshotError`] on I/O failure writing the new
/// snapshot; rotation of old generations is best-effort.
pub fn write_file_rotated(path: &Path, snap: &Snapshot, keep: usize) -> Result<u64, SnapshotError> {
    let keep = keep.max(1);
    for n in (0..keep - 1).rev() {
        let from = generation_path(path, n);
        if from.exists() {
            let _ = std::fs::rename(&from, generation_path(path, n + 1));
        }
    }
    write_file(path, snap)
}

/// Reads and decodes a snapshot file.
///
/// # Errors
///
/// Returns a [`SnapshotError`] on I/O failure or malformed content.
pub fn read_file(path: &Path) -> Result<Snapshot, SnapshotError> {
    decode(&std::fs::read(path)?)
}

/// Restores the newest decodable snapshot generation, never panicking:
/// tries `path`, then `path.1`, … up to `keep` generations, and
/// returns the first that decodes plus the defects found along the
/// way. `(None, defects)` means every generation was missing or
/// corrupt — the caller cold-starts.
#[must_use]
pub fn restore_latest(
    path: &Path,
    keep: usize,
) -> (Option<Snapshot>, Vec<(PathBuf, SnapshotError)>) {
    let mut defects = Vec::new();
    for n in 0..keep.max(1) {
        let candidate = generation_path(path, n);
        if !candidate.exists() {
            continue;
        }
        match read_file(&candidate) {
            Ok(snap) => return (Some(snap), defects),
            Err(e) => defects.push((candidate, e)),
        }
    }
    (None, defects)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            ivr_firmware: vec![1, 2, 3, 4],
            ldo_firmware: vec![5, 6],
            tenants: vec![(0, Vec::new()), (42, Vec::new())],
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let snap = sample_snapshot();
        let bytes = encode(&snap);
        assert_eq!(decode(&bytes).expect("decodes"), snap);
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pdn-serve-snapshot-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    #[test]
    fn rotation_keeps_generations_and_restore_walks_them() {
        let dir = temp_dir("rotate");
        let path = dir.join("state.pdnw");
        let gen0 = Snapshot { ivr_firmware: vec![0], ..sample_snapshot() };
        let gen1 = Snapshot { ivr_firmware: vec![1], ..sample_snapshot() };
        let gen2 = Snapshot { ivr_firmware: vec![2], ..sample_snapshot() };
        for snap in [&gen0, &gen1, &gen2] {
            write_file_rotated(&path, snap, 3).expect("writes");
        }
        assert_eq!(read_file(&path).expect("latest").ivr_firmware, vec![2]);
        assert_eq!(read_file(&generation_path(&path, 1)).expect("previous").ivr_firmware, vec![1]);
        assert_eq!(read_file(&generation_path(&path, 2)).expect("oldest").ivr_firmware, vec![0]);

        // Corrupt the newest generation: restore falls back to .1.
        std::fs::write(&path, b"garbage").expect("corrupts");
        let (restored, defects) = restore_latest(&path, 3);
        assert_eq!(restored.expect("fallback generation").ivr_firmware, vec![1]);
        assert_eq!(defects.len(), 1, "the corrupt latest is reported");

        // Corrupt everything: cold start, never a panic.
        for n in 0..3 {
            std::fs::write(generation_path(&path, n), b"junk").expect("corrupts");
        }
        let (restored, defects) = restore_latest(&path, 3);
        assert!(restored.is_none(), "all generations corrupt → cold start");
        assert_eq!(defects.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_of_missing_files_is_a_clean_cold_start() {
        let dir = temp_dir("missing");
        let (restored, defects) = restore_latest(&dir.join("nothing.pdnw"), 3);
        assert!(restored.is_none());
        assert!(defects.is_empty(), "absent files are not defects");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_snapshots_are_typed_errors() {
        let bytes = encode(&sample_snapshot());
        for cut in 0..8.min(bytes.len()) {
            assert!(decode(&bytes[..cut]).is_err());
        }
        let mut flipped = bytes.clone();
        flipped[6] ^= 0x10;
        assert!(matches!(decode(&flipped), Err(SnapshotError::ChecksumMismatch { .. })));
        let mut bad_magic = bytes;
        bad_magic[0] ^= 0xFF;
        // The CRC guards the magic too, so corruption surfaces either way.
        assert!(decode(&bad_magic).is_err());
    }
}
