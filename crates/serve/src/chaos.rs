//! A seeded, deterministic chaos campaign for the daemon.
//!
//! `pdn-serve chaos` boots a real in-process daemon on a loopback
//! socket and throws scripted misbehaving clients at it: mid-frame
//! disconnects, stalled and byte-split writes, garbage frames, request
//! floods past the admission depth, slow readers that never drain
//! their replies, and engine faults riding on the workspace's
//! [`flexwatts::faults`] schedule (delays, injected errors, and
//! outright evaluation panics — including a designated poison point
//! that panics every time it is evaluated, so the quarantine trips).
//!
//! Every disruption is drawn from a [`ChaosPlan`] derived purely from
//! the seed, so two runs of the same `(seed, mix)` issue the same
//! byte streams. Thread interleavings still vary — which is the point:
//! the campaign asserts invariants that must hold under *any*
//! interleaving:
//!
//! * **exactly-once** — every request fully sent on a connection that
//!   stayed healthy receives exactly one response with its correlation
//!   id; no id is ever answered twice, even on connections the server
//!   evicted;
//! * **no escaped panics** — evaluation panics are isolated into
//!   `Internal`/`Poisoned` error replies and the daemon keeps
//!   accepting connections afterwards;
//! * **classified backpressure** — every `Overloaded` reply carries a
//!   `RetryAfter` hint;
//! * **drain and recovery** — after the storm the daemon answers a
//!   fresh probe, latency recovers, and shutdown joins cleanly.
//!
//! The campaign (`pdn-serve chaos`) runs each mix at several seeds,
//! adds a snapshot-corruption leg (truncated and bit-flipped
//! generations must fall back, total loss must cold-start) and a
//! trace-corruption leg (a daemon keeps serving while a poisoned-chunk
//! trace file replays in the background: the damaged chunks must be
//! quarantined with exact accounting, never a panic), and writes
//! `BENCH_chaos.json`.

use crate::engine::{InjectedFault, ServeEngine};
use crate::protocol::{
    encode_request, PdnId, PointSpec, Request, RequestBody, Response, ResponseBody,
};
use crate::server::{self, Client};
use crate::snapshot;
use crate::wire;
use pdn_workload::tracefile::{encode_trace, frame_spans, DefectKind, FrameKind};
use pdn_workload::{zoo, WorkloadType};
use pdnspot::{EngineConfig, ErrorCode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Mixes and configuration
// ---------------------------------------------------------------------------

/// Per-class disruption rates (probability that a chaos client adopts
/// the class, clamped into `[0, 1]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosMix {
    /// Stable name used in reports and the JSON document.
    pub name: &'static str,
    /// Mid-frame disconnects: half a frame, then a dropped socket.
    pub disconnects: f64,
    /// Byte-split writes with pauses inside a frame.
    pub stalls: f64,
    /// Well-framed garbage and CRC-corrupted frames.
    pub garbage: f64,
    /// Burst floods past the admission depth.
    pub floods: f64,
    /// Clients that stop reading replies mid-run.
    pub slow_readers: f64,
    /// Engine faults (delays, errors, panics) from a
    /// [`flexwatts::faults::FaultPlan`].
    pub engine_faults: f64,
}

impl ChaosMix {
    /// Disconnect-heavy mix: dropped sockets and garbage frames.
    #[must_use]
    pub fn disconnects() -> Self {
        Self {
            name: "disconnects",
            disconnects: 0.5,
            stalls: 0.0,
            garbage: 0.25,
            floods: 0.0,
            slow_readers: 0.0,
            engine_faults: 0.0,
        }
    }

    /// Stall-heavy mix: byte-split writes and slow readers.
    #[must_use]
    pub fn stalls() -> Self {
        Self {
            name: "stalls",
            disconnects: 0.0,
            stalls: 0.5,
            garbage: 0.0,
            floods: 0.0,
            slow_readers: 0.3,
            engine_faults: 0.0,
        }
    }

    /// Flood mix: burst admission past the queue depth.
    #[must_use]
    pub fn floods() -> Self {
        Self {
            name: "floods",
            disconnects: 0.0,
            stalls: 0.0,
            garbage: 0.0,
            floods: 0.8,
            slow_readers: 0.0,
            engine_faults: 0.0,
        }
    }

    /// Engine-fault mix: injected delays, errors, and panics.
    #[must_use]
    pub fn engine_faults() -> Self {
        Self {
            name: "engine-faults",
            disconnects: 0.0,
            stalls: 0.0,
            garbage: 0.0,
            floods: 0.0,
            slow_readers: 0.0,
            engine_faults: 1.0,
        }
    }

    /// Everything at once.
    #[must_use]
    pub fn storm() -> Self {
        Self {
            name: "storm",
            disconnects: 0.25,
            stalls: 0.2,
            garbage: 0.1,
            floods: 0.3,
            slow_readers: 0.15,
            engine_faults: 1.0,
        }
    }

    /// The campaign's default mix set (one run per mix per seed).
    #[must_use]
    pub fn campaign_set() -> Vec<Self> {
        vec![Self::disconnects(), Self::stalls(), Self::floods(), Self::engine_faults()]
    }
}

/// One chaos run: a seed, a mix, and the storm's dimensions.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for every scripted choice in the run.
    pub seed: u64,
    /// The disruption mix.
    pub mix: ChaosMix,
    /// Concurrent chaos connections.
    pub clients: usize,
    /// Requests each healthy client issues.
    pub requests: usize,
    /// Distinct tenants the clients map onto.
    pub tenants: u32,
}

impl ChaosConfig {
    /// The default storm dimensions for a `(seed, mix)` pair.
    #[must_use]
    pub fn new(seed: u64, mix: ChaosMix) -> Self {
        Self { seed, mix, clients: 12, requests: 48, tenants: 4 }
    }

    /// A seconds-scale configuration for CI smoke jobs and tests.
    #[must_use]
    pub fn quick(seed: u64, mix: ChaosMix) -> Self {
        Self { clients: 6, requests: 20, ..Self::new(seed, mix) }
    }
}

// ---------------------------------------------------------------------------
// The deterministic plan
// ---------------------------------------------------------------------------

/// What one scripted client does for the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientRole {
    /// Windowed request/response traffic; every reply verified.
    Clean,
    /// Clean traffic, then half a frame and a dropped socket.
    MidFrameDisconnect,
    /// Clean traffic, then a CRC-corrupted frame (connection killed).
    Garbage,
    /// Every frame written in two chunks with a pause between them.
    StalledWrites,
    /// Bursts requests and stops reading; expects eviction.
    SlowReader,
    /// Bursts the full quota with no windowing, then drains.
    Flood,
}

/// One client's script: its role plus per-request deadline draws.
#[derive(Debug, Clone)]
pub struct ClientScript {
    /// The scripted behaviour class.
    pub role: ClientRole,
    /// Universe rank of each request, drawn at plan time.
    pub ranks: Vec<usize>,
    /// Deadline (ms, 0 = none) of each request, drawn at plan time.
    pub deadlines: Vec<u32>,
}

/// The full deterministic schedule of a run: client scripts plus the
/// engine-fault plan.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// One script per connection.
    pub scripts: Vec<ClientScript>,
    /// Engine faults by global request ordinal (empty when the mix has
    /// no engine faults).
    pub engine_faults: Vec<(u64, PlannedFault)>,
}

/// A planned engine fault (the serializable face of
/// [`InjectedFault`]).
#[derive(Debug, Clone, PartialEq)]
pub enum PlannedFault {
    /// Stall the evaluation for the given number of milliseconds.
    DelayMs(u64),
    /// Fail the evaluation with a retryable internal error.
    InternalError,
    /// Panic inside the evaluation (must be isolated).
    Panic,
}

/// The universe rank that always panics when engine faults are active:
/// evaluating it twice must trip the poison quarantine.
pub const POISON_RANK: usize = 3;

/// Size of the deterministic design-point universe chaos clients draw
/// from (small, so coalescing and the poison rank both recur).
pub const CHAOS_UNIVERSE: usize = 96;

/// The design point behind a universe rank (same scheme as the bench:
/// a pure function of the rank).
#[must_use]
pub fn chaos_point(rank: usize) -> (PdnId, PointSpec) {
    let pdn = PdnId::ALL[rank % PdnId::ALL.len()];
    let wl = WorkloadType::ACTIVE_TYPES[(rank / 5) % WorkloadType::ACTIVE_TYPES.len()];
    let tdp = crate::engine::SERVE_TDPS[(rank / 15) % crate::engine::SERVE_TDPS.len()];
    let ar = crate::engine::SERVE_ARS[(rank / 45) % crate::engine::SERVE_ARS.len()];
    (pdn, PointSpec::Active { tdp, workload: wl, ar })
}

impl ChaosPlan {
    /// Derives the whole run from the seed: every role assignment,
    /// rank draw, deadline draw, and engine-fault placement.
    #[must_use]
    pub fn generate(cfg: &ChaosConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xC0A5_7A11_FEED_FACE);
        let mix = &cfg.mix;
        let mut scripts = Vec::with_capacity(cfg.clients);
        for _ in 0..cfg.clients {
            let draw: f64 = rng.random_range(0.0..1.0);
            // Stack the class rates into disjoint bands; anything past
            // the stacked mass is a clean client.
            let mut band = mix.disconnects.clamp(0.0, 1.0);
            let role = if draw < band {
                ClientRole::MidFrameDisconnect
            } else if draw < {
                band += mix.garbage.clamp(0.0, 1.0);
                band
            } {
                ClientRole::Garbage
            } else if draw < {
                band += mix.stalls.clamp(0.0, 1.0);
                band
            } {
                ClientRole::StalledWrites
            } else if draw < {
                band += mix.slow_readers.clamp(0.0, 1.0);
                band
            } {
                ClientRole::SlowReader
            } else if draw < {
                band += mix.floods.clamp(0.0, 1.0);
                band
            } {
                ClientRole::Flood
            } else {
                ClientRole::Clean
            };
            let ranks: Vec<usize> =
                (0..cfg.requests).map(|_| rng.random_range(0..CHAOS_UNIVERSE)).collect();
            let deadlines: Vec<u32> = (0..cfg.requests)
                .map(|_| {
                    // One request in six carries a tight deadline.
                    if rng.random_range(0u32..6) == 0 {
                        rng.random_range(1u32..40)
                    } else {
                        0
                    }
                })
                .collect();
            scripts.push(ClientScript { role, ranks, deadlines });
        }

        let engine_faults = if mix.engine_faults > 0.0 {
            let intervals = (cfg.clients * cfg.requests).max(1);
            let fault_mix = flexwatts::faults::FaultMix::chaos();
            let plan = flexwatts::faults::FaultPlan::generate(cfg.seed, intervals, &fault_mix);
            plan.events()
                .map(|event| {
                    let planned = match event.kind.class() {
                        flexwatts::faults::FaultClass::Sensor => PlannedFault::DelayMs(2),
                        flexwatts::faults::FaultClass::Telemetry => PlannedFault::DelayMs(5),
                        flexwatts::faults::FaultClass::VinDroop => PlannedFault::InternalError,
                        flexwatts::faults::FaultClass::SwitchFlow
                        | flexwatts::faults::FaultClass::Firmware => PlannedFault::Panic,
                    };
                    (event.interval as u64, planned)
                })
                .collect()
        } else {
            Vec::new()
        };
        Self { scripts, engine_faults }
    }

    /// Builds the engine-side fault injector for this plan: faults fire
    /// by global request ordinal, and the designated [`POISON_RANK`]
    /// evaluation always panics (so the quarantine trips once it has
    /// panicked twice).
    #[must_use]
    pub fn injector(&self) -> Option<Arc<crate::engine::FaultInjector>> {
        if self.engine_faults.is_empty() {
            return None;
        }
        let schedule: HashMap<u64, PlannedFault> = self.engine_faults.iter().cloned().collect();
        let (poison_pdn, poison_point) = chaos_point(POISON_RANK);
        let counter = AtomicU64::new(0);
        Some(Arc::new(move |_tenant: u32, body: &RequestBody| {
            if let RequestBody::Eval { pdn, point } = body {
                if *pdn == poison_pdn && *point == poison_point {
                    return Some(InjectedFault::Panic("chaos poison rank".into()));
                }
            }
            let ordinal = counter.fetch_add(1, Ordering::Relaxed);
            schedule.get(&ordinal).map(|fault| match fault {
                PlannedFault::DelayMs(ms) => InjectedFault::DelayMs(*ms),
                PlannedFault::InternalError => InjectedFault::Error(
                    crate::protocol::ServeError::new(ErrorCode::Internal, "injected: vin droop")
                        .with_retry_after(10),
                ),
                PlannedFault::Panic => InjectedFault::Panic("injected engine fault".into()),
            })
        }))
    }
}

// ---------------------------------------------------------------------------
// Scripted clients
// ---------------------------------------------------------------------------

/// What one connection observed.
struct ClientOutcome {
    /// Correlation ids fully sent and expecting a reply.
    expected: Vec<u64>,
    /// Observed replies by id (count must be exactly 1).
    received: HashMap<u64, u32>,
    /// Per-reply latency (µs) for replies that arrived.
    latencies_us: Vec<u64>,
    /// The connection died (server kill/eviction or deliberate drop) —
    /// unanswered ids are then forgiven, duplicates never are.
    died: bool,
    /// `Overloaded` replies observed without a `RetryAfter` hint
    /// (must stay zero — the backpressure classification contract).
    overloaded_without_hint: usize,
    /// Rejections (`Overloaded` with hint) observed.
    rejected: usize,
}

fn observe(resp: &Response, in_flight: &mut HashMap<u64, Instant>, outcome: &mut ClientOutcome) {
    if let Some(sent) = in_flight.remove(&resp.id) {
        let us = u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX);
        outcome.latencies_us.push(us);
    }
    *outcome.received.entry(resp.id).or_insert(0) += 1;
    if let ResponseBody::Error(err) = &resp.body {
        if err.code == ErrorCode::Overloaded {
            if err.retry_after_ms.is_some() {
                outcome.rejected += 1;
            } else {
                outcome.overloaded_without_hint += 1;
            }
        }
    }
}

fn request_at(script: &ClientScript, conn_idx: usize, seq: usize, tenants: u32) -> Request {
    let (pdn, point) = chaos_point(script.ranks[seq]);
    Request {
        tenant: (conn_idx as u32) % tenants.max(1),
        id: ((conn_idx as u64) << 32) | seq as u64,
        deadline_ms: script.deadlines[seq],
        body: RequestBody::Eval { pdn, point },
    }
}

/// Runs one scripted connection against the daemon. Transport errors
/// mark the connection dead rather than failing the run: chaos clients
/// *expect* to be killed.
fn run_chaos_client(
    addr: std::net::SocketAddr,
    script: &ClientScript,
    conn_idx: usize,
    tenants: u32,
) -> ClientOutcome {
    let mut outcome = ClientOutcome {
        expected: Vec::new(),
        received: HashMap::new(),
        latencies_us: Vec::new(),
        died: false,
        overloaded_without_hint: 0,
        rejected: 0,
    };
    let Ok(mut stream) = TcpStream::connect(addr) else {
        outcome.died = true;
        return outcome;
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let requests = script.ranks.len();
    let mut in_flight: HashMap<u64, Instant> = HashMap::new();

    let recv_one = |stream: &mut TcpStream,
                    in_flight: &mut HashMap<u64, Instant>,
                    outcome: &mut ClientOutcome|
     -> bool {
        match wire::read_frame(stream) {
            Ok(Some(body)) => match crate::protocol::decode_response(&body) {
                Ok(resp) => {
                    observe(&resp, in_flight, outcome);
                    true
                }
                Err(_) => {
                    outcome.died = true;
                    false
                }
            },
            Ok(None) | Err(_) => {
                outcome.died = true;
                false
            }
        }
    };

    match script.role {
        ClientRole::Clean | ClientRole::StalledWrites | ClientRole::Flood => {
            let window = match script.role {
                ClientRole::Flood => requests.max(1),
                _ => 4,
            };
            for seq in 0..requests {
                let request = request_at(script, conn_idx, seq, tenants);
                let frame = wire::encode_frame(&encode_request(&request));
                while in_flight.len() >= window {
                    if !recv_one(&mut stream, &mut in_flight, &mut outcome) {
                        return outcome;
                    }
                }
                let sent = if script.role == ClientRole::StalledWrites && seq % 3 == 0 {
                    // Byte-split the frame around an awkward boundary
                    // and stall between the halves.
                    let cut = (frame.len() / 2).max(1);
                    stream.write_all(&frame[..cut]).is_ok() && {
                        thread::sleep(Duration::from_millis(5));
                        stream.write_all(&frame[cut..]).is_ok()
                    }
                } else {
                    stream.write_all(&frame).is_ok()
                };
                if !sent {
                    outcome.died = true;
                    return outcome;
                }
                outcome.expected.push(request.id);
                in_flight.insert(request.id, Instant::now());
            }
            while !in_flight.is_empty() {
                if !recv_one(&mut stream, &mut in_flight, &mut outcome) {
                    return outcome;
                }
            }
        }
        ClientRole::MidFrameDisconnect | ClientRole::Garbage => {
            // A short clean prefix (fully drained, so the disruption
            // happens with nothing in flight), then the disruption.
            let prefix = (requests / 4).max(1);
            for seq in 0..prefix {
                let request = request_at(script, conn_idx, seq, tenants);
                let frame = wire::encode_frame(&encode_request(&request));
                if stream.write_all(&frame).is_err() {
                    outcome.died = true;
                    return outcome;
                }
                outcome.expected.push(request.id);
                in_flight.insert(request.id, Instant::now());
                if !recv_one(&mut stream, &mut in_flight, &mut outcome) {
                    return outcome;
                }
            }
            outcome.died = true; // the rest of the script is sabotage
            if script.role == ClientRole::MidFrameDisconnect {
                let request = request_at(script, conn_idx, prefix, tenants);
                let frame = wire::encode_frame(&encode_request(&request));
                let cut = (frame.len() / 2).max(1);
                let _ = stream.write_all(&frame[..cut]);
                // Drop the socket with half a frame on the wire.
            } else {
                // A syntactically framed body whose CRC is wrong.
                let mut frame = wire::encode_frame(&encode_request(&request_at(
                    script, conn_idx, prefix, tenants,
                )));
                let last = frame.len() - 1;
                frame[last] ^= 0xA5;
                let _ = stream.write_all(&frame);
                // The server must kill the connection; wait for EOF.
                let mut sink = [0u8; 64];
                while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
            }
        }
        ClientRole::SlowReader => {
            // Burst a chunk of requests and stop reading: the bounded
            // write buffer (or the write deadline) must evict us
            // without ever blocking the dispatcher.
            let burst = requests.min(24);
            for seq in 0..burst {
                let request = request_at(script, conn_idx, seq, tenants);
                let frame = wire::encode_frame(&encode_request(&request));
                if stream.write_all(&frame).is_err() {
                    break;
                }
                outcome.expected.push(request.id);
                in_flight.insert(request.id, Instant::now());
            }
            thread::sleep(Duration::from_millis(250));
            outcome.died = true; // eviction is the expected outcome
            let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
            while let Ok(Some(body)) = wire::read_frame(&mut stream) {
                if let Ok(resp) = crate::protocol::decode_response(&body) {
                    observe(&resp, &mut in_flight, &mut outcome);
                }
            }
        }
    }
    outcome
}

// ---------------------------------------------------------------------------
// Run and campaign reports
// ---------------------------------------------------------------------------

/// What one `(seed, mix)` run observed.
#[derive(Debug, Clone)]
pub struct ChaosRunReport {
    /// The seed.
    pub seed: u64,
    /// The mix name.
    pub mix: &'static str,
    /// Requests fully sent and expecting a reply.
    pub accepted: usize,
    /// Replies received (including error replies — every accepted
    /// request must be answered).
    pub answered: usize,
    /// Expected ids never answered on connections that stayed healthy.
    pub lost: usize,
    /// Ids answered more than once (any connection).
    pub duplicated: usize,
    /// `Overloaded` replies that arrived without a `RetryAfter` hint.
    pub overloaded_without_hint: usize,
    /// Rejections (`Overloaded` with a hint) observed by clients.
    pub rejected: usize,
    /// Dispatcher panics isolated (from the daemon's final stats).
    pub panics_isolated: u64,
    /// Poisoned (quarantined) replies issued.
    pub quarantined: u64,
    /// Requests shed by queue age or tenant budget.
    pub shed: u64,
    /// Requests answered `DeadlineExceeded`.
    pub deadline_expired: u64,
    /// Slow-client evictions performed.
    pub evictions: u64,
    /// p99 reply latency (µs) *during* the storm.
    pub p99_us_storm: u64,
    /// Time from the end of the storm until a fresh probe round-trips
    /// under the recovery threshold.
    pub recovery_ms: u64,
    /// All invariants held and the daemon shut down cleanly.
    pub survived: bool,
}

/// The whole campaign.
#[derive(Debug, Clone)]
pub struct ChaosCampaignReport {
    /// Seeds exercised.
    pub seeds: Vec<u64>,
    /// Every `(seed, mix)` run.
    pub runs: Vec<ChaosRunReport>,
    /// Fraction of runs that survived.
    pub survival_rate: f64,
    /// Expected-but-unanswered replies across all runs.
    pub lost_total: usize,
    /// Double-answered ids across all runs.
    pub duplicated_total: usize,
    /// Worst p99 under storm across runs (µs).
    pub p99_us_storm: u64,
    /// Worst recovery time across runs (ms).
    pub recovery_ms_max: u64,
    /// Panics isolated across runs.
    pub panics_isolated: u64,
    /// The snapshot-corruption leg behaved (fallback + cold start).
    pub snapshot_corruption_cold_start: bool,
    /// The trace-corruption leg behaved: the daemon answered every
    /// probe while the poisoned trace replayed, the damaged chunks were
    /// quarantined, and every interval was replayed or accounted lost.
    pub trace_corruption_served: bool,
    /// Intervals the trace-corruption replay emitted.
    pub trace_intervals_replayed: u64,
    /// Intervals the trace-corruption replay lost (and accounted).
    pub trace_intervals_lost: u64,
    /// Chunks the trace-corruption replay quarantined.
    pub trace_chunks_quarantined: u64,
}

impl ChaosCampaignReport {
    /// Renders the report as the `BENCH_chaos.json` document
    /// (hand-rolled: the vendored serde is a no-op stand-in).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"pdn-serve-chaos/v1\",\n  \"seeds\": [");
        for (i, seed) in self.seeds.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&seed.to_string());
        }
        out.push_str("],\n  \"runs\": [\n");
        for (i, run) in self.runs.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"seed\": {}, \"mix\": \"{}\", \"accepted\": {}, \"answered\": {}, \
                 \"lost\": {}, \"duplicated\": {}, \"overloaded_without_hint\": {}, \
                 \"rejected\": {}, \"panics_isolated\": {}, \"quarantined\": {}, \"shed\": {}, \
                 \"deadline_expired\": {}, \"evictions\": {}, \"p99_us_storm\": {}, \
                 \"recovery_ms\": {}, \"survived\": {}}}{}\n",
                run.seed,
                run.mix,
                run.accepted,
                run.answered,
                run.lost,
                run.duplicated,
                run.overloaded_without_hint,
                run.rejected,
                run.panics_isolated,
                run.quarantined,
                run.shed,
                run.deadline_expired,
                run.evictions,
                run.p99_us_storm,
                run.recovery_ms,
                run.survived,
                if i + 1 < self.runs.len() { "," } else { "" },
            ));
        }
        out.push_str(&format!(
            "  ],\n  \"survival_rate\": {:.3},\n  \"lost_total\": {},\n  \
             \"duplicated_total\": {},\n  \"p99_us_storm\": {},\n  \"recovery_ms_max\": {},\n  \
             \"panics_isolated\": {},\n  \"snapshot_corruption_cold_start\": {},\n  \
             \"trace_corruption_served\": {},\n  \"trace_intervals_replayed\": {},\n  \
             \"trace_intervals_lost\": {},\n  \"trace_chunks_quarantined\": {}\n}}\n",
            self.survival_rate,
            self.lost_total,
            self.duplicated_total,
            self.p99_us_storm,
            self.recovery_ms_max,
            self.panics_isolated,
            self.snapshot_corruption_cold_start,
            self.trace_corruption_served,
            self.trace_intervals_replayed,
            self.trace_intervals_lost,
            self.trace_chunks_quarantined,
        ));
        out
    }
}

impl std::fmt::Display for ChaosCampaignReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "chaos campaign: {} runs over {} seeds, survival {:.0}%",
            self.runs.len(),
            self.seeds.len(),
            self.survival_rate * 100.0
        )?;
        for run in &self.runs {
            writeln!(
                f,
                "  seed {:>10} {:>13}: {}/{} answered, lost {}, dup {}, \
                 panics {}, quarantined {}, shed {}, expired {}, evicted {}, \
                 p99 {}us, recovery {}ms — {}",
                run.seed,
                run.mix,
                run.answered,
                run.accepted,
                run.lost,
                run.duplicated,
                run.panics_isolated,
                run.quarantined,
                run.shed,
                run.deadline_expired,
                run.evictions,
                run.p99_us_storm,
                run.recovery_ms,
                if run.survived { "survived" } else { "FAILED" },
            )?;
        }
        write!(
            f,
            "worst p99 under storm {}us, worst recovery {}ms, snapshot corruption leg: {}, \
             trace corruption leg: {} ({} replayed, {} lost, {} chunks quarantined)",
            self.p99_us_storm,
            self.recovery_ms_max,
            if self.snapshot_corruption_cold_start { "ok" } else { "FAILED" },
            if self.trace_corruption_served { "ok" } else { "FAILED" },
            self.trace_intervals_replayed,
            self.trace_intervals_lost,
            self.trace_chunks_quarantined,
        )
    }
}

// ---------------------------------------------------------------------------
// Running one storm
// ---------------------------------------------------------------------------

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Engine knobs for a chaos run: a small admission queue so floods
/// actually reject, a tight write deadline so slow readers actually
/// evict, and a small write buffer only when the mix has slow readers
/// (so flood bursts don't evict their own reply streams).
fn chaos_engine_config(cfg: &ChaosConfig) -> Result<EngineConfig, String> {
    let write_buffer = if cfg.mix.slow_readers > 0.0 { 4 } else { 512 };
    EngineConfig::builder()
        .admission_depth(32)
        .shed_age_ms(1_000)
        .write_buffer(write_buffer)
        .write_timeout_ms(100)
        .build()
        .map_err(|e| format!("chaos engine config: {e}"))
}

/// Runs one `(seed, mix)` storm against a freshly booted daemon and
/// checks every invariant.
///
/// # Errors
///
/// Returns a rendered description of a boot or probe failure — a
/// failure to even run the storm, as opposed to an invariant violation
/// (which is reported as `survived: false`).
pub fn run(cfg: &ChaosConfig) -> Result<ChaosRunReport, String> {
    let plan = ChaosPlan::generate(cfg);
    let engine = ServeEngine::new(chaos_engine_config(cfg)?).map_err(|e| format!("boot: {e}"))?;
    let engine = Arc::new(engine);
    engine.set_fault_injector(plan.injector());
    let handle =
        server::spawn_tcp(Arc::clone(&engine), "127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = handle.addr;

    // The storm: every scripted client on its own thread.
    let outcomes: Vec<ClientOutcome> = thread::scope(|scope| {
        let mut workers = Vec::with_capacity(plan.scripts.len());
        for (conn_idx, script) in plan.scripts.iter().enumerate() {
            let tenants = cfg.tenants;
            workers.push(scope.spawn(move || run_chaos_client(addr, script, conn_idx, tenants)));
        }
        workers.into_iter().map(|w| w.join().expect("chaos client thread")).collect()
    });
    let storm_ended = Instant::now();
    // The storm is over: recovery and the control exchange measure the
    // daemon itself, not fresh injected faults.
    engine.set_fault_injector(None);

    // Aggregate the exactly-once ledger.
    let mut accepted = 0usize;
    let mut answered = 0usize;
    let mut lost = 0usize;
    let mut duplicated = 0usize;
    let mut overloaded_without_hint = 0usize;
    let mut rejected = 0usize;
    let mut latencies: Vec<u64> = Vec::new();
    for outcome in &outcomes {
        accepted += outcome.expected.len();
        overloaded_without_hint += outcome.overloaded_without_hint;
        rejected += outcome.rejected;
        latencies.extend_from_slice(&outcome.latencies_us);
        for (_, count) in outcome.received.iter() {
            answered += *count as usize;
            if *count > 1 {
                duplicated += *count as usize - 1;
            }
        }
        if !outcome.died {
            lost +=
                outcome.expected.iter().filter(|id| !outcome.received.contains_key(*id)).count();
        }
    }
    latencies.sort_unstable();
    let p99_us_storm = percentile(&latencies, 0.99);

    // Recovery: a fresh probe must round-trip, quickly.
    let mut recovery_ms = u64::MAX;
    let mut survived_probe = false;
    for _attempt in 0..100 {
        let Ok(mut probe) = Client::connect(addr) else {
            thread::sleep(Duration::from_millis(10));
            continue;
        };
        let sent = Instant::now();
        let ping = Request { tenant: 0, id: u64::MAX - 7, deadline_ms: 0, body: RequestBody::Ping };
        match probe.call(&ping) {
            Ok(resp) if resp.id == ping.id && sent.elapsed() < Duration::from_millis(50) => {
                recovery_ms = u64::try_from(storm_ended.elapsed().as_millis()).unwrap_or(u64::MAX);
                survived_probe = true;
                break;
            }
            _ => {}
        }
        thread::sleep(Duration::from_millis(10));
    }

    // Final stats, then a clean shutdown (drains the queue).
    let (mut panics_isolated, mut quarantined, mut shed, mut deadline_expired, mut evictions) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    if survived_probe {
        if let Ok(mut control) = Client::connect(addr) {
            let stats =
                Request { tenant: 0, id: u64::MAX - 3, deadline_ms: 0, body: RequestBody::Stats };
            if let Ok(resp) = control.call(&stats) {
                if let ResponseBody::Stats { server, .. } = resp.body {
                    panics_isolated = server.panics;
                    quarantined = server.quarantined;
                    shed = server.shed;
                    deadline_expired = server.deadline_expired;
                    evictions = server.evictions;
                }
            }
            let bye = Request {
                tenant: 0,
                id: u64::MAX - 1,
                deadline_ms: 0,
                body: RequestBody::Shutdown,
            };
            let _ = control.call(&bye);
        }
    }
    // The polite Shutdown above is best-effort (the control connection
    // is as untrusted as any other); always force the stop flag so
    // join cannot hang.
    handle.shutdown();
    handle.join();

    let survived = survived_probe && lost == 0 && duplicated == 0 && overloaded_without_hint == 0;
    Ok(ChaosRunReport {
        seed: cfg.seed,
        mix: cfg.mix.name,
        accepted,
        answered,
        lost,
        duplicated,
        overloaded_without_hint,
        rejected,
        panics_isolated,
        quarantined,
        shed,
        deadline_expired,
        evictions,
        p99_us_storm,
        recovery_ms: if recovery_ms == u64::MAX { 0 } else { recovery_ms },
        survived,
    })
}

// ---------------------------------------------------------------------------
// The campaign
// ---------------------------------------------------------------------------

/// Campaign knobs (`pdn-serve chaos`).
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Seeds to run every mix at.
    pub seeds: Vec<u64>,
    /// Shrink every run to smoke-test scale.
    pub quick: bool,
    /// Where to write the JSON report (`None` = don't write).
    pub out: Option<PathBuf>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            seeds: vec![0x0001_6180, 0x0002_7182, 0x0003_1415],
            quick: false,
            out: Some(PathBuf::from("BENCH_chaos.json")),
        }
    }
}

/// The snapshot-corruption leg: rotated generations must survive a
/// corrupted head, and total corruption must cold-start (never panic,
/// never propagate an error as fatal).
fn snapshot_corruption_leg(seed: u64) -> Result<bool, String> {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("pdn-serve-chaos-{}-{seed:x}.snapshot", std::process::id()));
    let engine = ServeEngine::new(EngineConfig::default()).map_err(|e| format!("boot: {e}"))?;
    // A couple of evaluations so the snapshot has memo entries.
    for rank in 0..4 {
        let (pdn, point) = chaos_point(rank);
        let _ = engine.handle(0, &RequestBody::Eval { pdn, point });
    }
    let snap = engine.snapshot();
    let keep = 2;
    snapshot::write_file_rotated(&path, &snap, keep).map_err(|e| format!("write: {e}"))?;
    snapshot::write_file_rotated(&path, &snap, keep).map_err(|e| format!("write: {e}"))?;

    // Bit-flip the head generation: restore must fall back to gen 1.
    let mut bytes = std::fs::read(&path).map_err(|e| format!("read: {e}"))?;
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).map_err(|e| format!("corrupt: {e}"))?;
    let (restored, defects) = snapshot::restore_latest(&path, keep);
    let fell_back = restored.is_some() && defects.len() == 1;

    // Truncate every generation: restore must report a cold start.
    for generation in 0..keep {
        let gen_path = if generation == 0 {
            path.clone()
        } else {
            let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
            name.push(format!(".{generation}"));
            path.with_file_name(name)
        };
        if gen_path.exists() {
            std::fs::write(&gen_path, b"PDNK").map_err(|e| format!("truncate: {e}"))?;
        }
    }
    let (cold, cold_defects) = snapshot::restore_latest(&path, keep);
    let cold_start = cold.is_none() && !cold_defects.is_empty();

    // Clean up all generations.
    for generation in 0..keep {
        let gen_path = if generation == 0 {
            path.clone()
        } else {
            let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
            name.push(format!(".{generation}"));
            path.with_file_name(name)
        };
        let _ = std::fs::remove_file(gen_path);
    }
    Ok(fell_back && cold_start)
}

/// What the trace-corruption leg observed.
struct TraceCorruptionOutcome {
    /// Every probe answered, the damaged chunks quarantined, and the
    /// lost intervals exactly accounted.
    ok: bool,
    /// Intervals the quarantining replay emitted.
    replayed: u64,
    /// Intervals the replay lost (and accounted).
    lost: u64,
    /// Chunks quarantined.
    quarantined: u64,
}

/// The trace-corruption leg: a daemon keeps serving while a zoo trace
/// file with three CRC-poisoned chunks streams through a FlexWatts
/// runtime in the background. The reader must quarantine exactly those
/// chunks (checksum defects, never a panic), account every lost
/// interval via the index gaps, and the daemon must answer every probe
/// issued during the replay.
fn trace_corruption_leg(seed: u64) -> Result<TraceCorruptionOutcome, String> {
    // Encode the trace and poison three non-final chunks (a payload
    // byte each — the CRC gate must catch them).
    let trace = zoo::zoo_mix(seed, 160);
    let total = trace.intervals().len() as u64;
    let mut bytes = encode_trace(&trace, 64).map_err(|e| format!("encode: {e}"))?;
    let spans = frame_spans(&bytes).ok_or("pristine encoding must map cleanly")?;
    let chunks: Vec<_> = spans.iter().filter(|s| s.kind == FrameKind::Chunk).collect();
    if chunks.len() < 6 {
        return Err(format!("trace too small: {} chunks", chunks.len()));
    }
    let mut poisoned_count = 0u64;
    for pick in [1, chunks.len() / 2, chunks.len() - 2] {
        let span = chunks[pick];
        bytes[span.offset + span.len / 2] ^= 0xFF;
        poisoned_count += 1;
    }
    let path =
        std::env::temp_dir().join(format!("pdn-serve-chaos-{}-{seed:x}.pdnt", std::process::id()));
    std::fs::write(&path, &bytes).map_err(|e| format!("write trace: {e}"))?;

    // Boot a daemon, then replay the poisoned file on a background
    // thread while the foreground keeps probing it.
    let engine = ServeEngine::new(EngineConfig::default()).map_err(|e| format!("boot: {e}"))?;
    let engine = Arc::new(engine);
    let handle =
        server::spawn_tcp(Arc::clone(&engine), "127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = handle.addr;

    let replay_path = path.clone();
    let replay = thread::spawn(move || -> Result<flexwatts::FileReplayReport, String> {
        let predictor = flexwatts::ModePredictor::train(
            &pdnspot::ModelParams::paper_defaults(),
            &[4.0, 18.0, 50.0],
            &[0.4, 0.6, 0.8],
        )
        .map_err(|e| format!("train: {e}"))?;
        let rt = flexwatts::FlexWattsRuntime::new(
            pdn_proc::client_soc(pdn_units::Watts::new(18.0)),
            pdnspot::ModelParams::paper_defaults(),
            predictor,
            flexwatts::RuntimeConfig::default(),
        );
        flexwatts::replay_trace_file(&rt, &replay_path, &flexwatts::ReplayFileOptions::default())
            .map_err(|e| format!("replay: {e}"))
    });

    // The daemon must answer every probe issued while the poisoned
    // trace streams (and at least a handful after it finishes).
    let mut served = true;
    let mut probes = 0usize;
    while probes < 4 || !replay.is_finished() {
        let Ok(mut probe) = Client::connect(addr) else {
            served = false;
            break;
        };
        let (pdn, point) = chaos_point(probes % CHAOS_UNIVERSE);
        let request = Request {
            tenant: 0,
            id: 0x7_000_000 + probes as u64,
            deadline_ms: 0,
            body: RequestBody::Eval { pdn, point },
        };
        match probe.call(&request) {
            Ok(resp) if resp.id == request.id => probes += 1,
            _ => {
                served = false;
                break;
            }
        }
        if probes > 10_000 {
            served = false; // replay thread is wedged
            break;
        }
    }
    let report = replay.join().map_err(|_| "replay thread panicked".to_string())??;
    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_file(&path);

    let exact = report.chunks_quarantined == poisoned_count
        && report.defects.count(DefectKind::ChecksumMismatch) == poisoned_count
        && report.intervals_replayed + report.intervals_lost == total
        && report.intervals_lost > 0;
    Ok(TraceCorruptionOutcome {
        ok: served && exact,
        replayed: report.intervals_replayed,
        lost: report.intervals_lost,
        quarantined: report.chunks_quarantined,
    })
}

/// Runs the full campaign: every mix at every seed, plus the
/// snapshot-corruption leg, and (optionally) writes `BENCH_chaos.json`.
///
/// # Errors
///
/// Returns a rendered description of the first boot, transport, or
/// filesystem failure. Invariant violations are *not* errors: they are
/// reported as non-surviving runs.
pub fn campaign(cfg: &CampaignConfig) -> Result<ChaosCampaignReport, String> {
    // Injected panics are the point of the exercise: keep their
    // backtraces off stderr, but leave every other panic loud.
    let default_hook = std::panic::take_hook();
    let quiet_hook = Arc::new(default_hook);
    let chained = Arc::clone(&quiet_hook);
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let text = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
            .unwrap_or("");
        if !text.starts_with("injected fault:") {
            chained(info);
        }
    }));

    let mut runs = Vec::new();
    for &seed in &cfg.seeds {
        for mix in ChaosMix::campaign_set() {
            let run_cfg =
                if cfg.quick { ChaosConfig::quick(seed, mix) } else { ChaosConfig::new(seed, mix) };
            let report = run(&run_cfg)?;
            eprintln!(
                "chaos seed {seed} {:>13}: {}/{} answered, {}",
                report.mix,
                report.answered,
                report.accepted,
                if report.survived { "survived" } else { "FAILED" }
            );
            runs.push(report);
        }
    }
    let snapshot_corruption_cold_start =
        snapshot_corruption_leg(cfg.seeds.first().copied().unwrap_or(1))?;
    let trace_corruption = trace_corruption_leg(cfg.seeds.first().copied().unwrap_or(1))?;

    let survived = runs.iter().filter(|r| r.survived).count();
    let report = ChaosCampaignReport {
        seeds: cfg.seeds.clone(),
        survival_rate: if runs.is_empty() { 0.0 } else { survived as f64 / runs.len() as f64 },
        lost_total: runs.iter().map(|r| r.lost).sum(),
        duplicated_total: runs.iter().map(|r| r.duplicated).sum(),
        p99_us_storm: runs.iter().map(|r| r.p99_us_storm).max().unwrap_or(0),
        recovery_ms_max: runs.iter().map(|r| r.recovery_ms).max().unwrap_or(0),
        panics_isolated: runs.iter().map(|r| r.panics_isolated).sum(),
        snapshot_corruption_cold_start,
        trace_corruption_served: trace_corruption.ok,
        trace_intervals_replayed: trace_corruption.replayed,
        trace_intervals_lost: trace_corruption.lost,
        trace_chunks_quarantined: trace_corruption.quarantined,
        runs,
    };
    if let Some(out) = &cfg.out {
        std::fs::write(out, report.to_json()).map_err(|e| format!("write {out:?}: {e}"))?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_in_the_seed() {
        let cfg = ChaosConfig::quick(42, ChaosMix::storm());
        let a = ChaosPlan::generate(&cfg);
        let b = ChaosPlan::generate(&cfg);
        assert_eq!(a.engine_faults, b.engine_faults);
        assert_eq!(a.scripts.len(), b.scripts.len());
        for (sa, sb) in a.scripts.iter().zip(&b.scripts) {
            assert_eq!(sa.role, sb.role);
            assert_eq!(sa.ranks, sb.ranks);
            assert_eq!(sa.deadlines, sb.deadlines);
        }
        let other = ChaosPlan::generate(&ChaosConfig::quick(43, ChaosMix::storm()));
        assert!(
            a.scripts.iter().zip(&other.scripts).any(|(x, y)| x.ranks != y.ranks),
            "different seeds must draw different ranks"
        );
    }

    #[test]
    fn storm_mix_assigns_disruptive_roles() {
        let cfg = ChaosConfig::new(7, ChaosMix::storm());
        let plan = ChaosPlan::generate(&cfg);
        assert!(
            plan.scripts.iter().any(|s| s.role != ClientRole::Clean),
            "a storm with every rate set must produce disruptive clients"
        );
        assert!(!plan.engine_faults.is_empty(), "storm schedules engine faults");
    }

    #[test]
    fn fault_free_mix_schedules_no_engine_faults() {
        let plan = ChaosPlan::generate(&ChaosConfig::new(7, ChaosMix::disconnects()));
        assert!(plan.engine_faults.is_empty());
        assert!(plan.injector().is_none());
    }

    #[test]
    fn campaign_json_shape_is_stable() {
        let report = ChaosCampaignReport {
            seeds: vec![1, 2],
            runs: vec![ChaosRunReport {
                seed: 1,
                mix: "disconnects",
                accepted: 10,
                answered: 10,
                lost: 0,
                duplicated: 0,
                overloaded_without_hint: 0,
                rejected: 2,
                panics_isolated: 0,
                quarantined: 0,
                shed: 0,
                deadline_expired: 1,
                evictions: 0,
                p99_us_storm: 900,
                recovery_ms: 3,
                survived: true,
            }],
            survival_rate: 1.0,
            lost_total: 0,
            duplicated_total: 0,
            p99_us_storm: 900,
            recovery_ms_max: 3,
            panics_isolated: 0,
            snapshot_corruption_cold_start: true,
            trace_corruption_served: true,
            trace_intervals_replayed: 448,
            trace_intervals_lost: 192,
            trace_chunks_quarantined: 3,
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"pdn-serve-chaos/v1\""));
        assert!(json.contains("\"survival_rate\": 1.000"));
        assert!(json.contains("\"mix\": \"disconnects\""));
        assert!(json.contains("\"snapshot_corruption_cold_start\": true"));
        assert!(json.contains("\"trace_corruption_served\": true"));
        assert!(json.contains("\"trace_chunks_quarantined\": 3"));
    }
}
