//! `pdn-serve`: a multi-tenant PDN-evaluation daemon.
//!
//! The workspace's analytical engine answers one caller at a time;
//! this crate puts a service boundary around it. A daemon boots the
//! five topologies, trains (or restores) the FlexWatts mode predictor,
//! tabulates resident ETEE surfaces, and then answers framed requests
//! over TCP or stdio:
//!
//! * **point evaluation** — any topology at any active or idle
//!   operating point, through the requesting tenant's memo cache;
//! * **surface samples** — bilinear [`EteeSurface::sample`] queries
//!   against the daemon's resident surfaces;
//! * **grid sweeps** and **crossover-TDP searches** — the library's
//!   batch entry points, parallelised on the work-stealing pool;
//! * **stats**, **snapshot**, and graceful **shutdown**.
//!
//! Layers, bottom up:
//!
//! * [`wire`] — length-prefixed, CRC-32-checked frames; decoding
//!   arbitrary bytes never panics.
//! * [`protocol`] — typed requests/responses and the lossless
//!   [`ServeError`] ↔ [`pdnspot::PdnError`] conversion.
//! * [`engine`] — the multi-tenant evaluation core; every served value
//!   is bit-identical to the corresponding direct library call.
//! * [`admission`] — the bounded queue and coalescing dispatcher.
//! * [`snapshot`] — warm memo shards + predictor firmware on disk.
//! * [`server`] — TCP/stdio transports and the framed [`Client`].
//! * [`bench`] — the zipf-skewed synthetic load generator behind
//!   `pdn-serve bench` and `BENCH_serve.json`.
//! * [`chaos`] — the seeded chaos campaign behind `pdn-serve chaos`
//!   and `BENCH_chaos.json`.
//!
//! [`EteeSurface::sample`]: pdnspot::sweep::EteeSurface::sample

#![warn(missing_docs)]
// The daemon must never panic on untrusted input or IO: failures are
// typed `ServeError`s on the wire. Keep bare `.unwrap()` out of
// non-test code (poison-tolerant locks use
// `unwrap_or_else(PoisonError::into_inner)` instead).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod admission;
pub mod bench;
pub mod chaos;
pub mod engine;
pub mod protocol;
pub mod server;
pub mod snapshot;
pub mod wire;

pub use admission::{AdmissionQueue, Job, Rejection, ReplyHandle};
pub use bench::{BenchConfig, BenchReport};
pub use chaos::{CampaignConfig, ChaosCampaignReport, ChaosConfig, ChaosMix, ChaosPlan};
pub use engine::{
    FaultInjector, InjectedFault, ServeEngine, TenantState, POISON_THRESHOLD, SERVE_ARS, SERVE_TDPS,
};
pub use protocol::{
    PdnId, PointSpec, Request, RequestBody, Response, ResponseBody, ServeDetail, ServeError,
    PROTOCOL_VERSION,
};
pub use server::{Client, ClientError, ServerHandle};
pub use snapshot::{Snapshot, SnapshotError};
pub use wire::{DecodeError, FrameError};
