//! The `pdn-serve` CLI: `serve` boots the daemon (TCP or stdio),
//! `bench` runs the synthetic load generator and writes
//! `BENCH_serve.json`, and `chaos` runs the seeded fault campaign and
//! writes `BENCH_chaos.json`.

use pdn_serve::bench::{self, BenchConfig};
use pdn_serve::chaos::{self, CampaignConfig};
use pdn_serve::engine::ServeEngine;
use pdn_serve::{server, snapshot};
use pdnspot::{EngineConfig, Workers};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
pdn-serve: multi-tenant PDN-evaluation daemon

USAGE:
    pdn-serve serve [--addr HOST:PORT] [--stdio] [--snapshot PATH]
                    [--workers N] [--memo-capacity N] [--memo-shards N]
                    [--admission-depth N]
    pdn-serve bench [--quick] [--clients N] [--requests N]
                    [--connections N] [--window N] [--tenants N]
                    [--universe N] [--zipf S] [--seed N] [--out PATH]
    pdn-serve chaos [--quick] [--seeds A,B,C] [--out PATH]

serve: answer framed protocol requests. With --snapshot, warm state is
restored from PATH (or the newest intact rotated generation; total
corruption cold-starts) and the Snapshot request persists back to it.
--stdio serves stdin/stdout instead of a socket.

bench: boot an in-process daemon, replay zipf-skewed querents, verify
snapshot/restore, and write the JSON report (default BENCH_serve.json).

chaos: run the seeded chaos campaign (mid-frame disconnects, stalled
writes, floods, slow readers, engine faults) at every seed, assert the
survival invariants, and write the report (default BENCH_chaos.json).
";

fn parse_flag<T: std::str::FromStr>(
    args: &mut std::iter::Peekable<std::env::Args>,
    flag: &str,
) -> Result<T, String> {
    let value = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
    value.parse().map_err(|_| format!("{flag}: cannot parse {value:?}"))
}

fn run_serve(mut args: std::iter::Peekable<std::env::Args>) -> Result<(), String> {
    let mut addr = String::from("127.0.0.1:7117");
    let mut stdio = false;
    let mut snapshot_path: Option<PathBuf> = None;
    let mut config = EngineConfig::builder();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse_flag(&mut args, "--addr")?,
            "--stdio" => stdio = true,
            "--snapshot" => snapshot_path = Some(parse_flag(&mut args, "--snapshot")?),
            "--workers" => {
                config = config.workers(Workers::Fixed(parse_flag(&mut args, "--workers")?));
            }
            "--memo-capacity" => {
                config = config.memo_capacity(parse_flag(&mut args, "--memo-capacity")?);
            }
            "--memo-shards" => {
                config = config.memo_shards(parse_flag(&mut args, "--memo-shards")?);
            }
            "--admission-depth" => {
                config = config.admission_depth(parse_flag(&mut args, "--admission-depth")?);
            }
            other => return Err(format!("unknown serve flag {other:?}\n\n{USAGE}")),
        }
    }
    let config = config.build().map_err(|e| format!("config: {e}"))?;

    let restored = match &snapshot_path {
        Some(path) => {
            let (snap, defects) = snapshot::restore_latest(path, snapshot::DEFAULT_KEEP);
            for (defective, why) in &defects {
                eprintln!("snapshot {}: {why}; trying older generation", defective.display());
            }
            match snap {
                Some(snap) => {
                    eprintln!(
                        "restoring warm state: {} memo entries across {} tenants",
                        snap.entry_count(),
                        snap.tenants.len()
                    );
                    Some(ServeEngine::from_snapshot(config.clone(), &snap))
                }
                None => {
                    if !defects.is_empty() {
                        eprintln!("no intact snapshot generation; cold start");
                    }
                    None
                }
            }
        }
        None => None,
    };
    let mut engine = match restored {
        Some(result) => result.map_err(|e| format!("warm boot: {e}"))?,
        None => ServeEngine::new(config).map_err(|e| format!("boot: {e}"))?,
    };
    if let Some(path) = snapshot_path {
        engine = engine.with_snapshot_path(path);
    }
    let engine = Arc::new(engine);

    if stdio {
        server::serve_streams(&engine, &mut std::io::stdin().lock(), &mut std::io::stdout().lock())
            .map_err(|e| format!("stdio transport: {e}"))
    } else {
        let handle = server::spawn_tcp(Arc::clone(&engine), &addr)
            .map_err(|e| format!("bind {addr}: {e}"))?;
        eprintln!("pdn-serve listening on {}", handle.addr);
        handle.join();
        Ok(())
    }
}

fn run_bench(mut args: std::iter::Peekable<std::env::Args>) -> Result<(), String> {
    let mut cfg = BenchConfig::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {
                let out = cfg.out.clone();
                cfg = BenchConfig { out, ..BenchConfig::quick() };
            }
            "--clients" => cfg.clients = parse_flag(&mut args, "--clients")?,
            "--requests" => cfg.requests = parse_flag(&mut args, "--requests")?,
            "--connections" => cfg.connections = parse_flag(&mut args, "--connections")?,
            "--window" => cfg.window = parse_flag(&mut args, "--window")?,
            "--tenants" => cfg.tenants = parse_flag(&mut args, "--tenants")?,
            "--universe" => cfg.universe = parse_flag(&mut args, "--universe")?,
            "--zipf" => cfg.zipf_exponent = parse_flag(&mut args, "--zipf")?,
            "--seed" => cfg.seed = parse_flag(&mut args, "--seed")?,
            "--out" => cfg.out = Some(parse_flag(&mut args, "--out")?),
            other => return Err(format!("unknown bench flag {other:?}\n\n{USAGE}")),
        }
    }
    let report = bench::run(&cfg)?;
    println!("{report}");
    if let Some(out) = &cfg.out {
        println!("report written to {}", out.display());
    }
    Ok(())
}

fn run_chaos(mut args: std::iter::Peekable<std::env::Args>) -> Result<(), String> {
    let mut cfg = CampaignConfig::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg.quick = true,
            "--seeds" => {
                let list: String = parse_flag(&mut args, "--seeds")?;
                cfg.seeds = list
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|_| format!("--seeds: bad seed {s:?}")))
                    .collect::<Result<Vec<u64>, String>>()?;
                if cfg.seeds.is_empty() {
                    return Err("--seeds: need at least one seed".into());
                }
            }
            "--out" => cfg.out = Some(parse_flag(&mut args, "--out")?),
            other => return Err(format!("unknown chaos flag {other:?}\n\n{USAGE}")),
        }
    }
    let report = chaos::campaign(&cfg)?;
    println!("{report}");
    if let Some(out) = &cfg.out {
        println!("report written to {}", out.display());
    }
    if report.survival_rate < 1.0
        || report.lost_total > 0
        || report.duplicated_total > 0
        || !report.snapshot_corruption_cold_start
    {
        return Err("chaos campaign invariants violated (see report)".into());
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut args = std::env::args().peekable();
    let _binary = args.next();
    let result = match args.next().as_deref() {
        Some("serve") => run_serve(args),
        Some("bench") => run_bench(args),
        Some("chaos") => run_chaos(args),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
