//! The daemon's evaluation core: five resident PDN topologies, a
//! trained mode predictor, per-tenant memo caches, and one handler
//! that answers every protocol request.
//!
//! Tenancy model: each tenant id owns a private [`MemoCache`] sized by
//! the engine's [`EngineConfig::memo_capacity`] — the tenant's
//! *eviction budget*. A noisy tenant can only evict its own entries;
//! hit/miss/eviction counters are likewise per tenant. The topology
//! tables, resident surfaces, and predictor are immutable after boot
//! and shared by all tenants.
//!
//! Bit-identity: every served value is computed by the same library
//! entry points a direct caller would use ([`Scenario`] constructors,
//! [`MemoCache::evaluate`], [`pdnspot::sweep::surfaces`],
//! [`pdnspot::sweep::crossover`], [`EteeSurface::sample`]), so a
//! response carries exactly the bits the library returns. The
//! served-vs-library integration tests enforce this per request type.

use crate::protocol::{
    PdnId, PointSpec, RequestBody, ResponseBody, ServeError, ServerStats, TenantStats,
};
use crate::snapshot::{self, Snapshot, SnapshotError};
use flexwatts::{FlexWattsAuto, ModePredictor};
use pdn_proc::client_soc;
use pdn_units::{ApplicationRatio, Watts};
use pdn_workload::WorkloadType;
use pdnspot::memo::MemoEntry;
use pdnspot::sweep::{self, EteeSurface};
use pdnspot::{
    ClientSoc, EngineConfig, ErrorCode, IPlusMbvrPdn, IvrPdn, LdoPdn, MbvrPdn, MemoCache,
    ModelParams, Pdn, PdnError, PdnEvaluation, Scenario, SweepGrid,
};
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::Duration;

/// The TDP axis of the daemon's resident surfaces and predictor tables
/// (the paper's client design points).
pub const SERVE_TDPS: [f64; 7] = pdn_proc::PAPER_TDPS;

/// The AR axis of the daemon's resident surfaces and predictor tables.
pub const SERVE_ARS: [f64; 9] = [0.40, 0.45, 0.50, 0.56, 0.60, 0.65, 0.70, 0.75, 0.80];

/// One tenant's private slice of the daemon.
#[derive(Debug)]
pub struct TenantState {
    /// The tenant's memo cache; its capacity is the eviction budget.
    pub cache: MemoCache,
}

/// How many caught panics on one bit-exact request body it takes to
/// quarantine it: the first panic is retryable ([`ErrorCode::Internal`]);
/// from the second on, the body is answered [`ErrorCode::Poisoned`]
/// (terminal) without re-entering the engine.
pub const POISON_THRESHOLD: u32 = 2;

/// A deterministic fingerprint of a request body, independent of the
/// tenant and correlation id — the quarantine's "bit-exact key".
/// FNV-1a over the body's discriminant and parameter bit patterns.
#[must_use]
pub fn poison_key(body: &RequestBody) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    struct Fnv(u64);
    impl Fnv {
        fn u8(&mut self, v: u8) {
            self.0 = (self.0 ^ u64::from(v)).wrapping_mul(FNV_PRIME);
        }
        fn u64(&mut self, v: u64) {
            for b in v.to_le_bytes() {
                self.u8(b);
            }
        }
        fn f64(&mut self, v: f64) {
            self.u64(v.to_bits());
        }
    }
    let mut h = Fnv(FNV_OFFSET);
    match body {
        RequestBody::Ping => h.u8(0),
        RequestBody::Eval { pdn, point } => {
            h.u8(1);
            h.u8(pdn.to_wire());
            let (a, b, c, d) = point.key();
            h.u8(a);
            h.u64(b);
            h.u8(c);
            h.u64(d);
        }
        RequestBody::Sample { pdn, workload, tdp, ar } => {
            h.u8(2);
            h.u8(pdn.to_wire());
            h.u8(crate::protocol::workload_to_wire(*workload));
            h.f64(*tdp);
            h.f64(*ar);
        }
        RequestBody::Sweep { pdns, tdps, workloads, ars } => {
            h.u8(3);
            for p in pdns {
                h.u8(p.to_wire());
            }
            h.u8(0xFF);
            for &t in tdps {
                h.f64(t);
            }
            h.u8(0xFF);
            for w in workloads {
                h.u8(crate::protocol::workload_to_wire(*w));
            }
            h.u8(0xFF);
            for &a in ars {
                h.f64(a);
            }
        }
        RequestBody::Crossover { a, b, workload, ar, range } => {
            h.u8(4);
            h.u8(a.to_wire());
            h.u8(b.to_wire());
            h.u8(crate::protocol::workload_to_wire(*workload));
            h.f64(*ar);
            h.f64(range.0);
            h.f64(range.1);
        }
        RequestBody::Stats => h.u8(5),
        RequestBody::Snapshot => h.u8(6),
        RequestBody::Shutdown => h.u8(7),
    }
    h.0
}

/// A fault the chaos harness injects ahead of real evaluation.
#[derive(Debug, Clone)]
pub enum InjectedFault {
    /// Panic with this message (exercises `catch_unwind` isolation and
    /// the poison quarantine).
    Panic(String),
    /// Answer with this error instead of evaluating.
    Error(ServeError),
    /// Sleep this long before evaluating (stalls a worker).
    DelayMs(u64),
}

/// A chaos hook: inspects `(tenant, body)` before evaluation and may
/// inject a fault. `None` lets the request through untouched.
pub type FaultInjector = dyn Fn(u32, &RequestBody) -> Option<InjectedFault> + Send + Sync;

/// The multi-tenant evaluation engine behind every transport.
pub struct ServeEngine {
    config: EngineConfig,
    pdns: Vec<Box<dyn Pdn>>,
    surfaces: Vec<EteeSurface>,
    predictor: ModePredictor,
    tenants: Mutex<BTreeMap<u32, Arc<TenantState>>>,
    snapshot_path: Option<PathBuf>,
    shutdown: AtomicBool,
    requests: AtomicU64,
    coalesced: AtomicU64,
    // Resilience counters (the v2 ServerStats block).
    shed: AtomicU64,
    deadline_expired: AtomicU64,
    panics: AtomicU64,
    quarantine_hits: AtomicU64,
    evictions: AtomicU64,
    /// Caught-panic counts per bit-exact request fingerprint.
    poison_log: Mutex<HashMap<u64, u32>>,
    /// Chaos hook, consulted at the top of [`ServeEngine::handle`].
    injector: RwLock<Option<Arc<FaultInjector>>>,
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("config", &self.config)
            .field("requests", &self.requests.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl ServeEngine {
    /// Boots a cold engine: builds the five topologies, trains the mode
    /// predictor, and tabulates the resident sample surfaces over
    /// [`SERVE_TDPS`] × [`SERVE_ARS`]. Training and surface building
    /// share one boot-time memo cache so overlapping lattice points are
    /// evaluated once.
    ///
    /// # Errors
    ///
    /// Propagates PDNspot evaluation errors from training or surface
    /// tabulation.
    pub fn new(config: EngineConfig) -> Result<Self, PdnError> {
        let params = ModelParams::paper_defaults();
        let boot_memo = config.memo_cache();
        let predictor =
            ModePredictor::train_with(&params, &SERVE_TDPS, &SERVE_ARS, Some(&boot_memo))?;
        Self::boot(config, params, predictor, &boot_memo, BTreeMap::new())
    }

    /// Boots a warm engine from a [`Snapshot`]: the predictor comes
    /// from its persisted firmware images (no retraining) and each
    /// tenant's memo cache is re-imported, so the first requests after
    /// a restart hit the cache.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::Wire`] with [`ErrorCode::Snapshot`] if a
    /// firmware image is malformed, and propagates surface-tabulation
    /// errors.
    pub fn from_snapshot(config: EngineConfig, snap: &Snapshot) -> Result<Self, PdnError> {
        let params = ModelParams::paper_defaults();
        let predictor = ModePredictor::from_firmware(&snap.ivr_firmware, &snap.ldo_firmware)
            .map_err(|e| PdnError::Wire {
                code: ErrorCode::Snapshot,
                message: format!("snapshot predictor firmware: {e}"),
            })?;
        let mut tenants = BTreeMap::new();
        for (tenant, entries) in &snap.tenants {
            let cache = config.memo_cache();
            cache.import(entries.clone());
            tenants.insert(*tenant, Arc::new(TenantState { cache }));
        }
        let boot_memo = config.memo_cache();
        Self::boot(config, params, predictor, &boot_memo, tenants)
    }

    fn boot(
        config: EngineConfig,
        params: ModelParams,
        predictor: ModePredictor,
        boot_memo: &MemoCache,
        tenants: BTreeMap<u32, Arc<TenantState>>,
    ) -> Result<Self, PdnError> {
        let pdns: Vec<Box<dyn Pdn>> = vec![
            Box::new(IvrPdn::new(params.clone())),
            Box::new(MbvrPdn::new(params.clone())),
            Box::new(LdoPdn::new(params.clone())),
            Box::new(IPlusMbvrPdn::new(params.clone())),
            Box::new(FlexWattsAuto::new(params)),
        ];
        let refs: Vec<&dyn Pdn> = pdns.iter().map(Box::as_ref).collect();
        let grid = SweepGrid::active(&SERVE_TDPS, &WorkloadType::ACTIVE_TYPES, &SERVE_ARS)?;
        let (surfaces, _) = sweep::surfaces(&refs, &grid, &ClientSoc, &config, Some(boot_memo))?;
        Ok(Self {
            config,
            pdns,
            surfaces,
            predictor,
            tenants: Mutex::new(tenants),
            snapshot_path: None,
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            quarantine_hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            poison_log: Mutex::new(HashMap::new()),
            injector: RwLock::new(None),
        })
    }

    /// Sets the file the Snapshot request persists to.
    #[must_use]
    pub fn with_snapshot_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.snapshot_path = Some(path.into());
        self
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The trained (or restored) mode predictor.
    #[must_use]
    pub fn predictor(&self) -> &ModePredictor {
        &self.predictor
    }

    /// The resident topology for a wire id.
    #[must_use]
    pub fn pdn(&self, id: PdnId) -> &dyn Pdn {
        self.pdns[id.index()].as_ref()
    }

    /// Whether a Shutdown request has been accepted.
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Requests a graceful shutdown (also reachable via the protocol).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Records `n` eval queries answered by coalescing (they are also
    /// counted as admitted requests).
    pub fn note_coalesced(&self, n: u64) {
        self.coalesced.fetch_add(n, Ordering::Relaxed);
        self.requests.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one request shed by queue age or tenant budget.
    pub fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request answered `DeadlineExceeded`.
    pub fn note_deadline_expired(&self) {
        self.deadline_expired.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one connection evicted by the slow-client defense.
    pub fn note_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one quarantined request answered `Poisoned`.
    pub fn note_quarantine_hit(&self) {
        self.quarantine_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a caught evaluation panic against the request's
    /// fingerprint, returning the total panics now logged for it.
    pub fn note_panic(&self, poison: u64) -> u32 {
        self.panics.fetch_add(1, Ordering::Relaxed);
        let mut log = self.poison_log.lock().unwrap_or_else(PoisonError::into_inner);
        let count = log.entry(poison).or_insert(0);
        *count += 1;
        *count
    }

    /// Whether a request fingerprint has panicked [`POISON_THRESHOLD`]
    /// or more times and is quarantined.
    #[must_use]
    pub fn is_quarantined(&self, poison: u64) -> bool {
        self.poison_log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&poison)
            .is_some_and(|&count| count >= POISON_THRESHOLD)
    }

    /// Installs (or clears) the chaos fault injector.
    pub fn set_fault_injector(&self, injector: Option<Arc<FaultInjector>>) {
        *self.injector.write().unwrap_or_else(PoisonError::into_inner) = injector;
    }

    /// The tenant's state, created on first contact.
    #[must_use]
    pub fn tenant(&self, id: u32) -> Arc<TenantState> {
        let mut map = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(
            map.entry(id)
                .or_insert_with(|| Arc::new(TenantState { cache: self.config.memo_cache() })),
        )
    }

    /// Builds the scenario a [`PointSpec`] describes — the same
    /// constructors a direct library caller would use, so served
    /// evaluations are bit-identical.
    ///
    /// # Errors
    ///
    /// Propagates scenario-construction errors.
    pub fn scenario_for(point: &PointSpec) -> Result<Scenario, PdnError> {
        match *point {
            PointSpec::Active { tdp, workload, ar } => {
                let soc = client_soc(Watts::new(tdp));
                let ar = ApplicationRatio::new(ar).map_err(PdnError::Units)?;
                Scenario::active_fixed_tdp_frequency(&soc, workload, ar)
            }
            PointSpec::Idle { tdp, state } => {
                Ok(Scenario::idle(&client_soc(Watts::new(tdp)), state))
            }
        }
    }

    /// Evaluates one PDN at one point through the tenant's memo cache.
    ///
    /// # Errors
    ///
    /// Propagates scenario and evaluation errors.
    pub fn eval_point(
        &self,
        tenant: u32,
        pdn: PdnId,
        point: &PointSpec,
    ) -> Result<PdnEvaluation, PdnError> {
        let tenant = self.tenant(tenant);
        let scenario = Self::scenario_for(point)?;
        tenant.cache.evaluate(self.pdn(pdn), &scenario)
    }

    /// The resident surface for a (topology, active workload) pair.
    #[must_use]
    pub fn surface(&self, pdn: PdnId, workload: WorkloadType) -> Option<&EteeSurface> {
        let name = self.pdn(pdn).kind().to_string();
        self.surfaces.iter().find(|s| s.pdn == name && s.workload_type == workload)
    }

    /// Answers one request. Eval requests normally arrive through the
    /// admission queue's coalescing batcher, which funnels back into
    /// [`ServeEngine::eval_point`]; handling them here too keeps the
    /// engine usable without a transport (tests, warm-restart replay).
    pub fn handle(&self, tenant: u32, body: &RequestBody) -> ResponseBody {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let injected = self
            .injector
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
            .and_then(|injector| injector(tenant, body));
        if let Some(fault) = injected {
            match fault {
                InjectedFault::Panic(what) => panic!("injected fault: {what}"),
                InjectedFault::Error(err) => return ResponseBody::Error(err),
                InjectedFault::DelayMs(ms) => std::thread::sleep(Duration::from_millis(ms)),
            }
        }
        match body {
            RequestBody::Ping => ResponseBody::Pong,
            RequestBody::Eval { pdn, point } => match self.eval_point(tenant, *pdn, point) {
                Ok(eval) => ResponseBody::Eval(eval),
                Err(e) => ResponseBody::Error(ServeError::from_pdn(&e)),
            },
            RequestBody::Sample { pdn, workload, tdp, ar } => match self.surface(*pdn, *workload) {
                Some(surface) => ResponseBody::Sample(surface.sample(*tdp, *ar)),
                None => ResponseBody::Error(ServeError::new(
                    ErrorCode::Unsupported,
                    format!("no resident surface for {pdn} / {workload}"),
                )),
            },
            RequestBody::Sweep { pdns, tdps, workloads, ars } => {
                self.sweep(tenant, pdns, tdps, workloads, ars)
            }
            RequestBody::Crossover { a, b, workload, ar, range } => {
                self.crossover(tenant, *a, *b, *workload, *ar, *range)
            }
            RequestBody::Stats => self.stats(tenant),
            RequestBody::Snapshot => match &self.snapshot_path {
                Some(path) => match self.write_snapshot(path) {
                    Ok((bytes, entries)) => ResponseBody::SnapshotDone { bytes, entries },
                    Err(e) => {
                        ResponseBody::Error(ServeError::new(ErrorCode::Snapshot, e.to_string()))
                    }
                },
                None => ResponseBody::Error(ServeError::new(
                    ErrorCode::Snapshot,
                    "daemon started without a snapshot path",
                )),
            },
            RequestBody::Shutdown => {
                self.request_shutdown();
                ResponseBody::ShuttingDown
            }
        }
    }

    fn sweep(
        &self,
        tenant: u32,
        pdns: &[PdnId],
        tdps: &[f64],
        workloads: &[WorkloadType],
        ars: &[f64],
    ) -> ResponseBody {
        let tenant = self.tenant(tenant);
        let refs: Vec<&dyn Pdn> = pdns.iter().map(|id| self.pdn(*id)).collect();
        let result = SweepGrid::active(tdps, workloads, ars).and_then(|grid| {
            sweep::surfaces(&refs, &grid, &ClientSoc, &self.config, Some(&tenant.cache))
        });
        match result {
            Ok((surfaces, _)) => ResponseBody::Sweep(surfaces),
            Err(e) => ResponseBody::Error(ServeError::from_pdn(&e)),
        }
    }

    fn crossover(
        &self,
        tenant: u32,
        a: PdnId,
        b: PdnId,
        workload: WorkloadType,
        ar: f64,
        range: (f64, f64),
    ) -> ResponseBody {
        let tenant = self.tenant(tenant);
        let result = ApplicationRatio::new(ar).map_err(PdnError::Units).and_then(|ar| {
            sweep::crossover(
                self.pdn(a),
                self.pdn(b),
                workload,
                ar,
                range,
                &ClientSoc,
                &self.config,
                Some(&tenant.cache),
            )
        });
        match result {
            Ok(verdict) => ResponseBody::Crossover(verdict),
            Err(e) => ResponseBody::Error(ServeError::from_pdn(&e)),
        }
    }

    fn stats(&self, tenant: u32) -> ResponseBody {
        let state = self.tenant(tenant);
        let memo = state.cache.stats();
        let tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner).len() as u64;
        ResponseBody::Stats {
            tenant: TenantStats {
                hits: memo.hits,
                misses: memo.misses,
                evictions: memo.evictions,
                bypasses: memo.bypasses,
                entries: state.cache.len() as u64,
                capacity: state.cache.capacity() as u64,
            },
            server: ServerStats {
                requests: self.requests.load(Ordering::Relaxed),
                coalesced: self.coalesced.load(Ordering::Relaxed),
                tenants,
                shed: self.shed.load(Ordering::Relaxed),
                deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
                panics: self.panics.load(Ordering::Relaxed),
                quarantined: self.quarantine_hits.load(Ordering::Relaxed),
                evictions: self.evictions.load(Ordering::Relaxed),
            },
        }
    }

    /// Captures the warm state: predictor firmware plus every tenant's
    /// memo entries in deterministic (tenant-ascending, shard-then-FIFO)
    /// order.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let [ivr, ldo] = self.predictor.firmware_images();
        let tenants: Vec<(u32, Vec<MemoEntry>)> = self
            .tenants
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(id, state)| (*id, state.cache.export()))
            .collect();
        Snapshot {
            ivr_firmware: ivr.as_bytes().to_vec(),
            ldo_firmware: ldo.as_bytes().to_vec(),
            tenants,
        }
    }

    /// Persists [`ServeEngine::snapshot`] to `path` (crash-safe:
    /// temp + fsync + rename, rotating the previous
    /// [`snapshot::DEFAULT_KEEP`] generations), returning the file
    /// size and total memo entries captured.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] on I/O failure.
    pub fn write_snapshot(&self, path: &Path) -> Result<(u64, u64), SnapshotError> {
        let snap = self.snapshot();
        let entries = snap.tenants.iter().map(|(_, e)| e.len() as u64).sum();
        let bytes = snapshot::write_file_rotated(path, &snap, snapshot::DEFAULT_KEEP)?;
        Ok((bytes, entries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config() -> EngineConfig {
        EngineConfig::builder()
            .workers(pdnspot::Workers::Serial)
            .memo_capacity(1 << 12)
            .build()
            .expect("valid config")
    }

    #[test]
    fn served_eval_matches_direct_library_call() {
        let engine = ServeEngine::new(test_config()).expect("engine boots");
        let point = PointSpec::Active { tdp: 15.0, workload: WorkloadType::MultiThread, ar: 0.56 };
        let served = engine.eval_point(7, PdnId::Ivr, &point).expect("serves");
        let scenario = ServeEngine::scenario_for(&point).expect("scenario");
        let direct = engine.pdn(PdnId::Ivr).evaluate(&scenario).expect("direct");
        assert_eq!(served.input_power.get().to_bits(), direct.input_power.get().to_bits());
        assert_eq!(served.etee.get().to_bits(), direct.etee.get().to_bits());
    }

    #[test]
    fn tenants_have_isolated_caches_and_stats() {
        let engine = ServeEngine::new(test_config()).expect("engine boots");
        let point = PointSpec::Active { tdp: 15.0, workload: WorkloadType::MultiThread, ar: 0.56 };
        engine.eval_point(1, PdnId::Ldo, &point).expect("tenant 1 eval");
        engine.eval_point(1, PdnId::Ldo, &point).expect("tenant 1 warm eval");
        engine.eval_point(2, PdnId::Ldo, &point).expect("tenant 2 eval");
        let t1 = engine.tenant(1).cache.stats();
        let t2 = engine.tenant(2).cache.stats();
        assert_eq!(t1.hits, 1, "tenant 1 second eval hits its own cache");
        assert_eq!(t2.hits, 0, "tenant 2 never hits tenant 1's entries");
        assert_eq!(t2.misses, 1);
    }

    #[test]
    fn snapshot_restore_serves_hot() {
        let engine = ServeEngine::new(test_config()).expect("engine boots");
        let point = PointSpec::Active { tdp: 25.0, workload: WorkloadType::Graphics, ar: 0.6 };
        let cold = engine.eval_point(3, PdnId::FlexWatts, &point).expect("cold eval");
        let snap = engine.snapshot();
        assert!(!snap.ivr_firmware.is_empty());

        let warm = ServeEngine::from_snapshot(test_config(), &snap).expect("warm boot");
        let served = warm.eval_point(3, PdnId::FlexWatts, &point).expect("warm eval");
        assert_eq!(served.input_power.get().to_bits(), cold.input_power.get().to_bits());
        let stats = warm.tenant(3).cache.stats();
        assert_eq!(stats.hits, 1, "restored cache answers without re-evaluating");
        assert_eq!(stats.misses, 0);
    }
}
