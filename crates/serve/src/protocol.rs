//! The daemon's typed request/response protocol.
//!
//! Each message is a [`Request`] or [`Response`] encoded into a frame
//! body (see [`crate::wire`]). Floating-point fields travel as IEEE-754
//! bit patterns, so a served value round-trips **bit-identically** —
//! the property the served-vs-library tests enforce.
//!
//! Errors cross the wire as [`ServeError`]: a stable
//! [`ErrorCode`] plus the rendered message plus enough structure
//! ([`ServeDetail`]) to rebuild the library's [`PdnError`] losslessly
//! on the client side.

use crate::wire::{BodyReader, BodyWriter, DecodeError, MAX_LIST};
use pdn_proc::PackageCState;
use pdn_units::{Amps, Efficiency, Volts, Watts};
use pdn_workload::WorkloadType;
use pdnspot::sweep::{Crossover, EteeSurface};
use pdnspot::{ErrorCode, LossBreakdown, PdnError, PdnEvaluation, RailReport};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Protocol revision carried by every request.
///
/// Version history:
/// - `1` — initial protocol (PR 5).
/// - `2` — adds [`Request::deadline_ms`], [`ServeError::retry_after_ms`],
///   and the resilience counters on [`ServerStats`]. Decoders accept
///   both versions; version-1 bodies read back with the new fields at
///   their defaults (no deadline, no retry hint, zero counters).
pub const PROTOCOL_VERSION: u16 = 2;

/// The oldest protocol revision decoders still accept.
pub const MIN_PROTOCOL_VERSION: u16 = 1;

fn check_version(version: u16) -> Result<u16, DecodeError> {
    if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
        Ok(version)
    } else {
        Err(DecodeError::Invalid("protocol version"))
    }
}

/// Longest axis a sweep request may carry (per axis).
pub const MAX_AXIS: usize = 64;

/// Deepest [`ServeError`] cause chain accepted on decode.
pub const MAX_ERROR_DEPTH: usize = 8;

/// The five PDN topologies the daemon serves, by stable wire id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PdnId {
    /// Integrated voltage regulators (Fig. 1a).
    Ivr,
    /// Motherboard voltage regulators (Fig. 1b).
    Mbvr,
    /// Low-dropout regulators (Fig. 1c).
    Ldo,
    /// Skylake-X hybrid: IVR compute + board SA/IO.
    IPlusMbvr,
    /// FlexWatts with automatic per-scenario mode selection.
    FlexWatts,
}

impl PdnId {
    /// Every topology, in wire-id (and engine-index) order.
    pub const ALL: [PdnId; 5] =
        [PdnId::Ivr, PdnId::Mbvr, PdnId::Ldo, PdnId::IPlusMbvr, PdnId::FlexWatts];

    /// The stable wire id.
    #[must_use]
    pub fn to_wire(self) -> u8 {
        match self {
            PdnId::Ivr => 0,
            PdnId::Mbvr => 1,
            PdnId::Ldo => 2,
            PdnId::IPlusMbvr => 3,
            PdnId::FlexWatts => 4,
        }
    }

    /// Decodes a wire id.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::BadTag`] for unknown ids.
    pub fn from_wire(tag: u8) -> Result<Self, DecodeError> {
        Self::ALL.get(tag as usize).copied().ok_or(DecodeError::BadTag { what: "pdn id", tag })
    }

    /// The engine's topology-table index (identical to the wire id).
    #[must_use]
    pub fn index(self) -> usize {
        self.to_wire() as usize
    }
}

impl fmt::Display for PdnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PdnId::Ivr => "IVR",
            PdnId::Mbvr => "MBVR",
            PdnId::Ldo => "LDO",
            PdnId::IPlusMbvr => "I+MBVR",
            PdnId::FlexWatts => "FlexWatts",
        };
        f.write_str(name)
    }
}

pub(crate) fn workload_to_wire(wl: WorkloadType) -> u8 {
    match wl {
        WorkloadType::SingleThread => 0,
        WorkloadType::MultiThread => 1,
        WorkloadType::Graphics => 2,
        WorkloadType::BatteryLife => 3,
    }
}

fn workload_from_wire(tag: u8) -> Result<WorkloadType, DecodeError> {
    match tag {
        0 => Ok(WorkloadType::SingleThread),
        1 => Ok(WorkloadType::MultiThread),
        2 => Ok(WorkloadType::Graphics),
        3 => Ok(WorkloadType::BatteryLife),
        tag => Err(DecodeError::BadTag { what: "workload type", tag }),
    }
}

fn cstate_to_wire(state: PackageCState) -> u8 {
    match state {
        PackageCState::C0Min => 0,
        PackageCState::C2 => 2,
        PackageCState::C3 => 3,
        PackageCState::C6 => 6,
        PackageCState::C7 => 7,
        PackageCState::C8 => 8,
    }
}

fn cstate_from_wire(tag: u8) -> Result<PackageCState, DecodeError> {
    match tag {
        0 => Ok(PackageCState::C0Min),
        2 => Ok(PackageCState::C2),
        3 => Ok(PackageCState::C3),
        6 => Ok(PackageCState::C6),
        7 => Ok(PackageCState::C7),
        8 => Ok(PackageCState::C8),
        tag => Err(DecodeError::BadTag { what: "package C-state", tag }),
    }
}

/// One operating point of an [`RequestBody::Eval`] query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PointSpec {
    /// An active fixed-TDP-frequency point (the Fig. 4 design point).
    Active {
        /// Design TDP in watts.
        tdp: f64,
        /// Workload classification.
        workload: WorkloadType,
        /// Application ratio in (0, 1].
        ar: f64,
    },
    /// An idle package power state.
    Idle {
        /// Design TDP in watts (sizes the SoC).
        tdp: f64,
        /// The package C-state.
        state: PackageCState,
    },
}

impl PointSpec {
    /// A collision-free coalescing key: two specs with equal keys are
    /// the same operating point bit-for-bit.
    #[must_use]
    pub fn key(&self) -> (u8, u64, u8, u64) {
        match *self {
            PointSpec::Active { tdp, workload, ar } => {
                (0, tdp.to_bits(), workload_to_wire(workload), ar.to_bits())
            }
            PointSpec::Idle { tdp, state } => (1, tdp.to_bits(), cstate_to_wire(state), 0),
        }
    }

    fn encode(&self, w: &mut BodyWriter) {
        match *self {
            PointSpec::Active { tdp, workload, ar } => {
                w.u8(0);
                w.f64(tdp);
                w.u8(workload_to_wire(workload));
                w.f64(ar);
            }
            PointSpec::Idle { tdp, state } => {
                w.u8(1);
                w.f64(tdp);
                w.u8(cstate_to_wire(state));
            }
        }
    }

    fn decode(r: &mut BodyReader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(PointSpec::Active {
                tdp: r.f64()?,
                workload: workload_from_wire(r.u8()?)?,
                ar: r.f64()?,
            }),
            1 => Ok(PointSpec::Idle { tdp: r.f64()?, state: cstate_from_wire(r.u8()?)? }),
            tag => Err(DecodeError::BadTag { what: "point spec", tag }),
        }
    }
}

/// A framed client request: tenant routing, correlation id, and the
/// typed query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// The tenant whose memo shard and stats this request charges.
    pub tenant: u32,
    /// Client-chosen correlation id, echoed on the response.
    pub id: u64,
    /// Deadline budget in milliseconds, measured from admission; `0`
    /// means no deadline. A request whose budget lapses before (or
    /// while) it is dispatched is answered with
    /// [`ErrorCode::DeadlineExceeded`] instead of its result — but a
    /// lapsed deadline never cancels coalesced work that other
    /// requests still wait on.
    pub deadline_ms: u32,
    /// The query itself.
    pub body: RequestBody,
}

/// The typed queries the daemon answers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RequestBody {
    /// Liveness probe.
    Ping,
    /// Evaluate one PDN at one operating point.
    Eval {
        /// Topology to evaluate.
        pdn: PdnId,
        /// Operating point.
        point: PointSpec,
    },
    /// Bilinear [`EteeSurface::sample`] against the daemon's resident
    /// surfaces.
    Sample {
        /// Topology whose surface to query.
        pdn: PdnId,
        /// Active workload type of the surface.
        workload: WorkloadType,
        /// Query TDP in watts.
        tdp: f64,
        /// Query application ratio.
        ar: f64,
    },
    /// Full grid sweep returning ETEE surfaces.
    Sweep {
        /// Topologies to sweep.
        pdns: Vec<PdnId>,
        /// TDP axis in watts.
        tdps: Vec<f64>,
        /// Workload types (active only).
        workloads: Vec<WorkloadType>,
        /// AR axis.
        ars: Vec<f64>,
    },
    /// ETEE crossover TDP between two topologies.
    Crossover {
        /// First topology.
        a: PdnId,
        /// Second topology.
        b: PdnId,
        /// Workload type.
        workload: WorkloadType,
        /// Application ratio.
        ar: f64,
        /// TDP search range (lo, hi) in watts.
        range: (f64, f64),
    },
    /// Per-tenant cache statistics and server totals.
    Stats,
    /// Persist warm memo shards and trained predictors to disk.
    Snapshot,
    /// Graceful daemon shutdown.
    Shutdown,
}

impl RequestBody {
    fn kind(&self) -> u8 {
        match self {
            RequestBody::Ping => 0,
            RequestBody::Eval { .. } => 1,
            RequestBody::Sample { .. } => 2,
            RequestBody::Sweep { .. } => 3,
            RequestBody::Crossover { .. } => 4,
            RequestBody::Stats => 5,
            RequestBody::Snapshot => 6,
            RequestBody::Shutdown => 7,
        }
    }
}

fn encode_f64_axis(w: &mut BodyWriter, axis: &[f64]) {
    w.u32(u32::try_from(axis.len()).unwrap_or(u32::MAX));
    for &v in axis {
        w.f64(v);
    }
}

fn decode_f64_axis(
    r: &mut BodyReader<'_>,
    what: &'static str,
    max: usize,
) -> Result<Vec<f64>, DecodeError> {
    let len = r.list_len(what, max)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(r.f64()?);
    }
    Ok(out)
}

/// Encodes a request into a frame body.
#[must_use]
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut w = BodyWriter::new();
    w.u16(PROTOCOL_VERSION);
    w.u32(req.tenant);
    w.u64(req.id);
    w.u32(req.deadline_ms);
    w.u8(req.body.kind());
    match &req.body {
        RequestBody::Ping | RequestBody::Stats | RequestBody::Snapshot | RequestBody::Shutdown => {}
        RequestBody::Eval { pdn, point } => {
            w.u8(pdn.to_wire());
            point.encode(&mut w);
        }
        RequestBody::Sample { pdn, workload, tdp, ar } => {
            w.u8(pdn.to_wire());
            w.u8(workload_to_wire(*workload));
            w.f64(*tdp);
            w.f64(*ar);
        }
        RequestBody::Sweep { pdns, tdps, workloads, ars } => {
            w.u32(u32::try_from(pdns.len()).unwrap_or(u32::MAX));
            for p in pdns {
                w.u8(p.to_wire());
            }
            encode_f64_axis(&mut w, tdps);
            w.u32(u32::try_from(workloads.len()).unwrap_or(u32::MAX));
            for wl in workloads {
                w.u8(workload_to_wire(*wl));
            }
            encode_f64_axis(&mut w, ars);
        }
        RequestBody::Crossover { a, b, workload, ar, range } => {
            w.u8(a.to_wire());
            w.u8(b.to_wire());
            w.u8(workload_to_wire(*workload));
            w.f64(*ar);
            w.f64(range.0);
            w.f64(range.1);
        }
    }
    w.into_bytes()
}

/// Decodes a request from a frame body. Never panics.
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncation, unknown tags, out-of-range
/// lengths, a protocol-version mismatch, or trailing bytes.
pub fn decode_request(body: &[u8]) -> Result<Request, DecodeError> {
    let mut r = BodyReader::new(body);
    let version = check_version(r.u16()?)?;
    let tenant = r.u32()?;
    let id = r.u64()?;
    let deadline_ms = if version >= 2 { r.u32()? } else { 0 };
    let kind = r.u8()?;
    let body = match kind {
        0 => RequestBody::Ping,
        1 => {
            RequestBody::Eval { pdn: PdnId::from_wire(r.u8()?)?, point: PointSpec::decode(&mut r)? }
        }
        2 => RequestBody::Sample {
            pdn: PdnId::from_wire(r.u8()?)?,
            workload: workload_from_wire(r.u8()?)?,
            tdp: r.f64()?,
            ar: r.f64()?,
        },
        3 => {
            let n_pdns = r.list_len("sweep pdns", 16)?;
            let mut pdns = Vec::with_capacity(n_pdns);
            for _ in 0..n_pdns {
                pdns.push(PdnId::from_wire(r.u8()?)?);
            }
            let tdps = decode_f64_axis(&mut r, "sweep tdps", MAX_AXIS)?;
            let n_wls = r.list_len("sweep workloads", 8)?;
            let mut workloads = Vec::with_capacity(n_wls);
            for _ in 0..n_wls {
                workloads.push(workload_from_wire(r.u8()?)?);
            }
            let ars = decode_f64_axis(&mut r, "sweep ars", MAX_AXIS)?;
            RequestBody::Sweep { pdns, tdps, workloads, ars }
        }
        4 => RequestBody::Crossover {
            a: PdnId::from_wire(r.u8()?)?,
            b: PdnId::from_wire(r.u8()?)?,
            workload: workload_from_wire(r.u8()?)?,
            ar: r.f64()?,
            range: (r.f64()?, r.f64()?),
        },
        5 => RequestBody::Stats,
        6 => RequestBody::Snapshot,
        7 => RequestBody::Shutdown,
        tag => return Err(DecodeError::BadTag { what: "request kind", tag }),
    };
    r.finish()?;
    Ok(Request { tenant, id, deadline_ms, body })
}

/// Per-tenant cache statistics in a [`ResponseBody::Stats`] reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TenantStats {
    /// Memo lookups answered from the tenant's cache.
    pub hits: u64,
    /// Memo lookups that fell through to a real evaluation.
    pub misses: u64,
    /// Entries dropped by the tenant's eviction budget.
    pub evictions: u64,
    /// Evaluations that bypassed the cache (no memo token).
    pub bypasses: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// The tenant's eviction budget (max resident entries).
    pub capacity: u64,
}

/// Daemon-wide counters in a [`ResponseBody::Stats`] reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServerStats {
    /// Requests admitted since boot.
    pub requests: u64,
    /// Eval queries answered by piggybacking on an identical in-batch
    /// query (admission-control coalescing).
    pub coalesced: u64,
    /// Distinct tenants seen since boot.
    pub tenants: u64,
    /// Requests shed by queue-age or per-tenant budget (answered
    /// `Overloaded` with a `RetryAfter` hint).
    pub shed: u64,
    /// Requests answered `DeadlineExceeded` (expired in queue or while
    /// their coalesced batch ran).
    pub deadline_expired: u64,
    /// Evaluation panics caught and isolated by the dispatcher.
    pub panics: u64,
    /// Bit-exact request bodies quarantined after repeated panics
    /// (answered `Poisoned`).
    pub quarantined: u64,
    /// Connections evicted by the slow-client defense (full write
    /// buffer or lapsed write deadline).
    pub evictions: u64,
}

/// A framed daemon reply: correlation id plus the typed result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// The request's correlation id.
    pub id: u64,
    /// The result.
    pub body: ResponseBody,
}

/// The typed results the daemon returns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ResponseBody {
    /// Liveness acknowledgement.
    Pong,
    /// A full PDN evaluation, bit-identical to the library's.
    Eval(PdnEvaluation),
    /// A bilinear surface sample (`None` outside the surface hull).
    Sample(Option<f64>),
    /// Swept ETEE surfaces, one per (PDN, workload type).
    Sweep(Vec<EteeSurface>),
    /// The crossover verdict.
    Crossover(Crossover),
    /// Tenant and server statistics.
    Stats {
        /// The requesting tenant's cache counters.
        tenant: TenantStats,
        /// Daemon-wide totals.
        server: ServerStats,
    },
    /// Snapshot persisted.
    SnapshotDone {
        /// Snapshot file size in bytes.
        bytes: u64,
        /// Memo entries captured across all tenants.
        entries: u64,
    },
    /// Shutdown acknowledged; the daemon is draining.
    ShuttingDown,
    /// The request failed.
    Error(ServeError),
}

impl ResponseBody {
    fn kind(&self) -> u8 {
        match self {
            ResponseBody::Pong => 0,
            ResponseBody::Eval(_) => 1,
            ResponseBody::Sample(_) => 2,
            ResponseBody::Sweep(_) => 3,
            ResponseBody::Crossover(_) => 4,
            ResponseBody::Stats { .. } => 5,
            ResponseBody::SnapshotDone { .. } => 6,
            ResponseBody::ShuttingDown => 7,
            ResponseBody::Error(_) => 0xFF,
        }
    }
}

/// Encodes a [`PdnEvaluation`] field-by-field as IEEE-754 bit patterns.
/// Shared by the protocol and the snapshot format.
pub fn encode_evaluation(w: &mut BodyWriter, eval: &PdnEvaluation) {
    w.f64(eval.nominal_power.get());
    w.f64(eval.input_power.get());
    w.f64(eval.etee.get());
    w.f64(eval.breakdown.vr_loss.get());
    w.f64(eval.breakdown.conduction_compute.get());
    w.f64(eval.breakdown.conduction_sa_io.get());
    w.f64(eval.breakdown.other.get());
    w.f64(eval.chip_input_current.get());
    w.u32(u32::try_from(eval.rails.len()).unwrap_or(u32::MAX));
    for rail in &eval.rails {
        w.str(&rail.name);
        w.f64(rail.voltage.get());
        w.f64(rail.current.get());
        w.f64(rail.input_power.get());
        match rail.efficiency {
            Some(eff) => {
                w.u8(1);
                w.f64(eff.get());
            }
            None => w.u8(0),
        }
    }
}

/// Decodes a [`PdnEvaluation`]; the inverse of [`encode_evaluation`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncation or out-of-domain
/// efficiencies.
pub fn decode_evaluation(r: &mut BodyReader<'_>) -> Result<PdnEvaluation, DecodeError> {
    let nominal_power = Watts::new(r.f64()?);
    let input_power = Watts::new(r.f64()?);
    let etee = Efficiency::new(r.f64()?).map_err(|_| DecodeError::Invalid("etee"))?;
    let breakdown = LossBreakdown {
        vr_loss: Watts::new(r.f64()?),
        conduction_compute: Watts::new(r.f64()?),
        conduction_sa_io: Watts::new(r.f64()?),
        other: Watts::new(r.f64()?),
    };
    let chip_input_current = Amps::new(r.f64()?);
    let n_rails = r.list_len("rails", MAX_LIST)?;
    let mut rails = Vec::with_capacity(n_rails);
    for _ in 0..n_rails {
        let name = r.str("rail name")?;
        let voltage = Volts::new(r.f64()?);
        let current = Amps::new(r.f64()?);
        let input_power = Watts::new(r.f64()?);
        let efficiency = match r.u8()? {
            0 => None,
            1 => Some(
                Efficiency::new(r.f64()?).map_err(|_| DecodeError::Invalid("rail efficiency"))?,
            ),
            tag => return Err(DecodeError::BadTag { what: "rail efficiency option", tag }),
        };
        rails.push(RailReport { name, voltage, current, input_power, efficiency });
    }
    Ok(PdnEvaluation { nominal_power, input_power, etee, breakdown, chip_input_current, rails })
}

fn encode_surface(w: &mut BodyWriter, s: &EteeSurface) {
    w.str(&s.pdn);
    w.u8(workload_to_wire(s.workload_type));
    encode_f64_axis(w, &s.tdps);
    encode_f64_axis(w, &s.ars);
    encode_f64_axis(w, &s.values);
}

fn decode_surface(r: &mut BodyReader<'_>) -> Result<EteeSurface, DecodeError> {
    Ok(EteeSurface {
        pdn: r.str("surface pdn")?,
        workload_type: workload_from_wire(r.u8()?)?,
        tdps: decode_f64_axis(r, "surface tdps", MAX_AXIS)?,
        ars: decode_f64_axis(r, "surface ars", MAX_AXIS)?,
        values: decode_f64_axis(r, "surface values", MAX_LIST)?,
    })
}

/// Encodes a response into a frame body.
#[must_use]
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut w = BodyWriter::new();
    w.u16(PROTOCOL_VERSION);
    w.u64(resp.id);
    w.u8(resp.body.kind());
    match &resp.body {
        ResponseBody::Pong | ResponseBody::ShuttingDown => {}
        ResponseBody::Eval(eval) => encode_evaluation(&mut w, eval),
        ResponseBody::Sample(sample) => match sample {
            Some(v) => {
                w.u8(1);
                w.f64(*v);
            }
            None => w.u8(0),
        },
        ResponseBody::Sweep(surfaces) => {
            w.u32(u32::try_from(surfaces.len()).unwrap_or(u32::MAX));
            for s in surfaces {
                encode_surface(&mut w, s);
            }
        }
        ResponseBody::Crossover(c) => match c {
            Crossover::AlwaysFirst => w.u8(0),
            Crossover::AlwaysSecond => w.u8(1),
            Crossover::At(tdp) => {
                w.u8(2);
                w.f64(tdp.get());
            }
        },
        ResponseBody::Stats { tenant, server } => {
            w.u64(tenant.hits);
            w.u64(tenant.misses);
            w.u64(tenant.evictions);
            w.u64(tenant.bypasses);
            w.u64(tenant.entries);
            w.u64(tenant.capacity);
            w.u64(server.requests);
            w.u64(server.coalesced);
            w.u64(server.tenants);
            w.u64(server.shed);
            w.u64(server.deadline_expired);
            w.u64(server.panics);
            w.u64(server.quarantined);
            w.u64(server.evictions);
        }
        ResponseBody::SnapshotDone { bytes, entries } => {
            w.u64(*bytes);
            w.u64(*entries);
        }
        ResponseBody::Error(err) => err.encode(&mut w),
    }
    w.into_bytes()
}

/// Decodes a response from a frame body. Never panics.
///
/// # Errors
///
/// Returns a [`DecodeError`] on any malformed input.
pub fn decode_response(body: &[u8]) -> Result<Response, DecodeError> {
    let mut r = BodyReader::new(body);
    let version = check_version(r.u16()?)?;
    let id = r.u64()?;
    let kind = r.u8()?;
    let body = match kind {
        0 => ResponseBody::Pong,
        1 => ResponseBody::Eval(decode_evaluation(&mut r)?),
        2 => ResponseBody::Sample(match r.u8()? {
            0 => None,
            1 => Some(r.f64()?),
            tag => return Err(DecodeError::BadTag { what: "sample option", tag }),
        }),
        3 => {
            let n = r.list_len("surfaces", 256)?;
            let mut surfaces = Vec::with_capacity(n);
            for _ in 0..n {
                surfaces.push(decode_surface(&mut r)?);
            }
            ResponseBody::Sweep(surfaces)
        }
        4 => ResponseBody::Crossover(match r.u8()? {
            0 => Crossover::AlwaysFirst,
            1 => Crossover::AlwaysSecond,
            2 => Crossover::At(Watts::new(r.f64()?)),
            tag => return Err(DecodeError::BadTag { what: "crossover", tag }),
        }),
        5 => ResponseBody::Stats {
            tenant: TenantStats {
                hits: r.u64()?,
                misses: r.u64()?,
                evictions: r.u64()?,
                bypasses: r.u64()?,
                entries: r.u64()?,
                capacity: r.u64()?,
            },
            server: {
                let mut server = ServerStats {
                    requests: r.u64()?,
                    coalesced: r.u64()?,
                    tenants: r.u64()?,
                    ..ServerStats::default()
                };
                if version >= 2 {
                    server.shed = r.u64()?;
                    server.deadline_expired = r.u64()?;
                    server.panics = r.u64()?;
                    server.quarantined = r.u64()?;
                    server.evictions = r.u64()?;
                }
                server
            },
        },
        6 => ResponseBody::SnapshotDone { bytes: r.u64()?, entries: r.u64()? },
        7 => ResponseBody::ShuttingDown,
        0xFF => ResponseBody::Error(ServeError::decode(&mut r, version, 0)?),
        tag => return Err(DecodeError::BadTag { what: "response kind", tag }),
    };
    r.finish()?;
    Ok(Response { id, body })
}

/// The structured remainder of a [`ServeError`]: exactly enough to
/// rebuild the library error losslessly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServeDetail {
    /// A leaf error carrying only its code and rendered message
    /// (regulator and unit errors, or errors decoded from a foreign
    /// peer). Rebuilds as [`PdnError::Wire`].
    Opaque,
    /// [`PdnError::Scenario`]'s raw message.
    Scenario(String),
    /// [`PdnError::Degraded`]'s component and reason.
    Degraded {
        /// The degraded component.
        component: String,
        /// Why it degraded.
        reason: String,
    },
    /// [`PdnError::Lattice`]'s coordinates plus the boxed cause.
    Lattice {
        /// The PDN being evaluated, if known.
        pdn: Option<String>,
        /// The lattice point description.
        point: String,
        /// The underlying failure.
        cause: Box<ServeError>,
    },
}

/// A wire-ready error: stable code, rendered message, and lossless
/// structure.
///
/// Conversions are lossless in both directions:
/// `ServeError → PdnError → ServeError` is the identity, and
/// `PdnError → ServeError → PdnError` preserves the [`ErrorCode`], the
/// rendered message, and the full cause chain at every level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeError {
    /// The stable error code.
    pub code: ErrorCode,
    /// The rendered, human-readable message.
    pub message: String,
    /// For retryable codes, the server's backoff hint: wait at least
    /// this many milliseconds before retrying. `None` means the client
    /// should apply its own exponential backoff (from ~10 ms). Terminal
    /// codes never carry a hint.
    pub retry_after_ms: Option<u32>,
    /// Structure for lossless reconstruction.
    pub detail: ServeDetail,
}

impl ServeError {
    /// A leaf error from a code and message.
    #[must_use]
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self { code, message: message.into(), retry_after_ms: None, detail: ServeDetail::Opaque }
    }

    /// Attaches a `RetryAfter` hint (meaningful only on retryable
    /// codes).
    #[must_use]
    pub fn with_retry_after(mut self, ms: u32) -> Self {
        self.retry_after_ms = Some(ms);
        self
    }

    /// Captures a library error losslessly.
    #[must_use]
    pub fn from_pdn(err: &PdnError) -> Self {
        let message = err.to_string();
        match err {
            PdnError::Scenario(msg) => Self {
                code: ErrorCode::Scenario,
                message,
                retry_after_ms: None,
                detail: ServeDetail::Scenario(msg.clone()),
            },
            PdnError::Degraded { component, reason } => Self {
                code: ErrorCode::Degraded,
                message,
                retry_after_ms: None,
                detail: ServeDetail::Degraded {
                    component: component.clone(),
                    reason: reason.clone(),
                },
            },
            PdnError::Lattice { pdn, point, source } => Self {
                code: ErrorCode::Lattice,
                message,
                retry_after_ms: None,
                detail: ServeDetail::Lattice {
                    pdn: pdn.clone(),
                    point: point.clone(),
                    cause: Box::new(Self::from_pdn(source)),
                },
            },
            PdnError::Shared(inner) => Self::from_pdn(inner),
            PdnError::Wire { code, message: msg } => Self::new(*code, msg.clone()),
            other => Self::new(other.code(), message),
        }
    }

    /// Rebuilds the library error this frame captured. Structured
    /// variants are restored exactly; opaque leaves become
    /// [`PdnError::Wire`] with the same code and message.
    #[must_use]
    pub fn into_pdn(self) -> PdnError {
        match self.detail {
            ServeDetail::Opaque => PdnError::Wire { code: self.code, message: self.message },
            ServeDetail::Scenario(msg) => PdnError::Scenario(msg),
            ServeDetail::Degraded { component, reason } => PdnError::Degraded { component, reason },
            ServeDetail::Lattice { pdn, point, cause } => {
                PdnError::Lattice { pdn, point, source: Box::new(cause.into_pdn()) }
            }
        }
    }

    fn encode(&self, w: &mut BodyWriter) {
        w.u16(self.code.to_wire());
        w.str(&self.message);
        // v2: the retry hint travels as a bare u32, 0 = no hint.
        w.u32(self.retry_after_ms.unwrap_or(0));
        match &self.detail {
            ServeDetail::Opaque => w.u8(0),
            ServeDetail::Scenario(msg) => {
                w.u8(1);
                w.str(msg);
            }
            ServeDetail::Degraded { component, reason } => {
                w.u8(2);
                w.str(component);
                w.str(reason);
            }
            ServeDetail::Lattice { pdn, point, cause } => {
                w.u8(3);
                match pdn {
                    Some(name) => {
                        w.u8(1);
                        w.str(name);
                    }
                    None => w.u8(0),
                }
                w.str(point);
                cause.encode(w);
            }
        }
    }

    fn decode(r: &mut BodyReader<'_>, version: u16, depth: usize) -> Result<Self, DecodeError> {
        if depth > MAX_ERROR_DEPTH {
            return Err(DecodeError::BadLength { what: "error cause chain", len: depth });
        }
        let code = ErrorCode::from_wire(r.u16()?);
        let message = r.str("error message")?;
        let retry_after_ms = if version >= 2 {
            match r.u32()? {
                0 => None,
                ms => Some(ms),
            }
        } else {
            None
        };
        let detail = match r.u8()? {
            0 => ServeDetail::Opaque,
            1 => ServeDetail::Scenario(r.str("scenario message")?),
            2 => ServeDetail::Degraded {
                component: r.str("degraded component")?,
                reason: r.str("degraded reason")?,
            },
            3 => {
                let pdn = match r.u8()? {
                    0 => None,
                    1 => Some(r.str("lattice pdn")?),
                    tag => return Err(DecodeError::BadTag { what: "lattice pdn option", tag }),
                };
                let point = r.str("lattice point")?;
                let cause = Box::new(Self::decode(r, version, depth + 1)?);
                ServeDetail::Lattice { pdn, point, cause }
            }
            tag => return Err(DecodeError::BadTag { what: "error detail", tag }),
        };
        Ok(Self { code, message, retry_after_ms, detail })
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl From<&PdnError> for ServeError {
    fn from(err: &PdnError) -> Self {
        Self::from_pdn(err)
    }
}

impl From<PdnError> for ServeError {
    fn from(err: PdnError) -> Self {
        Self::from_pdn(&err)
    }
}

impl From<ServeError> for PdnError {
    fn from(err: ServeError) -> Self {
        err.into_pdn()
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: &Request) {
        let body = encode_request(req);
        let decoded = decode_request(&body).expect("request decodes");
        assert_eq!(&decoded, req);
    }

    fn round_trip_response(resp: &Response) {
        let body = encode_response(resp);
        let decoded = decode_response(&body).expect("response decodes");
        assert_eq!(&decoded, resp);
    }

    #[test]
    fn request_variants_round_trip() {
        round_trip_request(&Request { tenant: 0, id: 1, deadline_ms: 0, body: RequestBody::Ping });
        round_trip_request(&Request {
            tenant: 3,
            id: 42,
            deadline_ms: 250,
            body: RequestBody::Eval {
                pdn: PdnId::FlexWatts,
                point: PointSpec::Active {
                    tdp: 15.0,
                    workload: WorkloadType::MultiThread,
                    ar: 0.56,
                },
            },
        });
        round_trip_request(&Request {
            tenant: 7,
            id: 9,
            deadline_ms: 0,
            body: RequestBody::Sweep {
                pdns: vec![PdnId::Ivr, PdnId::Ldo],
                tdps: vec![4.0, 15.0, 50.0],
                workloads: vec![WorkloadType::SingleThread],
                ars: vec![0.4, 0.8],
            },
        });
        round_trip_request(&Request {
            tenant: 1,
            id: 2,
            deadline_ms: u32::MAX,
            body: RequestBody::Crossover {
                a: PdnId::Ivr,
                b: PdnId::Ldo,
                workload: WorkloadType::Graphics,
                ar: 0.6,
                range: (4.0, 50.0),
            },
        });
    }

    #[test]
    fn error_response_round_trips_nested_lattice() {
        let lib = PdnError::Lattice {
            pdn: Some("IVR".into()),
            point: "TDP=15W MT AR=0.56".into(),
            source: Box::new(PdnError::Scenario("no powered domain".into())),
        };
        let serve = ServeError::from_pdn(&lib);
        round_trip_response(&Response { id: 5, body: ResponseBody::Error(serve.clone()) });

        // ServeError -> PdnError -> ServeError is the identity.
        let rebuilt = serve.clone().into_pdn();
        assert_eq!(ServeError::from_pdn(&rebuilt), serve);
        // The rebuilt library error is the original, exactly.
        assert_eq!(rebuilt.to_string(), lib.to_string());
        assert_eq!(rebuilt.code(), lib.code());
    }

    /// A version-1 body (no deadline, no retry hint, short stats block)
    /// must still decode, with the v2 fields at their defaults.
    #[test]
    fn version_1_bodies_still_decode() {
        let mut w = BodyWriter::new();
        w.u16(1); // version 1
        w.u32(9); // tenant
        w.u64(77); // id — no deadline field in v1
        w.u8(0); // Ping
        let req = decode_request(&w.into_bytes()).expect("v1 request decodes");
        assert_eq!(req, Request { tenant: 9, id: 77, deadline_ms: 0, body: RequestBody::Ping });

        let mut w = BodyWriter::new();
        w.u16(1); // version 1
        w.u64(77); // id
        w.u8(0xFF); // Error
        w.u16(ErrorCode::Overloaded.to_wire());
        w.str("queue full"); // no retry_after field in v1
        w.u8(0); // Opaque
        let resp = decode_response(&w.into_bytes()).expect("v1 response decodes");
        let ResponseBody::Error(err) = resp.body else { panic!("expected error body") };
        assert_eq!(err.code, ErrorCode::Overloaded);
        assert_eq!(err.retry_after_ms, None);

        let mut w = BodyWriter::new();
        w.u16(1); // version 1
        w.u64(5); // id
        w.u8(5); // Stats
        for v in 0..6u64 {
            w.u64(v); // tenant stats
        }
        w.u64(10);
        w.u64(2);
        w.u64(3); // v1 server stats end here
        let resp = decode_response(&w.into_bytes()).expect("v1 stats decodes");
        let ResponseBody::Stats { server, .. } = resp.body else { panic!("expected stats") };
        assert_eq!(
            server,
            ServerStats { requests: 10, coalesced: 2, tenants: 3, ..ServerStats::default() }
        );
    }

    #[test]
    fn retry_after_hints_round_trip() {
        let err = ServeError::new(ErrorCode::Overloaded, "queue is 2s old").with_retry_after(350);
        round_trip_response(&Response { id: 8, body: ResponseBody::Error(err) });
    }

    #[test]
    fn malformed_bodies_never_panic() {
        let body =
            encode_request(&Request { tenant: 0, id: 0, deadline_ms: 0, body: RequestBody::Ping });
        for cut in 0..body.len() {
            assert!(decode_request(&body[..cut]).is_err());
        }
        let mut trailing = body.clone();
        trailing.push(0);
        assert_eq!(decode_request(&trailing).unwrap_err(), DecodeError::Trailing(1));
        let mut bad_version = body;
        bad_version[0] = 0xFE;
        assert_eq!(
            decode_request(&bad_version).unwrap_err(),
            DecodeError::Invalid("protocol version")
        );
    }
}
