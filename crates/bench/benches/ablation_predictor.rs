//! Ablation bench: predictor firmware-table resolution vs training time,
//! with the accuracy-vs-footprint tradeoff printed alongside.
//!
//! DESIGN.md calls this design choice out: the PMU stores ETEE grids whose
//! density trades firmware bytes against prediction accuracy near the
//! crossover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexwatts::{FlexWattsPdn, ModePredictor, PdnMode, PredictorInputs};
use pdn_proc::client_soc;
use pdn_units::{ApplicationRatio, Watts};
use pdn_workload::WorkloadType;
use pdnspot::{ModelParams, Pdn, Scenario};
use std::hint::black_box;

fn grid(n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64).collect()
}

/// Fraction of off-knot probe points where the predictor agrees with a
/// brute-force oracle.
fn oracle_agreement(predictor: &ModePredictor, params: &ModelParams) -> f64 {
    let ivr = FlexWattsPdn::new(params.clone(), PdnMode::IvrMode);
    let ldo = FlexWattsPdn::new(params.clone(), PdnMode::LdoMode);
    let mut agree = 0usize;
    let mut total = 0usize;
    for tdp in [6.0, 13.0, 21.0, 31.0, 44.0] {
        let soc = client_soc(Watts::new(tdp));
        for wl in WorkloadType::ACTIVE_TYPES {
            for ar_v in [0.47, 0.63, 0.77] {
                let ar = ApplicationRatio::new(ar_v).unwrap();
                let s = Scenario::active_fixed_tdp_frequency(&soc, wl, ar).unwrap();
                let oracle = if ivr.evaluate(&s).unwrap().etee >= ldo.evaluate(&s).unwrap().etee {
                    PdnMode::IvrMode
                } else {
                    PdnMode::LdoMode
                };
                let predicted = predictor.predict(PredictorInputs {
                    tdp: Watts::new(tdp),
                    ar,
                    workload_type: wl,
                    power_state: None,
                });
                total += 1;
                if predicted == oracle {
                    agree += 1;
                }
            }
        }
    }
    agree as f64 / total as f64
}

fn bench_table_resolution(c: &mut Criterion) {
    let params = ModelParams::paper_defaults();
    let mut g = c.benchmark_group("predictor_table_resolution");
    g.sample_size(10);
    for (tdp_knots, ar_knots) in [(2usize, 2usize), (3, 3), (5, 4)] {
        let tdps = grid(tdp_knots, 4.0, 50.0);
        let ars = grid(ar_knots, 0.4, 0.8);
        // Report the accuracy/footprint tradeoff once, outside the timer.
        let trained = ModePredictor::train(&params, &tdps, &ars).unwrap();
        println!(
            "ablation: {}x{} grid -> {} table entries, oracle agreement {:.1}%",
            tdp_knots,
            ar_knots,
            trained.table_entries(),
            oracle_agreement(&trained, &params) * 100.0
        );
        g.bench_with_input(
            BenchmarkId::new("train", format!("{tdp_knots}x{ar_knots}")),
            &(tdps, ars),
            |b, (tdps, ars)| {
                b.iter(|| black_box(ModePredictor::train(&params, tdps, ars).unwrap()))
            },
        );
    }
    g.finish();
}

criterion_group!(ablation, bench_table_resolution);
criterion_main!(ablation);
