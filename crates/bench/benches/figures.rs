//! One Criterion group per paper artefact: times the computation that
//! regenerates each table/figure (the binaries in `src/bin` print them).
//!
//! The heavyweight campaigns (Fig. 4's 200-trace validation, Fig. 7's
//! 29-benchmark sweep, Fig. 8's five panels) are timed on reduced slices
//! so `cargo bench` stays tractable; the binaries run them in full.

use criterion::{criterion_group, criterion_main, Criterion};
use pdn_proc::client_soc;
use pdn_units::{ApplicationRatio, Watts};
use pdn_workload::{BatteryLifeWorkload, WorkloadType};
use pdnspot::perf::{battery_life_average_power, relative_performance};
use pdnspot::validation::{validate, ReferenceSystem};
use pdnspot::{IvrPdn, LdoPdn, ModelParams, Scenario};
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.bench_function("table1", |b| b.iter(|| black_box(pdn_bench::tables::table1())));
    g.bench_function("table2", |b| b.iter(|| black_box(pdn_bench::tables::table2())));
    g.bench_function("table3", |b| b.iter(|| black_box(pdn_bench::tables::table3())));
    g.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("sensitivity_rows", |b| {
        b.iter(|| black_box(pdn_bench::fig2::frequency_sensitivity_rows().unwrap()))
    });
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    g.bench_function("vr_efficiency_curves", |b| {
        b.iter(|| black_box(pdn_bench::fig3::measure_board_vr().unwrap()))
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    // One PDN over one panel's scenarios (the full campaign runs in the
    // fig4 binary).
    let params = ModelParams::paper_defaults();
    let pdn = IvrPdn::new(params);
    let reference = ReferenceSystem::new(42);
    let soc = client_soc(Watts::new(18.0));
    let scenarios: Vec<Scenario> = [0.4, 0.6, 0.8]
        .iter()
        .map(|&a| {
            Scenario::active_fixed_tdp_frequency(
                &soc,
                WorkloadType::MultiThread,
                ApplicationRatio::new(a).unwrap(),
            )
            .unwrap()
        })
        .collect();
    g.bench_function("validate_one_panel", |b| {
        b.iter(|| black_box(validate(&pdn, &reference, &scenarios).unwrap()))
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("loss_breakdown_bars", |b| {
        b.iter(|| black_box(pdn_bench::fig5::bars().unwrap()))
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    let params = ModelParams::paper_defaults();
    let soc = client_soc(Watts::new(4.0));
    let baseline = IvrPdn::new(params.clone());
    let ldo = LdoPdn::new(params);
    let bench_profile = &pdn_workload::spec::spec_cpu2006()[14];
    g.bench_function("one_benchmark_perf", |b| {
        b.iter(|| {
            black_box(
                relative_performance(
                    &soc,
                    &ldo,
                    &baseline,
                    WorkloadType::SingleThread,
                    bench_profile.ar,
                    bench_profile.perf_scalability,
                )
                .unwrap(),
            )
        })
    });
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    let params = ModelParams::paper_defaults();
    let soc = client_soc(Watts::new(18.0));
    let ivr = IvrPdn::new(params);
    g.bench_function("battery_life_average", |b| {
        b.iter(|| {
            black_box(
                battery_life_average_power(&soc, &ivr, BatteryLifeWorkload::VideoPlayback).unwrap(),
            )
        })
    });
    g.bench_function("bom_area_panels", |b| {
        b.iter(|| black_box(pdn_bench::fig8::bom_area_panels().unwrap()))
    });
    g.finish();
}

fn bench_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("overhead");
    g.bench_function("section6_summary", |b| b.iter(|| black_box(flexwatts::overhead::summary())));
    g.finish();
}

criterion_group!(
    figures,
    bench_tables,
    bench_fig2,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig7,
    bench_fig8,
    bench_overhead
);
criterion_main!(figures);
