//! Micro-benchmarks of the model kernels everything else is built from:
//! scenario construction, per-topology ETEE evaluation, predictor lookups,
//! and the runtime simulator's inner loop.

use criterion::{criterion_group, criterion_main, Criterion};
use flexwatts::{
    FlexWattsPdn, FlexWattsRuntime, ModePredictor, PdnMode, PredictorInputs, RuntimeConfig,
};
use pdn_proc::client_soc;
use pdn_units::{ApplicationRatio, Seconds, Watts};
use pdn_workload::{Trace, TraceInterval, WorkloadType};
use pdnspot::{IPlusMbvrPdn, IvrPdn, LdoPdn, MbvrPdn, ModelParams, Pdn, Scenario};
use std::hint::black_box;

fn bench_scenario_construction(c: &mut Criterion) {
    let soc = client_soc(Watts::new(18.0));
    let ar = ApplicationRatio::new(0.6).unwrap();
    let mut g = c.benchmark_group("scenario");
    g.bench_function("active_fixed_tdp_frequency", |b| {
        b.iter(|| {
            black_box(
                Scenario::active_fixed_tdp_frequency(&soc, WorkloadType::MultiThread, ar).unwrap(),
            )
        })
    });
    g.bench_function("idle", |b| {
        b.iter(|| black_box(Scenario::idle(&soc, pdn_proc::PackageCState::C8)))
    });
    g.finish();
}

fn bench_etee_evaluation(c: &mut Criterion) {
    let params = ModelParams::paper_defaults();
    let soc = client_soc(Watts::new(18.0));
    let scenario = Scenario::active_fixed_tdp_frequency(
        &soc,
        WorkloadType::MultiThread,
        ApplicationRatio::new(0.6).unwrap(),
    )
    .unwrap();
    let pdns: Vec<(&str, Box<dyn Pdn>)> = vec![
        ("ivr", Box::new(IvrPdn::new(params.clone()))),
        ("mbvr", Box::new(MbvrPdn::new(params.clone()))),
        ("ldo", Box::new(LdoPdn::new(params.clone()))),
        ("iplusmbvr", Box::new(IPlusMbvrPdn::new(params.clone()))),
        ("flexwatts_ivr_mode", Box::new(FlexWattsPdn::new(params.clone(), PdnMode::IvrMode))),
        ("flexwatts_ldo_mode", Box::new(FlexWattsPdn::new(params, PdnMode::LdoMode))),
    ];
    let mut g = c.benchmark_group("etee_evaluate");
    for (name, pdn) in &pdns {
        g.bench_function(*name, |b| b.iter(|| black_box(pdn.evaluate(&scenario).unwrap())));
    }
    g.finish();
}

fn bench_predictor(c: &mut Criterion) {
    let params = ModelParams::paper_defaults();
    let predictor = ModePredictor::train(&params, &[4.0, 18.0, 50.0], &[0.4, 0.6, 0.8]).unwrap();
    let inputs = PredictorInputs {
        tdp: Watts::new(14.0),
        ar: ApplicationRatio::new(0.57).unwrap(),
        workload_type: WorkloadType::MultiThread,
        power_state: None,
    };
    let mut g = c.benchmark_group("predictor");
    g.bench_function("predict", |b| b.iter(|| black_box(predictor.predict(inputs))));
    g.bench_function("predict_with_hysteresis", |b| {
        b.iter(|| black_box(predictor.predict_with_hysteresis(inputs, PdnMode::IvrMode)))
    });
    g.finish();
}

fn bench_runtime(c: &mut Criterion) {
    let params = ModelParams::paper_defaults();
    let predictor = ModePredictor::train(&params, &[4.0, 18.0, 50.0], &[0.4, 0.6, 0.8]).unwrap();
    let runtime = FlexWattsRuntime::new(
        client_soc(Watts::new(18.0)),
        params,
        predictor,
        RuntimeConfig::default(),
    );
    let trace = Trace::new(
        "bench",
        vec![
            TraceInterval::active(
                Seconds::from_millis(30.0),
                WorkloadType::MultiThread,
                ApplicationRatio::new(0.7).unwrap(),
            ),
            TraceInterval::idle(Seconds::from_millis(30.0), pdn_proc::PackageCState::C8),
        ],
    );
    let mut g = c.benchmark_group("runtime");
    g.sample_size(20);
    g.bench_function("60ms_trace", |b| b.iter(|| black_box(runtime.run(&trace).unwrap())));
    g.finish();
}

criterion_group!(
    kernels,
    bench_scenario_construction,
    bench_etee_evaluation,
    bench_predictor,
    bench_runtime
);
criterion_main!(kernels);
