//! Property tests for the memo cache's determinism contract: routing a
//! grid sweep through a [`pdnspot::MemoCache`] — cold or warm — must
//! reproduce the memo-free sweep bit-for-bit, for every grid shape and
//! worker count, across all five PDN topologies.

use pdn_bench::suite::{five_pdns, ARS, TDPS};
use pdn_proc::PackageCState;
use pdn_workload::WorkloadType;
use pdnspot::batch::{evaluate, BatchOutcome, ClientSoc};
use pdnspot::{EngineConfig, MemoCache, ModelParams, Pdn, SweepGrid, Workers};
use proptest::prelude::*;

fn cfg(workers: Workers) -> EngineConfig {
    EngineConfig::builder().workers(workers).build().expect("worker-only config is valid")
}

/// Asserts every evaluation of `run` is bit-identical to `baseline`.
fn assert_bit_identical(baseline: &BatchOutcome, run: &BatchOutcome, label: &str) {
    assert_eq!(baseline.evaluations.len(), run.evaluations.len(), "{label}: length");
    for (a, b) in baseline.evaluations.iter().zip(&run.evaluations) {
        assert_eq!(a.pdn_idx, b.pdn_idx, "{label}: pdn order");
        assert_eq!(a.point, b.point, "{label}: lattice order");
        match (&a.result, &b.result) {
            (Ok(ea), Ok(eb)) => {
                assert_eq!(
                    ea.input_power.get().to_bits(),
                    eb.input_power.get().to_bits(),
                    "{label}: input power bits at {:?}",
                    a.point
                );
                assert_eq!(
                    ea.etee.get().to_bits(),
                    eb.etee.get().to_bits(),
                    "{label}: EtEE bits at {:?}",
                    a.point
                );
            }
            (Err(ea), Err(eb)) => assert_eq!(ea.to_string(), eb.to_string(), "{label}: errors"),
            _ => panic!("{label}: Ok/Err mismatch at {:?}", a.point),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Memoized sweeps (cold cache, then warm cache) are bit-identical to
    /// the memo-free serial sweep for random grid shapes and the issue's
    /// named worker counts, and the warm pass is answered entirely from
    /// the cache.
    #[test]
    fn memoized_sweeps_are_bit_identical_for_random_grids(
        n_tdps in 1usize..TDPS.len() + 1,
        n_ars in 1usize..ARS.len() + 1,
        with_idle in prop_oneof![Just(false), Just(true)],
        workers in prop_oneof![Just(1usize), Just(2), Just(7)],
    ) {
        let params = ModelParams::paper_defaults();
        let pdns_boxed = five_pdns(&params);
        let pdns: Vec<&dyn Pdn> = pdns_boxed.iter().map(Box::as_ref).collect();
        let mut builder = SweepGrid::builder()
            .tdps(&TDPS[..n_tdps])
            .workload_types(&WorkloadType::ACTIVE_TYPES)
            .ars(&ARS[..n_ars]);
        if with_idle {
            builder = builder.idle_states(&PackageCState::ALL);
        }
        let grid = builder.build().unwrap();

        let plain = evaluate(&pdns, &grid, &ClientSoc, &cfg(Workers::Serial), None);
        let label = format!("tdps={n_tdps} ars={n_ars} idle={with_idle} w={workers}");

        let memo = MemoCache::new();
        let cold =
            evaluate(&pdns, &grid, &ClientSoc, &cfg(Workers::Fixed(workers)), Some(&memo));
        assert_bit_identical(&plain, &cold, &format!("cold {label}"));
        // Every (PDN, point) key is unique within one pass, so a cold
        // cache misses exactly once per successful evaluation.
        prop_assert_eq!(cold.stats.memo_hits, 0, "cold pass cannot hit");

        let warm =
            evaluate(&pdns, &grid, &ClientSoc, &cfg(Workers::Fixed(workers)), Some(&memo));
        assert_bit_identical(&plain, &warm, &format!("warm {label}"));
        prop_assert_eq!(warm.stats.memo_misses, 0, "warm pass must be fully cached");
        prop_assert_eq!(warm.stats.memo_hits, cold.stats.memo_misses);
        prop_assert!(warm.stats.memo_hit_rate() > 0.99, "warm hit rate {}", warm.stats.memo_hit_rate());
    }
}
