//! Property tests for the batch engine's determinism contract: the
//! work-stealing scheduler must produce bit-identical results for every
//! worker count, on the grids the figure binaries actually sweep.

use pdn_bench::fig4::PANEL_TDPS;
use pdn_bench::suite::{five_pdns, ARS, TDPS};
use pdn_proc::PackageCState;
use pdn_workload::WorkloadType;
use pdnspot::batch::{evaluate, BatchOutcome, ClientSoc};
use pdnspot::{EngineConfig, ModelParams, Pdn, SweepGrid, Workers};
use proptest::prelude::*;

fn cfg(workers: Workers) -> EngineConfig {
    EngineConfig::builder().workers(workers).build().expect("worker-only config is valid")
}

fn fig4_grid() -> SweepGrid {
    SweepGrid::builder()
        .tdps(&PANEL_TDPS)
        .workload_types(&WorkloadType::ACTIVE_TYPES)
        .ars(&ARS)
        .idle_states(&PackageCState::ALL)
        .build()
        .unwrap()
}

fn fig8_grid() -> SweepGrid {
    SweepGrid::builder()
        .tdps(&TDPS)
        .workload_types(&[WorkloadType::MultiThread])
        .ars(&[0.56])
        .build()
        .unwrap()
}

/// Asserts every evaluation of `run` is bit-identical to `baseline`.
fn assert_bit_identical(baseline: &BatchOutcome, run: &BatchOutcome, label: &str) {
    assert_eq!(baseline.evaluations.len(), run.evaluations.len(), "{label}: length");
    for (a, b) in baseline.evaluations.iter().zip(&run.evaluations) {
        assert_eq!(a.pdn_idx, b.pdn_idx, "{label}: pdn order");
        assert_eq!(a.point, b.point, "{label}: lattice order");
        match (&a.result, &b.result) {
            (Ok(ea), Ok(eb)) => {
                assert_eq!(
                    ea.input_power.get().to_bits(),
                    eb.input_power.get().to_bits(),
                    "{label}: input power bits at {:?}",
                    a.point
                );
                assert_eq!(
                    ea.etee.get().to_bits(),
                    eb.etee.get().to_bits(),
                    "{label}: EtEE bits at {:?}",
                    a.point
                );
            }
            (Err(ea), Err(eb)) => assert_eq!(ea.to_string(), eb.to_string(), "{label}: errors"),
            _ => panic!("{label}: Ok/Err mismatch at {:?}", a.point),
        }
    }
}

/// The fixed worker counts the issue calls out: serial, small, odd, and
/// the machine's own pool.
#[test]
fn named_worker_counts_are_bit_identical_on_figure_grids() {
    let params = ModelParams::paper_defaults();
    let pdns_boxed = five_pdns(&params);
    let pdns: Vec<&dyn Pdn> = pdns_boxed.iter().map(Box::as_ref).collect();
    let ncpu = std::thread::available_parallelism().map_or(1, |n| n.get());
    for (grid, label) in [(fig4_grid(), "fig4"), (fig8_grid(), "fig8")] {
        let serial = evaluate(&pdns, &grid, &ClientSoc, &cfg(Workers::Serial), None);
        assert_eq!(serial.stats.failed, 0, "{label}: clean baseline");
        for w in [1, 2, 7, ncpu] {
            let run = evaluate(&pdns, &grid, &ClientSoc, &cfg(Workers::Fixed(w)), None);
            assert_bit_identical(&serial, &run, &format!("{label} w={w}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any worker count in 1..=16 reproduces the serial fig4 sweep
    /// bit-for-bit (two PDNs keep the case cheap enough to repeat).
    #[test]
    fn arbitrary_worker_counts_are_bit_identical(w in 1usize..17) {
        let params = ModelParams::paper_defaults();
        let ivr = pdnspot::IvrPdn::new(params.clone());
        let mbvr = pdnspot::MbvrPdn::new(params);
        let pdns: [&dyn Pdn; 2] = [&ivr, &mbvr];
        let grid = fig4_grid();
        let serial = evaluate(&pdns, &grid, &ClientSoc, &cfg(Workers::Serial), None);
        let run = evaluate(&pdns, &grid, &ClientSoc, &cfg(Workers::Fixed(w)), None);
        assert_bit_identical(&serial, &run, &format!("fig4 w={w}"));
        prop_assert_eq!(run.stats.workers, w.min(serial.stats.evaluations));
    }
}
