//! Property tests for the batch engine's determinism contract: the
//! work-stealing scheduler must produce bit-identical results for every
//! worker count, on the grids the figure binaries actually sweep.

use pdn_bench::fig4::PANEL_TDPS;
use pdn_bench::suite::{five_pdns, ARS, TDPS};
use pdn_proc::PackageCState;
use pdn_units::ApplicationRatio;
use pdn_workload::WorkloadType;
use pdnspot::batch::{evaluate, evaluate_delta, BatchOutcome, ClientSoc};
use pdnspot::{EngineConfig, ModelParams, Pdn, Scenario, SweepGrid, Workers};
use proptest::prelude::*;

fn cfg(workers: Workers) -> EngineConfig {
    EngineConfig::builder().workers(workers).build().expect("worker-only config is valid")
}

fn fig4_grid() -> SweepGrid {
    SweepGrid::builder()
        .tdps(&PANEL_TDPS)
        .workload_types(&WorkloadType::ACTIVE_TYPES)
        .ars(&ARS)
        .idle_states(&PackageCState::ALL)
        .build()
        .unwrap()
}

fn fig8_grid() -> SweepGrid {
    SweepGrid::builder()
        .tdps(&TDPS)
        .workload_types(&[WorkloadType::MultiThread])
        .ars(&[0.56])
        .build()
        .unwrap()
}

/// Asserts every evaluation of `run` is bit-identical to `baseline`.
fn assert_bit_identical(baseline: &BatchOutcome, run: &BatchOutcome, label: &str) {
    assert_eq!(baseline.evaluations.len(), run.evaluations.len(), "{label}: length");
    for (a, b) in baseline.evaluations.iter().zip(&run.evaluations) {
        assert_eq!(a.pdn_idx, b.pdn_idx, "{label}: pdn order");
        assert_eq!(a.point, b.point, "{label}: lattice order");
        match (&a.result, &b.result) {
            (Ok(ea), Ok(eb)) => {
                assert_eq!(
                    ea.input_power.get().to_bits(),
                    eb.input_power.get().to_bits(),
                    "{label}: input power bits at {:?}",
                    a.point
                );
                assert_eq!(
                    ea.etee.get().to_bits(),
                    eb.etee.get().to_bits(),
                    "{label}: EtEE bits at {:?}",
                    a.point
                );
            }
            (Err(ea), Err(eb)) => assert_eq!(ea.to_string(), eb.to_string(), "{label}: errors"),
            _ => panic!("{label}: Ok/Err mismatch at {:?}", a.point),
        }
    }
}

/// The fixed worker counts the issue calls out: serial, small, odd, and
/// the machine's own pool.
#[test]
fn named_worker_counts_are_bit_identical_on_figure_grids() {
    let params = ModelParams::paper_defaults();
    let pdns_boxed = five_pdns(&params);
    let pdns: Vec<&dyn Pdn> = pdns_boxed.iter().map(Box::as_ref).collect();
    let ncpu = std::thread::available_parallelism().map_or(1, |n| n.get());
    for (grid, label) in [(fig4_grid(), "fig4"), (fig8_grid(), "fig8")] {
        let serial = evaluate(&pdns, &grid, &ClientSoc, &cfg(Workers::Serial), None);
        assert_eq!(serial.stats.failed, 0, "{label}: clean baseline");
        for w in [1, 2, 7, ncpu] {
            let run = evaluate(&pdns, &grid, &ClientSoc, &cfg(Workers::Fixed(w)), None);
            assert_bit_identical(&serial, &run, &format!("{label} w={w}"));
        }
    }
}

/// A random sub-grid of the paper's axes: any non-empty TDP subset, any
/// workload-type subset, any AR subset, any idle-state subset — as long
/// as the grid has at least one point.
fn grid_strategy() -> impl Strategy<Value = SweepGrid> {
    let tdps = prop::sample::subsequence(TDPS.to_vec(), 1..=3);
    let wls = prop::sample::subsequence(WorkloadType::ACTIVE_TYPES.to_vec(), 0..=2);
    let ars = prop::sample::subsequence(ARS.to_vec(), 0..=3);
    let idles = prop::sample::subsequence(PackageCState::ALL.to_vec(), 0..=2);
    (tdps, wls, ars, idles).prop_filter_map("grid needs at least one point", |(t, w, a, s)| {
        SweepGrid::builder().tdps(&t).workload_types(&w).ars(&a).idle_states(&s).build().ok()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any worker count in 1..=16 reproduces the serial fig4 sweep
    /// bit-for-bit (two PDNs keep the case cheap enough to repeat).
    #[test]
    fn arbitrary_worker_counts_are_bit_identical(w in 1usize..17) {
        let params = ModelParams::paper_defaults();
        let ivr = pdnspot::IvrPdn::new(params.clone());
        let mbvr = pdnspot::MbvrPdn::new(params);
        let pdns: [&dyn Pdn; 2] = [&ivr, &mbvr];
        let grid = fig4_grid();
        let serial = evaluate(&pdns, &grid, &ClientSoc, &cfg(Workers::Serial), None);
        let run = evaluate(&pdns, &grid, &ClientSoc, &cfg(Workers::Fixed(w)), None);
        assert_bit_identical(&serial, &run, &format!("fig4 w={w}"));
        prop_assert_eq!(run.stats.workers, w.min(serial.stats.evaluations));
    }

    /// The row-kernel batch path equals the scalar per-point path bit for
    /// bit on any grid shape (random row lengths along both the AR and
    /// idle-state axes) and any worker count: every evaluation matches
    /// `Pdn::evaluate` on a scenario built by the unstaged per-point
    /// constructor.
    #[test]
    fn row_kernels_match_scalar_per_point_on_random_grids(
        grid in grid_strategy(),
        w in 1usize..9,
    ) {
        let params = ModelParams::paper_defaults();
        let ivr = pdnspot::IvrPdn::new(params.clone());
        let ldo = pdnspot::LdoPdn::new(params);
        let pdns: [&dyn Pdn; 2] = [&ivr, &ldo];
        let run = evaluate(&pdns, &grid, &ClientSoc, &cfg(Workers::Fixed(w)), None);
        prop_assert_eq!(run.stats.failed, 0);
        for eval in &run.evaluations {
            let soc = pdn_proc::client_soc(pdn_units::Watts::new(
                grid.tdps()[eval.point.tdp_idx()],
            ));
            let scenario = match eval.point {
                pdnspot::batch::LatticePoint::Active { wl_idx, ar_idx, .. } => {
                    Scenario::active_fixed_tdp_frequency(
                        &soc,
                        grid.workload_types()[wl_idx],
                        ApplicationRatio::new(grid.ars()[ar_idx]).unwrap(),
                    )
                    .unwrap()
                }
                pdnspot::batch::LatticePoint::Idle { state_idx, .. } => {
                    Scenario::idle(&soc, grid.idle_states()[state_idx])
                }
            };
            let scalar = pdns[eval.pdn_idx].evaluate(&scenario).unwrap();
            let row = eval.result.as_ref().unwrap();
            prop_assert_eq!(
                row.etee.get().to_bits(),
                scalar.etee.get().to_bits(),
                "EtEE bits at {:?}",
                eval.point
            );
            prop_assert_eq!(
                row.input_power.get().to_bits(),
                scalar.input_power.get().to_bits(),
                "input power bits at {:?}",
                eval.point
            );
        }
    }

    /// `evaluate_delta` equals the full re-sweep bit for bit for random
    /// axis perturbations: every dirty point's fresh evaluation matches
    /// the full run's, and the dirty set covers exactly the points whose
    /// prior evaluations went stale (patching the old outcome with the
    /// delta reproduces the new one everywhere).
    #[test]
    fn delta_resweep_matches_full_resweep_for_random_perturbations(
        grid in grid_strategy(),
        tdp_pick in any::<prop::sample::Index>(),
        ar_pick in any::<prop::sample::Index>(),
        perturb_tdp in any::<bool>(),
        perturb_ar in any::<bool>(),
        w in 1usize..9,
    ) {
        let params = ModelParams::paper_defaults();
        let ivr = pdnspot::IvrPdn::new(params.clone());
        let mbvr = pdnspot::MbvrPdn::new(params);
        let pdns: [&dyn Pdn; 2] = [&ivr, &mbvr];
        // Perturb up to one TDP and one AR of the old grid.
        let mut tdps = grid.tdps().to_vec();
        if perturb_tdp {
            let i = tdp_pick.index(tdps.len());
            tdps[i] += 0.75;
        }
        let mut ars = grid.ars().to_vec();
        if perturb_ar && !ars.is_empty() {
            let i = ar_pick.index(ars.len());
            ars[i] *= 0.95;
        }
        let new = SweepGrid::builder()
            .tdps(&tdps)
            .workload_types(grid.workload_types())
            .ars(&ars)
            .idle_states(grid.idle_states())
            .build()
            .unwrap();
        let delta = new.diff(&grid);
        let old_run = evaluate(&pdns, &grid, &ClientSoc, &cfg(Workers::Serial), None);
        let full = evaluate(&pdns, &new, &ClientSoc, &cfg(Workers::Serial), None);
        let partial =
            evaluate_delta(&pdns, &new, &delta, &ClientSoc, &cfg(Workers::Fixed(w)), None);
        prop_assert_eq!(partial.stats.failed, 0);
        prop_assert_eq!(partial.evaluations.len(), pdns.len() * delta.n_dirty_points(&new));
        // Patch the old campaign with the delta; the result must equal
        // the full re-sweep at every point, dirty and clean alike.
        let mut patched = old_run.evaluations;
        for eval in partial.evaluations {
            prop_assert!(delta.contains(eval.point), "only dirty points re-evaluate");
            let slot = eval.pdn_idx * new.n_points() + new.point_index(eval.point);
            patched[slot] = eval;
        }
        for (p, f) in patched.iter().zip(&full.evaluations) {
            prop_assert_eq!(p.pdn_idx, f.pdn_idx);
            prop_assert_eq!(p.point, f.point);
            let (a, b) = (p.result.as_ref().unwrap(), f.result.as_ref().unwrap());
            prop_assert_eq!(
                a.etee.get().to_bits(),
                b.etee.get().to_bits(),
                "EtEE bits at {:?}",
                p.point
            );
            prop_assert_eq!(
                a.input_power.get().to_bits(),
                b.input_power.get().to_bits(),
                "input power bits at {:?}",
                p.point
            );
        }
    }
}
