//! Fig. 7: per-benchmark SPEC CPU2006 performance at 4 W TDP under the
//! five PDNs, normalised to IVR and sorted by performance scalability.

use crate::render::TextTable;
use crate::suite::five_pdns;
use pdn_proc::client_soc;
use pdn_units::Watts;
use pdn_workload::spec::{spec_cpu2006, SpecBenchmark};
use pdn_workload::WorkloadType;
use pdnspot::batch::{par_map_stats, Workers};
use pdnspot::perf::relative_performance;
use pdnspot::{BatchStats, IvrPdn, MemoCache, ModelParams, PdnError};

/// One benchmark's normalised performance under the five PDNs.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// The benchmark.
    pub benchmark: SpecBenchmark,
    /// Performance under [IVR, MBVR, LDO, I+MBVR, FlexWatts], IVR = 1.0.
    pub perf: [f64; 5],
}

/// Computes the 29 rows plus the average row, at the given TDP (Fig. 7
/// uses 4 W).
///
/// # Errors
///
/// Propagates solver errors.
pub fn rows(tdp: Watts) -> Result<Vec<Fig7Row>, PdnError> {
    rows_with_stats(tdp, Workers::Auto).map(|(rows, _)| rows)
}

/// [`rows`] on the batch engine: the per-benchmark solver fan-out runs
/// on the worker pool (one task per benchmark, five PDNs each) and the
/// run's [`BatchStats`] are returned alongside the rows.
///
/// # Errors
///
/// Propagates solver errors.
pub fn rows_with_stats(
    tdp: Watts,
    workers: Workers,
) -> Result<(Vec<Fig7Row>, BatchStats), PdnError> {
    let params = ModelParams::paper_defaults();
    let soc = client_soc(tdp);
    let baseline = IvrPdn::new(params.clone());
    let pdns = five_pdns(&params);
    let benchmarks = spec_cpu2006();
    // One cache across the whole figure: the IVR baseline is re-solved for
    // every (benchmark, PDN) cell, and benchmarks sharing an AR re-probe
    // the same operating points; both reuse cached evaluations.
    let memo = MemoCache::new();
    let baseline_memo = memo.wrap(&baseline);
    let (results, mut stats) = par_map_stats(&benchmarks, workers, |_, bench| {
        let mut perf = [1.0f64; 5];
        for (i, pdn) in pdns.iter().enumerate() {
            perf[i] = relative_performance(
                &soc,
                &memo.wrap(pdn.as_ref()),
                &baseline_memo,
                WorkloadType::SingleThread,
                bench.ar,
                bench.perf_scalability,
            )?;
        }
        Ok::<_, PdnError>(Fig7Row { benchmark: bench.clone(), perf })
    });
    stats.evaluations = benchmarks.len() * pdns.len();
    let memo_stats = memo.stats();
    stats.memo_hits = memo_stats.hits as usize;
    stats.memo_misses = memo_stats.misses as usize;
    stats.memo_evictions = memo_stats.evictions as usize;
    let rows = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok((rows, stats))
}

/// The average normalised performance across the suite.
pub fn average(rows: &[Fig7Row]) -> [f64; 5] {
    let mut avg = [0.0f64; 5];
    for r in rows {
        for (a, p) in avg.iter_mut().zip(&r.perf) {
            *a += p;
        }
    }
    for a in &mut avg {
        *a /= rows.len().max(1) as f64;
    }
    avg
}

/// Renders the figure.
///
/// # Errors
///
/// Propagates solver errors.
pub fn render() -> Result<String, PdnError> {
    let (rows, stats) = rows_with_stats(Watts::new(4.0), Workers::Auto)?;
    let mut t = TextTable::new(
        "Fig. 7 — SPEC CPU2006 performance at 4 W TDP (normalised to IVR)",
        &["benchmark", "scal.", "IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts"],
    );
    for r in &rows {
        let mut cells = vec![
            r.benchmark.name.to_string(),
            format!("{:.0}%", r.benchmark.perf_scalability.percent()),
        ];
        cells.extend(r.perf.iter().map(|p| format!("{:.1}%", p * 100.0)));
        t.row(cells);
    }
    let avg = average(&rows);
    let mut cells = vec!["Average".to_string(), String::new()];
    cells.extend(avg.iter().map(|p| format!("{:.1}%", p * 100.0)));
    t.row(cells);
    Ok(format!("{}\n{}\n", t.render(), stats.deterministic_footer()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_average_gain_matches_the_paper() {
        // §7.1: MBVR/LDO/FlexWatts average > 22 % over IVR at 4 W, with
        // FlexWatts within 1 % of the best static PDN.
        let rows = rows(Watts::new(4.0)).unwrap();
        assert_eq!(rows.len(), 29);
        let avg = average(&rows);
        let [ivr, mbvr, ldo, iplus, flexwatts] = avg;
        assert!((ivr - 1.0).abs() < 1e-9);
        // Reproduction note (EXPERIMENTS.md): the paper reports +22 %;
        // our self-consistent frequency solver re-equilibrates the
        // operating point and lands at ≈ +11–15 %.
        assert!(flexwatts > 1.07 && flexwatts < 1.40, "FlexWatts average at 4 W: {flexwatts:.3}");
        assert!(mbvr > 1.05 && ldo > 1.05);
        assert!(iplus > 1.0 && iplus < flexwatts, "I+MBVR gains less than FlexWatts");
        let best = mbvr.max(ldo);
        assert!(flexwatts > best - 0.012, "FlexWatts within ~1 % of the best static PDN");
    }

    #[test]
    fn gains_track_scalability_ordering() {
        let rows = rows(Watts::new(4.0)).unwrap();
        // The most scalable benchmark gains the most under FlexWatts.
        let first_gain = rows.first().unwrap().perf[4] - 1.0;
        let last_gain = rows.last().unwrap().perf[4] - 1.0;
        assert!(last_gain > first_gain, "416.gamess must gain more than 433.milc");
    }

    #[test]
    fn renders_thirty_rows() {
        let s = render().unwrap();
        assert!(s.contains("416.gamess"));
        assert!(s.contains("Average"));
    }
}
