//! The fault-campaign artefact: a fixed-seed sweep of the
//! [`flexwatts::faults`] harness across fault mixes, rendered as the
//! robustness evidence the paper's §6 safety claims rest on — the
//! maximum-current protection keeps every interval below the trip
//! current, and the degradation contract (retry, fallback, watchdog)
//! absorbs what the guards detect.
//!
//! Everything is seeded, so the output is byte-identical across runs and
//! machines: CI regenerates it and diffs against `results/faults.txt`.

use crate::render::TextTable;
use flexwatts::{
    DegradationPolicy, FaultClass, FaultMix, FaultPlan, FlexWattsRuntime, ModePredictor,
    RuntimeConfig,
};
use pdn_proc::client_soc;
use pdn_units::{ApplicationRatio, Seconds, Watts};
use pdn_workload::{Trace, TraceInterval, WorkloadType};
use pdnspot::{ModelParams, PdnError};

/// The artefact's fixed campaign seed (CI's smoke job depends on it).
pub const CAMPAIGN_SEED: u64 = 0xF1E2;

/// The fault mixes the campaign sweeps, in render order.
pub fn campaign_mixes() -> Vec<(&'static str, FaultMix)> {
    vec![
        ("none", FaultMix::none()),
        ("sensors", FaultMix::sensors()),
        ("electrical", FaultMix::electrical()),
        ("switch-flow", FaultMix::switch_flow()),
        ("firmware", FaultMix::firmware()),
        ("chaos", FaultMix::chaos()),
    ]
}

fn campaign_runtime() -> Result<FlexWattsRuntime, PdnError> {
    let predictor = ModePredictor::train(
        &ModelParams::paper_defaults(),
        &[4.0, 10.0, 18.0, 25.0, 50.0],
        &[0.4, 0.6, 0.8],
    )?;
    Ok(FlexWattsRuntime::new(
        client_soc(Watts::new(36.0)),
        ModelParams::paper_defaults(),
        predictor,
        RuntimeConfig::default(),
    ))
}

/// A 36 W burst/idle trace whose bursts prefer IVR-Mode and whose idle
/// phases prefer LDO-Mode, so every fault class meets live state.
fn campaign_trace() -> Trace {
    let mut intervals = Vec::new();
    for _ in 0..6 {
        intervals.push(TraceInterval::active(
            Seconds::from_millis(30.0),
            WorkloadType::MultiThread,
            ApplicationRatio::new(0.8).expect("static AR"),
        ));
        intervals
            .push(TraceInterval::idle(Seconds::from_millis(30.0), pdn_proc::PackageCState::C0Min));
    }
    Trace::new("fault-campaign", intervals)
}

/// Runs the fixed-seed campaign across every mix and renders the
/// accounting plus the invariant verdicts.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn campaign_report() -> Result<String, PdnError> {
    let rt = campaign_runtime()?;
    let trace = campaign_trace();
    let policy = DegradationPolicy::default();

    let mut accounting = TextTable::new(
        format!("Fault campaign — seed {CAMPAIGN_SEED:#x}, 36 W burst/idle trace"),
        &[
            "mix",
            "armed",
            "injected",
            "detected",
            "recovered",
            "degraded",
            "silent",
            "dormant",
            "overrides",
            "sw fail/retry",
            "eff vs oracle",
        ],
    );
    let mut invariants = TextTable::new(
        "Safety invariants (checked every execution chunk)",
        &["mix", "over-trip chunks", "max LDO V_IN", "trip", "energy err", "time err", "verdict"],
    );
    let mut by_class = TextTable::new(
        "Injected events by class",
        &["mix", "sensor", "telemetry", "vin-droop", "switch-flow", "firmware", "watchdog"],
    );

    for (name, mix) in campaign_mixes() {
        let plan = FaultPlan::generate(CAMPAIGN_SEED, trace.intervals().len(), &mix);
        let report = rt.run_faulted(&trace, &plan, &policy)?;
        let c = report.counts;
        accounting.row(vec![
            name.to_string(),
            c.armed.to_string(),
            c.injected.to_string(),
            c.detected.to_string(),
            c.recovered.to_string(),
            c.degraded.to_string(),
            c.silent.to_string(),
            c.dormant.to_string(),
            report.runtime.protection_overrides.to_string(),
            format!("{}/{}", report.runtime.switch_failures, report.runtime.switch_retries),
            format!("{:.4}", report.runtime.energy_efficiency_vs_oracle()),
        ]);
        let inv = report.invariants;
        invariants.row(vec![
            name.to_string(),
            inv.over_trip_chunks.to_string(),
            format!("{:.2} A", inv.max_ldo_vin_current.get()),
            format!("{:.2} A", inv.trip_current.get()),
            format!("{:.1e}", inv.energy_ledger_error),
            format!("{:.1e} s", inv.time_ledger_error),
            if inv.holds() && c.consistent() { "OK".into() } else { "VIOLATED".into() },
        ]);
        let mut row = vec![name.to_string()];
        for class in FaultClass::ALL {
            row.push(report.injected_by_class.get(&class).copied().unwrap_or(0).to_string());
        }
        row.push(if report.watchdog_latched { "latched".into() } else { "-".into() });
        by_class.row(row);
    }

    Ok(format!("{}\n{}\n{}", accounting.render(), invariants.render(), by_class.render()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_report_is_deterministic_and_clean() {
        let a = campaign_report().unwrap();
        let b = campaign_report().unwrap();
        assert_eq!(a, b, "fixed seed must render identically");
        assert!(!a.contains("VIOLATED"), "no invariant may be violated:\n{a}");
        assert!(a.contains("chaos"));
    }
}
