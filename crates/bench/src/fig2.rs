//! Fig. 2: the §3.3 performance model's two panels.
//!
//! (a) the extra power budget needed to raise the CPU/graphics clock by
//! 1 % at each TDP; (b) the breakdown of the TDP power budget into
//! SA+IO / CPU / LLC(+GFX) / PDN loss, using the worst-loss PDN per TDP.

use crate::render::{pct, TextTable};
use crate::suite::TDPS;
use pdn_proc::client_soc;
use pdn_units::{ApplicationRatio, Watts};
use pdn_workload::WorkloadType;
use pdnspot::perf::{budget_breakdown, frequency_sensitivity, BudgetBreakdown};
use pdnspot::{IvrPdn, MbvrPdn, ModelParams, PdnError};

/// One row of Fig. 2a.
#[derive(Debug, Clone, Copy)]
pub struct SensitivityRow {
    /// TDP of the row.
    pub tdp: f64,
    /// mW per 1 % CPU-clock increase.
    pub cpu_mw: f64,
    /// mW per 1 % graphics-clock increase.
    pub gfx_mw: f64,
}

/// Computes Fig. 2a: frequency sensitivity per TDP.
///
/// # Errors
///
/// Propagates solver errors.
pub fn frequency_sensitivity_rows() -> Result<Vec<SensitivityRow>, PdnError> {
    let params = ModelParams::paper_defaults();
    let pdn = IvrPdn::new(params);
    let ar = ApplicationRatio::new(0.7).expect("static AR");
    TDPS.iter()
        .map(|&tdp| {
            let soc = client_soc(Watts::new(tdp));
            let cpu = frequency_sensitivity(&soc, &pdn, WorkloadType::MultiThread, ar)?;
            let gfx = frequency_sensitivity(&soc, &pdn, WorkloadType::Graphics, ar)?;
            Ok(SensitivityRow { tdp, cpu_mw: cpu.milliwatts(), gfx_mw: gfx.milliwatts() })
        })
        .collect()
}

/// Computes Fig. 2b: per-TDP budget breakdown with the worst-loss PDN
/// (IVR at low TDPs, MBVR at high TDPs — §3.3).
///
/// # Errors
///
/// Propagates solver errors.
pub fn budget_breakdown_rows() -> Result<Vec<(f64, BudgetBreakdown)>, PdnError> {
    let params = ModelParams::paper_defaults();
    let ivr = IvrPdn::new(params.clone());
    let mbvr = MbvrPdn::new(params);
    let ar = ApplicationRatio::new(0.7).expect("static AR");
    TDPS.iter()
        .map(|&tdp| {
            let soc = client_soc(Watts::new(tdp));
            // Pick the worse (higher-loss) PDN at this TDP.
            let b_ivr = budget_breakdown(&soc, &ivr, ar)?;
            let b_mbvr = budget_breakdown(&soc, &mbvr, ar)?;
            let worst = if b_ivr.pdn_loss >= b_mbvr.pdn_loss { b_ivr } else { b_mbvr };
            Ok((tdp, worst))
        })
        .collect()
}

/// Renders both panels.
///
/// # Errors
///
/// Propagates solver errors.
pub fn render() -> Result<String, PdnError> {
    let mut a = TextTable::new(
        "Fig. 2a — power-budget increase for 1% frequency increase (mW)",
        &["TDP", "CPU", "GFX"],
    );
    for r in frequency_sensitivity_rows()? {
        a.row(vec![format!("{}W", r.tdp), format!("{:.1}", r.cpu_mw), format!("{:.1}", r.gfx_mw)]);
    }
    let mut b = TextTable::new(
        "Fig. 2b — power-budget breakdown (worst-loss PDN per TDP)",
        &["TDP", "SA+IO", "CPU", "LLC+GFX", "PDN loss"],
    );
    for (tdp, bd) in budget_breakdown_rows()? {
        b.row(vec![
            format!("{tdp}W"),
            pct(bd.sa_io.get()),
            pct(bd.cpu.get()),
            pct(bd.llc_gfx.get()),
            pct(bd.pdn_loss.get()),
        ]);
    }
    Ok(format!("{}\n{}", a.render(), b.render()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensitivity_rises_monotonically_with_tdp() {
        let rows = frequency_sensitivity_rows().unwrap();
        assert_eq!(rows.len(), 7);
        assert!(rows[0].cpu_mw < 60.0, "4 W CPU sensitivity {}", rows[0].cpu_mw);
        assert!(rows[6].cpu_mw > 100.0, "50 W CPU sensitivity {}", rows[6].cpu_mw);
        // The trend spans more than a decade (the Fig. 2a log axis); the
        // knee of the V/f curve makes it non-monotone pointwise.
        assert!(rows[6].cpu_mw > 5.0 * rows[0].cpu_mw);
        assert!(rows[6].gfx_mw > 5.0 * rows[0].gfx_mw);
    }

    #[test]
    fn breakdown_cpu_share_grows_with_tdp() {
        let rows = budget_breakdown_rows().unwrap();
        let first = rows.first().unwrap().1;
        let last = rows.last().unwrap().1;
        assert!(last.cpu > first.cpu, "Fig. 2b: CPU share grows with TDP");
        assert!(first.sa_io > last.sa_io);
    }

    #[test]
    fn renders_both_panels() {
        let s = render().unwrap();
        assert!(s.contains("Fig. 2a"));
        assert!(s.contains("Fig. 2b"));
        assert!(s.contains("50W"));
    }
}
