//! Fig. 8: the headline comparison of the five PDNs — SPEC average
//! performance (a), 3DMark06 performance (b), battery-life average power
//! (c), BOM (d), and board area (e), across 4–50 W TDPs, all normalised
//! to the IVR PDN.

use crate::render::{times, TextTable};
use crate::suite::{five_pdns, TDPS};
use pdn_proc::client_soc;
use pdn_units::Watts;
use pdn_workload::graphics::threedmark06;
use pdn_workload::spec::spec_cpu2006;
use pdn_workload::{BatteryLifeWorkload, WorkloadType};
use pdnspot::areabom::{pdn_footprint, VrCatalog};
use pdnspot::batch::{par_map_stats, Workers};
use pdnspot::perf::{battery_life_average_power, relative_performance};
use pdnspot::{BatchStats, IvrPdn, MemoCache, ModelParams, PdnError};

/// The five-PDN series of one panel: one value per (TDP, PDN).
#[derive(Debug, Clone)]
pub struct Panel {
    /// Panel title.
    pub title: String,
    /// Row labels (TDPs or workload names).
    pub labels: Vec<String>,
    /// Values per row, ordered [IVR, MBVR, LDO, I+MBVR, FlexWatts].
    pub values: Vec<[f64; 5]>,
}

impl Panel {
    /// Renders the panel as a table (values already normalised).
    pub fn render(&self, unit: &str) -> String {
        let mut t = TextTable::new(
            self.title.clone(),
            &["point", "IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts"],
        );
        for (label, vals) in self.labels.iter().zip(&self.values) {
            let mut cells = vec![label.clone()];
            cells.extend(vals.iter().map(|v| match unit {
                "%" => format!("{:.1}%", v * 100.0),
                _ => times(*v),
            }));
            t.row(cells);
        }
        t.render()
    }
}

/// Panel (a): SPEC CPU2006 average performance vs TDP.
///
/// # Errors
///
/// Propagates solver errors.
pub fn spec_average_panel() -> Result<Panel, PdnError> {
    performance_panel(
        "Fig. 8a — SPEC CPU2006 average performance (normalised to IVR)",
        WorkloadType::MultiThread,
    )
    .map(|(panel, _)| panel)
}

/// Panel (b): 3DMark06 performance vs TDP.
///
/// # Errors
///
/// Propagates solver errors.
pub fn graphics_panel() -> Result<Panel, PdnError> {
    performance_panel("Fig. 8b — 3DMark06 performance (normalised to IVR)", WorkloadType::Graphics)
        .map(|(panel, _)| panel)
}

/// SPEC's Fig. 8a panel runs the suite as multi-programmed pairs (both
/// cores busy), which is what makes the high-TDP rows power-limited.
///
/// The `(TDP, PDN)` cells fan out on the batch engine; each task runs
/// the whole workload suite through the frequency solver for one cell.
fn performance_panel(title: &str, wl: WorkloadType) -> Result<(Panel, BatchStats), PdnError> {
    let params = ModelParams::paper_defaults();
    let baseline = IvrPdn::new(params.clone());
    let pdns = five_pdns(&params);
    let workloads: Vec<(pdn_units::ApplicationRatio, pdn_units::Ratio)> = match wl {
        WorkloadType::Graphics => {
            threedmark06().iter().map(|b| (b.ar, b.perf_scalability)).collect()
        }
        _ => spec_cpu2006().iter().map(|b| (b.ar, b.perf_scalability)).collect(),
    };
    let cells: Vec<(usize, usize)> =
        (0..TDPS.len()).flat_map(|t| (0..pdns.len()).map(move |p| (t, p))).collect();
    // Shared across all (TDP, PDN) cells: the IVR baseline solve repeats
    // per PDN column, and suite benchmarks sharing an AR repeat operating
    // points — both are served from the cache after first computation.
    let memo = MemoCache::new();
    let baseline_memo = memo.wrap(&baseline);
    let (results, mut stats) = par_map_stats(&cells, Workers::Auto, |_, &(t, p)| {
        let soc = client_soc(Watts::new(TDPS[t]));
        let mut sum = 0.0;
        for &(ar, scal) in &workloads {
            sum += relative_performance(
                &soc,
                &memo.wrap(pdns[p].as_ref()),
                &baseline_memo,
                wl,
                ar,
                scal,
            )?;
        }
        Ok::<_, PdnError>(sum / workloads.len() as f64)
    });
    let memo_stats = memo.stats();
    stats.memo_hits = memo_stats.hits as usize;
    stats.memo_misses = memo_stats.misses as usize;
    stats.memo_evictions = memo_stats.evictions as usize;
    let mut labels = Vec::new();
    let mut values = Vec::new();
    let mut results = results.into_iter();
    for &tdp in &TDPS {
        let mut row = [0.0f64; 5];
        for cell in &mut row {
            *cell = results.next().expect("one result per lattice cell")?;
        }
        labels.push(format!("{tdp}W"));
        values.push(row);
    }
    Ok((Panel { title: title.to_string(), labels, values }, stats))
}

/// Panel (c): battery-life average power, normalised to IVR (lower is
/// better).
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn battery_panel() -> Result<Panel, PdnError> {
    battery_panel_with_stats().map(|(panel, _)| panel)
}

/// [`battery_panel`] plus the batch statistics of its `(workload, PDN)`
/// fan-out; raw powers are computed in parallel and normalised to the
/// IVR column serially.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn battery_panel_with_stats() -> Result<(Panel, BatchStats), PdnError> {
    let params = ModelParams::paper_defaults();
    let pdns = five_pdns(&params);
    // §7.1: battery-life power is TDP-insensitive; evaluated at 18 W.
    let soc = client_soc(Watts::new(18.0));
    let cells: Vec<(BatteryLifeWorkload, usize)> = BatteryLifeWorkload::ALL
        .into_iter()
        .flat_map(|wl| (0..pdns.len()).map(move |p| (wl, p)))
        .collect();
    // Battery-life workloads share idle scenarios (the same C-states at
    // the same TDP), so one cache deduplicates them across workloads.
    let memo = MemoCache::new();
    let (powers, mut stats) = par_map_stats(&cells, Workers::Auto, |_, &(wl, p)| {
        battery_life_average_power(&soc, &memo.wrap(pdns[p].as_ref()), wl)
    });
    let memo_stats = memo.stats();
    stats.memo_hits = memo_stats.hits as usize;
    stats.memo_misses = memo_stats.misses as usize;
    stats.memo_evictions = memo_stats.evictions as usize;
    let mut labels = Vec::new();
    let mut values = Vec::new();
    let mut powers = powers.into_iter();
    for wl in BatteryLifeWorkload::ALL {
        let mut row = [0.0f64; 5];
        for cell in &mut row {
            *cell = powers.next().expect("one result per lattice cell")?.get();
        }
        let ivr_power = row[0];
        for cell in &mut row {
            *cell /= ivr_power;
        }
        labels.push(wl.to_string());
        values.push(row);
    }
    Ok((
        Panel {
            title: "Fig. 8c — battery-life average power (normalised to IVR; lower is better)"
                .to_string(),
            labels,
            values,
        },
        stats,
    ))
}

/// Panels (d) and (e): BOM cost and board area vs TDP, normalised to IVR.
///
/// # Errors
///
/// Propagates rail-sizing errors.
pub fn bom_area_panels() -> Result<(Panel, Panel), PdnError> {
    bom_area_panels_with_stats().map(|(bom, area, _)| (bom, area))
}

/// [`bom_area_panels`] plus the batch statistics of the `(TDP, PDN)`
/// rail-sizing fan-out.
///
/// # Errors
///
/// Propagates rail-sizing errors.
pub fn bom_area_panels_with_stats() -> Result<(Panel, Panel, BatchStats), PdnError> {
    let params = ModelParams::paper_defaults();
    let catalog = VrCatalog::paper_calibrated();
    let pdns = five_pdns(&params);
    let mut bom = Panel {
        title: "Fig. 8d — BOM cost (normalised to IVR)".to_string(),
        labels: Vec::new(),
        values: Vec::new(),
    };
    let mut area = Panel {
        title: "Fig. 8e — board area (normalised to IVR)".to_string(),
        labels: Vec::new(),
        values: Vec::new(),
    };
    let cells: Vec<(usize, usize)> =
        (0..TDPS.len()).flat_map(|t| (0..pdns.len()).map(move |p| (t, p))).collect();
    let (footprints, stats) = par_map_stats(&cells, Workers::Auto, |_, &(t, p)| {
        let soc = client_soc(Watts::new(TDPS[t]));
        pdn_footprint(pdns[p].as_ref(), &soc, &catalog)
    });
    let mut remaining = footprints.into_iter();
    for &tdp in &TDPS {
        let footprints: Vec<_> = (0..pdns.len())
            .map(|_| remaining.next().expect("one result per lattice cell"))
            .collect::<Result<_, _>>()?;
        let ivr = &footprints[0];
        let mut bom_row = [0.0f64; 5];
        let mut area_row = [0.0f64; 5];
        for (i, f) in footprints.iter().enumerate() {
            bom_row[i] = f.cost.get() / ivr.cost.get();
            area_row[i] = f.area.get() / ivr.area.get();
        }
        bom.labels.push(format!("{tdp}W"));
        bom.values.push(bom_row);
        area.labels.push(format!("{tdp}W"));
        area.values.push(area_row);
    }
    Ok((bom, area, stats))
}

/// Renders all five panels, with one merged batch-stats footer.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn render() -> Result<String, PdnError> {
    let (a, mut stats) = performance_panel(
        "Fig. 8a — SPEC CPU2006 average performance (normalised to IVR)",
        WorkloadType::MultiThread,
    )?;
    let (b, b_stats) = performance_panel(
        "Fig. 8b — 3DMark06 performance (normalised to IVR)",
        WorkloadType::Graphics,
    )?;
    let (c, c_stats) = battery_panel_with_stats()?;
    let (d, e, de_stats) = bom_area_panels_with_stats()?;
    stats.absorb(&b_stats);
    stats.absorb(&c_stats);
    stats.absorb(&de_stats);
    Ok(format!(
        "{}\n{}\n{}\n{}\n{}\n{}\n",
        a.render("%"),
        b.render("%"),
        c.render("%"),
        d.render("x"),
        e.render("x"),
        stats.deterministic_footer()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(panel: &Panel, label_prefix: &str, col: usize) -> f64 {
        panel
            .values
            .iter()
            .zip(&panel.labels)
            .find(|(_, l)| l.starts_with(label_prefix))
            .map(|(v, _)| v[col])
            .unwrap()
    }

    #[test]
    fn fig8a_flexwatts_wins_low_tdp_and_holds_high_tdp() {
        let a = spec_average_panel().unwrap();
        let fw_4w = col(&a, "4W", 4);
        assert!(fw_4w > 1.07 && fw_4w < 1.40, "SPEC average FlexWatts gain at 4 W: {fw_4w:.3}");
        // At 50 W FlexWatts stays within ~1 % of IVR (its IVR-Mode).
        let fw_50w = col(&a, "50W", 4);
        assert!(fw_50w > 0.985, "FlexWatts at 50 W: {fw_50w:.3}");
        // ...and does not lose to MBVR there (§7.1: up to 7 % better; our
        // 36-50 W rows are frequency-limited, so the gap closes to ~0 —
        // see EXPERIMENTS.md — but it shows at 18-25 W).
        let mbvr_50w = col(&a, "50W", 1);
        assert!(fw_50w >= mbvr_50w - 1e-9, "FlexWatts {fw_50w:.3} vs MBVR {mbvr_50w:.3} at 50 W");
        let fw_25w = col(&a, "25W", 4);
        let mbvr_25w = col(&a, "25W", 1);
        assert!(
            fw_25w >= mbvr_25w,
            "FlexWatts {fw_25w:.3} must match/beat MBVR {mbvr_25w:.3} at 25 W"
        );
    }

    #[test]
    fn fig8b_graphics_gains_at_low_tdp() {
        let b = graphics_panel().unwrap();
        let fw_4w = col(&b, "4W", 4);
        assert!(fw_4w > 1.10 && fw_4w < 1.45, "3DMark06 FlexWatts gain at 4 W: {fw_4w:.3}");
        let fw_50w = col(&b, "50W", 4);
        assert!(fw_50w > 0.98, "FlexWatts graphics at 50 W: {fw_50w:.3}");
    }

    #[test]
    fn fig8c_video_playback_power_drop_matches_headline() {
        // Headline: FlexWatts reduces video-playback average power by
        // ≈ 11 % vs IVR (8–17 % band accepted for the reproduction).
        let c = battery_panel().unwrap();
        let fw = col(&c, "video-playback", 4);
        assert!((0.83..=0.92).contains(&fw), "FlexWatts video playback vs IVR: {fw:.3}");
        // FlexWatts within ~1 % of MBVR on battery life.
        let mbvr = col(&c, "video-playback", 1);
        assert!(fw < mbvr + 0.015, "FlexWatts {fw:.3} vs MBVR {mbvr:.3}");
    }

    #[test]
    fn fig8d_e_flexwatts_comparable_to_ivr() {
        let (d, e) = bom_area_panels().unwrap();
        for tdp in ["4W", "18W", "50W"] {
            let fw_bom = col(&d, tdp, 4);
            let fw_area = col(&e, tdp, 4);
            assert!(fw_bom < 1.5, "FlexWatts BOM at {tdp}: {fw_bom:.2}");
            assert!(fw_area < 1.55, "FlexWatts area at {tdp}: {fw_area:.2}");
            let mbvr_bom = col(&d, tdp, 1);
            assert!(mbvr_bom > 1.5, "MBVR BOM at {tdp}: {mbvr_bom:.2}");
            assert!(mbvr_bom > fw_bom, "FlexWatts must undercut MBVR at {tdp}");
        }
    }

    #[test]
    fn renders_all_panels() {
        let s = render().unwrap();
        for marker in ["Fig. 8a", "Fig. 8b", "Fig. 8c", "Fig. 8d", "Fig. 8e"] {
            assert!(s.contains(marker), "missing {marker}");
        }
    }
}
