//! The five-PDN comparison suite used by every figure.

use flexwatts::FlexWattsAuto;
use pdnspot::{IPlusMbvrPdn, IvrPdn, LdoPdn, MbvrPdn, ModelParams, Pdn};

/// The TDP sweep of Figs. 2 and 8.
pub const TDPS: [f64; 7] = pdn_proc::PAPER_TDPS;

/// The AR sweep of Fig. 4 (40–80 %).
pub const ARS: [f64; 5] = [0.40, 0.50, 0.60, 0.70, 0.80];

/// Builds the five PDNs in the paper's comparison order:
/// IVR (the baseline), MBVR, LDO, I+MBVR, FlexWatts.
pub fn five_pdns(params: &ModelParams) -> Vec<Box<dyn Pdn>> {
    vec![
        Box::new(IvrPdn::new(params.clone())),
        Box::new(MbvrPdn::new(params.clone())),
        Box::new(LdoPdn::new(params.clone())),
        Box::new(IPlusMbvrPdn::new(params.clone())),
        Box::new(FlexWattsAuto::new(params.clone())),
    ]
}

/// Builds the three baseline PDNs of Figs. 4 and 5 (IVR, MBVR, LDO).
pub fn three_baselines(params: &ModelParams) -> Vec<Box<dyn Pdn>> {
    vec![
        Box::new(IvrPdn::new(params.clone())),
        Box::new(MbvrPdn::new(params.clone())),
        Box::new(LdoPdn::new(params.clone())),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdnspot::PdnKind;

    #[test]
    fn suite_order_matches_the_paper() {
        let pdns = five_pdns(&ModelParams::paper_defaults());
        let kinds: Vec<PdnKind> = pdns.iter().map(|p| p.kind()).collect();
        assert_eq!(
            kinds,
            vec![PdnKind::Ivr, PdnKind::Mbvr, PdnKind::Ldo, PdnKind::IPlusMbvr, PdnKind::FlexWatts]
        );
        assert_eq!(three_baselines(&ModelParams::paper_defaults()).len(), 3);
    }
}
