//! Regenerates the paper's Fig. 5 loss breakdown as text.
fn main() {
    match pdn_bench::fig5::render() {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("fig5 failed: {e}");
            std::process::exit(1);
        }
    }
}
