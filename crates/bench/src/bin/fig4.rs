//! Regenerates the paper's fig4 series as text.
fn main() {
    match pdn_bench::fig4::render() {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("fig4 failed: {e}");
            std::process::exit(1);
        }
    }
}
