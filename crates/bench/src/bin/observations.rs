//! Regenerates the §5 observations (crossover map) and the load-line
//! ablation as text.
fn main() {
    match pdn_bench::observations::crossover_map()
        .and_then(|a| pdn_bench::observations::loadline_sensitivity().map(|b| format!("{a}\n{b}")))
    {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("observations failed: {e}");
            std::process::exit(1);
        }
    }
}
