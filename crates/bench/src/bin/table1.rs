//! Regenerates the paper's table1 as text.
fn main() {
    print!("{}", pdn_bench::tables::table1());
}
