//! `pdnspot_cli` — the command-line face of the PDNspot framework.
//!
//! Evaluates any PDN on any operating point from the shell, the way the
//! paper's open-source release is meant to be driven:
//!
//! ```console
//! $ pdnspot_cli --tdp 4 --workload mt --ar 0.6
//! $ pdnspot_cli --tdp 18 --pdn mbvr --workload gfx --ar 0.7
//! $ pdnspot_cli --tdp 25 --state c8
//! $ pdnspot_cli --tdp 50 --pdn flexwatts --workload st --ar 0.56 --bom
//! ```
//!
//! With no `--pdn`, all five architectures are compared.

use flexwatts::FlexWattsAuto;
use pdn_proc::{client_soc, PackageCState};
use pdn_units::{ApplicationRatio, Watts};
use pdn_workload::WorkloadType;
use pdnspot::areabom::{pdn_footprint, VrCatalog};
use pdnspot::{IPlusMbvrPdn, IvrPdn, LdoPdn, MbvrPdn, ModelParams, Pdn, Scenario};

struct Args {
    tdp: f64,
    pdn: Option<String>,
    workload: WorkloadType,
    ar: f64,
    state: Option<PackageCState>,
    bom: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: pdnspot_cli [--tdp W] [--pdn ivr|mbvr|ldo|i+mbvr|flexwatts] \
         [--workload st|mt|gfx] [--ar FRACTION] [--state c0min|c2|c3|c6|c7|c8] [--bom]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        tdp: 4.0,
        pdn: None,
        workload: WorkloadType::MultiThread,
        ar: 0.6,
        state: None,
        bom: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--tdp" => args.tdp = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()),
            "--ar" => args.ar = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()),
            "--pdn" => args.pdn = Some(it.next().unwrap_or_else(|| usage()).to_lowercase()),
            "--workload" => {
                args.workload = match it.next().as_deref() {
                    Some("st") => WorkloadType::SingleThread,
                    Some("mt") => WorkloadType::MultiThread,
                    Some("gfx") => WorkloadType::Graphics,
                    _ => usage(),
                }
            }
            "--state" => {
                args.state = Some(match it.next().as_deref() {
                    Some("c0min") => PackageCState::C0Min,
                    Some("c2") => PackageCState::C2,
                    Some("c3") => PackageCState::C3,
                    Some("c6") => PackageCState::C6,
                    Some("c7") => PackageCState::C7,
                    Some("c8") => PackageCState::C8,
                    _ => usage(),
                })
            }
            "--bom" => args.bom = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args();
    let params = ModelParams::paper_defaults();
    let soc = client_soc(Watts::new(args.tdp));

    let all: Vec<(&str, Box<dyn Pdn>)> = vec![
        ("ivr", Box::new(IvrPdn::new(params.clone()))),
        ("mbvr", Box::new(MbvrPdn::new(params.clone()))),
        ("ldo", Box::new(LdoPdn::new(params.clone()))),
        ("i+mbvr", Box::new(IPlusMbvrPdn::new(params.clone()))),
        ("flexwatts", Box::new(FlexWattsAuto::new(params))),
    ];
    let selected: Vec<&(&str, Box<dyn Pdn>)> = match &args.pdn {
        Some(name) => {
            let found: Vec<_> = all.iter().filter(|(n, _)| n == name).collect();
            if found.is_empty() {
                usage();
            }
            found
        }
        None => all.iter().collect(),
    };

    let scenario = match args.state {
        Some(state) => Scenario::idle(&soc, state),
        None => Scenario::active_fixed_tdp_frequency(
            &soc,
            args.workload,
            ApplicationRatio::new(args.ar)?,
        )?,
    };
    println!("scenario: {} | nominal load {:.3}", scenario.name, scenario.total_nominal_power());
    println!(
        "{:<10} {:>7} {:>9} {:>9} {:>12} {:>10} {:>8}",
        "PDN", "ETEE", "input", "VR loss", "I2R compute", "I2R SA/IO", "other"
    );
    for (name, pdn) in &selected {
        let e = pdn.evaluate(&scenario)?;
        println!(
            "{:<10} {:>7} {:>8.3}W {:>8.3}W {:>11.3}W {:>9.3}W {:>7.3}W",
            name,
            format!("{:.1}%", e.etee.percent()),
            e.input_power.get(),
            e.breakdown.vr_loss.get(),
            e.breakdown.conduction_compute.get(),
            e.breakdown.conduction_sa_io.get(),
            e.breakdown.other.get(),
        );
    }

    if args.bom {
        let catalog = VrCatalog::paper_calibrated();
        println!("\n{:<10} {:>10} {:>10} {:>6} {:>6}", "PDN", "area", "cost", "PMIC", "rails");
        for (name, pdn) in &selected {
            let f = pdn_footprint(pdn.as_ref(), &soc, &catalog)?;
            println!(
                "{:<10} {:>7.1}mm2 {:>9.2}$ {:>6} {:>6}",
                name,
                f.area.get(),
                f.cost.get(),
                if f.pmic { "yes" } else { "no" },
                f.rails.len(),
            );
        }
    }
    Ok(())
}
