//! Regenerates the paper's fig2 series as text.
fn main() {
    match pdn_bench::fig2::render() {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("fig2 failed: {e}");
            std::process::exit(1);
        }
    }
}
