//! Regenerates the paper's fig7 series as text.
fn main() {
    match pdn_bench::fig7::render() {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("fig7 failed: {e}");
            std::process::exit(1);
        }
    }
}
