//! Regenerates the paper's fig8 series as text.
fn main() {
    match pdn_bench::fig8::render() {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("fig8 failed: {e}");
            std::process::exit(1);
        }
    }
}
