//! Regenerates the fixed-seed fault-campaign artefact as text.
fn main() {
    match pdn_bench::faults::campaign_report() {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("fault campaign failed: {e}");
            std::process::exit(1);
        }
    }
}
