//! `perf`: the tracked performance baseline.
//!
//! Runs the five hot evaluation kernels (grid sweep, validation, runtime
//! trace, memoized sweep, crossover scan), writes the machine-readable
//! `BENCH_batch.json`, and
//! prints the deterministic result digest on stdout (committed as
//! `results/perf.txt` and diffed by CI — timings go to the JSON and
//! stderr only, so stdout is bit-stable across runs and machines).
//!
//! Usage: `perf [--quick] [--out BENCH_batch.json] [--baseline FILE]`
//!
//! `--baseline FILE` embeds a previous run's JSON under `"baseline"` and
//! records per-kernel speedups — this is how before/after numbers of an
//! optimisation land in one committed file.

use pdn_bench::perf;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::Ordering;

/// A pass-through allocator that counts every allocation into
/// [`perf::ALLOC_COUNT`] — the allocations/point column measures the
/// evaluation kernels' heap traffic, not a model.
struct CountingAllocator;

// SAFETY: defers all allocation to `System`; the counter is a relaxed
// atomic increment with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        perf::ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        perf::ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_batch.json".to_string());
    let baseline = flag_value(&args, "--baseline").map(|p| {
        std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("cannot read baseline JSON {p}: {e}"))
    });

    let kernels = perf::run_all(quick);
    let json = perf::render_json(&kernels, quick, baseline.as_deref());
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));

    // Deterministic digest on stdout; human-readable timings on stderr.
    print!("{}", perf::render_digest(&kernels));
    for k in &kernels {
        eprintln!(
            "{:>14}: {:>8} points in {:>8.1} ms — {:>10.0} points/s, {:>8.0} ns/point, \
             {:.1} allocs/point",
            k.name,
            k.points,
            k.wall_s * 1e3,
            k.points_per_sec(),
            k.ns_per_point(),
            k.allocs_per_point(),
        );
    }
    eprintln!("wrote {out_path}");
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}
