//! Regenerates the §6 overhead report as text.
fn main() {
    print!("{}", pdn_bench::overheads::render());
}
