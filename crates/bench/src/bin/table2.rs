//! Regenerates the paper's table2 as text.
fn main() {
    print!("{}", pdn_bench::tables::table2());
}
