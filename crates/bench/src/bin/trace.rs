//! `trace`: the streaming trace-ingestion benchmark.
//!
//! Encodes a scenario-zoo trace file, then times the cold streaming
//! replay, a crash-interrupted + resumed replay (asserted bitwise equal
//! to the cold one), and a poisoned-file quarantine replay. Writes the
//! machine-readable `BENCH_trace.json` and prints the deterministic
//! result digest on stdout (timings go to the JSON and stderr only, so
//! stdout is bit-stable across runs and machines).
//!
//! Usage: `trace [--quick] [--out BENCH_trace.json]`

use pdn_bench::tracebench;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_trace.json".to_string());

    let report = tracebench::run(quick);
    let json = tracebench::render_json(&report, quick);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));

    print!("{}", tracebench::render_digest(&report));
    for leg in &report.legs {
        eprintln!(
            "{:>15}: {:>8} intervals in {:>8.1} ms — {:>10.0} intervals/s",
            leg.name,
            leg.intervals,
            leg.wall_s * 1e3,
            leg.intervals_per_sec(),
        );
    }
    eprintln!(
        "file {} bytes, resumed from {}, quarantined {} chunks ({} intervals lost)",
        report.file_bytes, report.resumed_from, report.chunks_quarantined, report.intervals_lost
    );
    eprintln!("wrote {out_path}");
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}
