//! Regenerates the paper's fig3 series as text.
fn main() {
    match pdn_bench::fig3::render() {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("fig3 failed: {e}");
            std::process::exit(1);
        }
    }
}
