//! Regenerates the paper's table3 as text.
fn main() {
    print!("{}", pdn_bench::tables::table3());
}
