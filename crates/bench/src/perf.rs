//! The tracked performance baseline: machine-readable throughput and
//! allocation numbers for the three hot evaluation kernels.
//!
//! The paper's value proposition is that the analytical model is *fast*
//! enough to sweep thousands of (TDP, workload, AR, C-state) points per
//! PDN; this module turns that into a protected number. Six kernels are
//! timed:
//!
//! * **batch_sweep** — the full design-space lattice sweep
//!   ([`pdnspot::batch::evaluate`]) over the four baseline
//!   PDN topologies;
//! * **validation** — the Fig. 4-style campaign: model evaluation plus
//!   reference-system reintegration through tabulated VR surfaces;
//! * **runtime_trace** — the FlexWatts runtime interval simulator over a
//!   deterministic synthetic trace;
//! * **memo_sweep** — two passes of the memoized lattice sweep through one
//!   shared [`pdnspot::memo::MemoCache`]; the warm pass must be served
//!   entirely from the cache;
//! * **crossover_scan** — repeated crossover-TDP searches (grid scan plus
//!   bisection probes) through one shared cache; the second round re-runs
//!   every pair fully cached;
//! * **delta_sweep** — the incremental dirty-slab re-sweep
//!   ([`pdnspot::sweep::surfaces_delta`]): one TDP axis value changes and
//!   only the dirtied slab is re-evaluated, patching the prior surfaces
//!   in place bit-identically to a full re-sweep.
//!
//! Each kernel reports wall time, points/sec, ns/point, heap allocations
//! per point (counted by the `perf` binary's instrumented global
//! allocator — see `src/bin/perf.rs`; library users see zeros), and a
//! *deterministic digest* of the numeric results. The digest is the
//! regression guard: an optimisation must change the timings, never the
//! digest.
//!
//! [`render_json`] emits the `BENCH_batch.json` schema documented in the
//! README; [`render_digest`] emits the deterministic text committed as
//! `results/perf.txt` and diffed by CI.

use pdn_proc::PackageCState;
use pdn_units::{ApplicationRatio, Seconds, Watts};
use pdn_workload::{Trace, TraceInterval, WorkloadType};
use pdnspot::batch::{evaluate, ClientSoc, SweepGrid, Workers};
use pdnspot::prelude::*;
use pdnspot::validation::{validate_with, ReferenceSystem};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Heap-allocation counter. The `perf` binary installs a counting global
/// allocator that increments this on every `alloc`/`realloc`; the library
/// itself never writes it, so embedding callers that skip the allocator
/// simply read zeros.
pub static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

/// Measurement of one kernel.
#[derive(Debug, Clone)]
pub struct KernelReport {
    /// Kernel name (stable identifier used in the JSON schema).
    pub name: &'static str,
    /// Work items processed (evaluations, samples, or intervals).
    pub points: usize,
    /// Wall time of the timed run, in seconds.
    pub wall_s: f64,
    /// Heap allocations during the timed run (0 without the counting
    /// allocator).
    pub allocations: u64,
    /// Deterministic digest of the numeric results.
    pub digest: String,
}

impl KernelReport {
    /// Throughput in points per second.
    pub fn points_per_sec(&self) -> f64 {
        if self.wall_s <= 0.0 {
            return 0.0;
        }
        self.points as f64 / self.wall_s
    }

    /// Mean cost per point in nanoseconds.
    pub fn ns_per_point(&self) -> f64 {
        if self.points == 0 {
            return 0.0;
        }
        self.wall_s * 1e9 / self.points as f64
    }

    /// Mean heap allocations per point.
    pub fn allocs_per_point(&self) -> f64 {
        if self.points == 0 {
            return 0.0;
        }
        self.allocations as f64 / self.points as f64
    }
}

/// Timed repetitions per kernel: the report carries the *minimum* wall
/// time. A single pass over a ~1 ms workload is at the mercy of scheduler
/// preemption and allocator state — back-to-back runs of an identical
/// binary spread by ±30%, which is exactly the flakiness a CI regression
/// gate cannot absorb. The minimum of a few runs is the run least
/// disturbed by noise and is stable to a few percent.
const PERF_REPEATS: usize = 5;

/// Times `f` over [`PERF_REPEATS`] runs, returning the last run's result
/// plus `(min_wall_s, allocations_of_one_run)`.
///
/// Every kernel closure is deterministic and self-contained (fresh memo
/// caches and same-seed reference units are built inside the closure), so
/// repeated runs return bit-identical results and the digest does not
/// depend on which run is reported.
fn measure<R>(mut f: impl FnMut() -> R) -> (R, f64, u64) {
    let mut best_wall = f64::INFINITY;
    let mut out = None;
    let mut allocs = 0;
    for _ in 0..PERF_REPEATS {
        let allocs_before = ALLOC_COUNT.load(Ordering::Relaxed);
        let start = Instant::now();
        let r = f();
        let wall = start.elapsed().as_secs_f64();
        allocs = ALLOC_COUNT.load(Ordering::Relaxed) - allocs_before;
        best_wall = best_wall.min(wall);
        out = Some(r);
    }
    (out.expect("PERF_REPEATS is nonzero"), best_wall, allocs)
}

/// Formats a digest float: enough digits to pin every bit of a double.
fn digest_f64(x: f64) -> String {
    format!("{x:.17e}")
}

/// The batch-sweep lattice (the `benches/batch_sweep.rs` lattice; `quick`
/// trims the axes for the CI smoke job).
fn sweep_grid(quick: bool) -> SweepGrid {
    let tdps: &[f64] =
        if quick { &[4.0, 18.0, 50.0] } else { &[4.0, 10.0, 18.0, 25.0, 36.0, 44.0, 50.0] };
    let ars: &[f64] = if quick {
        &[0.40, 0.60, 0.80]
    } else {
        &[0.40, 0.45, 0.50, 0.56, 0.60, 0.65, 0.70, 0.75, 0.80]
    };
    SweepGrid::builder()
        .tdps(tdps)
        .workload_types(&WorkloadType::ACTIVE_TYPES)
        .ars(ars)
        .idle_states(&PackageCState::ALL)
        .build()
        .expect("static lattice is valid")
}

/// Kernel 1: the design-space grid sweep over the four PDN topologies.
pub fn batch_kernel(quick: bool) -> KernelReport {
    let params = ModelParams::paper_defaults();
    let ivr = IvrPdn::new(params.clone());
    let mbvr = MbvrPdn::new(params.clone());
    let ldo = LdoPdn::new(params.clone());
    let iplus = IPlusMbvrPdn::new(params);
    let pdns: [&dyn Pdn; 4] = [&ivr, &mbvr, &ldo, &iplus];
    let grid = sweep_grid(quick);
    // Warm up (allocator pools, curve segment hints); the scenario cache
    // itself is per-call, so the timed run still pays every build.
    let cfg = EngineConfig::builder().workers(Workers::Serial).build().expect("valid config");
    let _ = evaluate(&pdns, &grid, &ClientSoc, &cfg, None);
    let (outcome, wall_s, allocations) = measure(|| evaluate(&pdns, &grid, &ClientSoc, &cfg, None));
    assert_eq!(outcome.stats.failed, 0, "sweep lattice must evaluate cleanly");
    let mut etee_sum = 0.0;
    let mut input_sum = 0.0;
    for eval in &outcome.evaluations {
        let e = eval.result.as_ref().expect("no failures");
        etee_sum += e.etee.get();
        input_sum += e.input_power.get();
    }
    KernelReport {
        name: "batch_sweep",
        points: outcome.stats.evaluations,
        wall_s,
        allocations,
        digest: format!(
            "evals={} etee_sum={} input_sum={}",
            outcome.stats.evaluations,
            digest_f64(etee_sum),
            digest_f64(input_sum)
        ),
    }
}

/// Kernel 2: the Fig. 4-style validation campaign (model evaluation plus
/// reference-system reintegration and noise).
pub fn validation_kernel(quick: bool) -> KernelReport {
    let params = ModelParams::paper_defaults();
    let pdn = MbvrPdn::new(params);
    let tdps: &[f64] = if quick { &[4.0, 18.0] } else { &[4.0, 18.0, 50.0] };
    let ars: &[f64] = if quick { &[0.4, 0.8] } else { &[0.4, 0.5, 0.6, 0.7, 0.8] };
    let mut scenarios = Vec::new();
    for &tdp in tdps {
        let soc = pdn_proc::client_soc(Watts::new(tdp));
        for wl in WorkloadType::ACTIVE_TYPES {
            for &ar in ars {
                let ar = ApplicationRatio::new(ar).expect("static ARs are valid");
                scenarios.push(
                    Scenario::active_fixed_tdp_frequency(&soc, wl, ar)
                        .expect("static lattice is valid"),
                );
            }
        }
    }
    // The noise stream is per-unit state, so warmup and every timed
    // repetition consume their own same-seed unit: each run replays the
    // identical stream, keeping the digest deterministic while the
    // (surface-compiling) unit construction stays outside the timing.
    let warm = ReferenceSystem::new(42);
    let _ = validate_with(&pdn, &warm, &scenarios, Workers::Serial);
    let mut units: Vec<ReferenceSystem> =
        (0..PERF_REPEATS).map(|_| ReferenceSystem::new(42)).collect();
    let (report, wall_s, allocations) = measure(|| {
        let reference = units.pop().expect("one reference unit per repetition");
        validate_with(&pdn, &reference, &scenarios, Workers::Serial)
    });
    let report = report.expect("validation campaign succeeds");
    KernelReport {
        name: "validation",
        points: report.samples.len(),
        wall_s,
        allocations,
        digest: format!(
            "samples={} mean_acc={}",
            report.samples.len(),
            digest_f64(report.mean_accuracy())
        ),
    }
}

/// The deterministic synthetic trace of the runtime kernel: a bursty
/// phase mix cycling through every workload type and two idle depths.
fn runtime_trace(quick: bool) -> Trace {
    let reps = if quick { 4 } else { 20 };
    let mut intervals = Vec::new();
    let ar = |v: f64| ApplicationRatio::new(v).expect("static AR is valid");
    for i in 0..reps {
        let t = Seconds::new(0.03);
        intervals.push(TraceInterval::active(t, WorkloadType::MultiThread, ar(0.7)));
        intervals.push(TraceInterval::active(t, WorkloadType::SingleThread, ar(0.45)));
        intervals.push(TraceInterval::idle(t, PackageCState::C6));
        intervals.push(TraceInterval::active(t, WorkloadType::Graphics, ar(0.6)));
        if i % 2 == 0 {
            intervals.push(TraceInterval::idle(t, PackageCState::C8));
        }
    }
    Trace::new("perf-kernel", intervals)
}

/// Kernel 3: the FlexWatts runtime interval simulator.
pub fn runtime_kernel(quick: bool) -> KernelReport {
    let predictor = flexwatts::ModePredictor::train(
        &ModelParams::paper_defaults(),
        &[4.0, 10.0, 18.0, 25.0, 50.0],
        &[0.4, 0.6, 0.8],
    )
    .expect("predictor training lattice is valid");
    let runtime = flexwatts::FlexWattsRuntime::new(
        pdn_proc::client_soc(Watts::new(18.0)),
        ModelParams::paper_defaults(),
        predictor,
        flexwatts::RuntimeConfig::default(),
    );
    let trace = runtime_trace(quick);
    let _ = runtime.run_with(&trace, Workers::Serial);
    let (report, wall_s, allocations) = measure(|| runtime.run_with(&trace, Workers::Serial));
    let report = report.expect("runtime trace simulates cleanly");
    KernelReport {
        name: "runtime_trace",
        points: trace.intervals().len(),
        wall_s,
        allocations,
        digest: format!(
            "intervals={} energy_j={} accuracy={}",
            trace.intervals().len(),
            digest_f64(report.energy_joules),
            digest_f64(report.prediction_accuracy)
        ),
    }
}

/// Kernel 4: two passes of the memoized lattice sweep through one shared
/// cache. The cold pass pays every evaluation (plus cache bookkeeping);
/// the warm pass must be answered entirely from memory, which the digest
/// pins as an exact hit rate.
pub fn memo_kernel(quick: bool) -> KernelReport {
    let params = ModelParams::paper_defaults();
    let ivr = IvrPdn::new(params.clone());
    let mbvr = MbvrPdn::new(params.clone());
    let ldo = LdoPdn::new(params.clone());
    let iplus = IPlusMbvrPdn::new(params);
    let pdns: [&dyn Pdn; 4] = [&ivr, &mbvr, &ldo, &iplus];
    let grid = sweep_grid(quick);
    let run = || {
        // The default capacity dwarfs the lattice (≤ 924 entries), so
        // no shard evicts and the warm hit rate is exactly 1. Sizing the
        // cache *at* the entry count would FIFO-thrash the shards the key
        // hash happens to overfill.
        let memo = MemoCache::new();
        let cfg = EngineConfig::builder().workers(Workers::Serial).build().expect("valid config");
        let cold = evaluate(&pdns, &grid, &ClientSoc, &cfg, Some(&memo));
        let warm = evaluate(&pdns, &grid, &ClientSoc, &cfg, Some(&memo));
        (cold, warm)
    };
    let _ = run();
    let ((cold, warm), wall_s, allocations) = measure(run);
    assert_eq!(cold.stats.failed, 0, "sweep lattice must evaluate cleanly");
    assert_eq!(warm.stats.failed, 0, "sweep lattice must evaluate cleanly");
    let warm_rate = warm.stats.memo_hit_rate();
    let mut etee_sum = 0.0;
    let mut input_sum = 0.0;
    for eval in &warm.evaluations {
        let e = eval.result.as_ref().expect("no failures");
        etee_sum += e.etee.get();
        input_sum += e.input_power.get();
    }
    KernelReport {
        name: "memo_sweep",
        points: cold.stats.evaluations + warm.stats.evaluations,
        wall_s,
        allocations,
        digest: format!(
            "evals={} etee_sum={} input_sum={} warm_hit_rate={}",
            cold.stats.evaluations + warm.stats.evaluations,
            digest_f64(etee_sum),
            digest_f64(input_sum),
            digest_f64(warm_rate)
        ),
    }
}

/// Kernel 5: repeated crossover-TDP searches through one shared cache.
/// Round 1 populates the cache (the scan grid plus every bisection
/// probe); round 2 re-runs the same searches and must find every
/// evaluation already cached.
pub fn crossover_kernel(quick: bool) -> KernelReport {
    use pdnspot::sweep::crossover;

    let params = ModelParams::paper_defaults();
    let ivr = IvrPdn::new(params.clone());
    let mbvr = MbvrPdn::new(params.clone());
    let ldo = LdoPdn::new(params.clone());
    let iplus = IPlusMbvrPdn::new(params);
    let pairs: [(&dyn Pdn, &dyn Pdn); 3] = [(&mbvr, &ivr), (&ldo, &ivr), (&iplus, &ivr)];
    let ars: &[f64] = if quick { &[0.6] } else { &[0.4, 0.6, 0.8] };
    let cfg = EngineConfig::builder().workers(Workers::Serial).build().expect("valid config");
    let run = || {
        let memo = MemoCache::new();
        let mut crossover_sum = 0.0;
        let mut searches = 0usize;
        let mut round1 = MemoStats::default();
        for round in 0..2 {
            for &(challenger, incumbent) in &pairs {
                for &ar in ars {
                    let ar = ApplicationRatio::new(ar).expect("static ARs are valid");
                    let c = crossover(
                        challenger,
                        incumbent,
                        WorkloadType::MultiThread,
                        ar,
                        (4.0, 50.0),
                        &ClientSoc,
                        &cfg,
                        Some(&memo),
                    )
                    .expect("crossover search succeeds");
                    crossover_sum += match c {
                        Crossover::At(tdp) => tdp.get(),
                        Crossover::AlwaysFirst => -1.0,
                        Crossover::AlwaysSecond => -2.0,
                    };
                    searches += 1;
                }
            }
            if round == 0 {
                round1 = memo.stats();
            }
        }
        (crossover_sum, searches, round1, memo.stats())
    };
    let _ = run();
    let ((crossover_sum, searches, round1, total), wall_s, allocations) = measure(run);
    let round2_lookups = total.lookups() - round1.lookups();
    let round2_hits = total.hits - round1.hits;
    let round2_rate =
        if round2_lookups == 0 { 0.0 } else { round2_hits as f64 / round2_lookups as f64 };
    KernelReport {
        name: "crossover_scan",
        points: total.lookups() as usize,
        wall_s,
        allocations,
        digest: format!(
            "searches={searches} crossover_sum={} round2_hit_rate={}",
            digest_f64(crossover_sum),
            digest_f64(round2_rate)
        ),
    }
}

/// Kernel 6: the incremental dirty-slab re-sweep. A prior surface
/// campaign over the active batch lattice is patched after one TDP axis
/// value changes: [`SweepGrid::diff`] computes the dirty slab and
/// [`pdnspot::sweep::surfaces_delta`] re-evaluates only that slab in
/// place. The timed run covers the whole patched campaign, so the
/// reported ns/point is directly comparable with `batch_sweep`'s — the
/// ratio is the dirty-slab speedup the CI gate protects. The digest pins
/// the dirty evaluation count and that the patched surfaces equal a
/// from-scratch re-sweep of the new grid bit for bit.
pub fn delta_kernel(quick: bool) -> KernelReport {
    use pdnspot::sweep::{surfaces, surfaces_delta};

    let params = ModelParams::paper_defaults();
    let ivr = IvrPdn::new(params.clone());
    let mbvr = MbvrPdn::new(params.clone());
    let ldo = LdoPdn::new(params.clone());
    let iplus = IPlusMbvrPdn::new(params);
    let pdns: [&dyn Pdn; 4] = [&ivr, &mbvr, &ldo, &iplus];
    // The active sub-lattice of the batch-sweep grid (surfaces are
    // defined on active lattices), with the middle TDP nudged: the delta
    // is one TDP slab out of the axis.
    let base = sweep_grid(quick);
    let old = SweepGrid::active(base.tdps(), base.workload_types(), base.ars())
        .expect("static lattice is valid");
    let mut tdps = old.tdps().to_vec();
    let mid = tdps.len() / 2;
    tdps[mid] += 1.0;
    let new =
        SweepGrid::active(&tdps, old.workload_types(), old.ars()).expect("static lattice is valid");
    let delta = new.diff(&old);
    let cfg = EngineConfig::builder().workers(Workers::Serial).build().expect("valid config");
    // Untimed setup: the prior campaign being patched, and the
    // from-scratch re-sweep the patch must reproduce.
    let (prior, _) =
        surfaces(&pdns, &old, &ClientSoc, &cfg, None).expect("prior campaign succeeds");
    let (full, _) = surfaces(&pdns, &new, &ClientSoc, &cfg, None).expect("full re-sweep succeeds");
    let run = || {
        let mut patched = prior.clone();
        let stats = surfaces_delta(&pdns, &new, &delta, &mut patched, &ClientSoc, &cfg, None)
            .expect("delta re-sweep succeeds");
        (patched, stats)
    };
    let _ = run();
    let ((patched, stats), wall_s, allocations) = measure(run);
    let full_points = pdns.len() * new.n_points();
    let etee_sum: f64 = patched.iter().flat_map(|s| s.values.iter()).sum();
    let matches_full = patched.len() == full.len()
        && patched.iter().zip(&full).all(|(p, f)| {
            p.tdps == f.tdps
                && p.ars == f.ars
                && p.values.len() == f.values.len()
                && p.values.iter().zip(&f.values).all(|(a, b)| a.to_bits() == b.to_bits())
        });
    KernelReport {
        name: "delta_sweep",
        // The patched campaign covers the whole lattice; the timed work
        // is the dirty slab only. Counting full points makes ns/point the
        // effective cost of keeping the campaign fresh.
        points: full_points,
        wall_s,
        allocations,
        digest: format!(
            "dirty_evals={} full_points={full_points} etee_sum={} matches_full={}",
            stats.evaluations,
            digest_f64(etee_sum),
            u8::from(matches_full)
        ),
    }
}

/// Runs all six kernels.
pub fn run_all(quick: bool) -> Vec<KernelReport> {
    vec![
        batch_kernel(quick),
        validation_kernel(quick),
        runtime_kernel(quick),
        memo_kernel(quick),
        crossover_kernel(quick),
        delta_kernel(quick),
    ]
}

/// Renders the deterministic digest text (committed as
/// `results/perf.txt`): numeric results only, no timings.
pub fn render_digest(kernels: &[KernelReport]) -> String {
    let mut out = String::from("Perf kernels — deterministic result digests\n");
    for k in kernels {
        out.push_str(&format!("[perf] kernel={} {}\n", k.name, k.digest));
    }
    out
}

/// Renders one kernel as a single JSON object **on one line** — the
/// baseline extractor ([`extract_baseline_ns`]) depends on this shape.
fn kernel_json(k: &KernelReport) -> String {
    format!(
        "{{\"name\": \"{}\", \"points\": {}, \"wall_s\": {:.6}, \"points_per_sec\": {:.1}, \
         \"ns_per_point\": {:.1}, \"allocations\": {}, \"allocations_per_point\": {:.2}, \
         \"digest\": \"{}\"}}",
        k.name,
        k.points,
        k.wall_s,
        k.points_per_sec(),
        k.ns_per_point(),
        k.allocations,
        k.allocs_per_point(),
        k.digest
    )
}

/// Pulls `(name, ns_per_point)` pairs out of a previously emitted
/// `BENCH_batch.json` (naive line scan over the stable one-kernel-per-line
/// format; no JSON parser is vendored).
pub fn extract_baseline_ns(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(name) = field_str(line, "\"name\": \"") else { continue };
        let Some(ns) = field_f64(line, "\"ns_per_point\": ") else { continue };
        out.push((name, ns));
    }
    out
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let start = line.find(key)? + key.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

fn field_f64(line: &str, key: &str) -> Option<f64> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end =
        rest.find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Renders the full `BENCH_batch.json` document. `baseline` is the raw
/// text of a previous run's JSON; when present its kernel lines are
/// embedded under `"baseline"` and per-kernel speedups are computed.
pub fn render_json(kernels: &[KernelReport], quick: bool, baseline: Option<&str>) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"pdnspot-bench/v1\",\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", if quick { "quick" } else { "full" }));
    out.push_str("  \"kernels\": [\n");
    for (i, k) in kernels.iter().enumerate() {
        let sep = if i + 1 < kernels.len() { "," } else { "" };
        out.push_str(&format!("    {}{sep}\n", kernel_json(k)));
    }
    out.push_str("  ]");
    if let Some(base) = baseline {
        let pairs = extract_baseline_ns(base);
        out.push_str(",\n  \"baseline\": [\n");
        let base_lines: Vec<&str> =
            base.lines().filter(|l| l.contains("\"ns_per_point\"")).collect();
        for (i, line) in base_lines.iter().enumerate() {
            let sep = if i + 1 < base_lines.len() { "," } else { "" };
            out.push_str(&format!("    {}{sep}\n", line.trim().trim_end_matches(',')));
        }
        out.push_str("  ],\n  \"speedup_vs_baseline\": {\n");
        let mut entries = Vec::new();
        for k in kernels {
            if let Some((_, base_ns)) = pairs.iter().find(|(n, _)| n == k.name) {
                if k.ns_per_point() > 0.0 {
                    entries.push(format!("    \"{}\": {:.2}", k.name, base_ns / k.ns_per_point()));
                }
            }
        }
        out.push_str(&entries.join(",\n"));
        out.push_str("\n  }");
    }
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_kernels_produce_nonzero_throughput_and_stable_digests() {
        let a = batch_kernel(true);
        assert!(a.points > 0);
        assert!(a.points_per_sec() > 0.0);
        assert!(a.ns_per_point() > 0.0);
        let b = batch_kernel(true);
        assert_eq!(a.digest, b.digest, "digest must be run-to-run deterministic");
    }

    #[test]
    fn memo_kernel_warm_pass_is_fully_cached() {
        let k = memo_kernel(true);
        assert!(k.digest.contains("warm_hit_rate=1.00000000000000000e0"), "{}", k.digest);
        let again = memo_kernel(true);
        assert_eq!(k.digest, again.digest, "digest must be run-to-run deterministic");
    }

    #[test]
    fn memo_kernel_result_sums_match_the_plain_sweep() {
        // Memoization must not change a single reported value: the warm
        // pass sums must equal the memo-free batch kernel's sums.
        let plain = batch_kernel(true);
        let memo = memo_kernel(true);
        let tail = |d: &str| {
            d.split("etee_sum=").nth(1).map(|s| s.split(" warm").next().unwrap_or(s).to_string())
        };
        assert_eq!(tail(&plain.digest), tail(&memo.digest), "{} vs {}", plain.digest, memo.digest);
    }

    #[test]
    fn crossover_kernel_second_round_is_fully_cached() {
        let k = crossover_kernel(true);
        assert!(k.digest.contains("round2_hit_rate=1.00000000000000000e0"), "{}", k.digest);
        assert!(k.points > 0);
        assert!(k.digest.contains("searches=6"), "{}", k.digest);
    }

    #[test]
    fn delta_kernel_patch_is_bit_identical_to_the_full_resweep() {
        let k = delta_kernel(true);
        assert!(k.digest.contains("matches_full=1"), "{}", k.digest);
        assert!(k.points > 0);
        let again = delta_kernel(true);
        assert_eq!(k.digest, again.digest, "digest must be run-to-run deterministic");
    }

    #[test]
    fn digest_render_is_timing_free() {
        let k = KernelReport {
            name: "batch_sweep",
            points: 10,
            wall_s: 1.0,
            allocations: 5,
            digest: "evals=10".into(),
        };
        let text = render_digest(&[k]);
        assert!(text.contains("kernel=batch_sweep evals=10"));
        assert!(!text.contains("wall"), "digests must not embed timings");
    }

    #[test]
    fn json_round_trips_baseline_speedup() {
        let before = KernelReport {
            name: "batch_sweep",
            points: 100,
            wall_s: 2.0,
            allocations: 0,
            digest: "x".into(),
        };
        let base_json = render_json(std::slice::from_ref(&before), true, None);
        let after = KernelReport { wall_s: 1.0, ..before };
        let merged = render_json(&[after], true, Some(&base_json));
        assert!(merged.contains("\"speedup_vs_baseline\""));
        assert!(merged.contains("\"batch_sweep\": 2.00"), "{merged}");
        let pairs = extract_baseline_ns(&base_json);
        assert_eq!(pairs.len(), 1);
        assert!((pairs[0].1 - 2e7).abs() < 1e3, "{}", pairs[0].1);
    }
}
