//! Fig. 3: off-chip VR efficiency curves as a function of output current,
//! output voltage, and VR power state (Vin = 7.2 V).

use crate::render::TextTable;
use pdn_units::Volts;
use pdn_vr::{presets, EfficiencySurface, VrError, VrPowerState};

/// The Fig. 3 sweep: output voltages and power states measured.
pub const VOUTS: [f64; 4] = [0.6, 0.7, 1.0, 1.8];

/// Currents reported per curve (log-spaced 0.1–10 A like the figure).
pub const CURRENTS: [f64; 7] = [0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0];

/// "Measures" the off-chip V_IN VR over the Fig. 3 lattice.
///
/// # Errors
///
/// Propagates device errors.
pub fn measure_board_vr() -> Result<EfficiencySurface, VrError> {
    EfficiencySurface::sample(
        &presets::vin_board_vr(),
        &[Volts::new(7.2)],
        &VOUTS.map(Volts::new),
        &[VrPowerState::Ps0, VrPowerState::Ps1],
        (0.05, 12.0),
        32,
    )
}

/// Renders the curves as one row per (power state, Vout) series.
///
/// # Errors
///
/// Propagates device errors.
pub fn render() -> Result<String, VrError> {
    let surface = measure_board_vr()?;
    let mut headers = vec!["series".to_string()];
    headers.extend(CURRENTS.iter().map(|i| format!("{i}A")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t =
        TextTable::new("Fig. 3 — off-chip VR efficiency vs Iout (Vin = 7.2 V)", &headers_ref);
    for ps in [VrPowerState::Ps0, VrPowerState::Ps1] {
        for vout in VOUTS {
            let Some(curve) = surface.curve_at(Volts::new(7.2), Volts::new(vout), ps) else {
                continue;
            };
            let mut row = vec![format!("{ps} Vout={vout}V")];
            for i in CURRENTS {
                row.push(format!("{:.1}%", curve.eval_logx(i) * 100.0));
            }
            t.row(row);
        }
    }
    Ok(t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_match_fig3_shapes() {
        let surface = measure_board_vr().unwrap();
        // PS0 at Vout=1.8: rising from light load toward ≈ 90+ %.
        let c = surface.curve_at(Volts::new(7.2), Volts::new(1.8), VrPowerState::Ps0).unwrap();
        assert!(c.eval_logx(0.1) < c.eval_logx(5.0));
        assert!(c.eval_logx(10.0) > 0.88);
        // Higher Vout is more efficient at the same current.
        let lo = surface.curve_at(Volts::new(7.2), Volts::new(0.6), VrPowerState::Ps0).unwrap();
        assert!(lo.eval_logx(2.0) < c.eval_logx(2.0));
        // PS1 beats PS0 at 0.1 A (light-load state).
        let ps1 = surface.curve_at(Volts::new(7.2), Volts::new(1.0), VrPowerState::Ps1).unwrap();
        let ps0 = surface.curve_at(Volts::new(7.2), Volts::new(1.0), VrPowerState::Ps0).unwrap();
        assert!(ps1.eval_logx(0.1) > ps0.eval_logx(0.1));
    }

    #[test]
    fn renders_eight_series() {
        let s = render().unwrap();
        // PS1 curves get truncated by capability but PS0 has all four.
        assert!(s.matches("PS0").count() >= 4);
        assert!(s.contains("Vout=1.8V"));
    }
}
