//! The experiment harness: regenerates every table and figure of the
//! FlexWatts paper from the workspace's models.
//!
//! Each `fig*`/`tables`/`observations` module computes one paper artefact
//! and renders it as aligned text rows (the series a plot would show).
//! One binary per artefact lives in `src/bin/`; Criterion benches in
//! `benches/` time the same entry points.
//!
//! | Paper artefact | Module | Binary |
//! |---|---|---|
//! | Table 1 (architecture) | [`tables`] | `table1` |
//! | Table 2 (model parameters) | [`tables`] | `table2` |
//! | Table 3 (validation systems) | [`tables`] | `table3` |
//! | Fig. 2a/2b (perf model) | [`fig2`] | `fig2` |
//! | Fig. 3 (VR efficiency curves) | [`fig3`] | `fig3` |
//! | Fig. 4 (validation) | [`fig4`] | `fig4` |
//! | Fig. 5 (loss breakdown) | [`fig5`] | `fig5` |
//! | Fig. 7 (SPEC per-benchmark at 4 W) | [`fig7`] | `fig7` |
//! | Fig. 8a–e (perf/battery/BOM/area) | [`fig8`] | `fig8` |
//! | §6 overheads | [`overheads`] | `overhead` |
//! | §5 observations / crossovers | [`observations`] | `observations` |
//! | Fault campaign (robustness) | [`faults`] | `faults` |
//! | Perf baseline (`BENCH_batch.json`) | [`perf`] | `perf` |
//! | Trace ingestion (`BENCH_trace.json`) | [`tracebench`] | `trace` |

#![warn(missing_docs)]

pub mod faults;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig7;
pub mod fig8;
pub mod observations;
pub mod overheads;
pub mod perf;
pub mod render;
pub mod suite;
pub mod tables;
pub mod tracebench;
