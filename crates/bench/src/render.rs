//! Minimal aligned-text table rendering for the experiment binaries.

/// A text table with a title, column headers, and rows.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a ratio normalised to a baseline (e.g. `1.73x`).
pub fn times(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("demo", &["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("alpha"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        // Both rows align on the same column width.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.2215), "22.1%");
        assert_eq!(times(1.7349), "1.73x");
    }
}
