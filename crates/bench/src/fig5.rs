//! Fig. 5: breakdown of the PDN power-conversion losses of IVR, MBVR, and
//! LDO at 4/18/50 W (CPU-intensive workload, AR = 56 %), plus the
//! normalized chip input current and load-line impedance.

use crate::render::{pct, times, TextTable};
use pdn_proc::client_soc;
use pdn_units::{ApplicationRatio, Watts};
use pdn_workload::WorkloadType;
use pdnspot::{ModelParams, PdnError, PdnKind, Scenario};

/// The workload point of Fig. 5.
pub const FIG5_AR: f64 = 0.56;

/// One bar of Fig. 5.
#[derive(Debug, Clone)]
pub struct LossBar {
    /// PDN name.
    pub pdn: PdnKind,
    /// TDP of the bar.
    pub tdp: f64,
    /// VR-inefficiency share of input power.
    pub vr: f64,
    /// Core/GFX conduction share.
    pub conduction_compute: f64,
    /// SA/IO conduction share.
    pub conduction_sa_io: f64,
    /// Other (guardband, gates) share.
    pub other: f64,
    /// Chip input current in amperes.
    pub chip_current: f64,
    /// Effective compute load-line in milliohms.
    pub r_ll_mohm: f64,
}

impl LossBar {
    /// Total loss share.
    pub fn total(&self) -> f64 {
        self.vr + self.conduction_compute + self.conduction_sa_io + self.other
    }
}

/// Computes the nine bars (3 PDNs × 3 TDPs).
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn bars() -> Result<Vec<LossBar>, PdnError> {
    let params = ModelParams::paper_defaults();
    let ar = ApplicationRatio::new(FIG5_AR).expect("static AR");
    let mut out = Vec::new();
    for pdn in crate::suite::three_baselines(&params) {
        for tdp in [4.0, 18.0, 50.0] {
            let soc = client_soc(Watts::new(tdp));
            let s = Scenario::active_fixed_tdp_frequency(&soc, WorkloadType::MultiThread, ar)?;
            let e = pdn.evaluate(&s)?;
            let f = e.breakdown.fractions_of(e.input_power);
            let r_ll = match pdn.kind() {
                PdnKind::Ivr => params.ivr_loadlines.vin,
                PdnKind::Mbvr => params.mbvr_loadlines.compute,
                PdnKind::Ldo => params.ldo_loadlines.vin,
                PdnKind::IPlusMbvr => params.ivr_loadlines.vin,
                PdnKind::FlexWatts => params.flexwatts_loadlines.vin,
            };
            out.push(LossBar {
                pdn: pdn.kind(),
                tdp,
                vr: f[0],
                conduction_compute: f[1],
                conduction_sa_io: f[2],
                other: f[3],
                chip_current: e.chip_input_current.get(),
                r_ll_mohm: r_ll.milliohms(),
            });
        }
    }
    Ok(out)
}

/// Renders the figure: loss shares plus current/R_LL normalised to IVR.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn render() -> Result<String, PdnError> {
    let bars = bars()?;
    let mut t = TextTable::new(
        format!("Fig. 5 — PDN loss breakdown (CPU-intensive, AR = {:.0}%)", FIG5_AR * 100.0),
        &[
            "PDN",
            "TDP",
            "VR ineff.",
            "I2R core&gfx",
            "I2R SA&IO",
            "other",
            "total",
            "I(norm)",
            "RLL(norm)",
        ],
    );
    for b in &bars {
        let ivr_ref =
            bars.iter().find(|x| x.pdn == PdnKind::Ivr && x.tdp == b.tdp).expect("IVR bar exists");
        t.row(vec![
            b.pdn.to_string(),
            format!("{}W", b.tdp),
            pct(b.vr),
            pct(b.conduction_compute),
            pct(b.conduction_sa_io),
            pct(b.other),
            pct(b.total()),
            times(b.chip_current / ivr_ref.chip_current),
            times(b.r_ll_mohm / ivr_ref.r_ll_mohm),
        ]);
    }
    Ok(t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_bars_with_paper_shapes() {
        let bars = bars().unwrap();
        assert_eq!(bars.len(), 9);
        let find = |k: PdnKind, tdp: f64| bars.iter().find(|b| b.pdn == k && b.tdp == tdp).unwrap();
        // VR inefficiency dominates IVR and stays roughly flat in TDP.
        let ivr4 = find(PdnKind::Ivr, 4.0);
        let ivr50 = find(PdnKind::Ivr, 50.0);
        assert!(ivr4.vr > 0.12 && ivr50.vr > 0.10);
        assert!(ivr50.conduction_compute < 0.05, "IVR conduction stays small");
        // MBVR/LDO conduction scales steeply with TDP (the paper's arrow).
        let mbvr4 = find(PdnKind::Mbvr, 4.0);
        let mbvr50 = find(PdnKind::Mbvr, 50.0);
        assert!(mbvr50.conduction_compute > 3.0 * mbvr4.conduction_compute);
        assert!(mbvr50.conduction_compute > 0.10);
        // ~2× chip input current and 2.5×/1.25× R_LL vs IVR.
        assert!(mbvr50.chip_current / ivr50.chip_current > 1.3);
        assert!((mbvr50.r_ll_mohm / ivr50.r_ll_mohm - 2.5).abs() < 1e-9);
        let ldo50 = find(PdnKind::Ldo, 50.0);
        assert!((ldo50.r_ll_mohm / ivr50.r_ll_mohm - 1.25).abs() < 1e-9);
    }

    #[test]
    fn renders_nine_rows() {
        let s = render().unwrap();
        assert!(s.matches("W  ").count() >= 1);
        assert!(s.contains("I2R core&gfx"));
    }
}
