//! Fig. 4: PDNspot validation — measured vs predicted ETEE for the three
//! baseline PDNs across TDPs, workload types, ARs (panels a–i), and
//! package power states (panel j).

use crate::render::TextTable;
use crate::suite::{three_baselines, ARS};
use pdn_proc::{client_soc, PackageCState};
use pdn_units::{ApplicationRatio, Watts};
use pdn_workload::WorkloadType;
use pdnspot::validation::{validate, ReferenceSystem, ValidationReport};
use pdnspot::{ModelParams, PdnError, Scenario};

/// The TDP panels of Fig. 4 (a–i use 4, 18, 50 W).
pub const PANEL_TDPS: [f64; 3] = [4.0, 18.0, 50.0];

/// One validation point: predicted and measured ETEE.
#[derive(Debug, Clone)]
pub struct ValidationPoint {
    /// PDN name.
    pub pdn: String,
    /// Scenario label (e.g. `"multi-thread-18W-ar60"`).
    pub scenario: String,
    /// Model-predicted ETEE.
    pub predicted: f64,
    /// Reference-system ("measured") ETEE.
    pub measured: f64,
}

/// Runs the full Fig. 4 campaign: panels a–i plus the C-state panel j.
///
/// Returns per-PDN validation reports and the flattened points.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn campaign(seed: u64) -> Result<(Vec<(String, ValidationReport)>, Vec<ValidationPoint>), PdnError> {
    let params = ModelParams::paper_defaults();
    let reference = ReferenceSystem::new(seed);
    let mut scenarios = Vec::new();
    for tdp in PANEL_TDPS {
        let soc = client_soc(Watts::new(tdp));
        for wl in WorkloadType::ACTIVE_TYPES {
            for ar in ARS {
                let ar = ApplicationRatio::new(ar).expect("static AR");
                scenarios.push(Scenario::active_fixed_tdp_frequency(&soc, wl, ar)?);
            }
        }
    }
    // Panel j: power states (TDP-insensitive; evaluated at 18 W).
    let soc = client_soc(Watts::new(18.0));
    for state in PackageCState::ALL {
        scenarios.push(Scenario::idle(&soc, state));
    }

    let mut reports = Vec::new();
    let mut points = Vec::new();
    for pdn in three_baselines(&params) {
        let report = validate(pdn.as_ref(), &reference, &scenarios)?;
        for (scenario, sample) in scenarios.iter().zip(&report.samples) {
            points.push(ValidationPoint {
                pdn: pdn.kind().to_string(),
                scenario: scenario.name.clone(),
                predicted: sample.predicted.get(),
                measured: sample.measured.get(),
            });
        }
        reports.push((pdn.kind().to_string(), report));
    }
    Ok((reports, points))
}

/// Renders the campaign: accuracy summary plus the panel-j rows.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn render() -> Result<String, PdnError> {
    let (reports, points) = campaign(42)?;
    let mut summary = TextTable::new(
        "Fig. 4 — PDNspot validation accuracy (paper: 99.1/99.4/99.2 % avg)",
        &["PDN", "mean", "min", "max", "samples"],
    );
    for (name, report) in &reports {
        summary.row(vec![
            name.clone(),
            format!("{:.2}%", report.mean_accuracy() * 100.0),
            format!("{:.2}%", report.min_accuracy() * 100.0),
            format!("{:.2}%", report.max_accuracy() * 100.0),
            report.samples.len().to_string(),
        ]);
    }
    let mut panel_j = TextTable::new(
        "Fig. 4j — ETEE in battery-life power states (measured vs predicted)",
        &["PDN", "scenario", "predicted", "measured"],
    );
    for p in points.iter().filter(|p| p.scenario.starts_with('C')) {
        panel_j.row(vec![
            p.pdn.clone(),
            p.scenario.clone(),
            format!("{:.1}%", p.predicted * 100.0),
            format!("{:.1}%", p.measured * 100.0),
        ]);
    }
    Ok(format!("{}\n{}", summary.render(), panel_j.render()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_covers_all_panels() {
        let (reports, points) = campaign(7).unwrap();
        assert_eq!(reports.len(), 3);
        // 3 TDPs × 3 types × 5 ARs + 6 C-states = 51 scenarios per PDN.
        assert_eq!(points.len(), 3 * 51);
        for (name, report) in &reports {
            assert!(
                report.mean_accuracy() > 0.98,
                "{name} accuracy {:.4}",
                report.mean_accuracy()
            );
        }
    }

    #[test]
    fn renders_summary_and_panel_j() {
        let s = render().unwrap();
        assert!(s.contains("validation accuracy"));
        assert!(s.contains("C0MIN"));
        assert!(s.contains("MBVR"));
    }
}
