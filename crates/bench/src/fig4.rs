//! Fig. 4: PDNspot validation — measured vs predicted ETEE for the three
//! baseline PDNs across TDPs, workload types, ARs (panels a–i), and
//! package power states (panel j).

use crate::render::TextTable;
use crate::suite::{three_baselines, ARS};
use pdn_proc::PackageCState;
use pdn_workload::WorkloadType;
use pdnspot::batch::{build_scenarios, ClientSoc, SweepGrid, Workers};
use pdnspot::validation::{validate_with, ReferenceSystem, ValidationReport};
use pdnspot::{BatchStats, MemoCache, ModelParams, PdnError, Scenario};

/// The TDP panels of Fig. 4 (a–i use 4, 18, 50 W).
pub const PANEL_TDPS: [f64; 3] = [4.0, 18.0, 50.0];

/// One validation point: predicted and measured ETEE.
#[derive(Debug, Clone)]
pub struct ValidationPoint {
    /// PDN name.
    pub pdn: String,
    /// Scenario label (e.g. `"multi-thread-18W-ar60"`).
    pub scenario: String,
    /// Model-predicted ETEE.
    pub predicted: f64,
    /// Reference-system ("measured") ETEE.
    pub measured: f64,
}

/// What [`campaign`] produces: per-PDN validation reports, the
/// flattened points, and the batch statistics of the run.
pub type CampaignOutput = (Vec<(String, ValidationReport)>, Vec<ValidationPoint>, BatchStats);

/// Runs the full Fig. 4 campaign: panels a–i plus the C-state panel j.
///
/// The scenario lattice is built on the batch engine (shared cache, one
/// build per point) and each PDN's validation fan-out runs on the same
/// worker pool; instrument noise stays serial in lattice order, so the
/// campaign is reproducible for a fixed seed.
///
/// Returns per-PDN validation reports, the flattened points, and the
/// batch statistics of the run.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn campaign(seed: u64) -> Result<CampaignOutput, PdnError> {
    let params = ModelParams::paper_defaults();
    let reference = ReferenceSystem::new(seed);
    // Panels a-i: the active lattice, in the same TDP-major order the
    // serial campaign used.
    let active = SweepGrid::active(&PANEL_TDPS, &WorkloadType::ACTIVE_TYPES, &ARS)?;
    let (active_scenarios, mut stats) = build_scenarios(&active, &ClientSoc, Workers::Auto);
    // Panel j: power states (TDP-insensitive; evaluated at 18 W).
    let idle = SweepGrid::builder().tdps(&[18.0]).idle_states(&PackageCState::ALL).build()?;
    let (idle_scenarios, idle_stats) = build_scenarios(&idle, &ClientSoc, Workers::Auto);
    stats.absorb(&idle_stats);
    let scenarios: Vec<Scenario> =
        active_scenarios.into_iter().chain(idle_scenarios).collect::<Result<_, _>>()?;

    let mut reports = Vec::new();
    let mut points = Vec::new();
    // One memo cache across the whole campaign: validation evaluates each
    // (PDN, scenario) pair twice (model eval + reintegration), so the
    // second evaluation is a cache hit with bit-identical values.
    let memo = MemoCache::new();
    for pdn in three_baselines(&params) {
        let report =
            validate_with(&memo.wrap(pdn.as_ref()), &reference, &scenarios, Workers::Auto)?;
        stats.evaluations += 2 * scenarios.len(); // model eval + reintegration
        for (scenario, sample) in scenarios.iter().zip(&report.samples) {
            points.push(ValidationPoint {
                pdn: pdn.kind().to_string(),
                scenario: scenario.name.clone(),
                predicted: sample.predicted.get(),
                measured: sample.measured.get(),
            });
        }
        reports.push((pdn.kind().to_string(), report));
    }
    let memo_stats = memo.stats();
    stats.memo_hits += memo_stats.hits as usize;
    stats.memo_misses += memo_stats.misses as usize;
    stats.memo_evictions += memo_stats.evictions as usize;
    Ok((reports, points, stats))
}

/// Renders the campaign: accuracy summary plus the panel-j rows.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn render() -> Result<String, PdnError> {
    let (reports, points, stats) = campaign(42)?;
    let mut summary = TextTable::new(
        "Fig. 4 — PDNspot validation accuracy (paper: 99.1/99.4/99.2 % avg)",
        &["PDN", "mean", "min", "max", "samples"],
    );
    for (name, report) in &reports {
        summary.row(vec![
            name.clone(),
            format!("{:.2}%", report.mean_accuracy() * 100.0),
            format!("{:.2}%", report.min_accuracy() * 100.0),
            format!("{:.2}%", report.max_accuracy() * 100.0),
            report.samples.len().to_string(),
        ]);
    }
    let mut panel_j = TextTable::new(
        "Fig. 4j — ETEE in battery-life power states (measured vs predicted)",
        &["PDN", "scenario", "predicted", "measured"],
    );
    for p in points.iter().filter(|p| p.scenario.starts_with('C')) {
        panel_j.row(vec![
            p.pdn.clone(),
            p.scenario.clone(),
            format!("{:.1}%", p.predicted * 100.0),
            format!("{:.1}%", p.measured * 100.0),
        ]);
    }
    Ok(format!("{}\n{}\n{}\n", summary.render(), panel_j.render(), stats.deterministic_footer()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_covers_all_panels() {
        let (reports, points, stats) = campaign(7).unwrap();
        assert_eq!(reports.len(), 3);
        // 3 TDPs × 3 types × 5 ARs + 6 C-states = 51 scenarios per PDN.
        assert_eq!(points.len(), 3 * 51);
        // One scenario build per lattice point, shared across the PDNs.
        assert_eq!(stats.scenario_builds, 51);
        // Validation evaluates each (PDN, scenario) pair twice; the memo
        // cache turns every second evaluation into a hit.
        assert_eq!(stats.memo_hits, 3 * 51);
        assert_eq!(stats.memo_misses, 3 * 51);
        for (name, report) in &reports {
            assert!(report.mean_accuracy() > 0.98, "{name} accuracy {:.4}", report.mean_accuracy());
        }
    }

    #[test]
    fn renders_summary_and_panel_j() {
        let s = render().unwrap();
        assert!(s.contains("validation accuracy"));
        assert!(s.contains("C0MIN"));
        assert!(s.contains("MBVR"));
    }
}
