//! §6 overhead accounting: mode-switch latency breakdown and die-area
//! overhead.

use crate::render::TextTable;
use flexwatts::overhead::summary;
use flexwatts::ModeSwitchFlow;

/// Renders the §6 overhead report.
pub fn render() -> String {
    let s = summary();
    let t = ModeSwitchFlow::new().reference_transition();
    let mut latency =
        TextTable::new("FlexWatts mode-switch latency (paper: ~94 us total)", &["step", "latency"]);
    latency.row(vec!["package C6 entry".into(), format!("{:.0} us", t.c6_entry.micros())]);
    latency.row(vec!["VR reconfiguration".into(), format!("{:.0} us", t.vr_adjust.micros())]);
    latency.row(vec!["package C6 exit".into(), format!("{:.0} us", t.c6_exit.micros())]);
    latency.row(vec!["total".into(), format!("{:.0} us", t.total().micros())]);

    let mut area = TextTable::new(
        "FlexWatts die-area overhead (paper: 0.041 mm^2; 0.04%/0.03%)",
        &["metric", "value"],
    );
    area.row(vec!["LDO-mode circuitry".into(), format!("{:.3} mm^2", s.die_area.get())]);
    area.row(vec![
        "fraction of dual-core die".into(),
        format!("{:.3}%", s.dual_core_fraction * 100.0),
    ]);
    area.row(vec![
        "fraction of quad-core die".into(),
        format!("{:.3}%", s.quad_core_fraction * 100.0),
    ]);
    format!("{}\n{}", latency.render(), area.render())
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_both_overhead_tables() {
        let s = super::render();
        assert!(s.contains("94 us"));
        assert!(s.contains("0.041 mm^2"));
    }
}
