//! The streaming trace-ingestion benchmark (`BENCH_trace.json`).
//!
//! The trace-file format exists so real-scale traces (millions of
//! intervals) can stream through [`flexwatts::FlexWattsRuntime`] at
//! bounded memory; this module turns that into protected numbers. Four
//! legs run over one scenario-zoo trace file:
//!
//! * **encode** — scenario-zoo generation streamed through
//!   [`TraceFileWriter`](pdn_workload::TraceFileWriter) to disk;
//! * **cold_replay** — the full streaming replay
//!   ([`FlexWattsRuntime::run_streaming`]) of a pristine file;
//! * **resumed_replay** — the same file replayed after a simulated
//!   mid-flight crash: the first ~40 % runs with periodic checkpoints
//!   and is dropped, then the resume leg is timed. Its report must be
//!   **bitwise equal** to the cold replay's;
//! * **poisoned_replay** — the file with three chunk frames zeroed out
//!   (torn writes): the reader must quarantine exactly those chunks,
//!   account every lost interval, and finish.
//!
//! Each leg reports wall time and intervals/sec plus a deterministic
//! digest; like `perf`, the digest is the regression guard — timings
//! move, digests must not.

use flexwatts::{
    CheckpointPlan, FlexWattsRuntime, ModePredictor, ReplayFileOptions, RuntimeConfig,
    RuntimeReport, TraceReplayer,
};
use pdn_units::Watts;
use pdn_workload::tracefile::{
    frame_spans, write_trace_chunked, DefectPolicy, FrameKind, TraceReader,
};
use pdn_workload::zoo;
use pdnspot::{ModelParams, Workers};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Intervals per scenario in quick mode (4 scenarios → 10 k total).
const QUICK_PER_SCENARIO: usize = 2_500;
/// Intervals per scenario in full mode (4 scenarios → 100 k total).
const FULL_PER_SCENARIO: usize = 25_000;
/// Chunk capacity of the benchmark file.
const CHUNK_CAPACITY: usize = 1_024;
/// Zoo seed (fixed: the digest pins the resulting energy bits).
const SEED: u64 = 0xBEAC_0000;
/// Checkpoint cadence of the interrupted leg, in intervals.
const CHECKPOINT_EVERY: u64 = 1_000;

/// Measurement of one benchmark leg.
#[derive(Debug, Clone)]
pub struct TraceLeg {
    /// Leg name (stable identifier used in the JSON schema).
    pub name: &'static str,
    /// Intervals processed by the timed section.
    pub intervals: u64,
    /// Wall time of the timed section, in seconds.
    pub wall_s: f64,
    /// Deterministic digest of the leg's numeric results.
    pub digest: String,
}

impl TraceLeg {
    /// Throughput in intervals per second.
    pub fn intervals_per_sec(&self) -> f64 {
        if self.wall_s <= 0.0 {
            return 0.0;
        }
        self.intervals as f64 / self.wall_s
    }
}

/// The full benchmark outcome.
#[derive(Debug, Clone)]
pub struct TraceBenchReport {
    /// The four legs, in execution order.
    pub legs: Vec<TraceLeg>,
    /// Encoded file size in bytes.
    pub file_bytes: u64,
    /// Interval the resumed leg restarted from.
    pub resumed_from: u64,
    /// Chunks the poisoned leg quarantined.
    pub chunks_quarantined: u64,
    /// Intervals the poisoned leg lost (and accounted).
    pub intervals_lost: u64,
}

fn digest_f64(x: f64) -> String {
    format!("{x:.17e}")
}

fn runtime() -> FlexWattsRuntime {
    let predictor = ModePredictor::train(
        &ModelParams::paper_defaults(),
        &[4.0, 10.0, 18.0, 25.0, 50.0],
        &[0.4, 0.6, 0.8],
    )
    .expect("predictor training lattice is valid");
    FlexWattsRuntime::new(
        pdn_proc::client_soc(Watts::new(18.0)),
        ModelParams::paper_defaults(),
        predictor,
        RuntimeConfig::default(),
    )
}

fn reports_bitwise_equal(a: &RuntimeReport, b: &RuntimeReport) -> bool {
    a.energy_joules.to_bits() == b.energy_joules.to_bits()
        && a.oracle_energy_joules.to_bits() == b.oracle_energy_joules.to_bits()
        && a.total_time.get().to_bits() == b.total_time.get().to_bits()
        && a.prediction_accuracy.to_bits() == b.prediction_accuracy.to_bits()
        && a.switches == b.switches
        && a.time_in_mode == b.time_in_mode
        && a.predictor_evaluations == b.predictor_evaluations
        && a.protection_overrides == b.protection_overrides
}

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flexwatts-tracebench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Leg 1: zoo generation + chunked encode to disk.
fn encode_leg(path: &Path, per_scenario: usize) -> (TraceLeg, u64) {
    let start = Instant::now();
    let trace = zoo::zoo_mix(SEED, per_scenario);
    write_trace_chunked(path, &trace, CHUNK_CAPACITY).expect("encode benchmark trace");
    let wall_s = start.elapsed().as_secs_f64();
    let file_bytes = std::fs::metadata(path).expect("encoded file").len();
    let intervals = trace.intervals().len() as u64;
    let leg = TraceLeg {
        name: "encode",
        intervals,
        wall_s,
        digest: format!(
            "intervals={intervals} file_bytes={file_bytes} total_s={}",
            digest_f64(trace.total_duration().get())
        ),
    };
    (leg, file_bytes)
}

/// Leg 2: the cold streaming replay (bounded memory, default batches).
fn cold_leg(rt: &FlexWattsRuntime, path: &Path) -> (TraceLeg, RuntimeReport) {
    let start = Instant::now();
    let cold = rt
        .run_streaming(path, &ReplayFileOptions::default())
        .expect("cold replay of a pristine file");
    let wall_s = start.elapsed().as_secs_f64();
    assert_eq!(cold.defects.total(), 0, "pristine file must replay clean");
    let leg = TraceLeg {
        name: "cold_replay",
        intervals: cold.intervals_replayed,
        wall_s,
        digest: format!(
            "intervals={} energy_j={} accuracy={}",
            cold.intervals_replayed,
            digest_f64(cold.report.energy_joules),
            digest_f64(cold.report.prediction_accuracy)
        ),
    };
    (leg, cold.report)
}

/// Leg 3: crash after ~40 % (checkpointing every [`CHECKPOINT_EVERY`]),
/// then the timed resume. Panics if the resumed report diverges from the
/// cold one by a single bit.
fn resumed_leg(
    rt: &FlexWattsRuntime,
    path: &Path,
    cold: &RuntimeReport,
    total: u64,
) -> (TraceLeg, u64) {
    let cp_path = path.with_extension("pdnc");
    let kill_at = total * 2 / 5;
    {
        let mut reader = TraceReader::open(path, DefectPolicy::Quarantine).expect("reopen");
        let fp = reader.fingerprint();
        let mut replayer = TraceReplayer::new(rt, Workers::Auto);
        let mut batch = Vec::with_capacity(CHECKPOINT_EVERY as usize);
        'outer: loop {
            batch.clear();
            while (batch.len() as u64) < CHECKPOINT_EVERY {
                match reader.next_interval().expect("pristine file") {
                    Some(interval) => batch.push(interval),
                    None => break,
                }
            }
            replayer.feed(&batch).expect("replay");
            replayer.checkpoint(fp).save(&cp_path).expect("checkpoint save");
            if replayer.intervals_done() >= kill_at {
                break 'outer; // ...crash: no finish, no more checkpoints.
            }
        }
    }

    let start = Instant::now();
    let resumed = rt
        .run_streaming(
            path,
            &ReplayFileOptions {
                checkpoint: Some(CheckpointPlan {
                    path: cp_path.clone(),
                    every_intervals: CHECKPOINT_EVERY,
                    resume: true,
                }),
                ..Default::default()
            },
        )
        .expect("resumed replay");
    let wall_s = start.elapsed().as_secs_f64();
    let resumed_from = resumed.resumed_from.expect("a checkpoint must have landed");
    assert!(
        reports_bitwise_equal(cold, &resumed.report),
        "resumed replay diverged from the uninterrupted run"
    );
    let _ = std::fs::remove_file(&cp_path);
    let leg = TraceLeg {
        name: "resumed_replay",
        intervals: resumed.intervals_replayed - resumed_from,
        wall_s,
        digest: format!(
            "resumed_from={resumed_from} bitwise_equal=1 energy_j={}",
            digest_f64(resumed.report.energy_joules)
        ),
    };
    (leg, resumed_from)
}

/// Leg 4: a payload byte flipped in three chunks (bit rot) — the CRC
/// gate quarantines exactly those chunks, the index gaps account every
/// lost interval, and the replay finishes.
fn poisoned_leg(rt: &FlexWattsRuntime, path: &Path, total: u64) -> (TraceLeg, u64, u64) {
    let mut bytes = std::fs::read(path).expect("read benchmark file");
    let spans = frame_spans(&bytes).expect("pristine file maps cleanly");
    let chunks: Vec<_> = spans.iter().filter(|s| s.kind == FrameKind::Chunk).collect();
    assert!(chunks.len() > 6, "benchmark file must span many chunks");
    for pick in [1, chunks.len() / 2, chunks.len() - 2] {
        let span = chunks[pick];
        bytes[span.offset + span.len / 2] ^= 0xFF;
    }
    let poisoned_path = path.with_extension("poisoned.pdnt");
    std::fs::write(&poisoned_path, &bytes).expect("write poisoned file");

    let start = Instant::now();
    let report = rt
        .run_streaming(&poisoned_path, &ReplayFileOptions::default())
        .expect("quarantine replay never fails on chunk damage");
    let wall_s = start.elapsed().as_secs_f64();
    assert_eq!(report.chunks_quarantined, 3, "exactly the three torn chunks");
    assert_eq!(
        report.intervals_replayed + report.intervals_lost,
        total,
        "every interval must be replayed or accounted lost"
    );
    let _ = std::fs::remove_file(&poisoned_path);
    let mut defect_list: Vec<String> =
        report.defects.nonzero().map(|(kind, n)| format!("{}={n}", kind.name())).collect();
    defect_list.sort();
    let leg = TraceLeg {
        name: "poisoned_replay",
        intervals: report.intervals_replayed,
        wall_s,
        digest: format!(
            "replayed={} lost={} quarantined={} defects[{}] energy_j={}",
            report.intervals_replayed,
            report.intervals_lost,
            report.chunks_quarantined,
            defect_list.join(","),
            digest_f64(report.report.energy_joules)
        ),
    };
    (leg, report.chunks_quarantined, report.intervals_lost)
}

/// Runs all four legs over one freshly encoded zoo trace.
pub fn run(quick: bool) -> TraceBenchReport {
    let per_scenario = if quick { QUICK_PER_SCENARIO } else { FULL_PER_SCENARIO };
    let dir = scratch_dir();
    let path = dir.join("zoo.pdnt");
    let rt = runtime();

    let (encode, file_bytes) = encode_leg(&path, per_scenario);
    let total = encode.intervals;
    let (cold, cold_report) = cold_leg(&rt, &path);
    assert_eq!(cold.intervals, total);
    let (resumed, resumed_from) = resumed_leg(&rt, &path, &cold_report, total);
    let (poisoned, chunks_quarantined, intervals_lost) = poisoned_leg(&rt, &path, total);

    let _ = std::fs::remove_dir_all(&dir);
    TraceBenchReport {
        legs: vec![encode, cold, resumed, poisoned],
        file_bytes,
        resumed_from,
        chunks_quarantined,
        intervals_lost,
    }
}

/// Renders the deterministic digest text (timings excluded).
pub fn render_digest(report: &TraceBenchReport) -> String {
    let mut out = String::from("Trace-ingestion kernels — deterministic result digests\n");
    for leg in &report.legs {
        out.push_str(&format!("[trace] leg={} {}\n", leg.name, leg.digest));
    }
    out
}

/// Renders the `BENCH_trace.json` document (schema `pdn-bench-trace/v1`).
pub fn render_json(report: &TraceBenchReport, quick: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"pdn-bench-trace/v1\",\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", if quick { "quick" } else { "full" }));
    out.push_str(&format!("  \"file_bytes\": {},\n", report.file_bytes));
    out.push_str(&format!("  \"resumed_from\": {},\n", report.resumed_from));
    out.push_str(&format!("  \"chunks_quarantined\": {},\n", report.chunks_quarantined));
    out.push_str(&format!("  \"intervals_lost\": {},\n", report.intervals_lost));
    out.push_str("  \"legs\": [\n");
    for (i, leg) in report.legs.iter().enumerate() {
        let sep = if i + 1 < report.legs.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"intervals\": {}, \"wall_s\": {:.6}, \
             \"intervals_per_sec\": {:.1}, \"digest\": \"{}\"}}{sep}\n",
            leg.name,
            leg.intervals,
            leg.wall_s,
            leg.intervals_per_sec(),
            leg.digest
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_produces_nonzero_throughput_and_exact_accounting() {
        let report = run(true);
        assert_eq!(report.legs.len(), 4);
        for leg in &report.legs {
            assert!(leg.intervals > 0, "leg {} processed nothing", leg.name);
            assert!(leg.intervals_per_sec() > 0.0, "leg {} reports no throughput", leg.name);
        }
        assert_eq!(report.legs[0].intervals, 10_000);
        assert_eq!(report.chunks_quarantined, 3);
        assert_eq!(report.intervals_lost, 3 * CHUNK_CAPACITY as u64);
        assert!(report.resumed_from >= 4_000);
    }

    #[test]
    fn digests_are_run_to_run_deterministic() {
        let a = run(true);
        let b = run(true);
        assert_eq!(render_digest(&a), render_digest(&b));
    }

    #[test]
    fn json_shape_is_stable() {
        let report = run(true);
        let json = render_json(&report, true);
        assert!(json.contains("\"schema\": \"pdn-bench-trace/v1\""));
        assert!(json.contains("\"mode\": \"quick\""));
        assert!(json.contains("\"name\": \"cold_replay\""));
        assert!(json.contains("\"intervals_per_sec\""));
    }
}
