//! §5's three observations, regenerated: the ETEE crossover map across
//! TDPs and workload types, plus the FlexWatts load-line sensitivity
//! ablation called out in DESIGN.md.

use crate::render::TextTable;
use crate::suite::{five_pdns, TDPS};
use flexwatts::{FlexWattsAuto, FlexWattsPdn, PdnMode};
use pdn_proc::client_soc;
use pdn_units::{ApplicationRatio, Ohms, Watts};
use pdn_workload::WorkloadType;
use pdnspot::{ModelParams, Pdn, PdnError, Scenario};

/// The ETEE of every PDN at every (TDP, workload type) point, AR = 56 %.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn crossover_map() -> Result<String, PdnError> {
    let params = ModelParams::paper_defaults();
    let pdns = five_pdns(&params);
    let ar = ApplicationRatio::new(0.56).expect("static AR");
    let mut out = String::new();
    for wl in WorkloadType::ACTIVE_TYPES {
        let mut t = TextTable::new(
            format!("Observation 1/2 — ETEE vs TDP ({wl}, AR = 56%)"),
            &["TDP", "IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts", "FlexWatts mode"],
        );
        let auto = FlexWattsAuto::new(params.clone());
        for &tdp in &TDPS {
            let soc = client_soc(Watts::new(tdp));
            let s = Scenario::active_fixed_tdp_frequency(&soc, wl, ar)?;
            let mut cells = vec![format!("{tdp}W")];
            for pdn in &pdns {
                cells.push(format!("{:.1}%", pdn.evaluate(&s)?.etee.percent()));
            }
            cells.push(auto.best_mode(&s)?.to_string());
            t.row(cells);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    Ok(out)
}

/// The DESIGN.md ablation: how the FlexWatts shared-rail load-line penalty
/// affects its 4 W/50 W ETEE (the "<1 % worse than the best static PDN"
/// tradeoff).
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn loadline_sensitivity() -> Result<String, PdnError> {
    let ar = ApplicationRatio::new(0.6).expect("static AR");
    let mut t = TextTable::new(
        "Ablation — FlexWatts shared-rail load line vs ETEE",
        &["RLL (mOhm)", "4W LDO-Mode ETEE", "50W IVR-Mode ETEE"],
    );
    for r_mohm in [1.0, 1.2, 1.4, 1.8, 2.5] {
        let mut params = ModelParams::paper_defaults();
        params.flexwatts_loadlines.vin = Ohms::from_milliohms(r_mohm);
        params.flexwatts_loadlines.compute = Ohms::from_milliohms(r_mohm);
        let low_soc = client_soc(Watts::new(4.0));
        let high_soc = client_soc(Watts::new(50.0));
        let low = Scenario::active_fixed_tdp_frequency(&low_soc, WorkloadType::SingleThread, ar)?;
        let high = Scenario::active_fixed_tdp_frequency(&high_soc, WorkloadType::MultiThread, ar)?;
        let ldo = FlexWattsPdn::new(params.clone(), PdnMode::LdoMode).evaluate(&low)?;
        let ivr = FlexWattsPdn::new(params, PdnMode::IvrMode).evaluate(&high)?;
        t.row(vec![
            format!("{r_mohm:.1}"),
            format!("{:.2}%", ldo.etee.percent()),
            format!("{:.2}%", ivr.etee.percent()),
        ]);
    }
    Ok(t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_map_reports_mode_flip() {
        let s = crossover_map().unwrap();
        assert!(s.contains("LDO-Mode"), "low TDPs must run LDO-Mode");
        assert!(s.contains("IVR-Mode"), "high TDPs must run IVR-Mode");
    }

    #[test]
    fn higher_loadline_costs_etee_monotonically() {
        let s = loadline_sensitivity().unwrap();
        assert!(s.contains("1.4"));
        // Parse the 50 W column and check monotone decrease.
        let values: Vec<f64> = s
            .lines()
            .filter(|l| l.trim_start().chars().next().is_some_and(|c| c.is_ascii_digit()))
            .filter_map(|l| {
                l.split_whitespace().last().and_then(|v| v.trim_end_matches('%').parse().ok())
            })
            .collect();
        assert!(values.len() >= 4);
        for w in values.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "ETEE must fall as RLL grows: {values:?}");
        }
    }
}
