//! §5's three observations, regenerated: the ETEE crossover map across
//! TDPs and workload types, plus the FlexWatts load-line sensitivity
//! ablation called out in DESIGN.md.

use crate::render::TextTable;
use crate::suite::{five_pdns, TDPS};
use flexwatts::{FlexWattsAuto, FlexWattsPdn, PdnMode};
use pdn_proc::client_soc;
use pdn_units::{ApplicationRatio, Ohms, Watts};
use pdn_workload::WorkloadType;
use pdnspot::batch::{build_scenarios, par_map_stats, ClientSoc, SweepGrid, Workers};
use pdnspot::{MemoCache, ModelParams, Pdn, PdnError, Scenario};

/// The ETEE of every PDN at every (TDP, workload type) point, AR = 56 %.
///
/// Scenarios come off the batch engine (one build per lattice point);
/// the `(point, PDN)` ETEE cells and the FlexWatts mode column each fan
/// out on the worker pool, and the merged stats close the report.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn crossover_map() -> Result<String, PdnError> {
    let params = ModelParams::paper_defaults();
    let pdns = five_pdns(&params);
    let grid = SweepGrid::active(&TDPS, &WorkloadType::ACTIVE_TYPES, &[0.56])?;
    let (scenarios, mut stats) = build_scenarios(&grid, &ClientSoc, Workers::Auto);
    let scenarios: Vec<Scenario> = scenarios.into_iter().collect::<Result<_, _>>()?;
    let cells: Vec<(usize, usize)> =
        (0..scenarios.len()).flat_map(|s| (0..pdns.len()).map(move |p| (s, p))).collect();
    // The FlexWatts column re-evaluates the same fixed-mode PDNs the mode
    // column probes, so one shared cache serves both fan-outs.
    let memo = MemoCache::new();
    let (etees, etee_stats) = par_map_stats(&cells, Workers::Auto, |_, &(s, p)| {
        memo.wrap(pdns[p].as_ref()).evaluate(&scenarios[s]).map(|e| e.etee)
    });
    let etees: Vec<_> = etees.into_iter().collect::<Result<_, _>>()?;
    let auto = FlexWattsAuto::new(params.clone());
    let (modes, mode_stats) = par_map_stats(&scenarios, Workers::Auto, |_, s| auto.best_mode(s));
    let modes: Vec<_> = modes.into_iter().collect::<Result<_, _>>()?;
    stats.absorb(&etee_stats);
    stats.absorb(&mode_stats);
    let memo_stats = memo.stats();
    stats.memo_hits += memo_stats.hits as usize;
    stats.memo_misses += memo_stats.misses as usize;
    stats.memo_evictions += memo_stats.evictions as usize;

    let n_wl = WorkloadType::ACTIVE_TYPES.len();
    let mut out = String::new();
    for (wl_idx, wl) in WorkloadType::ACTIVE_TYPES.into_iter().enumerate() {
        let mut t = TextTable::new(
            format!("Observation 1/2 — ETEE vs TDP ({wl}, AR = 56%)"),
            &["TDP", "IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts", "FlexWatts mode"],
        );
        for (tdp_idx, &tdp) in TDPS.iter().enumerate() {
            let point_idx = tdp_idx * n_wl + wl_idx;
            let mut cells = vec![format!("{tdp}W")];
            for pdn_idx in 0..pdns.len() {
                let etee = etees[point_idx * pdns.len() + pdn_idx];
                cells.push(format!("{:.1}%", etee.percent()));
            }
            cells.push(modes[point_idx].to_string());
            t.row(cells);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out.push_str(&stats.deterministic_footer());
    out.push('\n');
    Ok(out)
}

/// The DESIGN.md ablation: how the FlexWatts shared-rail load-line penalty
/// affects its 4 W/50 W ETEE (the "<1 % worse than the best static PDN"
/// tradeoff).
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn loadline_sensitivity() -> Result<String, PdnError> {
    let ar = ApplicationRatio::new(0.6).expect("static AR");
    let mut t = TextTable::new(
        "Ablation — FlexWatts shared-rail load line vs ETEE",
        &["RLL (mOhm)", "4W LDO-Mode ETEE", "50W IVR-Mode ETEE"],
    );
    for r_mohm in [1.0, 1.2, 1.4, 1.8, 2.5] {
        let mut params = ModelParams::paper_defaults();
        params.flexwatts_loadlines.vin = Ohms::from_milliohms(r_mohm);
        params.flexwatts_loadlines.compute = Ohms::from_milliohms(r_mohm);
        let low_soc = client_soc(Watts::new(4.0));
        let high_soc = client_soc(Watts::new(50.0));
        let low = Scenario::active_fixed_tdp_frequency(&low_soc, WorkloadType::SingleThread, ar)?;
        let high = Scenario::active_fixed_tdp_frequency(&high_soc, WorkloadType::MultiThread, ar)?;
        let ldo = FlexWattsPdn::new(params.clone(), PdnMode::LdoMode).evaluate(&low)?;
        let ivr = FlexWattsPdn::new(params, PdnMode::IvrMode).evaluate(&high)?;
        t.row(vec![
            format!("{r_mohm:.1}"),
            format!("{:.2}%", ldo.etee.percent()),
            format!("{:.2}%", ivr.etee.percent()),
        ]);
    }
    Ok(t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_map_reports_mode_flip() {
        let s = crossover_map().unwrap();
        assert!(s.contains("LDO-Mode"), "low TDPs must run LDO-Mode");
        assert!(s.contains("IVR-Mode"), "high TDPs must run IVR-Mode");
    }

    #[test]
    fn higher_loadline_costs_etee_monotonically() {
        let s = loadline_sensitivity().unwrap();
        assert!(s.contains("1.4"));
        // Parse the 50 W column and check monotone decrease.
        let values: Vec<f64> = s
            .lines()
            .filter(|l| l.trim_start().chars().next().is_some_and(|c| c.is_ascii_digit()))
            .filter_map(|l| {
                l.split_whitespace().last().and_then(|v| v.trim_end_matches('%').parse().ok())
            })
            .collect();
        assert!(values.len() >= 4);
        for w in values.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "ETEE must fall as RLL grows: {values:?}");
        }
    }
}
