//! Tables 1–3 of the paper: the architecture summary, the PDNspot model
//! parameters, and the validation-system configurations.

use crate::render::TextTable;
use pdn_proc::{broadwell_ult, client_soc, skylake_ult, DomainKind};
use pdn_units::Watts;
use pdnspot::ModelParams;

/// Renders Table 1: the modelled processor architecture.
pub fn table1() -> String {
    let soc = client_soc(Watts::new(18.0));
    let mut t = TextTable::new(
        "Table 1 — processor architecture summary",
        &["domain", "freq range", "voltage range", "notes"],
    );
    for (kind, cfg) in soc.domains() {
        let (vlo, vhi) = cfg.vf.voltage_range();
        let notes = match kind {
            DomainKind::Core0 | DomainKind::Core1 => "single clock domain across cores",
            DomainKind::Llc => "voltage design point matches the cores",
            DomainKind::Gfx => "graphics engines",
            DomainKind::Sa => "memory/display controllers, IO fabric (fixed freq)",
            DomainKind::Io => "DDR/display IO (fixed freq)",
        };
        t.row(vec![
            kind.to_string(),
            format!("{:.1}-{:.1} GHz", cfg.fmin.gigahertz(), cfg.fmax.gigahertz()),
            format!("{:.2}-{:.2} V", vlo.get(), vhi.get()),
            notes.to_string(),
        ]);
    }
    t.render()
}

/// Renders Table 2: the PDNspot model parameters.
pub fn table2() -> String {
    let p = ModelParams::paper_defaults();
    let mut t =
        TextTable::new("Table 2 — PDNspot model parameters", &["parameter", "IVR", "MBVR", "LDO"]);
    t.row(vec![
        "load-line RLL (mOhm)".into(),
        format!("IN={}", p.ivr_loadlines.vin.milliohms()),
        format!(
            "cores/GFX={}, SA={}, IO={}",
            p.mbvr_loadlines.compute.milliohms(),
            p.mbvr_loadlines.sa.milliohms(),
            p.mbvr_loadlines.io.milliohms()
        ),
        format!(
            "IN={}, SA={}, IO={}",
            p.ldo_loadlines.vin.milliohms(),
            p.ldo_loadlines.sa.milliohms(),
            p.ldo_loadlines.io.milliohms()
        ),
    ]);
    t.row(vec![
        "tolerance band (mV)".into(),
        format!("{:.0}", p.ivr_tob.total().millivolts()),
        format!("{:.0}", p.mbvr_tob.total().millivolts()),
        format!("{:.0}", p.ldo_tob.total().millivolts()),
    ]);
    t.row(vec![
        "on-chip VR eff.".into(),
        "81-88% (buck)".into(),
        "-".into(),
        "(Vout/Vin)*99.1%".into(),
    ]);
    t.row(vec![
        "off-chip VR eff.".into(),
        "72-93% (Vin,Vout,Iout,PS)".into(),
        "72-93%".into(),
        "72-93%".into(),
    ]);
    t.row(vec![
        "leakage exponent".into(),
        format!("{}", p.leakage_exponent),
        String::new(),
        String::new(),
    ]);
    t.row(vec![
        "V_IN level".into(),
        format!("{}", p.vin_level),
        "-".into(),
        "max compute voltage".into(),
    ]);
    t.render()
}

/// Renders Table 3: the validation-system configurations.
pub fn table3() -> String {
    let mut t = TextTable::new("Table 3 — validation systems", &["system", "TDP", "node", "PDN"]);
    for (soc, pdn) in [(broadwell_ult(), "IVR"), (skylake_ult(), "MBVR")] {
        t.row(vec![
            soc.name.clone(),
            format!("{}", soc.tdp),
            format!("{} nm", soc.process_node_nm),
            pdn.to_string(),
        ]);
    }
    t.row(vec!["i7-6600U + emulated LDO".into(), "15 W".into(), "14 nm".into(), "LDO".into()]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_six_domains() {
        let s = table1();
        for d in ["Core0", "Core1", "LLC", "GFX", "SA", "IO"] {
            assert!(s.contains(d), "missing {d}");
        }
    }

    #[test]
    fn table2_carries_the_key_constants() {
        let s = table2();
        assert!(s.contains("2.8"));
        assert!(s.contains("99.1%"));
        assert!(s.contains("1.8 V"));
    }

    #[test]
    fn table3_lists_three_validation_systems() {
        let s = table3();
        assert!(s.contains("Broadwell"));
        assert!(s.contains("Skylake"));
        assert!(s.contains("emulated LDO"));
    }
}
