//! The [`VoltageRegulator`] trait and its supporting vocabulary types.

use pdn_units::{Amps, Efficiency, Volts, Watts};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Where a regulator physically lives in the platform.
///
/// Placement drives the board-area/BOM model (§3.2): only off-chip
/// regulators consume board area, while on-chip regulators consume die area
/// and add design complexity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Placement {
    /// On the motherboard (e.g. an MBVR first-stage VR).
    Motherboard,
    /// On the processor package (e.g. IVR air-core inductors).
    Package,
    /// On the processor die (e.g. IVR bridges, LDO VRs, power gates).
    Die,
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Placement::Motherboard => "motherboard",
            Placement::Package => "package",
            Placement::Die => "die",
        };
        f.write_str(s)
    }
}

/// Voltage-regulator power states.
///
/// Board VRs expose light-load states that trade maximum current capability
/// for lower fixed losses (the paper's V_IN VR supports PS0, PS1, PS3, and
/// PS4). The deeper the state, the lower the quiescent loss and the lower
/// the current the VR can serve without exiting the state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum VrPowerState {
    /// Full-performance state: all phases available.
    Ps0,
    /// Light-load state: reduced phase count, lower fixed loss.
    Ps1,
    /// Deeper light-load state (diode-emulation / pulse-skipping).
    Ps2,
    /// Very light load; single phase in burst mode.
    Ps3,
    /// Near-off state used in deep package C-states.
    Ps4,
}

impl VrPowerState {
    /// All power states, in increasing depth.
    pub const ALL: [VrPowerState; 5] = [
        VrPowerState::Ps0,
        VrPowerState::Ps1,
        VrPowerState::Ps2,
        VrPowerState::Ps3,
        VrPowerState::Ps4,
    ];

    /// The fraction of the PS0 fixed (quiescent) loss that remains in this
    /// state. Deeper states shed controller and gate-drive overheads.
    pub fn fixed_loss_factor(self) -> f64 {
        match self {
            VrPowerState::Ps0 => 1.0,
            VrPowerState::Ps1 => 0.22,
            VrPowerState::Ps2 => 0.10,
            VrPowerState::Ps3 => 0.045,
            VrPowerState::Ps4 => 0.012,
        }
    }

    /// The fraction of the PS0 maximum current the VR can deliver while
    /// remaining in this state.
    pub fn current_capability_factor(self) -> f64 {
        match self {
            VrPowerState::Ps0 => 1.0,
            VrPowerState::Ps1 => 0.25,
            VrPowerState::Ps2 => 0.10,
            VrPowerState::Ps3 => 0.03,
            VrPowerState::Ps4 => 0.005,
        }
    }
}

impl fmt::Display for VrPowerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VrPowerState::Ps0 => "PS0",
            VrPowerState::Ps1 => "PS1",
            VrPowerState::Ps2 => "PS2",
            VrPowerState::Ps3 => "PS3",
            VrPowerState::Ps4 => "PS4",
        };
        f.write_str(s)
    }
}

/// A regulator operating point: input/output voltage, load current, and VR
/// power state.
///
/// # Examples
///
/// ```
/// use pdn_units::{Amps, Volts};
/// use pdn_vr::{OperatingPoint, VrPowerState};
///
/// let op = OperatingPoint::new(Volts::new(1.8), Volts::new(0.9), Amps::new(3.0))
///     .with_power_state(VrPowerState::Ps1);
/// assert_eq!(op.output_power(), pdn_units::Watts::new(2.7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Input voltage to the regulator.
    pub vin: Volts,
    /// Regulated output voltage.
    pub vout: Volts,
    /// Load (output) current.
    pub iout: Amps,
    /// VR power state.
    pub power_state: VrPowerState,
}

impl OperatingPoint {
    /// Creates an operating point in PS0.
    pub fn new(vin: Volts, vout: Volts, iout: Amps) -> Self {
        Self { vin, vout, iout, power_state: VrPowerState::Ps0 }
    }

    /// Sets the VR power state.
    pub fn with_power_state(mut self, ps: VrPowerState) -> Self {
        self.power_state = ps;
        self
    }

    /// Output power delivered at this point.
    pub fn output_power(&self) -> Watts {
        self.vout * self.iout
    }
}

/// Error produced by regulator models.
#[derive(Debug, Clone, PartialEq)]
pub enum VrError {
    /// The requested operating point violates a device constraint.
    UnsupportedOperatingPoint {
        /// Regulator name.
        regulator: String,
        /// Why the point is unsupported.
        reason: String,
    },
    /// A device parameter was invalid at construction time.
    InvalidParameter {
        /// Parameter name.
        parameter: &'static str,
        /// The offending value.
        value: f64,
        /// Description of the permitted range.
        range: &'static str,
    },
    /// An underlying curve/quantity failed validation.
    Units(pdn_units::UnitsError),
}

impl fmt::Display for VrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VrError::UnsupportedOperatingPoint { regulator, reason } => {
                write!(f, "{regulator}: unsupported operating point: {reason}")
            }
            VrError::InvalidParameter { parameter, value, range } => {
                write!(f, "invalid parameter {parameter} = {value} (expected {range})")
            }
            VrError::Units(e) => write!(f, "units error: {e}"),
        }
    }
}

impl std::error::Error for VrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VrError::Units(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pdn_units::UnitsError> for VrError {
    fn from(e: pdn_units::UnitsError) -> Self {
        VrError::Units(e)
    }
}

/// A DC–DC conversion stage that a PDN model can query.
///
/// Implementors are the buck converter (motherboard SVR and on-die IVR),
/// the LDO regulator, tabulated efficiency surfaces, and FlexWatts's hybrid
/// regulator. The trait is object-safe so PDN topologies can hold
/// heterogeneous rails as `Box<dyn VoltageRegulator>`.
pub trait VoltageRegulator: fmt::Debug + Send + Sync {
    /// A short human-readable name (e.g. `"V_IN"`, `"IVR_Core0"`).
    fn name(&self) -> &str;

    /// Physical placement of the regulator.
    fn placement(&self) -> Placement;

    /// Power-conversion efficiency at an operating point.
    ///
    /// # Errors
    ///
    /// Returns [`VrError::UnsupportedOperatingPoint`] when the point
    /// violates a device constraint (dropout, headroom, current limit, or a
    /// power state that cannot carry the requested current).
    fn efficiency(&self, op: OperatingPoint) -> Result<Efficiency, VrError>;

    /// The maximum current the regulator is electrically designed to
    /// support (exceeding Iccmax risks irreversible damage; §3.2).
    fn iccmax(&self) -> Amps;

    /// Whether the regulator can regulate `vin` down to `vout` at all
    /// (ignoring current limits).
    fn supports_conversion(&self, vin: Volts, vout: Volts) -> bool;

    /// Input power drawn to deliver the operating point's output power.
    ///
    /// # Errors
    ///
    /// Same conditions as [`VoltageRegulator::efficiency`].
    fn input_power(&self, op: OperatingPoint) -> Result<Watts, VrError> {
        Ok(op.output_power() / self.efficiency(op)?)
    }

    /// Power dissipated in the regulator at the operating point.
    ///
    /// # Errors
    ///
    /// Same conditions as [`VoltageRegulator::efficiency`].
    fn loss(&self, op: OperatingPoint) -> Result<Watts, VrError> {
        Ok(self.input_power(op)? - op.output_power())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_state_factors_decrease_with_depth() {
        let mut prev_fixed = f64::INFINITY;
        let mut prev_cap = f64::INFINITY;
        for ps in VrPowerState::ALL {
            assert!(ps.fixed_loss_factor() < prev_fixed);
            assert!(ps.current_capability_factor() < prev_cap);
            prev_fixed = ps.fixed_loss_factor();
            prev_cap = ps.current_capability_factor();
        }
    }

    #[test]
    fn operating_point_output_power() {
        let op = OperatingPoint::new(Volts::new(1.8), Volts::new(0.5), Amps::new(2.0));
        assert_eq!(op.output_power(), Watts::new(1.0));
        assert_eq!(op.power_state, VrPowerState::Ps0);
        let op1 = op.with_power_state(VrPowerState::Ps3);
        assert_eq!(op1.power_state, VrPowerState::Ps3);
    }

    #[test]
    fn error_display_mentions_cause() {
        let e = VrError::UnsupportedOperatingPoint {
            regulator: "V_IN".into(),
            reason: "dropout".into(),
        };
        assert!(e.to_string().contains("V_IN"));
        let e = VrError::InvalidParameter { parameter: "r_on", value: -1.0, range: "> 0" };
        assert!(e.to_string().contains("r_on"));
    }

    #[test]
    fn placements_display() {
        assert_eq!(Placement::Motherboard.to_string(), "motherboard");
        assert_eq!(Placement::Die.to_string(), "die");
        assert_eq!(VrPowerState::Ps1.to_string(), "PS1");
    }
}
