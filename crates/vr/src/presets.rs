//! Calibrated regulator presets for the platforms studied in the paper.
//!
//! These parametric devices substitute for the paper's lab-measured VRs
//! (§4.2). Their efficiency ranges are calibrated to Table 2:
//!
//! * off-chip (board) VRs: 72–93 % over the workload operating range;
//! * on-die IVR: 81–88 % over the workload operating range;
//! * on-die LDO: `(Vout/Vin) · 99.1 %`.
//!
//! and their curve shapes to Fig. 3 (rising from ≈ 50 % at 0.1 A, peaking
//! around 90 %, light-load power states recovering efficiency at low
//! current).

use crate::buck::{BuckConverter, BuckParams, PhaseConfig};
use crate::ldo::LdoRegulator;
use crate::powergate::PowerGate;
use crate::traits::Placement;
use pdn_units::{Amps, Ohms, Volts, Watts};

/// The first-stage board VR (`V_IN`) used by the IVR, LDO, I+MBVR, and
/// FlexWatts PDNs: converts the 7.2–20 V supply down to ≤ 2 V.
pub fn vin_board_vr() -> BuckConverter {
    BuckConverter::new(BuckParams {
        name: "V_IN".into(),
        placement: Placement::Motherboard,
        vin_range: (Volts::new(5.0), Volts::new(20.0)),
        vout_range: (Volts::new(0.4), Volts::new(2.0)),
        min_headroom: Volts::new(2.0),
        iccmax: Amps::new(60.0),
        base_fixed_loss: Watts::from_milliwatts(40.0),
        switch_drop: Volts::new(0.045),
        vin_ref: Volts::new(7.2),
        phases: PhaseConfig {
            max_phases: 4,
            per_phase_resistance: Ohms::from_milliohms(24.0),
            per_phase_fixed: Watts::from_milliwatts(25.0),
        },
    })
    .expect("preset parameters are valid")
}

/// A board VR feeding a compute domain directly (MBVR's `V_Cores`/`V_GFX`):
/// converts the supply down to core voltages (0.5–1.1 V), so it must carry
/// roughly twice the current of the `V_IN` VR at the same power.
pub fn compute_board_vr(name: &str) -> BuckConverter {
    BuckConverter::new(BuckParams {
        name: name.into(),
        placement: Placement::Motherboard,
        vin_range: (Volts::new(5.0), Volts::new(20.0)),
        vout_range: (Volts::new(0.3), Volts::new(1.3)),
        min_headroom: Volts::new(2.0),
        iccmax: Amps::new(80.0),
        base_fixed_loss: Watts::from_milliwatts(40.0),
        switch_drop: Volts::new(0.045),
        vin_ref: Volts::new(7.2),
        phases: PhaseConfig {
            max_phases: 8,
            per_phase_resistance: Ohms::from_milliohms(16.0),
            per_phase_fixed: Watts::from_milliwatts(25.0),
        },
    })
    .expect("preset parameters are valid")
}

/// The small board VR feeding the system agent (`V_SA`): low, narrow power
/// range, optimised for ~1 A loads.
pub fn sa_board_vr() -> BuckConverter {
    small_rail_vr("V_SA")
}

/// The small board VR feeding the IO domain (`V_IO`).
pub fn io_board_vr() -> BuckConverter {
    small_rail_vr("V_IO")
}

fn small_rail_vr(name: &str) -> BuckConverter {
    BuckConverter::new(BuckParams {
        name: name.into(),
        placement: Placement::Motherboard,
        vin_range: (Volts::new(5.0), Volts::new(20.0)),
        vout_range: (Volts::new(0.3), Volts::new(1.9)),
        min_headroom: Volts::new(2.0),
        iccmax: Amps::new(8.0),
        base_fixed_loss: Watts::from_milliwatts(15.0),
        switch_drop: Volts::new(0.035),
        vin_ref: Volts::new(7.2),
        phases: PhaseConfig {
            max_phases: 2,
            per_phase_resistance: Ohms::from_milliohms(30.0),
            per_phase_fixed: Watts::from_milliwatts(10.0),
        },
    })
    .expect("preset parameters are valid")
}

/// An on-die integrated voltage regulator (IVR): a high-switching-frequency
/// buck fed at 1.6–1.8 V, regulating down to domain voltages with ≥ 0.6 V
/// headroom (§2.2), with efficiency in Table 2's 81–88 % band at workload
/// operating points.
pub fn ivr(name: &str) -> BuckConverter {
    BuckConverter::new(BuckParams {
        name: name.into(),
        placement: Placement::Die,
        vin_range: (Volts::new(1.5), Volts::new(1.9)),
        vout_range: (Volts::new(0.3), Volts::new(1.2)),
        min_headroom: Volts::new(0.6),
        iccmax: Amps::new(40.0),
        base_fixed_loss: Watts::from_milliwatts(50.0),
        switch_drop: Volts::new(0.094),
        vin_ref: Volts::new(1.8),
        phases: PhaseConfig {
            max_phases: 16,
            per_phase_resistance: Ohms::from_milliohms(14.0),
            per_phase_fixed: Watts::from_milliwatts(24.0),
        },
    })
    .expect("preset parameters are valid")
}

/// The shared off-chip `V_IN` VR of the FlexWatts hybrid PDN: one device
/// that must output 1.8 V in IVR-Mode *and* compute voltages (0.4–1.1 V)
/// in LDO-Mode. Electrically it is a compute-class multi-phase design,
/// sized with an Iccmax similar to the IVR PDN's first stage because
/// high-power (high-current) episodes always run in IVR-Mode (§7).
pub fn flexwatts_vin_vr() -> BuckConverter {
    BuckConverter::new(BuckParams {
        name: "V_IN".into(),
        placement: Placement::Motherboard,
        vin_range: (Volts::new(5.0), Volts::new(20.0)),
        vout_range: (Volts::new(0.3), Volts::new(2.0)),
        min_headroom: Volts::new(2.0),
        iccmax: Amps::new(60.0),
        base_fixed_loss: Watts::from_milliwatts(40.0),
        switch_drop: Volts::new(0.047),
        vin_ref: Volts::new(7.2),
        phases: PhaseConfig {
            max_phases: 8,
            per_phase_resistance: Ohms::from_milliohms(16.0),
            per_phase_fixed: Watts::from_milliwatts(25.0),
        },
    })
    .expect("preset parameters are valid")
}

/// An on-die LDO VR with the paper's 99.1 % current efficiency.
pub fn ldo(name: &str) -> LdoRegulator {
    LdoRegulator::paper_default(name)
}

/// An on-die power gate with Table 2's impedance range (1–2 mΩ; this preset
/// uses 1.5 mΩ).
pub fn power_gate(name: &str) -> PowerGate {
    PowerGate::new(name, Ohms::from_milliohms(1.5), Amps::new(40.0))
        .expect("preset parameters are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{OperatingPoint, VoltageRegulator};

    #[test]
    fn board_vr_efficiency_spans_table2_range() {
        let vr = vin_board_vr();
        let mut etas = Vec::new();
        for i in [0.3, 1.0, 3.0, 10.0, 25.0] {
            let op = OperatingPoint::new(Volts::new(7.2), Volts::new(1.8), Amps::new(i));
            etas.push(vr.efficiency(op).unwrap().get());
        }
        let max = etas.iter().copied().fold(0.0, f64::max);
        let min = etas.iter().copied().fold(1.0, f64::min);
        assert!(max > 0.88 && max < 0.95, "peak board η {max}");
        assert!(min > 0.70, "worst workload-range board η {min}");
    }

    #[test]
    fn compute_board_vr_carries_double_current() {
        let vr = compute_board_vr("V_Cores");
        assert!(vr.iccmax().get() > vin_board_vr().iccmax().get());
        // 30 W at 0.9 V is ~33 A: must be feasible with reasonable η.
        let op = OperatingPoint::new(Volts::new(7.2), Volts::new(0.9), Amps::new(33.0));
        let eta = vr.efficiency(op).unwrap().get();
        assert!(eta > 0.78 && eta < 0.93, "η at 30 W core load = {eta}");
    }

    #[test]
    fn sa_io_rails_efficient_at_their_small_loads() {
        for vr in [sa_board_vr(), io_board_vr()] {
            let op = OperatingPoint::new(Volts::new(7.2), Volts::new(0.9), Amps::new(1.2));
            let eta = vr.efficiency(op).unwrap().get();
            assert!(eta > 0.82, "{} η at 1.2 A = {eta}", vr.name());
        }
    }

    #[test]
    fn ivr_headroom_is_point_six_volts() {
        let vr = ivr("IVR");
        assert!(vr.supports_conversion(Volts::new(1.8), Volts::new(1.2)));
        assert!(!vr.supports_conversion(Volts::new(1.8), Volts::new(1.21)));
    }

    #[test]
    fn all_presets_have_unique_sensible_names() {
        assert_eq!(vin_board_vr().name(), "V_IN");
        assert_eq!(sa_board_vr().name(), "V_SA");
        assert_eq!(io_board_vr().name(), "V_IO");
        assert_eq!(ivr("IVR_GFX").name(), "IVR_GFX");
        assert_eq!(ldo("LDO_LLC").name(), "LDO_LLC");
        assert_eq!(power_gate("PG_Core1").name(), "PG_Core1");
    }
}
