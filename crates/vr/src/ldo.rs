//! Low-dropout (LDO) linear regulator model.
//!
//! The LDO PDN (AMD Zen [Singh et al., ISSCC 2017/JSSC 2018]) and
//! FlexWatts's LDO-Mode use on-die LDO VRs built from power-gate switches
//! (Luria et al., JSSC 2016). An LDO's efficiency is the voltage ratio times
//! its current efficiency: `η_LDO = (Vout / Vin) · Ie` (Eq. 10 of the
//! paper), with `Ie ≈ 99.1 %` measured in Table 2.
//!
//! The model exposes the three operation modes described in §2.3:
//!
//! * [`LdoMode::Regulation`] — linear regulation from `Vin` down to `Vout`;
//! * [`LdoMode::Bypass`] — the input is connected straight to the output
//!   (used when a domain needs the shared rail voltage unchanged); the only
//!   loss is the `I²·R` drop across the pass switch;
//! * [`LdoMode::PowerGate`] — the domain is disconnected (idle domains).

use crate::traits::{OperatingPoint, Placement, VoltageRegulator, VrError};
use pdn_units::{Amps, Efficiency, Ohms, Volts};
use serde::{Deserialize, Serialize};

/// Operating mode of an LDO regulator (§2.3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LdoMode {
    /// Linear regulation: `Vout < Vin`, `η ≈ (Vout/Vin)·Ie`.
    Regulation,
    /// Pass-through: output tied to input through the pass switch.
    Bypass,
    /// The pass device is off; the domain is power-gated.
    PowerGate,
}

impl std::fmt::Display for LdoMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LdoMode::Regulation => "regulation",
            LdoMode::Bypass => "bypass",
            LdoMode::PowerGate => "power-gate",
        };
        f.write_str(s)
    }
}

/// An on-die low-dropout linear regulator.
///
/// # Examples
///
/// ```
/// use pdn_units::{Amps, Volts};
/// use pdn_vr::{LdoRegulator, OperatingPoint, VoltageRegulator};
///
/// let ldo = LdoRegulator::paper_default("LDO_Core0");
/// // Regulating 0.9 V down to 0.5 V is inefficient: η ≈ 0.5/0.9 · 0.991.
/// let op = OperatingPoint::new(Volts::new(0.9), Volts::new(0.5), Amps::new(2.0));
/// let eta = ldo.efficiency(op)?;
/// assert!((eta.get() - 0.5 / 0.9 * 0.991).abs() < 1e-6);
/// # Ok::<(), pdn_vr::VrError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LdoRegulator {
    name: String,
    /// Current efficiency `Ie = Iout / Iin` (quiescent current overhead).
    current_efficiency: Efficiency,
    /// Minimum dropout voltage required in regulation mode.
    dropout: Volts,
    /// Pass-switch series resistance (relevant in bypass mode).
    switch_resistance: Ohms,
    /// Maximum supported current.
    iccmax: Amps,
}

impl LdoRegulator {
    /// Creates an LDO regulator.
    ///
    /// # Errors
    ///
    /// Returns [`VrError::InvalidParameter`] for non-positive dropout,
    /// resistance, or current limit.
    pub fn new(
        name: impl Into<String>,
        current_efficiency: Efficiency,
        dropout: Volts,
        switch_resistance: Ohms,
        iccmax: Amps,
    ) -> Result<Self, VrError> {
        if dropout.get() < 0.0 {
            return Err(VrError::InvalidParameter {
                parameter: "dropout",
                value: dropout.get(),
                range: "≥ 0",
            });
        }
        if switch_resistance.get() <= 0.0 {
            return Err(VrError::InvalidParameter {
                parameter: "switch_resistance",
                value: switch_resistance.get(),
                range: "> 0",
            });
        }
        if iccmax.get() <= 0.0 {
            return Err(VrError::InvalidParameter {
                parameter: "iccmax",
                value: iccmax.get(),
                range: "> 0",
            });
        }
        Ok(Self { name: name.into(), current_efficiency, dropout, switch_resistance, iccmax })
    }

    /// The paper-default LDO: 99.1 % current efficiency (Table 2), 20 mV
    /// dropout, 3.2 mΩ pass switch (a power-gate array reused as an LDO,
    /// Luria et al.), 40 A Iccmax.
    pub fn paper_default(name: impl Into<String>) -> Self {
        Self::new(
            name,
            Efficiency::new(0.991).expect("0.991 is a valid efficiency"),
            Volts::from_millivolts(20.0),
            Ohms::from_milliohms(3.2),
            Amps::new(40.0),
        )
        .expect("paper defaults are valid")
    }

    /// The LDO current efficiency `Ie`.
    pub fn current_efficiency(&self) -> Efficiency {
        self.current_efficiency
    }

    /// Determines the mode implied by an operating point: bypass when the
    /// voltages are equal (within the dropout resolution), regulation when
    /// `Vout < Vin`.
    ///
    /// # Errors
    ///
    /// Returns [`VrError::UnsupportedOperatingPoint`] when `Vout > Vin`
    /// (an LDO cannot boost).
    pub fn mode_for(&self, op: OperatingPoint) -> Result<LdoMode, VrError> {
        if op.vout > op.vin {
            return Err(VrError::UnsupportedOperatingPoint {
                regulator: self.name.clone(),
                reason: format!("cannot boost {} to {}", op.vin, op.vout),
            });
        }
        if op.vin - op.vout < self.dropout {
            Ok(LdoMode::Bypass)
        } else {
            Ok(LdoMode::Regulation)
        }
    }

    /// Efficiency in bypass mode at a given current: the only loss is the
    /// resistive drop across the pass switch.
    fn bypass_efficiency(&self, op: OperatingPoint) -> Result<Efficiency, VrError> {
        let drop = op.iout * self.switch_resistance;
        let eta = op.vout.get() / (op.vout + drop).get();
        Ok(Efficiency::new(eta * self.current_efficiency.get())?)
    }

    fn check_current(&self, op: &OperatingPoint) -> Result<(), VrError> {
        if op.iout.get() < 0.0 || op.iout > self.iccmax {
            return Err(VrError::UnsupportedOperatingPoint {
                regulator: self.name.clone(),
                reason: format!("current {} outside [0, {}]", op.iout, self.iccmax),
            });
        }
        Ok(())
    }
}

impl VoltageRegulator for LdoRegulator {
    fn name(&self) -> &str {
        &self.name
    }

    fn placement(&self) -> Placement {
        Placement::Die
    }

    fn efficiency(&self, op: OperatingPoint) -> Result<Efficiency, VrError> {
        self.check_current(&op)?;
        if op.iout.get() <= 0.0 {
            return Err(VrError::UnsupportedOperatingPoint {
                regulator: self.name.clone(),
                reason: "efficiency is undefined at zero load".into(),
            });
        }
        match self.mode_for(op)? {
            LdoMode::Bypass => self.bypass_efficiency(op),
            LdoMode::Regulation | LdoMode::PowerGate => {
                // Eq. 10: η_LDO = (Vout / Vin) · Ie.
                let eta = (op.vout.get() / op.vin.get()) * self.current_efficiency.get();
                Ok(Efficiency::new(eta)?)
            }
        }
    }

    fn iccmax(&self) -> Amps {
        self.iccmax
    }

    fn supports_conversion(&self, vin: Volts, vout: Volts) -> bool {
        vout <= vin
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(vin: f64, vout: f64, iout: f64) -> OperatingPoint {
        OperatingPoint::new(Volts::new(vin), Volts::new(vout), Amps::new(iout))
    }

    #[test]
    fn regulation_efficiency_is_voltage_ratio_times_ie() {
        let ldo = LdoRegulator::paper_default("LDO");
        let eta = ldo.efficiency(op(1.0, 0.9, 5.0)).unwrap();
        assert!((eta.get() - 0.9 * 0.991).abs() < 1e-9);
    }

    #[test]
    fn deep_regulation_is_very_inefficient() {
        // §5 Observation 2: graphics at 0.9 V with cores at 0.5 V yields
        // core-rail efficiency near 0.5/0.9 ≈ 55 %.
        let ldo = LdoRegulator::paper_default("LDO_Core");
        let eta = ldo.efficiency(op(0.9, 0.5, 3.0)).unwrap();
        assert!((eta.get() - (0.5 / 0.9) * 0.991).abs() < 1e-9);
        assert!(eta.get() < 0.56);
    }

    #[test]
    fn bypass_mode_nearly_lossless_at_light_load() {
        let ldo = LdoRegulator::paper_default("LDO");
        // Vin == Vout → bypass.
        assert_eq!(ldo.mode_for(op(0.9, 0.9, 1.0)).unwrap(), LdoMode::Bypass);
        let eta = ldo.efficiency(op(0.9, 0.9, 1.0)).unwrap();
        assert!(eta.get() > 0.985);
    }

    #[test]
    fn bypass_loss_grows_with_current() {
        let ldo = LdoRegulator::paper_default("LDO");
        let light = ldo.efficiency(op(0.9, 0.9, 1.0)).unwrap();
        let heavy = ldo.efficiency(op(0.9, 0.9, 30.0)).unwrap();
        assert!(heavy.get() < light.get());
    }

    #[test]
    fn cannot_boost() {
        let ldo = LdoRegulator::paper_default("LDO");
        assert!(ldo.efficiency(op(0.5, 0.9, 1.0)).is_err());
        assert!(!ldo.supports_conversion(Volts::new(0.5), Volts::new(0.9)));
        assert!(ldo.supports_conversion(Volts::new(0.9), Volts::new(0.5)));
    }

    #[test]
    fn current_limit_enforced() {
        let ldo = LdoRegulator::paper_default("LDO");
        assert!(ldo.efficiency(op(1.0, 0.8, 41.0)).is_err());
        assert!(ldo.efficiency(op(1.0, 0.8, -1.0)).is_err());
        assert!(ldo.efficiency(op(1.0, 0.8, 0.0)).is_err());
    }

    #[test]
    fn invalid_parameters_rejected() {
        let ie = Efficiency::new(0.99).unwrap();
        assert!(
            LdoRegulator::new("x", ie, Volts::new(-0.1), Ohms::new(1e-3), Amps::new(1.0)).is_err()
        );
        assert!(
            LdoRegulator::new("x", ie, Volts::new(0.02), Ohms::new(0.0), Amps::new(1.0)).is_err()
        );
        assert!(
            LdoRegulator::new("x", ie, Volts::new(0.02), Ohms::new(1e-3), Amps::new(0.0)).is_err()
        );
    }

    #[test]
    fn ldo_beats_buck_when_voltages_are_close() {
        // §2.2: an LDO can have higher efficiency than an SVR when
        // Vin ≈ Vout (e.g. 1.0 V → 0.9 V).
        let ldo = LdoRegulator::paper_default("LDO");
        let eta = ldo.efficiency(op(1.0, 0.9, 5.0)).unwrap();
        assert!(eta.get() > 0.88, "LDO at 1.0→0.9 V should beat a typical IVR: {eta}");
    }
}
