//! Tabulated voltage-regulator efficiency surfaces.
//!
//! PDNspot's inputs are *measured* efficiency curves — η as a function of
//! output current for a lattice of input voltages, output voltages, and VR
//! power states (§4.2 and Fig. 3 of the paper). [`EfficiencySurface`]
//! stores curves in exactly that form and interpolates between them, which
//! is also how a real PMU stores VR efficiency tables in firmware
//! (footnote 11 of the paper).
//!
//! A surface can be *sampled* from any parametric [`VoltageRegulator`]
//! model via [`EfficiencySurface::sample`], standing in for a lab
//! measurement campaign over a real device.

use crate::traits::{OperatingPoint, Placement, VoltageRegulator, VrError, VrPowerState};
use pdn_units::{Amps, Curve1, Efficiency, Volts};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// One measured efficiency curve: η(Iout) at fixed (Vin, Vout, power state).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurfaceEntry {
    /// Input voltage of the sweep.
    pub vin: Volts,
    /// Output voltage of the sweep.
    pub vout: Volts,
    /// VR power state of the sweep.
    pub power_state: VrPowerState,
    /// Efficiency versus output current in amperes (log-current axis).
    pub curve: Curve1,
}

/// A set of efficiency curves forming an η(Vin, Vout, Iout, PS) surface.
///
/// # Examples
///
/// ```
/// use pdn_units::{Amps, Volts};
/// use pdn_vr::{presets, EfficiencySurface, OperatingPoint, VoltageRegulator, VrPowerState};
///
/// // "Measure" the V_IN board VR over the Fig. 3 sweep lattice.
/// let surface = EfficiencySurface::sample(
///     &presets::vin_board_vr(),
///     &[Volts::new(7.2)],
///     &[Volts::new(1.8)],
///     &[VrPowerState::Ps0],
///     (0.1, 10.0),
///     16,
/// )?;
/// let op = OperatingPoint::new(Volts::new(7.2), Volts::new(1.8), Amps::new(2.0));
/// let direct = presets::vin_board_vr().efficiency(op)?;
/// let tabulated = surface.efficiency(op)?;
/// assert!((direct.get() - tabulated.get()).abs() < 0.01);
/// # Ok::<(), pdn_vr::VrError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EfficiencySurface {
    name: String,
    placement: Placement,
    iccmax: Amps,
    entries: Vec<SurfaceEntry>,
}

impl EfficiencySurface {
    /// Builds a surface from explicit entries.
    ///
    /// # Errors
    ///
    /// Returns [`VrError::InvalidParameter`] if `entries` is empty or
    /// `iccmax` is non-positive.
    pub fn new(
        name: impl Into<String>,
        placement: Placement,
        iccmax: Amps,
        entries: Vec<SurfaceEntry>,
    ) -> Result<Self, VrError> {
        if entries.is_empty() {
            return Err(VrError::InvalidParameter {
                parameter: "entries",
                value: 0.0,
                range: "at least one curve",
            });
        }
        if iccmax.get() <= 0.0 {
            return Err(VrError::InvalidParameter {
                parameter: "iccmax",
                value: iccmax.get(),
                range: "> 0",
            });
        }
        Ok(Self { name: name.into(), placement, iccmax, entries })
    }

    /// Samples a parametric regulator over a measurement lattice,
    /// producing the tabulated equivalent of a lab sweep: for each
    /// (Vin, Vout, PS) combination, η is recorded at `points_per_decade`-
    /// spaced currents spanning `current_range` (amperes, log-spaced).
    ///
    /// Lattice points the device cannot operate at (dropout violations,
    /// current beyond a power state's capability) are skipped, exactly as a
    /// lab sweep would skip them.
    ///
    /// # Errors
    ///
    /// Returns [`VrError::InvalidParameter`] if no lattice point is
    /// feasible.
    pub fn sample(
        vr: &dyn VoltageRegulator,
        vins: &[Volts],
        vouts: &[Volts],
        power_states: &[VrPowerState],
        current_range: (f64, f64),
        points_per_curve: usize,
    ) -> Result<Self, VrError> {
        let mut entries = Vec::new();
        let (lo, hi) = current_range;
        for &vin in vins {
            for &vout in vouts {
                if !vr.supports_conversion(vin, vout) {
                    continue;
                }
                for &ps in power_states {
                    let mut points = Vec::new();
                    for k in 0..points_per_curve {
                        let t = k as f64 / (points_per_curve - 1).max(1) as f64;
                        let i = lo * (hi / lo).powf(t);
                        let op = OperatingPoint::new(vin, vout, Amps::new(i)).with_power_state(ps);
                        if let Ok(eta) = vr.efficiency(op) {
                            points.push((i, eta.get()));
                        }
                    }
                    if points.len() >= 2 {
                        entries.push(SurfaceEntry {
                            vin,
                            vout,
                            power_state: ps,
                            curve: Curve1::from_points(points)?,
                        });
                    }
                }
            }
        }
        Self::new(format!("{}_table", vr.name()), vr.placement(), vr.iccmax(), entries)
    }

    /// Iterates over the stored curves (used to print Fig. 3).
    pub fn entries(&self) -> &[SurfaceEntry] {
        &self.entries
    }

    /// Returns the curve measured at exactly (vin, vout, ps), if any.
    pub fn curve_at(&self, vin: Volts, vout: Volts, ps: VrPowerState) -> Option<&Curve1> {
        self.entries
            .iter()
            .find(|e| {
                e.power_state == ps
                    && (e.vin.get() - vin.get()).abs() < 1e-9
                    && (e.vout.get() - vout.get()).abs() < 1e-9
            })
            .map(|e| &e.curve)
    }

    /// Compiles the surface into the flattened query-optimised form used
    /// on evaluation hot paths.
    pub fn compile(&self) -> CompiledSurface {
        CompiledSurface::from_surface(self)
    }
}

/// One curve of a [`CompiledSurface`]: its lattice coordinates plus the
/// `[start, start + len)` window into the shared knot arrays.
#[derive(Debug)]
struct CompiledEntry {
    vin: f64,
    vout: f64,
    power_state: VrPowerState,
    start: usize,
    len: usize,
    /// Last-hit segment cursor of this curve (cache only).
    hint: AtomicUsize,
}

/// A query-optimised compilation of an [`EfficiencySurface`].
///
/// The per-curve [`Curve1`]s are flattened into struct-of-arrays knot
/// buffers — raw currents for bracketing, precomputed `log10` currents
/// for interpolation, efficiencies — so a lookup touches contiguous
/// memory, reuses a per-curve segment cursor, and allocates nothing.
/// `log10` of an identical input is deterministic, so precomputing it at
/// compile time leaves every interpolation bit-identical to
/// [`EfficiencySurface::efficiency`]; the candidate scan below replicates
/// the surface's selection logic (state filter, nearest-V_IN plane,
/// V_OUT bracketing) in the same iteration order.
///
/// # Examples
///
/// ```
/// use pdn_units::{Amps, Volts};
/// use pdn_vr::{presets, EfficiencySurface, OperatingPoint, VoltageRegulator, VrPowerState};
///
/// let surface = EfficiencySurface::sample(
///     &presets::vin_board_vr(),
///     &[Volts::new(7.2)],
///     &[Volts::new(1.8)],
///     &[VrPowerState::Ps0],
///     (0.1, 10.0),
///     16,
/// )?;
/// let compiled = surface.compile();
/// let op = OperatingPoint::new(Volts::new(7.2), Volts::new(1.8), Amps::new(2.0));
/// assert_eq!(compiled.efficiency(op)?, surface.efficiency(op)?);
/// # Ok::<(), pdn_vr::VrError>(())
/// ```
#[derive(Debug)]
pub struct CompiledSurface {
    name: String,
    placement: Placement,
    iccmax: Amps,
    entries: Vec<CompiledEntry>,
    /// Knot currents (amperes) of all curves, concatenated.
    knot_xs: Vec<f64>,
    /// `log10` of [`Self::knot_xs`], precomputed at compile time.
    knot_lxs: Vec<f64>,
    /// Knot efficiencies of all curves, concatenated.
    knot_ys: Vec<f64>,
}

impl CompiledSurface {
    fn from_surface(surface: &EfficiencySurface) -> Self {
        let mut entries = Vec::with_capacity(surface.entries.len());
        let mut knot_xs = Vec::new();
        let mut knot_lxs = Vec::new();
        let mut knot_ys = Vec::new();
        for e in &surface.entries {
            let start = knot_xs.len();
            for (x, y) in e.curve.points() {
                knot_xs.push(x);
                knot_lxs.push(x.log10());
                knot_ys.push(y);
            }
            entries.push(CompiledEntry {
                vin: e.vin.get(),
                vout: e.vout.get(),
                power_state: e.power_state,
                start,
                len: knot_xs.len() - start,
                hint: AtomicUsize::new(0),
            });
        }
        Self {
            name: surface.name.clone(),
            placement: surface.placement,
            iccmax: surface.iccmax,
            entries,
            knot_xs,
            knot_lxs,
            knot_ys,
        }
    }

    /// Evaluates one compiled curve at current `x` — the allocation-free
    /// twin of [`Curve1::eval_logx`] over the shared knot buffers.
    fn eval_entry_logx(&self, entry: &CompiledEntry, x: f64) -> f64 {
        let xs = &self.knot_xs[entry.start..entry.start + entry.len];
        let lxs = &self.knot_lxs[entry.start..entry.start + entry.len];
        let ys = &self.knot_ys[entry.start..entry.start + entry.len];
        let n = xs.len();
        if x <= xs[0] {
            return ys[0];
        }
        if x >= xs[n - 1] {
            return ys[n - 1];
        }
        let h = entry.hint.load(Ordering::Relaxed);
        let lo = if h + 1 < n && xs[h] <= x && x < xs[h + 1] {
            h
        } else {
            let lo = xs.partition_point(|&xi| xi <= x) - 1;
            entry.hint.store(lo, Ordering::Relaxed);
            lo
        };
        let hi = lo + 1;
        let t = (x.log10() - lxs[lo]) / (lxs[hi] - lxs[lo]);
        ys[lo] + t * (ys[hi] - ys[lo])
    }

    fn unsupported(&self, reason: String) -> VrError {
        VrError::UnsupportedOperatingPoint { regulator: self.name.clone(), reason }
    }
}

impl VoltageRegulator for CompiledSurface {
    fn name(&self) -> &str {
        &self.name
    }

    fn placement(&self) -> Placement {
        self.placement
    }

    fn efficiency(&self, op: OperatingPoint) -> Result<Efficiency, VrError> {
        if op.iout.get() <= 0.0 || op.iout > self.iccmax {
            return Err(
                self.unsupported(format!("current {} outside (0, {}]", op.iout, self.iccmax))
            );
        }
        let in_state = || self.entries.iter().filter(|e| e.power_state == op.power_state);
        // Nearest input voltage plane (`min_by` keeps the first of equals,
        // matching the uncompiled scan).
        let Some(best_vin) = in_state()
            .map(|e| e.vin)
            .min_by(|a, b| (a - op.vin.get()).abs().total_cmp(&(b - op.vin.get()).abs()))
        else {
            return Err(self.unsupported(format!("no curves measured in {}", op.power_state)));
        };
        // Bracket the output voltage within the plane (clamped at the
        // extremes), in entry order.
        let mut below: Option<&CompiledEntry> = None;
        let mut above: Option<&CompiledEntry> = None;
        for e in in_state().filter(|e| (e.vin - best_vin).abs() < 1e-9) {
            if e.vout <= op.vout.get() && below.is_none_or(|b| e.vout > b.vout) {
                below = Some(e);
            }
            if e.vout >= op.vout.get() && above.is_none_or(|a| e.vout < a.vout) {
                above = Some(e);
            }
        }
        let i = op.iout.get();
        let eta = match (below, above) {
            (Some(b), Some(a)) if (a.vout - b.vout).abs() > 1e-12 => {
                let t = (op.vout.get() - b.vout) / (a.vout - b.vout);
                let eb = self.eval_entry_logx(b, i);
                let ea = self.eval_entry_logx(a, i);
                eb + t * (ea - eb)
            }
            (Some(e), _) | (_, Some(e)) => self.eval_entry_logx(e, i),
            (None, None) => return Err(self.unsupported("empty voltage plane".into())),
        };
        Ok(Efficiency::new(eta.clamp(1e-6, 1.0))?)
    }

    fn iccmax(&self) -> Amps {
        self.iccmax
    }

    fn supports_conversion(&self, _vin: Volts, vout: Volts) -> bool {
        self.entries.iter().any(|e| (e.vout - vout.get()).abs() < 0.25)
    }
}

impl VoltageRegulator for EfficiencySurface {
    fn name(&self) -> &str {
        &self.name
    }

    fn placement(&self) -> Placement {
        self.placement
    }

    fn efficiency(&self, op: OperatingPoint) -> Result<Efficiency, VrError> {
        if op.iout.get() <= 0.0 || op.iout > self.iccmax {
            return Err(VrError::UnsupportedOperatingPoint {
                regulator: self.name.clone(),
                reason: format!("current {} outside (0, {}]", op.iout, self.iccmax),
            });
        }
        // Restrict to the requested power state, falling back to any state
        // if it was never measured.
        let in_state: Vec<&SurfaceEntry> =
            self.entries.iter().filter(|e| e.power_state == op.power_state).collect();
        let candidates: &[&SurfaceEntry] = if in_state.is_empty() {
            return Err(VrError::UnsupportedOperatingPoint {
                regulator: self.name.clone(),
                reason: format!("no curves measured in {}", op.power_state),
            });
        } else {
            &in_state
        };
        // Nearest input voltage plane.
        let vin_dist = |e: &SurfaceEntry| (e.vin.get() - op.vin.get()).abs();
        let best_vin = candidates
            .iter()
            .map(|e| e.vin.get())
            .min_by(|a, b| (a - op.vin.get()).abs().total_cmp(&(b - op.vin.get()).abs()))
            .expect("candidates nonempty");
        let plane: Vec<&&SurfaceEntry> =
            candidates.iter().filter(|e| (e.vin.get() - best_vin).abs() < 1e-9).collect();
        let _ = vin_dist;
        // Interpolate across output voltage between the two bracketing
        // curves (clamped at the extremes).
        let mut below: Option<&SurfaceEntry> = None;
        let mut above: Option<&SurfaceEntry> = None;
        for e in &plane {
            if e.vout <= op.vout && below.is_none_or(|b| e.vout > b.vout) {
                below = Some(e);
            }
            if e.vout >= op.vout && above.is_none_or(|a| e.vout < a.vout) {
                above = Some(e);
            }
        }
        let i = op.iout.get();
        let eta = match (below, above) {
            (Some(b), Some(a)) if (a.vout.get() - b.vout.get()).abs() > 1e-12 => {
                let t = (op.vout.get() - b.vout.get()) / (a.vout.get() - b.vout.get());
                let eb = b.curve.eval_logx(i);
                let ea = a.curve.eval_logx(i);
                eb + t * (ea - eb)
            }
            (Some(e), _) | (_, Some(e)) => e.curve.eval_logx(i),
            (None, None) => {
                return Err(VrError::UnsupportedOperatingPoint {
                    regulator: self.name.clone(),
                    reason: "empty voltage plane".into(),
                })
            }
        };
        Ok(Efficiency::new(eta.clamp(1e-6, 1.0))?)
    }

    fn iccmax(&self) -> Amps {
        self.iccmax
    }

    fn supports_conversion(&self, _vin: Volts, vout: Volts) -> bool {
        self.entries.iter().any(|e| (e.vout.get() - vout.get()).abs() < 0.25)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn sampled() -> EfficiencySurface {
        EfficiencySurface::sample(
            &presets::vin_board_vr(),
            &[Volts::new(7.2), Volts::new(12.0)],
            &[Volts::new(0.6), Volts::new(1.0), Volts::new(1.8)],
            &[VrPowerState::Ps0, VrPowerState::Ps1],
            (0.05, 20.0),
            24,
        )
        .unwrap()
    }

    #[test]
    fn sampling_covers_the_lattice() {
        let s = sampled();
        // 2 vins × 3 vouts × 2 power states, minus PS1 curves that get
        // truncated but still have ≥ 2 feasible points.
        assert!(s.entries().len() >= 8, "got {} entries", s.entries().len());
        assert!(s.curve_at(Volts::new(7.2), Volts::new(1.8), VrPowerState::Ps0).is_some());
    }

    #[test]
    fn tabulated_matches_parametric_model() {
        let s = sampled();
        let vr = presets::vin_board_vr();
        for i in [0.1, 0.5, 1.0, 3.0, 8.0] {
            let op = OperatingPoint::new(Volts::new(7.2), Volts::new(1.0), Amps::new(i));
            let direct = vr.efficiency(op).unwrap().get();
            let tab = s.efficiency(op).unwrap().get();
            assert!(
                (direct - tab).abs() < 0.015,
                "mismatch at {i} A: direct {direct}, table {tab}"
            );
        }
    }

    #[test]
    fn interpolates_between_measured_vouts() {
        let s = sampled();
        let op = OperatingPoint::new(Volts::new(7.2), Volts::new(0.8), Amps::new(2.0));
        let eta = s.efficiency(op).unwrap().get();
        let lo = s
            .efficiency(OperatingPoint::new(Volts::new(7.2), Volts::new(0.6), Amps::new(2.0)))
            .unwrap()
            .get();
        let hi = s
            .efficiency(OperatingPoint::new(Volts::new(7.2), Volts::new(1.0), Amps::new(2.0)))
            .unwrap()
            .get();
        assert!(eta >= lo.min(hi) && eta <= lo.max(hi));
    }

    #[test]
    fn rejects_empty_and_bad_construction() {
        assert!(
            EfficiencySurface::new("x", Placement::Motherboard, Amps::new(1.0), vec![]).is_err()
        );
    }

    #[test]
    fn unknown_power_state_is_an_error() {
        let s = sampled();
        let op = OperatingPoint::new(Volts::new(7.2), Volts::new(1.0), Amps::new(0.1))
            .with_power_state(VrPowerState::Ps4);
        assert!(s.efficiency(op).is_err());
        assert!(s.compile().efficiency(op).is_err());
    }

    #[test]
    fn compiled_surface_is_bit_identical_to_uncompiled() {
        let s = sampled();
        let c = s.compile();
        assert_eq!(c.name(), s.name());
        assert_eq!(c.iccmax(), s.iccmax());
        // Sweep voltages between and beyond the measured lattice and
        // currents across the decades, in a mixed walk that exercises the
        // segment cursors.
        for &vin in &[7.2, 9.0, 12.0, 13.5] {
            for &vout in &[0.5, 0.6, 0.8, 1.0, 1.4, 1.8, 2.0] {
                for &i in &[0.06, 0.5, 8.0, 0.1, 3.0, 19.0, 0.07, 1.0] {
                    for ps in [VrPowerState::Ps0, VrPowerState::Ps1] {
                        let op =
                            OperatingPoint::new(Volts::new(vin), Volts::new(vout), Amps::new(i))
                                .with_power_state(ps);
                        match (s.efficiency(op), c.efficiency(op)) {
                            (Ok(a), Ok(b)) => assert_eq!(
                                a.get().to_bits(),
                                b.get().to_bits(),
                                "mismatch at vin={vin} vout={vout} i={i} {ps}"
                            ),
                            (Err(_), Err(_)) => {}
                            (a, b) => {
                                panic!("divergent results at {vin}/{vout}/{i}: {a:?} vs {b:?}")
                            }
                        }
                    }
                }
            }
        }
        assert!(c.supports_conversion(Volts::new(7.2), Volts::new(1.0)));
        assert!(!c.supports_conversion(Volts::new(7.2), Volts::new(3.0)));
    }
}
