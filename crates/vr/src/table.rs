//! Tabulated voltage-regulator efficiency surfaces.
//!
//! PDNspot's inputs are *measured* efficiency curves — η as a function of
//! output current for a lattice of input voltages, output voltages, and VR
//! power states (§4.2 and Fig. 3 of the paper). [`EfficiencySurface`]
//! stores curves in exactly that form and interpolates between them, which
//! is also how a real PMU stores VR efficiency tables in firmware
//! (footnote 11 of the paper).
//!
//! A surface can be *sampled* from any parametric [`VoltageRegulator`]
//! model via [`EfficiencySurface::sample`], standing in for a lab
//! measurement campaign over a real device.

use crate::traits::{OperatingPoint, Placement, VoltageRegulator, VrError, VrPowerState};
use pdn_units::{Amps, Curve1, Efficiency, Volts};
use serde::{Deserialize, Serialize};

/// One measured efficiency curve: η(Iout) at fixed (Vin, Vout, power state).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurfaceEntry {
    /// Input voltage of the sweep.
    pub vin: Volts,
    /// Output voltage of the sweep.
    pub vout: Volts,
    /// VR power state of the sweep.
    pub power_state: VrPowerState,
    /// Efficiency versus output current in amperes (log-current axis).
    pub curve: Curve1,
}

/// A set of efficiency curves forming an η(Vin, Vout, Iout, PS) surface.
///
/// # Examples
///
/// ```
/// use pdn_units::{Amps, Volts};
/// use pdn_vr::{presets, EfficiencySurface, OperatingPoint, VoltageRegulator, VrPowerState};
///
/// // "Measure" the V_IN board VR over the Fig. 3 sweep lattice.
/// let surface = EfficiencySurface::sample(
///     &presets::vin_board_vr(),
///     &[Volts::new(7.2)],
///     &[Volts::new(1.8)],
///     &[VrPowerState::Ps0],
///     (0.1, 10.0),
///     16,
/// )?;
/// let op = OperatingPoint::new(Volts::new(7.2), Volts::new(1.8), Amps::new(2.0));
/// let direct = presets::vin_board_vr().efficiency(op)?;
/// let tabulated = surface.efficiency(op)?;
/// assert!((direct.get() - tabulated.get()).abs() < 0.01);
/// # Ok::<(), pdn_vr::VrError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EfficiencySurface {
    name: String,
    placement: Placement,
    iccmax: Amps,
    entries: Vec<SurfaceEntry>,
}

impl EfficiencySurface {
    /// Builds a surface from explicit entries.
    ///
    /// # Errors
    ///
    /// Returns [`VrError::InvalidParameter`] if `entries` is empty or
    /// `iccmax` is non-positive.
    pub fn new(
        name: impl Into<String>,
        placement: Placement,
        iccmax: Amps,
        entries: Vec<SurfaceEntry>,
    ) -> Result<Self, VrError> {
        if entries.is_empty() {
            return Err(VrError::InvalidParameter {
                parameter: "entries",
                value: 0.0,
                range: "at least one curve",
            });
        }
        if iccmax.get() <= 0.0 {
            return Err(VrError::InvalidParameter {
                parameter: "iccmax",
                value: iccmax.get(),
                range: "> 0",
            });
        }
        Ok(Self { name: name.into(), placement, iccmax, entries })
    }

    /// Samples a parametric regulator over a measurement lattice,
    /// producing the tabulated equivalent of a lab sweep: for each
    /// (Vin, Vout, PS) combination, η is recorded at `points_per_decade`-
    /// spaced currents spanning `current_range` (amperes, log-spaced).
    ///
    /// Lattice points the device cannot operate at (dropout violations,
    /// current beyond a power state's capability) are skipped, exactly as a
    /// lab sweep would skip them.
    ///
    /// # Errors
    ///
    /// Returns [`VrError::InvalidParameter`] if no lattice point is
    /// feasible.
    pub fn sample(
        vr: &dyn VoltageRegulator,
        vins: &[Volts],
        vouts: &[Volts],
        power_states: &[VrPowerState],
        current_range: (f64, f64),
        points_per_curve: usize,
    ) -> Result<Self, VrError> {
        let mut entries = Vec::new();
        let (lo, hi) = current_range;
        for &vin in vins {
            for &vout in vouts {
                if !vr.supports_conversion(vin, vout) {
                    continue;
                }
                for &ps in power_states {
                    let mut points = Vec::new();
                    for k in 0..points_per_curve {
                        let t = k as f64 / (points_per_curve - 1).max(1) as f64;
                        let i = lo * (hi / lo).powf(t);
                        let op = OperatingPoint::new(vin, vout, Amps::new(i)).with_power_state(ps);
                        if let Ok(eta) = vr.efficiency(op) {
                            points.push((i, eta.get()));
                        }
                    }
                    if points.len() >= 2 {
                        entries.push(SurfaceEntry {
                            vin,
                            vout,
                            power_state: ps,
                            curve: Curve1::from_points(points)?,
                        });
                    }
                }
            }
        }
        Self::new(format!("{}_table", vr.name()), vr.placement(), vr.iccmax(), entries)
    }

    /// Iterates over the stored curves (used to print Fig. 3).
    pub fn entries(&self) -> &[SurfaceEntry] {
        &self.entries
    }

    /// Returns the curve measured at exactly (vin, vout, ps), if any.
    pub fn curve_at(&self, vin: Volts, vout: Volts, ps: VrPowerState) -> Option<&Curve1> {
        self.entries
            .iter()
            .find(|e| {
                e.power_state == ps
                    && (e.vin.get() - vin.get()).abs() < 1e-9
                    && (e.vout.get() - vout.get()).abs() < 1e-9
            })
            .map(|e| &e.curve)
    }
}

impl VoltageRegulator for EfficiencySurface {
    fn name(&self) -> &str {
        &self.name
    }

    fn placement(&self) -> Placement {
        self.placement
    }

    fn efficiency(&self, op: OperatingPoint) -> Result<Efficiency, VrError> {
        if op.iout.get() <= 0.0 || op.iout > self.iccmax {
            return Err(VrError::UnsupportedOperatingPoint {
                regulator: self.name.clone(),
                reason: format!("current {} outside (0, {}]", op.iout, self.iccmax),
            });
        }
        // Restrict to the requested power state, falling back to any state
        // if it was never measured.
        let in_state: Vec<&SurfaceEntry> =
            self.entries.iter().filter(|e| e.power_state == op.power_state).collect();
        let candidates: &[&SurfaceEntry] = if in_state.is_empty() {
            return Err(VrError::UnsupportedOperatingPoint {
                regulator: self.name.clone(),
                reason: format!("no curves measured in {}", op.power_state),
            });
        } else {
            &in_state
        };
        // Nearest input voltage plane.
        let vin_dist = |e: &SurfaceEntry| (e.vin.get() - op.vin.get()).abs();
        let best_vin = candidates
            .iter()
            .map(|e| e.vin.get())
            .min_by(|a, b| (a - op.vin.get()).abs().total_cmp(&(b - op.vin.get()).abs()))
            .expect("candidates nonempty");
        let plane: Vec<&&SurfaceEntry> =
            candidates.iter().filter(|e| (e.vin.get() - best_vin).abs() < 1e-9).collect();
        let _ = vin_dist;
        // Interpolate across output voltage between the two bracketing
        // curves (clamped at the extremes).
        let mut below: Option<&SurfaceEntry> = None;
        let mut above: Option<&SurfaceEntry> = None;
        for e in &plane {
            if e.vout <= op.vout && below.is_none_or(|b| e.vout > b.vout) {
                below = Some(e);
            }
            if e.vout >= op.vout && above.is_none_or(|a| e.vout < a.vout) {
                above = Some(e);
            }
        }
        let i = op.iout.get();
        let eta = match (below, above) {
            (Some(b), Some(a)) if (a.vout.get() - b.vout.get()).abs() > 1e-12 => {
                let t = (op.vout.get() - b.vout.get()) / (a.vout.get() - b.vout.get());
                let eb = b.curve.eval_logx(i);
                let ea = a.curve.eval_logx(i);
                eb + t * (ea - eb)
            }
            (Some(e), _) | (_, Some(e)) => e.curve.eval_logx(i),
            (None, None) => {
                return Err(VrError::UnsupportedOperatingPoint {
                    regulator: self.name.clone(),
                    reason: "empty voltage plane".into(),
                })
            }
        };
        Ok(Efficiency::new(eta.clamp(1e-6, 1.0))?)
    }

    fn iccmax(&self) -> Amps {
        self.iccmax
    }

    fn supports_conversion(&self, _vin: Volts, vout: Volts) -> bool {
        self.entries.iter().any(|e| (e.vout.get() - vout.get()).abs() < 0.25)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn sampled() -> EfficiencySurface {
        EfficiencySurface::sample(
            &presets::vin_board_vr(),
            &[Volts::new(7.2), Volts::new(12.0)],
            &[Volts::new(0.6), Volts::new(1.0), Volts::new(1.8)],
            &[VrPowerState::Ps0, VrPowerState::Ps1],
            (0.05, 20.0),
            24,
        )
        .unwrap()
    }

    #[test]
    fn sampling_covers_the_lattice() {
        let s = sampled();
        // 2 vins × 3 vouts × 2 power states, minus PS1 curves that get
        // truncated but still have ≥ 2 feasible points.
        assert!(s.entries().len() >= 8, "got {} entries", s.entries().len());
        assert!(s.curve_at(Volts::new(7.2), Volts::new(1.8), VrPowerState::Ps0).is_some());
    }

    #[test]
    fn tabulated_matches_parametric_model() {
        let s = sampled();
        let vr = presets::vin_board_vr();
        for i in [0.1, 0.5, 1.0, 3.0, 8.0] {
            let op = OperatingPoint::new(Volts::new(7.2), Volts::new(1.0), Amps::new(i));
            let direct = vr.efficiency(op).unwrap().get();
            let tab = s.efficiency(op).unwrap().get();
            assert!(
                (direct - tab).abs() < 0.015,
                "mismatch at {i} A: direct {direct}, table {tab}"
            );
        }
    }

    #[test]
    fn interpolates_between_measured_vouts() {
        let s = sampled();
        let op = OperatingPoint::new(Volts::new(7.2), Volts::new(0.8), Amps::new(2.0));
        let eta = s.efficiency(op).unwrap().get();
        let lo = s
            .efficiency(OperatingPoint::new(Volts::new(7.2), Volts::new(0.6), Amps::new(2.0)))
            .unwrap()
            .get();
        let hi = s
            .efficiency(OperatingPoint::new(Volts::new(7.2), Volts::new(1.0), Amps::new(2.0)))
            .unwrap()
            .get();
        assert!(eta >= lo.min(hi) && eta <= lo.max(hi));
    }

    #[test]
    fn rejects_empty_and_bad_construction() {
        assert!(
            EfficiencySurface::new("x", Placement::Motherboard, Amps::new(1.0), vec![]).is_err()
        );
    }

    #[test]
    fn unknown_power_state_is_an_error() {
        let s = sampled();
        let op = OperatingPoint::new(Volts::new(7.2), Volts::new(1.0), Amps::new(0.1))
            .with_power_state(VrPowerState::Ps4);
        assert!(s.efficiency(op).is_err());
    }
}
