//! Voltage-regulator device models for the FlexWatts/PDNspot framework.
//!
//! This crate models the regulator components that client-processor power
//! delivery networks are built from (§2.2 of the FlexWatts paper):
//!
//! * [`buck::BuckConverter`] — a parametric step-down switching voltage
//!   regulator (SVR) loss model with light-load power states and phase
//!   shedding; used for both motherboard VRs and on-die IVRs.
//! * [`ldo::LdoRegulator`] — a low-dropout linear regulator with regulation,
//!   bypass, and power-gate modes (`η_LDO ≈ (Vout/Vin) · Ie`).
//! * [`powergate::PowerGate`] — an on-die power switch with a small series
//!   impedance.
//! * [`tob::ToleranceBand`] — the VR tolerance-band (TOB) voltage-guardband
//!   model.
//! * [`table::EfficiencySurface`] — tabulated η(Vin, Vout, Iout, power-state)
//!   surfaces, the format in which measured curves (Fig. 3) are consumed by
//!   PDNspot.
//!
//! The parametric models substitute for the paper's lab measurements; they
//! are calibrated so that their efficiency ranges match Table 2 (off-chip
//! 72–93 %, IVR 81–88 %, LDO current efficiency 99.1 %) and their shapes
//! match Fig. 3.
//!
//! # Examples
//!
//! ```
//! use pdn_units::{Amps, Volts};
//! use pdn_vr::{presets, OperatingPoint, VoltageRegulator, VrPowerState};
//!
//! let vin_vr = presets::vin_board_vr();
//! let op = OperatingPoint::new(Volts::new(7.2), Volts::new(1.8), Amps::new(4.0))
//!     .with_power_state(VrPowerState::Ps0);
//! let eta = vin_vr.efficiency(op)?;
//! assert!(eta.get() > 0.85);
//! # Ok::<(), pdn_vr::VrError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod buck;
pub mod ldo;
pub mod powergate;
pub mod presets;
pub mod table;
pub mod tob;
mod traits;

pub use buck::{BuckConverter, BuckParams, PhaseConfig};
pub use ldo::{LdoMode, LdoRegulator};
pub use powergate::PowerGate;
pub use table::{CompiledSurface, EfficiencySurface};
pub use tob::ToleranceBand;
pub use traits::{OperatingPoint, Placement, VoltageRegulator, VrError, VrPowerState};
