//! On-die power-gate model.
//!
//! Power gates disconnect idle domains and, when conducting, insert a small
//! series impedance `R_PG` (1–2 mΩ in Table 2) between the rail and the
//! domain. The voltage drop `V_PG = R_PG · I` must be compensated by raising
//! the supply, which costs guardband power (§3.1 of the paper).

use crate::traits::{OperatingPoint, Placement, VoltageRegulator, VrError};
use pdn_units::{Amps, Efficiency, Ohms, Volts, Watts};
use serde::{Deserialize, Serialize};

/// An on-die power gate with a series impedance.
///
/// # Examples
///
/// ```
/// use pdn_units::{Amps, Ohms};
/// use pdn_vr::PowerGate;
///
/// let pg = PowerGate::new("PG_Core0", Ohms::from_milliohms(1.5), Amps::new(40.0))?;
/// let drop = pg.voltage_drop(Amps::new(10.0));
/// assert!((drop.millivolts() - 15.0).abs() < 1e-9);
/// # Ok::<(), pdn_vr::VrError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerGate {
    name: String,
    resistance: Ohms,
    iccmax: Amps,
}

impl PowerGate {
    /// Creates a power gate.
    ///
    /// # Errors
    ///
    /// Returns [`VrError::InvalidParameter`] for non-positive resistance or
    /// current limit.
    pub fn new(name: impl Into<String>, resistance: Ohms, iccmax: Amps) -> Result<Self, VrError> {
        if resistance.get() <= 0.0 {
            return Err(VrError::InvalidParameter {
                parameter: "resistance",
                value: resistance.get(),
                range: "> 0",
            });
        }
        if iccmax.get() <= 0.0 {
            return Err(VrError::InvalidParameter {
                parameter: "iccmax",
                value: iccmax.get(),
                range: "> 0",
            });
        }
        Ok(Self { name: name.into(), resistance, iccmax })
    }

    /// The series impedance of the conducting gate.
    pub fn resistance(&self) -> Ohms {
        self.resistance
    }

    /// Voltage drop across the conducting gate at `current`.
    pub fn voltage_drop(&self, current: Amps) -> Volts {
        current * self.resistance
    }

    /// Conduction loss dissipated in the gate at `current`.
    pub fn conduction_loss(&self, current: Amps) -> Watts {
        current.squared_times(self.resistance)
    }
}

impl VoltageRegulator for PowerGate {
    fn name(&self) -> &str {
        &self.name
    }

    fn placement(&self) -> Placement {
        Placement::Die
    }

    fn efficiency(&self, op: OperatingPoint) -> Result<Efficiency, VrError> {
        if op.iout.get() <= 0.0 || op.iout > self.iccmax {
            return Err(VrError::UnsupportedOperatingPoint {
                regulator: self.name.clone(),
                reason: format!("current {} outside (0, {}]", op.iout, self.iccmax),
            });
        }
        let drop = self.voltage_drop(op.iout);
        let eta = op.vout.get() / (op.vout + drop).get();
        Ok(Efficiency::new(eta)?)
    }

    fn iccmax(&self) -> Amps {
        self.iccmax
    }

    fn supports_conversion(&self, vin: Volts, vout: Volts) -> bool {
        // A power gate passes the rail voltage through (minus its IR drop).
        vin >= vout
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_and_loss_scale_with_current() {
        let pg = PowerGate::new("PG", Ohms::from_milliohms(2.0), Amps::new(40.0)).unwrap();
        assert!((pg.voltage_drop(Amps::new(5.0)).millivolts() - 10.0).abs() < 1e-9);
        assert!((pg.conduction_loss(Amps::new(5.0)).milliwatts() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn efficiency_near_one_for_small_drop() {
        let pg = PowerGate::new("PG", Ohms::from_milliohms(1.0), Amps::new(40.0)).unwrap();
        let op = OperatingPoint::new(Volts::new(1.0), Volts::new(1.0), Amps::new(10.0));
        let eta = pg.efficiency(op).unwrap();
        assert!(eta.get() > 0.98 && eta.get() < 1.0);
    }

    #[test]
    fn rejects_invalid_construction_and_points() {
        assert!(PowerGate::new("PG", Ohms::new(0.0), Amps::new(1.0)).is_err());
        assert!(PowerGate::new("PG", Ohms::new(1e-3), Amps::new(0.0)).is_err());
        let pg = PowerGate::new("PG", Ohms::new(1e-3), Amps::new(10.0)).unwrap();
        let op = OperatingPoint::new(Volts::new(1.0), Volts::new(1.0), Amps::new(20.0));
        assert!(pg.efficiency(op).is_err());
    }
}
