//! Voltage-regulator tolerance band (TOB) model.
//!
//! The TOB is the maximum voltage variation of a VR across temperature,
//! manufacturing variation, and aging (§2.4 of the paper). The supply is
//! kept *above* the nominal voltage by the TOB to guarantee correctness,
//! and that excess voltage is pure guardband waste. The standard TOB splits
//! into controller tolerance, current-sense variation, and voltage ripple.

use pdn_units::Volts;
use serde::{Deserialize, Serialize};

/// A VR tolerance band decomposed into its three standard components.
///
/// # Examples
///
/// ```
/// use pdn_vr::ToleranceBand;
///
/// let tob = ToleranceBand::from_total_millivolts(20.0);
/// assert!((tob.total().millivolts() - 20.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ToleranceBand {
    /// Controller set-point tolerance.
    pub controller: Volts,
    /// Current-sense variation.
    pub current_sense: Volts,
    /// Output voltage ripple.
    pub ripple: Volts,
}

impl ToleranceBand {
    /// Creates a TOB from its three components.
    pub fn new(controller: Volts, current_sense: Volts, ripple: Volts) -> Self {
        Self { controller, current_sense, ripple }
    }

    /// Creates a TOB from a total budget, split using the typical
    /// 50 % / 30 % / 20 % allocation between controller tolerance,
    /// current-sense variation, and ripple.
    pub fn from_total_millivolts(total_mv: f64) -> Self {
        Self {
            controller: Volts::from_millivolts(total_mv * 0.5),
            current_sense: Volts::from_millivolts(total_mv * 0.3),
            ripple: Volts::from_millivolts(total_mv * 0.2),
        }
    }

    /// The total tolerance band (the voltage guardband the supply must
    /// carry above nominal).
    pub fn total(&self) -> Volts {
        self.controller + self.current_sense + self.ripple
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_sum_to_total() {
        let tob = ToleranceBand::from_total_millivolts(25.0);
        assert!((tob.total().millivolts() - 25.0).abs() < 1e-9);
        assert!((tob.controller.millivolts() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn explicit_components() {
        let tob = ToleranceBand::new(
            Volts::from_millivolts(10.0),
            Volts::from_millivolts(5.0),
            Volts::from_millivolts(3.0),
        );
        assert!((tob.total().millivolts() - 18.0).abs() < 1e-9);
    }
}
