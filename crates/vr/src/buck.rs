//! Parametric step-down switching voltage regulator (buck converter) model.
//!
//! Modern client platforms use buck converters both on the motherboard
//! (MBVR first-stage VRs, the V_IN VR) and integrated on the die/package
//! (IVR, Intel's FIVR [Burton et al., APEC 2014]). The loss model used here
//! decomposes regulator loss into the three classic components:
//!
//! * **fixed loss** — controller, sensing, and gate-drive quiescent power;
//!   scaled down in light-load power states (PS1–PS4) and proportional to
//!   the number of active phases;
//! * **switching loss** — bridge switching, modelled as an effective
//!   voltage drop per ampere that grows with input voltage;
//! * **conduction loss** — `I²·R` in the bridges and inductors, where the
//!   effective resistance falls as `R_phase / n` with `n` active phases.
//!
//! The model performs *phase shedding*: it activates the phase count that
//! minimises total loss at the requested load, mirroring the post-silicon
//! phase-shedding management the paper describes (§4).

use crate::traits::{OperatingPoint, Placement, VoltageRegulator, VrError, VrPowerState};
use pdn_units::{Amps, Efficiency, Ohms, Volts, Watts};
use serde::{Deserialize, Serialize};

/// Multi-phase configuration of a buck converter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseConfig {
    /// Maximum number of phases available.
    pub max_phases: u32,
    /// Conduction resistance of a single phase (bridge + inductor DCR).
    pub per_phase_resistance: Ohms,
    /// Fixed (gate-drive) loss of one active phase at PS0.
    pub per_phase_fixed: Watts,
}

impl PhaseConfig {
    /// A single-phase configuration.
    pub fn single(resistance: Ohms, fixed: Watts) -> Self {
        Self { max_phases: 1, per_phase_resistance: resistance, per_phase_fixed: fixed }
    }
}

/// Construction parameters for a [`BuckConverter`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BuckParams {
    /// Regulator name (e.g. `"V_IN"`).
    pub name: String,
    /// Physical placement.
    pub placement: Placement,
    /// Supported input voltage range.
    pub vin_range: (Volts, Volts),
    /// Supported output voltage range.
    pub vout_range: (Volts, Volts),
    /// Minimum required `Vin − Vout` headroom. Buck converters need a
    /// substantial input/output difference (§2.2: ≥ 0.6 V at Vin = 1.8 V).
    pub min_headroom: Volts,
    /// Maximum electrically supported current.
    pub iccmax: Amps,
    /// Controller + sensing quiescent loss at PS0 (phase-independent part).
    pub base_fixed_loss: Watts,
    /// Effective switching-loss voltage drop per ampere at `vin_ref`.
    pub switch_drop: Volts,
    /// Reference input voltage for the switching-loss scaling.
    pub vin_ref: Volts,
    /// Phase configuration.
    pub phases: PhaseConfig,
}

impl BuckParams {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`VrError::InvalidParameter`] when a field is non-positive
    /// or a range is inverted.
    pub fn validate(&self) -> Result<(), VrError> {
        let checks: [(&'static str, f64, bool); 7] = [
            ("iccmax", self.iccmax.get(), self.iccmax.get() > 0.0),
            ("base_fixed_loss", self.base_fixed_loss.get(), self.base_fixed_loss.get() > 0.0),
            ("switch_drop", self.switch_drop.get(), self.switch_drop.get() > 0.0),
            ("vin_ref", self.vin_ref.get(), self.vin_ref.get() > 0.0),
            ("max_phases", self.phases.max_phases as f64, self.phases.max_phases >= 1),
            (
                "per_phase_resistance",
                self.phases.per_phase_resistance.get(),
                self.phases.per_phase_resistance.get() > 0.0,
            ),
            (
                "per_phase_fixed",
                self.phases.per_phase_fixed.get(),
                self.phases.per_phase_fixed.get() > 0.0,
            ),
        ];
        for (parameter, value, ok) in checks {
            if !ok {
                return Err(VrError::InvalidParameter { parameter, value, range: "> 0" });
            }
        }
        if self.vin_range.0 > self.vin_range.1 {
            return Err(VrError::InvalidParameter {
                parameter: "vin_range",
                value: self.vin_range.0.get(),
                range: "min ≤ max",
            });
        }
        if self.vout_range.0 > self.vout_range.1 {
            return Err(VrError::InvalidParameter {
                parameter: "vout_range",
                value: self.vout_range.0.get(),
                range: "min ≤ max",
            });
        }
        Ok(())
    }
}

/// A parametric multi-phase step-down switching regulator.
///
/// # Examples
///
/// ```
/// use pdn_units::{Amps, Volts};
/// use pdn_vr::{presets, OperatingPoint, VoltageRegulator};
///
/// let ivr = presets::ivr("IVR_Core0");
/// let op = OperatingPoint::new(Volts::new(1.8), Volts::new(0.75), Amps::new(4.0));
/// let eta = ivr.efficiency(op)?;
/// assert!(eta.get() > 0.80 && eta.get() < 0.92);
/// # Ok::<(), pdn_vr::VrError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BuckConverter {
    params: BuckParams,
}

impl BuckConverter {
    /// Creates a buck converter from validated parameters.
    ///
    /// # Errors
    ///
    /// Returns [`VrError::InvalidParameter`] if `params` fails validation.
    pub fn new(params: BuckParams) -> Result<Self, VrError> {
        params.validate()?;
        Ok(Self { params })
    }

    /// Returns the construction parameters.
    pub fn params(&self) -> &BuckParams {
        &self.params
    }

    /// Validates an operating point against the device constraints.
    ///
    /// # Errors
    ///
    /// Returns [`VrError::UnsupportedOperatingPoint`] when voltage ranges,
    /// headroom, or current limits are violated.
    pub fn check_point(&self, op: OperatingPoint) -> Result<(), VrError> {
        let p = &self.params;
        let unsupported = |reason: String| VrError::UnsupportedOperatingPoint {
            regulator: p.name.clone(),
            reason,
        };
        if op.vin < p.vin_range.0 || op.vin > p.vin_range.1 {
            return Err(unsupported(format!(
                "input voltage {} outside [{}, {}]",
                op.vin, p.vin_range.0, p.vin_range.1
            )));
        }
        if op.vout < p.vout_range.0 || op.vout > p.vout_range.1 {
            return Err(unsupported(format!(
                "output voltage {} outside [{}, {}]",
                op.vout, p.vout_range.0, p.vout_range.1
            )));
        }
        if op.vin - op.vout < p.min_headroom {
            return Err(unsupported(format!(
                "headroom {} below required {}",
                op.vin - op.vout,
                p.min_headroom
            )));
        }
        if op.iout.get() < 0.0 {
            return Err(unsupported("negative load current".into()));
        }
        if op.iout > p.iccmax {
            return Err(unsupported(format!("load current {} above Iccmax {}", op.iout, p.iccmax)));
        }
        let capability = p.iccmax * op.power_state.current_capability_factor();
        if op.iout > capability {
            return Err(unsupported(format!(
                "load current {} exceeds {} capability {}",
                op.iout, op.power_state, capability
            )));
        }
        Ok(())
    }

    /// Number of active phases that minimises loss at the operating point.
    pub fn active_phases(&self, op: OperatingPoint) -> u32 {
        let p = &self.params;
        let i = op.iout.get();
        if i <= 0.0 {
            return 1;
        }
        let psf = op.power_state.fixed_loss_factor();
        let r = p.phases.per_phase_resistance.get();
        let fixed = (p.phases.per_phase_fixed.get() * psf).max(1e-9);
        // d/dn [ n·fixed + r·i²/n ] = 0  →  n* = i·sqrt(r / fixed)
        let ideal = i * (r / fixed).sqrt();
        let lo = (ideal.floor() as u32).clamp(1, p.phases.max_phases);
        let hi = (ideal.ceil() as u32).clamp(1, p.phases.max_phases);
        let loss = |n: u32| n as f64 * fixed + r * i * i / n as f64;
        if loss(lo) <= loss(hi) {
            lo
        } else {
            hi
        }
    }

    /// Total regulator loss at the operating point (valid for zero current,
    /// where only the quiescent loss remains).
    ///
    /// # Errors
    ///
    /// Returns [`VrError::UnsupportedOperatingPoint`] when
    /// [`BuckConverter::check_point`] fails.
    pub fn loss_at(&self, op: OperatingPoint) -> Result<Watts, VrError> {
        self.check_point(op)?;
        let p = &self.params;
        let psf = op.power_state.fixed_loss_factor();
        let n = self.active_phases(op);
        let fixed = (p.base_fixed_loss + p.phases.per_phase_fixed * n as f64) * psf;
        // Switching loss grows with input voltage: the bridges swing the
        // full Vin each cycle.
        let vin_scale = 0.5 + 0.5 * (op.vin.get() / p.vin_ref.get());
        let switching = Watts::new(p.switch_drop.get() * vin_scale * op.iout.get());
        let r_eff = Ohms::new(p.phases.per_phase_resistance.get() / n as f64);
        let conduction = op.iout.squared_times(r_eff);
        Ok(fixed + switching + conduction)
    }

    /// Battery-side input power and efficiency from one loss evaluation.
    ///
    /// Bit-identical to calling [`VoltageRegulator::input_power`] and
    /// [`VoltageRegulator::efficiency`] separately — the same operations in
    /// the same order on a single [`BuckConverter::loss_at`] result — but
    /// the loss model (operating-point check, phase optimisation, loss
    /// terms) runs once instead of twice. The hot per-rail path of a sweep
    /// wants both numbers, so the pairing is worth a dedicated entry point.
    ///
    /// # Errors
    ///
    /// Returns [`VrError::UnsupportedOperatingPoint`] when
    /// [`BuckConverter::check_point`] fails.
    pub fn conversion(&self, op: OperatingPoint) -> Result<(Watts, Option<Efficiency>), VrError> {
        let loss = self.loss_at(op)?;
        let pout = op.output_power();
        let pin = pout + loss;
        let efficiency =
            if op.iout.get() <= 0.0 { None } else { Efficiency::new(pout.get() / pin.get()).ok() };
        Ok((pin, efficiency))
    }

    /// Deepest power state able to carry `iout`, used by PDN models to let
    /// a rail follow its load into light-load states.
    pub fn best_power_state(&self, iout: Amps) -> VrPowerState {
        let mut best = VrPowerState::Ps0;
        for ps in VrPowerState::ALL {
            let capability = self.params.iccmax * ps.current_capability_factor();
            if iout <= capability {
                best = ps;
            } else {
                break;
            }
        }
        best
    }
}

impl VoltageRegulator for BuckConverter {
    fn name(&self) -> &str {
        &self.params.name
    }

    fn placement(&self) -> Placement {
        self.params.placement
    }

    fn efficiency(&self, op: OperatingPoint) -> Result<Efficiency, VrError> {
        if op.iout.get() <= 0.0 {
            return Err(VrError::UnsupportedOperatingPoint {
                regulator: self.params.name.clone(),
                reason: "efficiency is undefined at zero load; use input_power".into(),
            });
        }
        let loss = self.loss_at(op)?;
        let pout = op.output_power();
        let eta = pout.get() / (pout + loss).get();
        Ok(Efficiency::new(eta)?)
    }

    fn iccmax(&self) -> Amps {
        self.params.iccmax
    }

    fn supports_conversion(&self, vin: Volts, vout: Volts) -> bool {
        vin >= self.params.vin_range.0
            && vin <= self.params.vin_range.1
            && vout >= self.params.vout_range.0
            && vout <= self.params.vout_range.1
            && vin - vout >= self.params.min_headroom
    }

    fn input_power(&self, op: OperatingPoint) -> Result<Watts, VrError> {
        // Handles zero load: the regulator still burns its quiescent loss.
        Ok(op.output_power() + self.loss_at(op)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn op(vin: f64, vout: f64, iout: f64) -> OperatingPoint {
        OperatingPoint::new(Volts::new(vin), Volts::new(vout), Amps::new(iout))
    }

    #[test]
    fn efficiency_has_a_light_load_cliff() {
        let vr = presets::vin_board_vr();
        let light = vr.efficiency(op(7.2, 1.8, 0.1)).unwrap();
        let heavy = vr.efficiency(op(7.2, 1.8, 10.0)).unwrap();
        assert!(light.get() < heavy.get(), "light {light} should be below heavy {heavy}");
        assert!(light.get() < 0.80);
        assert!(heavy.get() > 0.88);
    }

    #[test]
    fn light_load_power_state_recovers_efficiency() {
        let vr = presets::vin_board_vr();
        let ps0 = vr.efficiency(op(7.2, 1.8, 0.1)).unwrap();
        let ps1 = vr.efficiency(op(7.2, 1.8, 0.1).with_power_state(VrPowerState::Ps1)).unwrap();
        assert!(ps1.get() > ps0.get() + 0.05, "PS1 {ps1} should beat PS0 {ps0} at light load");
    }

    #[test]
    fn higher_output_voltage_is_more_efficient() {
        let vr = presets::vin_board_vr();
        let lo = vr.efficiency(op(7.2, 0.6, 2.0)).unwrap();
        let hi = vr.efficiency(op(7.2, 1.8, 2.0)).unwrap();
        assert!(hi.get() > lo.get());
    }

    #[test]
    fn higher_input_voltage_costs_switching_loss() {
        let vr = presets::vin_board_vr();
        let at_7 = vr.efficiency(op(7.2, 1.8, 5.0)).unwrap();
        let at_12 = vr.efficiency(op(12.0, 1.8, 5.0)).unwrap();
        assert!(at_7.get() > at_12.get());
    }

    #[test]
    fn rejects_out_of_range_points() {
        let vr = presets::vin_board_vr();
        assert!(vr.efficiency(op(30.0, 1.8, 1.0)).is_err()); // vin too high
        assert!(vr.efficiency(op(7.2, 3.0, 1.0)).is_err()); // vout too high
        assert!(vr.efficiency(op(7.2, 1.8, 500.0)).is_err()); // above iccmax
        assert!(vr.efficiency(op(7.2, 1.8, -1.0)).is_err()); // negative current
    }

    #[test]
    fn rejects_current_beyond_power_state_capability() {
        let vr = presets::vin_board_vr();
        let heavy_in_ps3 = op(7.2, 1.8, 10.0).with_power_state(VrPowerState::Ps3);
        assert!(vr.efficiency(heavy_in_ps3).is_err());
    }

    #[test]
    fn ivr_requires_headroom() {
        let ivr = presets::ivr("IVR_Core0");
        // 1.8 − 1.3 = 0.5 V < 0.6 V headroom.
        assert!(!ivr.supports_conversion(Volts::new(1.8), Volts::new(1.3)));
        assert!(ivr.supports_conversion(Volts::new(1.8), Volts::new(1.1)));
    }

    #[test]
    fn ivr_efficiency_in_table2_range_at_typical_loads() {
        let ivr = presets::ivr("IVR_Core0");
        for (vout, iout) in [(0.7, 2.0), (0.8, 6.0), (0.9, 12.0), (1.0, 20.0), (1.05, 28.0)] {
            let eta = ivr.efficiency(op(1.8, vout, iout)).unwrap();
            assert!(
                (0.80..=0.89).contains(&eta.get()),
                "IVR η at {vout} V/{iout} A = {eta} outside Table 2 range"
            );
        }
    }

    #[test]
    fn zero_load_input_power_is_quiescent_loss() {
        let vr = presets::vin_board_vr();
        let quiescent = vr.input_power(op(7.2, 1.8, 0.0)).unwrap();
        assert!(quiescent.get() > 0.0);
        assert!(quiescent.get() < 0.5);
        assert!(vr.efficiency(op(7.2, 1.8, 0.0)).is_err());
    }

    #[test]
    fn phase_shedding_monotone_in_current() {
        let vr = presets::vin_board_vr();
        let mut prev = 0;
        for i in [0.1, 0.5, 2.0, 5.0, 10.0, 20.0, 30.0] {
            let n = vr.active_phases(op(7.2, 1.8, i));
            assert!(n >= prev, "phases must not decrease as current rises");
            prev = n;
        }
        assert!(prev > 1, "heavy load should engage multiple phases");
    }

    #[test]
    fn best_power_state_follows_load() {
        let vr = presets::vin_board_vr();
        assert_eq!(vr.best_power_state(Amps::new(30.0)), VrPowerState::Ps0);
        let deep = vr.best_power_state(Amps::new(0.05));
        assert!(deep >= VrPowerState::Ps2);
    }

    #[test]
    fn invalid_params_are_rejected() {
        let mut p = presets::vin_board_vr().params().clone();
        p.iccmax = Amps::new(0.0);
        assert!(BuckConverter::new(p).is_err());
        let mut p = presets::vin_board_vr().params().clone();
        p.phases.max_phases = 0;
        assert!(BuckConverter::new(p).is_err());
        let mut p = presets::vin_board_vr().params().clone();
        p.vin_range = (Volts::new(12.0), Volts::new(7.0));
        assert!(BuckConverter::new(p).is_err());
    }

    #[test]
    fn loss_decomposition_is_positive_and_additive() {
        let vr = presets::vin_board_vr();
        let point = op(7.2, 1.8, 5.0);
        let loss = vr.loss(point).unwrap();
        let pin = vr.input_power(point).unwrap();
        let pout = point.output_power();
        assert!((pin.get() - pout.get() - loss.get()).abs() < 1e-12);
        assert!(loss.get() > 0.0);
    }
}
