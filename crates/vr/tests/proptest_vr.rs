//! Property-based tests for the regulator device models.

use pdn_units::{Amps, Volts, Watts};
use pdn_vr::{presets, LdoRegulator, OperatingPoint, VoltageRegulator, VrPowerState};
use proptest::prelude::*;

fn op(vin: f64, vout: f64, iout: f64) -> OperatingPoint {
    OperatingPoint::new(Volts::new(vin), Volts::new(vout), Amps::new(iout))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any feasible buck operating point yields η ∈ (0, 1) and an input
    /// power strictly above the output power.
    #[test]
    fn buck_never_creates_power(
        vout in 0.45f64..1.9,
        iout in 0.05f64..30.0,
    ) {
        let vr = presets::vin_board_vr();
        let point = op(7.2, vout, iout);
        let eta = vr.efficiency(point).unwrap();
        prop_assert!(eta.get() > 0.0 && eta.get() < 1.0);
        let pin = vr.input_power(point).unwrap();
        prop_assert!(pin > point.output_power());
        // Efficiency, input power, and loss are mutually consistent.
        let loss = vr.loss(point).unwrap();
        prop_assert!((pin.get() - point.output_power().get() - loss.get()).abs() < 1e-9);
        let from_eta = point.output_power().get() / eta.get();
        prop_assert!((from_eta - pin.get()).abs() < 1e-9);
    }

    /// Phase shedding picks a loss-minimal phase count: no other count
    /// does better.
    #[test]
    fn phase_shedding_is_optimal(
        vout in 0.5f64..1.8,
        iout in 0.1f64..30.0,
    ) {
        let vr = presets::compute_board_vr("V_X");
        let point = op(7.2, vout.min(1.3), iout);
        if vr.check_point(point).is_err() {
            return Ok(()); // outside the device envelope
        }
        let chosen = vr.active_phases(point);
        let loss_with = |n: u32| -> f64 {
            // Reconstruct the loss decomposition for an arbitrary count.
            let p = vr.params();
            let fixed = p.base_fixed_loss.get()
                + n as f64 * p.phases.per_phase_fixed.get();
            let vin_scale = 0.5 + 0.5 * (7.2 / p.vin_ref.get());
            let switching = p.switch_drop.get() * vin_scale * iout;
            let conduction = p.phases.per_phase_resistance.get() / n as f64 * iout * iout;
            fixed + switching + conduction
        };
        let chosen_loss = loss_with(chosen);
        for n in 1..=vr.params().phases.max_phases {
            prop_assert!(
                chosen_loss <= loss_with(n) + 1e-9,
                "phase count {chosen} lost to {n} at {iout:.1} A"
            );
        }
    }

    /// The LDO efficiency equals the paper's Eq. 10 exactly in regulation
    /// mode, for any valid voltage pair.
    #[test]
    fn ldo_matches_equation_10(
        vin in 0.5f64..1.2,
        ratio in 0.3f64..0.9,
        iout in 0.1f64..20.0,
    ) {
        let ldo = LdoRegulator::paper_default("LDO");
        let vout = vin * ratio;
        let point = op(vin, vout, iout);
        let eta = ldo.efficiency(point).unwrap();
        let expected = (vout / vin) * ldo.current_efficiency().get();
        prop_assert!((eta.get() - expected).abs() < 1e-12);
    }

    /// Deeper VR power states never *increase* loss at currents they can
    /// carry.
    #[test]
    fn deeper_power_states_never_hurt(iout in 0.01f64..0.25) {
        let vr = presets::vin_board_vr();
        let mut prev_loss = f64::INFINITY;
        for ps in VrPowerState::ALL {
            let point = op(7.2, 1.8, iout).with_power_state(ps);
            let Ok(loss) = vr.loss(point) else { break };
            prop_assert!(
                loss.get() <= prev_loss + 1e-12,
                "{ps} increased loss at {iout:.3} A"
            );
            prev_loss = loss.get();
        }
    }

    /// `best_power_state` always returns a state that can actually carry
    /// the current.
    #[test]
    fn best_power_state_is_feasible(iout in 0.0f64..59.0) {
        let vr = presets::vin_board_vr();
        let ps = vr.best_power_state(Amps::new(iout));
        let capability = vr.iccmax().get() * ps.current_capability_factor();
        prop_assert!(iout <= capability + 1e-12);
    }

    /// Power gates: drop and loss scale exactly linearly/quadratically.
    #[test]
    fn power_gate_scaling_laws(i in 0.1f64..35.0) {
        let pg = presets::power_gate("PG");
        let drop = pg.voltage_drop(Amps::new(i));
        let loss = pg.conduction_loss(Amps::new(i));
        prop_assert!((drop.get() - i * pg.resistance().get()).abs() < 1e-12);
        prop_assert!((loss.get() - i * i * pg.resistance().get()).abs() < 1e-12);
        // Doubling current doubles drop and quadruples loss.
        let drop2 = pg.voltage_drop(Amps::new(2.0 * i));
        prop_assert!((drop2.get() - 2.0 * drop.get()).abs() < 1e-12);
    }

    /// Quiescent (zero-load) input power is a continuous lower bound: any
    /// loaded point draws more.
    #[test]
    fn quiescent_power_is_a_floor(iout in 0.01f64..30.0) {
        let vr = presets::vin_board_vr();
        let quiescent = vr.input_power(op(7.2, 1.8, 0.0)).unwrap();
        let loaded = vr.input_power(op(7.2, 1.8, iout)).unwrap();
        prop_assert!(loaded > quiescent);
        let _ = Watts::ZERO;
    }
}
