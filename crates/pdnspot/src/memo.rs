//! A sharded, bounded memo cache over `(PDN, scenario) → evaluation`.
//!
//! Design-space exploration answers many *overlapping* queries: every
//! figure kernel, the crossover bisection, and predictor training evaluate
//! the same `(PDN, lattice point)` pairs over and over. [`MemoCache`]
//! eliminates that redundancy without changing a single reported value:
//!
//! * **Keys** pair a PDN identity token ([`crate::topology::Pdn::memo_token`],
//!   a hash of the topology kind and its full parameter set) with a
//!   [`crate::scenario::Scenario::fingerprint`] — exact `f64` bit patterns,
//!   no rounding — so two lookups collide only when every input a power
//!   model reads is numerically identical, and the cached value is the very
//!   value a recomputation would produce, bit for bit.
//! * **Sharding**: keys are striped over independently locked shards so
//!   parallel batch workers rarely contend on the same mutex.
//! * **Bounded capacity**: each shard evicts in FIFO order past its
//!   capacity share, keeping memory flat on unbounded query streams.
//! * Only `Ok` evaluations are cached; errors always propagate fresh.
//!
//! Wrap any [`Pdn`] with [`MemoCache::wrap`] to thread caching through
//! code that only knows the trait.

use crate::error::PdnError;
use crate::etee::{PdnEvaluation, RowStage, StagedPoint};
use crate::params::ModelParams;
use crate::scenario::Scenario;
use crate::topology::{OffchipRail, Pdn, PdnKind};
use pdn_proc::SocSpec;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Streaming 64-bit FNV-1a hasher used for memo keys and fingerprints.
///
/// Deterministic across runs and platforms (unlike `std`'s randomly seeded
/// `DefaultHasher`), which keeps memo behaviour — and therefore hit-rate
/// digests — reproducible.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Starts a new hash at the FNV offset basis.
    pub fn new() -> Self {
        Self(Self::OFFSET)
    }

    /// Feeds one 64-bit word (little-endian byte order) into the hash.
    pub fn write(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// The `(PDN identity, scenario fingerprint)` cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct MemoKey {
    pdn: u64,
    scenario: u64,
}

impl MemoKey {
    fn mixed(self) -> u64 {
        let mut h = Fnv1a::new();
        h.write(self.pdn);
        h.write(self.scenario);
        h.finish()
    }
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<MemoKey, PdnEvaluation>,
    order: VecDeque<MemoKey>,
}

/// Counter snapshot of a [`MemoCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a real evaluation.
    pub misses: u64,
    /// Entries dropped by the bounded-capacity FIFO policy.
    pub evictions: u64,
    /// Evaluations that skipped the cache because the PDN declares no
    /// identity token.
    pub bypasses: u64,
}

impl MemoStats {
    /// Total cacheable lookups (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of cacheable lookups answered from the cache (0 when no
    /// lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// Default number of independently locked shards
/// ([`MemoCache::new`] / [`MemoCache::with_capacity`]).
pub const DEFAULT_SHARDS: usize = 16;

/// Default total entry capacity of [`MemoCache::new`].
pub const DEFAULT_CAPACITY: usize = 8192;

/// One exported cache entry — the raw key pair plus the cached value.
///
/// Produced by [`MemoCache::export`] and consumed by
/// [`MemoCache::import`]; the key fields are the exact
/// [`crate::topology::Pdn::memo_token`] and
/// [`crate::scenario::Scenario::fingerprint`] values, so an entry
/// re-imported into any cache (regardless of shard count) lands via the
/// same deterministic FNV-1a striping and is indistinguishable from a
/// fresh insertion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoEntry {
    /// The PDN identity token half of the key.
    pub pdn_token: u64,
    /// The scenario fingerprint half of the key.
    pub scenario_fingerprint: u64,
    /// The cached evaluation.
    pub value: PdnEvaluation,
}

/// A lock-striped, bounded memo cache of PDN evaluations (see the module
/// docs for the key and determinism contract).
///
/// # Examples
///
/// ```
/// use pdn_units::{ApplicationRatio, Watts};
/// use pdn_workload::WorkloadType;
/// use pdnspot::{memo::MemoCache, IvrPdn, ModelParams, Pdn, Scenario};
///
/// let pdn = IvrPdn::new(ModelParams::paper_defaults());
/// let soc = pdn_proc::client_soc(Watts::new(18.0));
/// let s = Scenario::active_budget(
///     &soc,
///     WorkloadType::MultiThread,
///     ApplicationRatio::new(0.6)?,
///     pdn.params(),
/// )?;
/// let cache = MemoCache::new();
/// let first = cache.evaluate(&pdn, &s)?;
/// let second = cache.evaluate(&pdn, &s)?;
/// assert_eq!(first, second);
/// assert_eq!(cache.stats().hits, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct MemoCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    bypasses: AtomicU64,
}

impl MemoCache {
    /// A cache bounded at [`DEFAULT_CAPACITY`] entries.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A cache bounded at `capacity` total entries over
    /// [`DEFAULT_SHARDS`] shards (capacity rounded up to a multiple of
    /// the shard count; at least one entry per shard).
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_shards(DEFAULT_SHARDS, capacity)
    }

    /// A cache with an explicit shard count and total entry capacity —
    /// the constructor `EngineConfig` uses. `shards` is clamped to at
    /// least 1; the capacity is rounded up to a multiple of the shard
    /// count with at least one entry per shard.
    pub fn with_shards(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            capacity_per_shard: capacity.div_ceil(shards).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
        }
    }

    /// Number of independently locked shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total entry capacity (the per-shard budget times the shard count).
    pub fn capacity(&self) -> usize {
        self.capacity_per_shard * self.shards.len()
    }

    fn shard_of(&self, key: MemoKey) -> &Mutex<Shard> {
        &self.shards[(key.mixed() % self.shards.len() as u64) as usize]
    }

    /// Evaluates `pdn` on `scenario` through the cache.
    ///
    /// # Errors
    ///
    /// Propagates the underlying evaluation error (never cached).
    pub fn evaluate(&self, pdn: &dyn Pdn, scenario: &Scenario) -> Result<PdnEvaluation, PdnError> {
        self.evaluate_impl(pdn, scenario, None)
    }

    /// [`MemoCache::evaluate`] with a per-point [`StagedPoint`] forwarded
    /// to the PDN on a miss.
    ///
    /// # Errors
    ///
    /// Propagates the underlying evaluation error (never cached).
    pub fn evaluate_staged(
        &self,
        pdn: &dyn Pdn,
        scenario: &Scenario,
        staged: &StagedPoint,
    ) -> Result<PdnEvaluation, PdnError> {
        self.evaluate_impl(pdn, scenario, Some(staged))
    }

    fn evaluate_impl(
        &self,
        pdn: &dyn Pdn,
        scenario: &Scenario,
        staged: Option<&StagedPoint>,
    ) -> Result<PdnEvaluation, PdnError> {
        let run = |staged: Option<&StagedPoint>| match staged {
            Some(s) => pdn.evaluate_staged(scenario, s),
            None => pdn.evaluate(scenario),
        };
        let Some(token) = pdn.memo_token() else {
            self.bypasses.fetch_add(1, Ordering::Relaxed);
            return run(staged);
        };
        let key = MemoKey { pdn: token, scenario: scenario.fingerprint() };
        if let Some(hit) = self
            .shard_of(key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .map
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = run(staged)?;
        self.insert(key, &value);
        Ok(value)
    }

    /// Inserts one evaluation under `key`, keeping any racing insertion.
    ///
    /// A racing worker may have inserted the same key; both computed
    /// identical bits, so keeping the first insertion is safe.
    fn insert(&self, key: MemoKey, value: &PdnEvaluation) {
        let mut shard =
            self.shard_of(key).lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if !shard.map.contains_key(&key) {
            if shard.order.len() >= self.capacity_per_shard {
                if let Some(oldest) = shard.order.pop_front() {
                    shard.map.remove(&oldest);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            shard.order.push_back(key);
            shard.map.insert(key, value.clone());
        }
    }

    /// Evaluates a whole lattice row through the cache with one bulk
    /// lookup.
    ///
    /// Rows whose every point is cached return without touching the
    /// kernel at all — the warm-sweep fast path. A row with any miss runs
    /// [`Pdn::evaluate_row`] over the *full* row (the row kernel's staged
    /// front-half amortises across the row, so re-running cached points
    /// costs less than splitting the row) and inserts the previously
    /// missing `Ok` results. Hit/miss/bypass counters advance per point,
    /// exactly as the same sweep would count through
    /// [`MemoCache::evaluate`].
    pub fn evaluate_row(
        &self,
        pdn: &dyn Pdn,
        scenarios: &[Scenario],
        row: &RowStage,
    ) -> Vec<Result<PdnEvaluation, PdnError>> {
        let Some(token) = pdn.memo_token() else {
            self.bypasses.fetch_add(scenarios.len() as u64, Ordering::Relaxed);
            return pdn.evaluate_row(scenarios, row);
        };
        let keys: Vec<MemoKey> =
            scenarios.iter().map(|s| MemoKey { pdn: token, scenario: s.fingerprint() }).collect();
        let cached: Vec<Option<PdnEvaluation>> = keys
            .iter()
            .map(|&key| {
                self.shard_of(key)
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .map
                    .get(&key)
                    .cloned()
            })
            .collect();
        let n_hits = cached.iter().filter(|c| c.is_some()).count();
        self.hits.fetch_add(n_hits as u64, Ordering::Relaxed);
        self.misses.fetch_add((scenarios.len() - n_hits) as u64, Ordering::Relaxed);
        if n_hits == scenarios.len() {
            return cached.into_iter().map(|c| Ok(c.expect("all points hit"))).collect();
        }
        let results = pdn.evaluate_row(scenarios, row);
        for (i, result) in results.iter().enumerate() {
            if cached[i].is_none() {
                if let Ok(value) = result {
                    self.insert(keys[i], value);
                }
            }
        }
        results
    }

    /// Current number of cached evaluations across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(std::sync::PoisonError::into_inner).map.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exports every cached entry in deterministic order: shard index
    /// ascending, then insertion (FIFO) order within each shard. The
    /// snapshot path in `pdn-serve` writes this list to disk so a
    /// restarted daemon can [`MemoCache::import`] it and serve hot.
    pub fn export(&self) -> Vec<MemoEntry> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            for key in &shard.order {
                if let Some(value) = shard.map.get(key) {
                    out.push(MemoEntry {
                        pdn_token: key.pdn,
                        scenario_fingerprint: key.scenario,
                        value: value.clone(),
                    });
                }
            }
        }
        out
    }

    /// Re-inserts previously [`export`](MemoCache::export)ed entries.
    ///
    /// Entries are striped over this cache's shards by the same
    /// deterministic FNV-1a mix used at evaluation time, so the shard
    /// count of the exporting cache does not need to match. Imports do
    /// not count as hits or misses; entries past the capacity budget
    /// evict in FIFO order exactly as live insertions do. Returns the
    /// number of entries actually added (duplicates are kept-first, like
    /// racing live insertions).
    pub fn import<I: IntoIterator<Item = MemoEntry>>(&self, entries: I) -> usize {
        let mut added = 0;
        for entry in entries {
            let key = MemoKey { pdn: entry.pdn_token, scenario: entry.scenario_fingerprint };
            let mut shard =
                self.shard_of(key).lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if shard.map.contains_key(&key) {
                continue;
            }
            if shard.order.len() >= self.capacity_per_shard {
                if let Some(oldest) = shard.order.pop_front() {
                    shard.map.remove(&oldest);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            shard.order.push_back(key);
            shard.map.insert(key, entry.value);
            added += 1;
        }
        added
    }

    /// Snapshot of the hit/miss/eviction/bypass counters.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
        }
    }

    /// Wraps a PDN so every [`Pdn::evaluate`] call routes through this
    /// cache — the plumbing used by figure kernels that only know the
    /// trait.
    pub fn wrap<'a>(&'a self, inner: &'a dyn Pdn) -> MemoPdn<'a> {
        MemoPdn { cache: self, inner }
    }
}

impl Default for MemoCache {
    fn default() -> Self {
        Self::new()
    }
}

/// A [`Pdn`] adaptor that routes evaluations through a [`MemoCache`],
/// delegating everything else (kind, params, rail sizing, identity token)
/// to the wrapped topology.
#[derive(Debug, Clone, Copy)]
pub struct MemoPdn<'a> {
    cache: &'a MemoCache,
    inner: &'a dyn Pdn,
}

impl Pdn for MemoPdn<'_> {
    fn kind(&self) -> PdnKind {
        self.inner.kind()
    }

    fn params(&self) -> &ModelParams {
        self.inner.params()
    }

    fn evaluate(&self, scenario: &Scenario) -> Result<PdnEvaluation, PdnError> {
        self.cache.evaluate(self.inner, scenario)
    }

    fn evaluate_staged(
        &self,
        scenario: &Scenario,
        staged: &StagedPoint,
    ) -> Result<PdnEvaluation, PdnError> {
        self.cache.evaluate_staged(self.inner, scenario, staged)
    }

    fn memo_token(&self) -> Option<u64> {
        self.inner.memo_token()
    }

    fn offchip_rails(&self, soc: &SocSpec) -> Result<Vec<OffchipRail>, PdnError> {
        // Preserve any override (e.g. FlexWatts sizes rails for the union
        // of its modes) instead of re-running the trait default.
        self.inner.offchip_rails(soc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{IvrPdn, MbvrPdn};
    use pdn_proc::{client_soc, PackageCState};
    use pdn_units::{ApplicationRatio, Watts};
    use pdn_workload::WorkloadType;

    fn scenario(tdp: f64, ar: f64) -> Scenario {
        let soc = client_soc(Watts::new(tdp));
        Scenario::active_fixed_tdp_frequency(
            &soc,
            WorkloadType::MultiThread,
            ApplicationRatio::new(ar).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn fnv1a_is_deterministic_and_order_sensitive() {
        let mut a = Fnv1a::new();
        a.write(1);
        a.write(2);
        let mut b = Fnv1a::new();
        b.write(2);
        b.write(1);
        assert_ne!(a.finish(), b.finish());
        let mut c = Fnv1a::new();
        c.write(1);
        c.write(2);
        assert_eq!(a.finish(), c.finish());
        // The FNV-1a hash of the empty input is the offset basis.
        assert_eq!(Fnv1a::new().finish(), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn hit_returns_the_identical_evaluation() {
        let pdn = IvrPdn::new(ModelParams::paper_defaults());
        let s = scenario(18.0, 0.6);
        let cache = MemoCache::new();
        let miss = cache.evaluate(&pdn, &s).unwrap();
        let hit = cache.evaluate(&pdn, &s).unwrap();
        assert_eq!(miss, hit);
        assert_eq!(miss.input_power.get().to_bits(), hit.input_power.get().to_bits());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_pdns_and_scenarios_do_not_collide() {
        let params = ModelParams::paper_defaults();
        let ivr = IvrPdn::new(params.clone());
        let mbvr = MbvrPdn::new(params);
        let s18 = scenario(18.0, 0.6);
        let s50 = scenario(50.0, 0.6);
        let cache = MemoCache::new();
        let a = cache.evaluate(&ivr, &s18).unwrap();
        let b = cache.evaluate(&mbvr, &s18).unwrap();
        let c = cache.evaluate(&ivr, &s50).unwrap();
        assert_ne!(a.input_power, b.input_power, "different PDNs must not share entries");
        assert_ne!(a.input_power, c.input_power, "different scenarios must not share entries");
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn capacity_is_bounded_with_fifo_eviction() {
        let pdn = IvrPdn::new(ModelParams::paper_defaults());
        let cache = MemoCache::with_capacity(16); // one entry per shard
        let soc = client_soc(Watts::new(18.0));
        for i in 0..40 {
            let ar = 0.40 + 0.01 * i as f64;
            let s = Scenario::active_fixed_tdp_frequency(
                &soc,
                WorkloadType::MultiThread,
                ApplicationRatio::new(ar).unwrap(),
            )
            .unwrap();
            cache.evaluate(&pdn, &s).unwrap();
        }
        assert!(cache.len() <= 16, "cache must stay bounded: {}", cache.len());
        let stats = cache.stats();
        assert_eq!(stats.misses, 40);
        assert_eq!(stats.evictions as usize, 40 - cache.len());
    }

    #[test]
    fn evicted_entries_recompute_identically() {
        let pdn = IvrPdn::new(ModelParams::paper_defaults());
        let unbounded = MemoCache::new();
        let tiny = MemoCache::with_capacity(1);
        let soc = client_soc(Watts::new(18.0));
        let scenarios: Vec<Scenario> = (0..8)
            .map(|i| {
                Scenario::active_fixed_tdp_frequency(
                    &soc,
                    WorkloadType::MultiThread,
                    ApplicationRatio::new(0.40 + 0.05 * i as f64).unwrap(),
                )
                .unwrap()
            })
            .collect();
        for _ in 0..2 {
            for s in &scenarios {
                let a = unbounded.evaluate(&pdn, s).unwrap();
                let b = tiny.evaluate(&pdn, s).unwrap();
                assert_eq!(a.input_power.get().to_bits(), b.input_power.get().to_bits());
                assert_eq!(a.etee.get().to_bits(), b.etee.get().to_bits());
            }
        }
        assert!(tiny.stats().evictions > 0, "the tiny cache must have evicted");
    }

    #[test]
    fn idle_and_active_fingerprints_differ() {
        let soc = client_soc(Watts::new(18.0));
        let active = scenario(18.0, 0.6);
        let idle = Scenario::idle(&soc, PackageCState::C8);
        assert_ne!(active.fingerprint(), idle.fingerprint());
        let c6 = Scenario::idle(&soc, PackageCState::C6);
        assert_ne!(idle.fingerprint(), c6.fingerprint());
    }

    #[test]
    fn export_import_round_trips_and_reshards() {
        let pdn = IvrPdn::new(ModelParams::paper_defaults());
        let warm = MemoCache::new();
        let scenarios: Vec<Scenario> =
            (0..6).map(|i| scenario(18.0, 0.40 + 0.05 * i as f64)).collect();
        for s in &scenarios {
            warm.evaluate(&pdn, s).unwrap();
        }
        let entries = warm.export();
        assert_eq!(entries.len(), warm.len());

        // Restore into a cache with a different shard count: every entry
        // must land, and lookups must hit without re-evaluating.
        let cold = MemoCache::with_shards(4, 64);
        assert_eq!(cold.import(entries.clone()), entries.len());
        assert_eq!(cold.len(), entries.len());
        for s in &scenarios {
            let a = warm.evaluate(&pdn, s).unwrap();
            let b = cold.evaluate(&pdn, s).unwrap();
            assert_eq!(a.input_power.get().to_bits(), b.input_power.get().to_bits());
        }
        let stats = cold.stats();
        assert_eq!(stats.hits, scenarios.len() as u64, "restored entries must hit");
        assert_eq!(stats.misses, 0);

        // Duplicate import is kept-first (no double insertion).
        assert_eq!(cold.import(entries), 0);

        // Export order is deterministic for an identical rebuild.
        let rebuilt = MemoCache::new();
        for s in &scenarios {
            rebuilt.evaluate(&pdn, s).unwrap();
        }
        assert_eq!(warm.export(), rebuilt.export());
    }

    #[test]
    fn row_evaluation_matches_per_point_and_serves_warm_rows() {
        let pdn = IvrPdn::new(ModelParams::paper_defaults());
        let row: Vec<Scenario> = (0..5).map(|i| scenario(18.0, 0.40 + 0.08 * i as f64)).collect();

        let per_point = MemoCache::new();
        let expected: Vec<PdnEvaluation> =
            row.iter().map(|s| per_point.evaluate(&pdn, s).unwrap()).collect();

        let bulk = MemoCache::new();
        let stage = RowStage::new();
        let cold: Vec<PdnEvaluation> =
            bulk.evaluate_row(&pdn, &row, &stage).into_iter().map(|r| r.unwrap()).collect();
        for (a, b) in expected.iter().zip(&cold) {
            assert_eq!(a.input_power.get().to_bits(), b.input_power.get().to_bits());
            assert_eq!(a.etee.get().to_bits(), b.etee.get().to_bits());
        }
        let stats = bulk.stats();
        assert_eq!((stats.hits, stats.misses), (0, 5));

        // The warm pass answers the whole row from the cache.
        let warm_stage = RowStage::new();
        let warm: Vec<PdnEvaluation> =
            bulk.evaluate_row(&pdn, &row, &warm_stage).into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(cold, warm);
        let stats = bulk.stats();
        assert_eq!((stats.hits, stats.misses), (5, 5));
    }

    #[test]
    fn wrapped_pdn_delegates_identity_and_caches() {
        let pdn = IvrPdn::new(ModelParams::paper_defaults());
        let cache = MemoCache::new();
        let wrapped = cache.wrap(&pdn);
        assert_eq!(wrapped.kind(), pdn.kind());
        assert_eq!(wrapped.memo_token(), pdn.memo_token());
        assert_eq!(wrapped.params(), pdn.params());
        let s = scenario(18.0, 0.6);
        let direct = pdn.evaluate(&s).unwrap();
        let through = wrapped.evaluate(&s).unwrap();
        let again = wrapped.evaluate(&s).unwrap();
        assert_eq!(direct, through);
        assert_eq!(through, again);
        assert_eq!(cache.stats().hits, 1);
        let soc = client_soc(Watts::new(18.0));
        assert_eq!(wrapped.offchip_rails(&soc).unwrap(), pdn.offchip_rails(&soc).unwrap());
    }
}
