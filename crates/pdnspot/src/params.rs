//! PDNspot model parameters (Table 2 of the paper).
//!
//! Every quantity that Table 2 lists as a model input is collected here
//! with the paper's values as defaults: per-PDN load-line impedances,
//! VR tolerance bands, power-gate impedance, the leakage exponent, and the
//! platform supply voltage. Topologies copy the parameter set at
//! construction, so experiments can sweep individual parameters without
//! global state.

use pdn_proc::power::LEAKAGE_VOLTAGE_EXPONENT;
use pdn_units::{Ohms, Volts};
use pdn_vr::{ToleranceBand, VrPowerState};
use serde::{Deserialize, Serialize};

/// Load-line impedances of one PDN topology (Table 2, "Load-line
/// Impedance" row; milliohm values).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadLines {
    /// Shared chip-input rail (V_IN), where present.
    pub vin: Ohms,
    /// Dedicated compute rails (MBVR V_Cores / V_GFX).
    pub compute: Ohms,
    /// Dedicated SA rail.
    pub sa: Ohms,
    /// Dedicated IO rail.
    pub io: Ohms,
}

/// The complete PDNspot parameter set.
///
/// # Examples
///
/// ```
/// use pdnspot::params::ModelParams;
///
/// let p = ModelParams::paper_defaults();
/// assert!((p.mbvr_loadlines.compute.milliohms() - 2.5).abs() < 1e-9);
/// assert!((p.leakage_exponent - 2.8).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    /// Platform supply (battery/PSU) voltage presented to board VRs
    /// (7.2–20 V; default 7.2 V, the Fig. 3 sweep value).
    pub supply_voltage: Volts,
    /// IVR PDN load lines (Table 2: V_IN = 1 mΩ).
    pub ivr_loadlines: LoadLines,
    /// MBVR PDN load lines (Table 2: cores/GFX/SA/IO = 2.5/2.5/7/4 mΩ).
    pub mbvr_loadlines: LoadLines,
    /// LDO PDN load lines (Table 2: V_IN/SA/IO = 1.25/7/4 mΩ).
    pub ldo_loadlines: LoadLines,
    /// FlexWatts hybrid load lines: the shared-resource penalty makes them
    /// slightly higher than the pure PDN each mode mimics (§6/§7: "<1 %
    /// performance loss due to FlexWatts's higher load-line").
    pub flexwatts_loadlines: LoadLines,
    /// IVR PDN tolerance band (Table 2: 18–22 mV; default mid-range).
    pub ivr_tob: ToleranceBand,
    /// MBVR PDN tolerance band (Table 2: 18–20 mV).
    pub mbvr_tob: ToleranceBand,
    /// LDO PDN tolerance band (Table 2: 16–18 mV).
    pub ldo_tob: ToleranceBand,
    /// First-stage VR output voltage in IVR-style PDNs (e.g. 1.8 V).
    pub vin_level: Volts,
    /// Leakage-vs-voltage guardband exponent (δ = 2.8, §3.1).
    pub leakage_exponent: f64,
    /// Deepest light-load state an *on-die* IVR may use. Real FIVRs have
    /// limited light-load machinery compared to board VRs, which is the
    /// root of Observation 3; the default caps them at PS1.
    pub ivr_lightload_cap: VrPowerState,
    /// Deepest light-load state a board VR may use.
    pub board_lightload_cap: VrPowerState,
}

impl ModelParams {
    /// A 64-bit fingerprint over every parameter (exact `f64` bit
    /// patterns, no rounding): two parameter sets share a fingerprint only
    /// when they are numerically indistinguishable to the power models.
    /// Used as the parameter half of [`crate::topology::pdn_memo_token`].
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::memo::Fnv1a::new();
        h.write(self.supply_voltage.get().to_bits());
        for ll in [
            &self.ivr_loadlines,
            &self.mbvr_loadlines,
            &self.ldo_loadlines,
            &self.flexwatts_loadlines,
        ] {
            h.write(ll.vin.get().to_bits());
            h.write(ll.compute.get().to_bits());
            h.write(ll.sa.get().to_bits());
            h.write(ll.io.get().to_bits());
        }
        for tob in [&self.ivr_tob, &self.mbvr_tob, &self.ldo_tob] {
            h.write(tob.controller.get().to_bits());
            h.write(tob.current_sense.get().to_bits());
            h.write(tob.ripple.get().to_bits());
        }
        h.write(self.vin_level.get().to_bits());
        h.write(self.leakage_exponent.to_bits());
        h.write(self.ivr_lightload_cap as u64);
        h.write(self.board_lightload_cap as u64);
        h.finish()
    }

    /// The paper's Table 2 parameter values.
    pub fn paper_defaults() -> Self {
        Self {
            supply_voltage: Volts::new(7.2),
            ivr_loadlines: LoadLines {
                vin: Ohms::from_milliohms(1.0),
                compute: Ohms::from_milliohms(1.0),
                sa: Ohms::from_milliohms(1.0),
                io: Ohms::from_milliohms(1.0),
            },
            mbvr_loadlines: LoadLines {
                vin: Ohms::from_milliohms(2.5),
                compute: Ohms::from_milliohms(2.5),
                sa: Ohms::from_milliohms(7.0),
                io: Ohms::from_milliohms(4.0),
            },
            ldo_loadlines: LoadLines {
                vin: Ohms::from_milliohms(1.25),
                compute: Ohms::from_milliohms(1.25),
                sa: Ohms::from_milliohms(7.0),
                io: Ohms::from_milliohms(4.0),
            },
            flexwatts_loadlines: LoadLines {
                vin: Ohms::from_milliohms(1.4),
                compute: Ohms::from_milliohms(1.4),
                sa: Ohms::from_milliohms(7.0),
                io: Ohms::from_milliohms(4.0),
            },
            ivr_tob: ToleranceBand::from_total_millivolts(20.0),
            mbvr_tob: ToleranceBand::from_total_millivolts(18.0),
            ldo_tob: ToleranceBand::from_total_millivolts(18.0),
            vin_level: Volts::new(1.8),
            leakage_exponent: LEAKAGE_VOLTAGE_EXPONENT,
            ivr_lightload_cap: VrPowerState::Ps1,
            board_lightload_cap: VrPowerState::Ps4,
        }
    }
}

impl Default for ModelParams {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let p = ModelParams::paper_defaults();
        assert!((p.ivr_loadlines.vin.milliohms() - 1.0).abs() < 1e-9);
        assert!((p.ldo_loadlines.vin.milliohms() - 1.25).abs() < 1e-9);
        assert!((p.mbvr_loadlines.sa.milliohms() - 7.0).abs() < 1e-9);
        assert!((p.mbvr_loadlines.io.milliohms() - 4.0).abs() < 1e-9);
        let tob = p.ivr_tob.total().millivolts();
        assert!((18.0..=22.0).contains(&tob));
        let tob = p.ldo_tob.total().millivolts();
        assert!((16.0..=18.0).contains(&tob));
        assert_eq!(p.vin_level, Volts::new(1.8));
    }

    #[test]
    fn flexwatts_loadline_is_slightly_worse_than_both_pure_modes() {
        let p = ModelParams::paper_defaults();
        assert!(p.flexwatts_loadlines.vin > p.ivr_loadlines.vin);
        assert!(p.flexwatts_loadlines.vin > p.ldo_loadlines.vin);
        // ...but far below the dedicated MBVR compute rails.
        assert!(p.flexwatts_loadlines.vin < p.mbvr_loadlines.compute);
    }

    #[test]
    fn default_trait_matches_paper_defaults() {
        assert_eq!(ModelParams::default(), ModelParams::paper_defaults());
    }

    #[test]
    fn fingerprint_separates_parameter_sets() {
        let base = ModelParams::paper_defaults();
        assert_eq!(base.fingerprint(), ModelParams::paper_defaults().fingerprint());
        let mut tweaked = ModelParams::paper_defaults();
        tweaked.leakage_exponent += 1e-9;
        assert_ne!(base.fingerprint(), tweaked.fingerprint());
        let mut capped = ModelParams::paper_defaults();
        capped.ivr_lightload_cap = VrPowerState::Ps0;
        assert_ne!(base.fingerprint(), capped.fingerprint());
    }
}
