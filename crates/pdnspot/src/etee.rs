//! End-to-end power-conversion-efficiency (ETEE) building blocks.
//!
//! The paper's three power models (§3.1, Eqs. 1–12) share four stages,
//! implemented here once and composed by each topology:
//!
//! 1. **guardband** (Eq. 2) — the VR tolerance band forces the rail above
//!    nominal voltage; dynamic power pays `(V/Vnom)²`, leakage `(V/Vnom)^δ`;
//! 2. **power gate** — domains behind power gates pay the same equation a
//!    second time for the `R_PG·I` gate drop;
//! 3. **load line** (Eqs. 3–4, 7–8) — the rail is raised to survive the
//!    power-virus current through the load-line impedance, costing
//!    `ΔP = (Ppeak/V)·R_LL·(P/V)` with `Ppeak = P/AR`;
//! 4. **regulator conversion** — dividing by the stage's efficiency.
//!
//! Evaluations report the Fig. 5 loss decomposition: VR inefficiencies,
//! compute-rail conduction (I²R + load line), SA/IO conduction, and other
//! (guardband + gate) losses.

use crate::error::PdnError;
use crate::scenario::{DomainLoad, Scenario};
use pdn_proc::{guardband_power, DomainKind};
use pdn_units::{Amps, ApplicationRatio, Efficiency, Ohms, Volts, Watts};
use pdn_vr::{BuckConverter, OperatingPoint, VoltageRegulator, VrPowerState};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::sync::Mutex;

/// A load after a voltage-raising stage: new power demand and rail voltage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StagedLoad {
    /// Power demanded from the next stage.
    pub power: Watts,
    /// Rail voltage at this point.
    pub voltage: Volts,
}

/// Applies the Eq. 2 tolerance-band guardband to a domain load.
pub fn guardband_stage(load: &DomainLoad, tob: Volts, delta: f64) -> StagedLoad {
    let power =
        guardband_power(load.nominal_power, load.leakage_fraction, load.voltage, tob, delta);
    StagedLoad { power, voltage: load.voltage + tob }
}

/// Applies the power-gate drop: the gate's `R_PG·I` drop is compensated by
/// raising the rail, costing Eq. 2 a second time (§3.1, MBVR model).
pub fn power_gate_stage(
    staged: StagedLoad,
    load: &DomainLoad,
    r_pg: Ohms,
    delta: f64,
) -> StagedLoad {
    if staged.power.get() <= 0.0 {
        return staged;
    }
    let current = staged.power / staged.voltage;
    let v_pg = current * r_pg;
    let power = guardband_power(staged.power, load.leakage_fraction, staged.voltage, v_pg, delta);
    StagedLoad { power, voltage: staged.voltage + v_pg }
}

/// Result of a load-line compensation step (Eqs. 3–4 / 7–8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadLineStep {
    /// Raised rail voltage `V_LL`.
    pub v_ll: Volts,
    /// Power drawn from the regulator output `P_LL`.
    pub p_ll: Watts,
    /// The conduction/guardband cost `P_LL − P`.
    pub extra: Watts,
}

/// Raises a rail to compensate the worst-case (power-virus) drop across a
/// load-line impedance: `V_LL = V + (Ppeak/V)·R_LL`, `Ppeak = P/AR`
/// (the paper's Eqs. 3–4 / 7–8, a constant-current load model). Used for
/// the `V_IN` rails whose load is downstream converters.
pub fn load_line_stage(
    power: Watts,
    voltage: Volts,
    ar: ApplicationRatio,
    r_ll: Ohms,
) -> LoadLineStep {
    if power.get() <= 0.0 {
        return LoadLineStep { v_ll: voltage, p_ll: power, extra: Watts::ZERO };
    }
    let p_peak = ar.peak_power(power);
    let i_peak = p_peak / voltage;
    let v_ll = voltage + i_peak * r_ll;
    let p_ll = Watts::new(v_ll.get() * (power / voltage).get());
    LoadLineStep { v_ll, p_ll, extra: p_ll - power }
}

/// Load-line compensation for a rail that feeds a *domain* directly (MBVR
/// groups, dedicated SA/IO rails).
///
/// The VR set point is sized for the rail's power virus `p_peak`
/// (`V_LL = V + Ipeak·R_LL`, §2.4: the guardband must survive the maximum
/// possible current), but at the actual current `I < Ipeak` the load sees
/// the excess voltage `(Ipeak − I)·R_LL` and — per Eq. 2 — burns more
/// dynamic and leakage power for it, on top of the genuine `I²·R_LL` wire
/// dissipation. This is the §5 Observation 2 mechanism: a *higher* AR
/// means the running current is closer to the virus current, so the
/// excess voltage at the load shrinks and ETEE rises.
pub fn load_line_domain_stage(
    power: Watts,
    voltage: Volts,
    p_peak: Watts,
    r_ll: Ohms,
    leakage_fraction: pdn_units::Ratio,
    delta: f64,
) -> LoadLineStep {
    if power.get() <= 0.0 {
        return LoadLineStep { v_ll: voltage, p_ll: power, extra: Watts::ZERO };
    }
    let i_peak = p_peak.max(power) / voltage;
    let v_ll = voltage + i_peak * r_ll;
    // Fixed point: the load at the (excess) delivered voltage draws more
    // power, which raises the current, which lowers the delivered voltage.
    let mut current = power / voltage;
    let mut p_load = power;
    for _ in 0..4 {
        let v_load = (v_ll - current * r_ll).max(voltage);
        p_load = guardband_power(power, leakage_fraction, voltage, v_load - voltage, delta);
        current = p_load / v_load;
    }
    let wire = current.squared_times(r_ll);
    let p_ll = p_load + wire;
    LoadLineStep { v_ll, p_ll, extra: p_ll - power }
}

/// One rail's inputs to [`load_line_domain_stages`].
#[derive(Debug, Clone, Copy)]
pub struct RailLoadLine {
    /// Power the rail's domains demand after guardband/gating.
    pub power: Watts,
    /// Nominal rail voltage (highest member domain's).
    pub voltage: Volts,
    /// The rail's power-virus sizing power.
    pub p_peak: Watts,
    /// Load-line impedance of the rail.
    pub r_ll: Ohms,
    /// Power-weighted leakage fraction of the rail's domains.
    pub leakage_fraction: pdn_units::Ratio,
}

/// Maximum number of rails [`load_line_domain_stages`] advances at once
/// (the widest topology, MBVR, has four board rails).
pub const MAX_RAIL_LANES: usize = 4;

/// [`load_line_domain_stage`] for up to [`MAX_RAIL_LANES`] independent
/// rails, advancing their fixed-point iterations in lockstep.
///
/// Each lane performs exactly the operations of the scalar function in the
/// same order, and lanes never interact, so every returned step is
/// bit-identical to a scalar call on the same lane. The point of the
/// lockstep is latency: the scalar fixed point is a serial
/// `powf → divide → subtract` dependency chain, so four back-to-back
/// scalar calls cost four chain latencies, while interleaving lets the
/// out-of-order core overlap the lanes' chains (measured ~2× on the
/// four-rail MBVR group walk).
///
/// # Panics
///
/// Panics if more than [`MAX_RAIL_LANES`] lanes are passed.
pub fn load_line_domain_stages(lanes: &[RailLoadLine], delta: f64) -> [LoadLineStep; 4] {
    let n = lanes.len();
    assert!(n <= MAX_RAIL_LANES, "at most {MAX_RAIL_LANES} rail lanes, got {n}");
    let mut out = [LoadLineStep { v_ll: Volts::ZERO, p_ll: Watts::ZERO, extra: Watts::ZERO }; 4];
    let mut v_ll = [Volts::ZERO; 4];
    let mut current = [Amps::ZERO; 4];
    let mut p_load = [Watts::ZERO; 4];
    // `live` masks zero-power lanes, which take the scalar early return.
    let mut live = [false; 4];
    for (l, lane) in lanes.iter().enumerate() {
        if lane.power.get() <= 0.0 {
            out[l] = LoadLineStep { v_ll: lane.voltage, p_ll: lane.power, extra: Watts::ZERO };
            continue;
        }
        live[l] = true;
        let i_peak = lane.p_peak.max(lane.power) / lane.voltage;
        v_ll[l] = lane.voltage + i_peak * lane.r_ll;
        current[l] = lane.power / lane.voltage;
        p_load[l] = lane.power;
    }
    for _ in 0..4 {
        let mut v_load = [Volts::ZERO; 4];
        for l in 0..n {
            if live[l] {
                v_load[l] = (v_ll[l] - current[l] * lanes[l].r_ll).max(lanes[l].voltage);
            }
        }
        for l in 0..n {
            if live[l] {
                p_load[l] = guardband_power(
                    lanes[l].power,
                    lanes[l].leakage_fraction,
                    lanes[l].voltage,
                    v_load[l] - lanes[l].voltage,
                    delta,
                );
                current[l] = p_load[l] / v_load[l];
            }
        }
    }
    for l in 0..n {
        if live[l] {
            let wire = current[l].squared_times(lanes[l].r_ll);
            let p_ll = p_load[l] + wire;
            out[l] = LoadLineStep { v_ll: v_ll[l], p_ll, extra: p_ll - lanes[l].power };
        }
    }
    out
}

/// Draws `pout` at `vout` from a board VR fed by `supply`, letting the VR
/// follow the load into its deepest allowed light-load power state.
///
/// Returns the battery-side input power and a rail report. A zero load
/// turns the rail off (no quiescent loss): platform firmware disables
/// unloaded rails.
///
/// # Errors
///
/// Returns [`PdnError::Vr`] if even PS0 cannot carry the requested current.
pub fn board_vr_stage(
    vr: &BuckConverter,
    supply: Volts,
    vout: Volts,
    pout: Watts,
    lightload_cap: VrPowerState,
) -> Result<(Watts, RailReport), PdnError> {
    if pout.get() <= 0.0 {
        return Ok((
            Watts::ZERO,
            RailReport {
                name: vr.name().to_string(),
                voltage: vout,
                current: Amps::ZERO,
                input_power: Watts::ZERO,
                efficiency: None,
            },
        ));
    }
    let iout = pout / vout;
    // `min` picks the shallower of (deepest feasible, deepest allowed).
    let ps = vr.best_power_state(iout).min(lightload_cap);
    let op = OperatingPoint::new(supply, vout, iout).with_power_state(ps);
    // One loss evaluation for both numbers (bit-identical to the separate
    // `input_power` + `efficiency` calls; see `BuckConverter::conversion`).
    let (pin, efficiency) = vr.conversion(op)?;
    Ok((
        pin,
        RailReport {
            name: vr.name().to_string(),
            voltage: vout,
            current: iout,
            input_power: pin,
            efficiency,
        },
    ))
}

/// A provider of the PDN-independent half of an evaluation.
///
/// The guardband, power-gate, and virus-headroom stages depend only on the
/// scenario and a handful of electrical parameters — not on which topology
/// is asking. Topologies route those stages through a `Stager` so a batch
/// sweep can hand every PDN at a lattice point the same [`StagedPoint`]
/// and compute each partial once instead of once per PDN.
///
/// Every method's default computes directly via the pure stage functions,
/// so [`DirectStager`] is a zero-cost pass-through and any caching
/// implementation returning the same bits is observationally identical.
///
/// The trait is deliberately **not** `Sync`: sharing a stager across
/// threads is the caller's choice ([`StagedPoint`] locks internally and is
/// shared), while the per-row stager of the batch kernel ([`RowStage`]) is
/// owned by the single worker that claimed the row and stays lock-free.
pub trait Stager {
    /// The power-independent Eq. 2 multiplier for one domain's load
    /// ([`pdn_proc::guardband_factor`]).
    ///
    /// Split out from [`Stager::guardband`] because the factor — the only
    /// `powf` of the stage — depends on everything *except* the nominal
    /// power, so a row-scoped stager can reuse it across the points of a
    /// lattice row while the power varies underneath.
    fn guardband_factor(&self, kind: DomainKind, load: &DomainLoad, tob: Volts, delta: f64) -> f64 {
        let _ = kind;
        pdn_proc::guardband_factor(load.leakage_fraction, load.voltage, tob, delta)
    }

    /// [`guardband_stage`] for one domain's load.
    ///
    /// The default composes `P_NOM · factor` exactly as [`guardband_power`]
    /// does (`guardband_power(P, …) == P · guardband_factor(…)`, same ops,
    /// same order), so routing the factor through the stager preserves the
    /// bits while letting implementations cache the factor alone.
    fn guardband(&self, kind: DomainKind, load: &DomainLoad, tob: Volts, delta: f64) -> StagedLoad {
        StagedLoad {
            power: load.nominal_power * self.guardband_factor(kind, load, tob, delta),
            voltage: load.voltage + tob,
        }
    }

    /// [`guardband_stage`] followed by [`power_gate_stage`] for one
    /// domain's load (the MBVR-style gated flow).
    fn gated(
        &self,
        kind: DomainKind,
        load: &DomainLoad,
        tob: Volts,
        r_pg: Ohms,
        delta: f64,
    ) -> StagedLoad {
        power_gate_stage(self.guardband(kind, load, tob, delta), load, r_pg, delta)
    }

    /// The load-independent virus headroom of a rail serving `domains`
    /// ([`Scenario::rail_virus_headroom`]).
    fn virus_headroom(&self, scenario: &Scenario, domains: &[DomainKind]) -> Watts {
        scenario.rail_virus_headroom(domains)
    }

    /// [`Scenario::rail_virus_power`]: the virus headroom clamped to never
    /// fall below the rail's running power.
    fn rail_virus_power(
        &self,
        scenario: &Scenario,
        domains: &[DomainKind],
        running: Watts,
    ) -> Watts {
        self.virus_headroom(scenario, domains).max(running)
    }
}

/// The trivial [`Stager`]: every stage is computed on the spot. Used by
/// single-scenario evaluation paths where there is nothing to share.
#[derive(Debug, Clone, Copy, Default)]
pub struct DirectStager;

impl Stager for DirectStager {}

/// Packs an ordered domain list into an exact small-integer key (4 bits
/// per domain, ≤ 6 domains). Order-preserving, because the f64 summation
/// order inside [`Scenario::rail_virus_headroom`] follows the slice order.
fn domain_seq_key(domains: &[DomainKind]) -> u64 {
    domains.iter().fold(0u64, |key, &k| (key << 4) | (k as u64 + 1))
}

/// Memoized PDN-independent stage results for **one** lattice point.
///
/// Caches are keyed by the exact `f64` bit patterns of the stage inputs
/// (tolerance band, gate impedance, leakage exponent) plus the domain, so
/// a hit returns precisely the bits a fresh computation would produce —
/// PDNs that share a parameter value (e.g. the MBVR and LDO 18 mV TOB, or
/// the universal 0.5 mΩ power gate) share the work, PDNs that differ miss
/// and compute their own entry.
///
/// The caller must create one `StagedPoint` per scenario and never reuse
/// it across scenarios: the scenario itself is deliberately *not* part of
/// the cache keys (the batch engine owns one `StagedPoint` per lattice
/// point, pinned to that point's scenario).
#[derive(Debug, Default)]
pub struct StagedPoint {
    guardbands: StageCache<(u8, u64, u64)>,
    gated: StageCache<(u8, u64, u64, u64)>,
    headrooms: Mutex<Vec<(u64, Watts)>>,
}

/// A tiny linear-scan cache from an exact-bits key to a staged load.
type StageCache<K> = Mutex<Vec<(K, StagedLoad)>>;

impl StagedPoint {
    /// An empty staging cache for one lattice point.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Stager for StagedPoint {
    fn guardband(&self, kind: DomainKind, load: &DomainLoad, tob: Volts, delta: f64) -> StagedLoad {
        let key = (kind as u8, tob.get().to_bits(), delta.to_bits());
        let mut cache = self.guardbands.lock().expect("staging cache poisoned");
        if let Some((_, hit)) = cache.iter().find(|(k, _)| *k == key) {
            return *hit;
        }
        let value = guardband_stage(load, tob, delta);
        cache.push((key, value));
        value
    }

    fn gated(
        &self,
        kind: DomainKind,
        load: &DomainLoad,
        tob: Volts,
        r_pg: Ohms,
        delta: f64,
    ) -> StagedLoad {
        let key = (kind as u8, tob.get().to_bits(), r_pg.get().to_bits(), delta.to_bits());
        if let Some((_, hit)) =
            self.gated.lock().expect("staging cache poisoned").iter().find(|(k, _)| *k == key)
        {
            return *hit;
        }
        // Not held across the guardband call: both caches lock briefly and
        // independently. A racing duplicate insert is benign (same bits;
        // linear scan returns the first).
        let value = power_gate_stage(self.guardband(kind, load, tob, delta), load, r_pg, delta);
        self.gated.lock().expect("staging cache poisoned").push((key, value));
        value
    }

    fn virus_headroom(&self, scenario: &Scenario, domains: &[DomainKind]) -> Watts {
        let key = domain_seq_key(domains);
        let mut cache = self.headrooms.lock().expect("staging cache poisoned");
        if let Some((_, hit)) = cache.iter().find(|(k, _)| *k == key) {
            return *hit;
        }
        let value = scenario.rail_virus_headroom(domains);
        cache.push((key, value));
        value
    }
}

/// Packs the powered flags of a scenario's six domains into a bitmask, in
/// canonical domain order. The only load field [`Scenario::rail_virus_headroom`]
/// reads is `powered`, so the mask (plus the domain sequence) keys a
/// headroom cache exactly across the scenarios of one lattice row.
fn powered_mask(scenario: &Scenario) -> u64 {
    scenario.loads().fold(0u64, |mask, (_, load)| (mask << 1) | u64::from(load.powered))
}

/// Memoized PDN-independent stage results for **one** lattice row — a run
/// of scenarios that share every sweep coordinate except one (application
/// ratio along an active row, package C-state along an idle row).
///
/// Unlike [`StagedPoint`], which pins a single scenario and keys only on
/// stage parameters, a row stager is shared across the scenarios of its
/// row, so each cache keys on the exact bit patterns of *every* input the
/// staged computation reads:
///
/// - guardband factors key on `(V_NOM, FL, TOB, δ)` — along a row the
///   voltages and leakage fractions are sweep-invariant, so the whole row
///   pays one `powf` per distinct combination (and domains or PDNs whose
///   inputs collide bit-for-bit legitimately share the entry);
/// - virus headrooms key on `(domain sequence, powered mask)` — the virus
///   tables, margin, and workload type are fixed within a row by
///   construction, and the powered flags (which *do* vary along an idle
///   row) are part of the key.
///
/// The caller must create one `RowStage` per row and never reuse it across
/// rows: row-invariant scenario fields are deliberately not in the keys.
/// Interior mutability is a plain `RefCell` — a row stager belongs to the
/// single worker that claimed the row task, so it is `!Sync` and lock-free
/// (this is the batch kernel's hot path).
#[derive(Debug, Default)]
pub struct RowStage {
    factors: RefCell<Vec<(FactorKey, f64)>>,
    headrooms: RefCell<Vec<((u64, u64), Watts)>>,
}

/// Guardband-factor staging key: the raw bits of `(V_NOM, FL, TOB, δ)`.
type FactorKey = (u64, u64, u64, u64);

impl RowStage {
    /// An empty staging cache for one lattice row.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Stager for RowStage {
    fn guardband_factor(&self, kind: DomainKind, load: &DomainLoad, tob: Volts, delta: f64) -> f64 {
        let _ = kind;
        let key = (
            load.voltage.get().to_bits(),
            load.leakage_fraction.get().to_bits(),
            tob.get().to_bits(),
            delta.to_bits(),
        );
        let mut cache = self.factors.borrow_mut();
        if let Some((_, hit)) = cache.iter().find(|(k, _)| *k == key) {
            return *hit;
        }
        let value = pdn_proc::guardband_factor(load.leakage_fraction, load.voltage, tob, delta);
        cache.push((key, value));
        value
    }

    fn virus_headroom(&self, scenario: &Scenario, domains: &[DomainKind]) -> Watts {
        let key = (domain_seq_key(domains), powered_mask(scenario));
        let mut cache = self.headrooms.borrow_mut();
        if let Some((_, hit)) = cache.iter().find(|(k, _)| *k == key) {
            return *hit;
        }
        let value = scenario.rail_virus_headroom(domains);
        cache.push((key, value));
        value
    }
}

/// The Fig. 5 loss decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LossBreakdown {
    /// On-chip and off-chip VR conversion inefficiencies.
    pub vr_loss: Watts,
    /// Conduction (I²R + load-line guardband) on core/GFX/V_IN paths.
    pub conduction_compute: Watts,
    /// Conduction (I²R + load-line guardband) on SA/IO paths.
    pub conduction_sa_io: Watts,
    /// Everything else: tolerance-band guardband and power-gate drops.
    pub other: Watts,
}

impl LossBreakdown {
    /// Total PDN loss.
    pub fn total(&self) -> Watts {
        self.vr_loss + self.conduction_compute + self.conduction_sa_io + self.other
    }

    /// Each category as a fraction of `input_power` (the Fig. 5 y-axis).
    pub fn fractions_of(&self, input_power: Watts) -> [f64; 4] {
        let d = input_power.get().max(1e-12);
        [
            self.vr_loss.get() / d,
            self.conduction_compute.get() / d,
            self.conduction_sa_io.get() / d,
            self.other.get() / d,
        ]
    }
}

/// Per-rail accounting of an evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RailReport {
    /// Rail name (matches Fig. 1 labels).
    pub name: String,
    /// Output voltage of the rail.
    pub voltage: Volts,
    /// Output current of the rail.
    pub current: Amps,
    /// Battery-side input power attributed to the rail.
    pub input_power: Watts,
    /// Conversion efficiency of the rail's off-chip VR (None for unloaded
    /// rails).
    pub efficiency: Option<Efficiency>,
}

/// The result of evaluating a PDN on a scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PdnEvaluation {
    /// Total nominal load power (`Σ P_NOM`, the ETEE numerator).
    pub nominal_power: Watts,
    /// Power drawn from the battery/PSU.
    pub input_power: Watts,
    /// End-to-end power-conversion efficiency (Eq. 1).
    pub etee: Efficiency,
    /// Loss decomposition (Fig. 5).
    pub breakdown: LossBreakdown,
    /// Total current entering the processor package from off-chip VRs
    /// (the Fig. 5 "chip input current" line).
    pub chip_input_current: Amps,
    /// Per-rail reports.
    pub rails: Vec<RailReport>,
}

impl PdnEvaluation {
    /// Assembles an evaluation, deriving the ETEE from the power totals.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::Scenario`] if the accounting is inconsistent
    /// (input below nominal, or non-positive powers).
    pub fn assemble(
        nominal_power: Watts,
        input_power: Watts,
        breakdown: LossBreakdown,
        chip_input_current: Amps,
        rails: Vec<RailReport>,
    ) -> Result<Self, PdnError> {
        if nominal_power.get() <= 0.0 {
            return Err(PdnError::Scenario("scenario has no nominal load power".into()));
        }
        if input_power.get() < nominal_power.get() - 1e-9 {
            return Err(PdnError::Scenario(format!(
                "input power {input_power} below nominal {nominal_power}: a PDN cannot create energy"
            )));
        }
        let etee = Efficiency::new((nominal_power.get() / input_power.get()).min(1.0))?;
        Ok(Self { nominal_power, input_power, etee, breakdown, chip_input_current, rails })
    }

    /// Total PDN loss (input − nominal).
    pub fn total_loss(&self) -> Watts {
        self.input_power - self.nominal_power
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdn_units::Ratio;

    fn load(p: f64, v: f64, fl: f64) -> DomainLoad {
        DomainLoad {
            nominal_power: Watts::new(p),
            voltage: Volts::new(v),
            leakage_fraction: Ratio::new(fl).unwrap(),
            powered: true,
        }
    }

    #[test]
    fn guardband_stage_raises_power_and_voltage() {
        let l = load(2.0, 0.8, 0.22);
        let s = guardband_stage(&l, Volts::from_millivolts(20.0), 2.8);
        assert!(s.power > l.nominal_power);
        assert!((s.voltage.get() - 0.82).abs() < 1e-12);
    }

    #[test]
    fn power_gate_stage_cost_is_small_but_positive() {
        let l = load(2.0, 0.8, 0.22);
        let gb = guardband_stage(&l, Volts::from_millivolts(20.0), 2.8);
        let pg = power_gate_stage(gb, &l, Ohms::from_milliohms(1.5), 2.8);
        assert!(pg.power > gb.power);
        let overhead = pg.power.get() / gb.power.get() - 1.0;
        assert!(overhead < 0.03, "gate overhead should be a couple of percent: {overhead}");
    }

    #[test]
    fn power_gate_stage_passes_zero_load() {
        let l = load(0.0, 0.8, 0.22);
        let gb = StagedLoad { power: Watts::ZERO, voltage: Volts::new(0.8) };
        let pg = power_gate_stage(gb, &l, Ohms::from_milliohms(2.0), 2.8);
        assert_eq!(pg.power, Watts::ZERO);
    }

    #[test]
    fn load_line_cost_grows_as_ar_falls() {
        let p = Watts::new(10.0);
        let v = Volts::new(1.0);
        let r = Ohms::from_milliohms(2.5);
        let high_ar = load_line_stage(p, v, ApplicationRatio::new(0.8).unwrap(), r);
        let low_ar = load_line_stage(p, v, ApplicationRatio::new(0.4).unwrap(), r);
        assert!(low_ar.extra > high_ar.extra, "Observation 2: lower AR needs more virus headroom");
        // Closed form at AR = 0.4: Ppeak = 25 W → Ipeak = 25 A → ΔV = 62.5 mV.
        assert!((low_ar.v_ll.millivolts() - 1062.5).abs() < 1e-6);
        assert!((low_ar.p_ll.get() - 10.625).abs() < 1e-9);
    }

    #[test]
    fn domain_load_line_excess_shrinks_as_load_approaches_virus() {
        let v = Volts::new(0.9);
        let r = Ohms::from_milliohms(2.5);
        let virus = Watts::new(30.0);
        let fl = Ratio::new(0.22).unwrap();
        let light = load_line_domain_stage(Watts::new(10.0), v, virus, r, fl, 2.8);
        let heavy = load_line_domain_stage(Watts::new(25.0), v, virus, r, fl, 2.8);
        // Relative overhead falls as the running power nears the virus.
        let light_frac = light.extra.get() / 10.0;
        let heavy_frac = heavy.extra.get() / 25.0;
        assert!(
            light_frac > heavy_frac,
            "Observation 2: light {light_frac:.4} vs heavy {heavy_frac:.4}"
        );
        // Both VR set points are identical (sized for the same virus).
        assert!((light.v_ll.get() - heavy.v_ll.get()).abs() < 1e-12);
    }

    #[test]
    fn domain_load_line_clamps_virus_below_running_power() {
        let v = Volts::new(0.9);
        let r = Ohms::from_milliohms(2.5);
        let fl = Ratio::new(0.22).unwrap();
        let s = load_line_domain_stage(Watts::new(20.0), v, Watts::new(5.0), r, fl, 2.8);
        // Virus below running power degenerates to pure wire loss.
        assert!(s.extra.get() > 0.0);
        assert!(s.p_ll > Watts::new(20.0));
    }

    #[test]
    fn load_line_zero_power_is_free() {
        let s = load_line_stage(
            Watts::ZERO,
            Volts::new(1.0),
            ApplicationRatio::new(0.5).unwrap(),
            Ohms::from_milliohms(2.5),
        );
        assert_eq!(s.extra, Watts::ZERO);
        assert_eq!(s.p_ll, Watts::ZERO);
    }

    #[test]
    fn board_stage_turns_off_unloaded_rails() {
        let vr = pdn_vr::presets::sa_board_vr();
        let (pin, rail) =
            board_vr_stage(&vr, Volts::new(7.2), Volts::new(0.85), Watts::ZERO, VrPowerState::Ps4)
                .unwrap();
        assert_eq!(pin, Watts::ZERO);
        assert!(rail.efficiency.is_none());
    }

    #[test]
    fn board_stage_uses_light_load_states() {
        let vr = pdn_vr::presets::sa_board_vr();
        let light = board_vr_stage(
            &vr,
            Volts::new(7.2),
            Volts::new(0.85),
            Watts::from_milliwatts(100.0),
            VrPowerState::Ps4,
        )
        .unwrap()
        .0;
        let capped = board_vr_stage(
            &vr,
            Volts::new(7.2),
            Volts::new(0.85),
            Watts::from_milliwatts(100.0),
            VrPowerState::Ps0,
        )
        .unwrap()
        .0;
        assert!(light < capped, "PS-capped rail must burn more: {light} vs {capped}");
    }

    #[test]
    fn staged_point_matches_direct_stager_bit_for_bit() {
        let soc = pdn_proc::client_soc(Watts::new(18.0));
        let s = Scenario::active_fixed_tdp_frequency(
            &soc,
            pdn_workload::WorkloadType::MultiThread,
            ApplicationRatio::new(0.6).unwrap(),
        )
        .unwrap();
        let staged = StagedPoint::new();
        let direct = DirectStager;
        let tob = Volts::from_millivolts(18.0);
        let r_pg = Ohms::from_milliohms(0.5);
        for _ in 0..2 {
            // Second iteration exercises the hit path of every cache.
            for kind in DomainKind::ALL {
                let l = s.load(kind);
                let a = staged.guardband(kind, l, tob, 2.8);
                let b = direct.guardband(kind, l, tob, 2.8);
                assert_eq!(a.power.get().to_bits(), b.power.get().to_bits());
                assert_eq!(a.voltage.get().to_bits(), b.voltage.get().to_bits());
                let ga = staged.gated(kind, l, tob, r_pg, 2.8);
                let gb = direct.gated(kind, l, tob, r_pg, 2.8);
                assert_eq!(ga.power.get().to_bits(), gb.power.get().to_bits());
            }
            for domains in
                [&[DomainKind::Core0, DomainKind::Core1, DomainKind::Llc][..], &[DomainKind::Sa]]
            {
                let a = staged.rail_virus_power(&s, domains, Watts::new(1.0));
                let b = direct.rail_virus_power(&s, domains, Watts::new(1.0));
                assert_eq!(a.get().to_bits(), b.get().to_bits());
            }
        }
    }

    #[test]
    fn staged_point_distinguishes_stage_parameters() {
        let soc = pdn_proc::client_soc(Watts::new(18.0));
        let s = Scenario::active_fixed_tdp_frequency(
            &soc,
            pdn_workload::WorkloadType::MultiThread,
            ApplicationRatio::new(0.6).unwrap(),
        )
        .unwrap();
        let staged = StagedPoint::new();
        let l = s.load(DomainKind::Core0);
        let at_18 = staged.guardband(DomainKind::Core0, l, Volts::from_millivolts(18.0), 2.8);
        let at_20 = staged.guardband(DomainKind::Core0, l, Volts::from_millivolts(20.0), 2.8);
        assert_ne!(at_18.power, at_20.power, "different TOBs must not share a cache entry");
        // Ordered sequence keys: distinct rails never collide.
        assert_ne!(
            super::domain_seq_key(&[DomainKind::Sa]),
            super::domain_seq_key(&[DomainKind::Io])
        );
        assert_ne!(
            super::domain_seq_key(&[DomainKind::Core0, DomainKind::Core1]),
            super::domain_seq_key(&[DomainKind::Core1, DomainKind::Core0])
        );
    }

    #[test]
    fn row_stage_matches_direct_stager_across_a_row() {
        // A RowStage shared across the scenarios of one row (and several
        // stage-parameter sets, standing in for several PDNs) must return
        // exactly the bits DirectStager computes fresh at every point.
        let soc = pdn_proc::client_soc(Watts::new(18.0));
        let scenarios: Vec<Scenario> = [0.2, 0.4, 0.6, 0.8, 1.0]
            .iter()
            .map(|&ar| {
                Scenario::active_fixed_tdp_frequency(
                    &soc,
                    pdn_workload::WorkloadType::MultiThread,
                    ApplicationRatio::new(ar).unwrap(),
                )
                .unwrap()
            })
            .collect();
        let row = RowStage::new();
        let direct = DirectStager;
        let r_pg = Ohms::from_milliohms(0.5);
        for s in &scenarios {
            for tob in [Volts::from_millivolts(18.0), Volts::from_millivolts(25.0)] {
                for kind in DomainKind::ALL {
                    let l = s.load(kind);
                    let fa = row.guardband_factor(kind, l, tob, 2.8);
                    let fb = direct.guardband_factor(kind, l, tob, 2.8);
                    assert_eq!(fa.to_bits(), fb.to_bits());
                    let a = row.guardband(kind, l, tob, 2.8);
                    let b = direct.guardband(kind, l, tob, 2.8);
                    assert_eq!(a.power.get().to_bits(), b.power.get().to_bits());
                    assert_eq!(a.voltage.get().to_bits(), b.voltage.get().to_bits());
                    let ga = row.gated(kind, l, tob, r_pg, 2.8);
                    let gb = direct.gated(kind, l, tob, r_pg, 2.8);
                    assert_eq!(ga.power.get().to_bits(), gb.power.get().to_bits());
                }
            }
            for domains in
                [&[DomainKind::Core0, DomainKind::Core1, DomainKind::Llc][..], &[DomainKind::Sa]]
            {
                let a = row.rail_virus_power(s, domains, Watts::new(1.0));
                let b = direct.rail_virus_power(s, domains, Watts::new(1.0));
                assert_eq!(a.get().to_bits(), b.get().to_bits());
            }
        }
    }

    #[test]
    fn row_stage_guardband_equals_legacy_stage_function() {
        // The factor-form default must reproduce guardband_stage (and so
        // guardband_power) bit-for-bit: Eq. 2's P·factor split is exact.
        let soc = pdn_proc::client_soc(Watts::new(4.0));
        let s = Scenario::active_fixed_tdp_frequency(
            &soc,
            pdn_workload::WorkloadType::Graphics,
            ApplicationRatio::new(0.35).unwrap(),
        )
        .unwrap();
        let row = RowStage::new();
        for kind in DomainKind::ALL {
            let l = s.load(kind);
            let a = row.guardband(kind, l, Volts::from_millivolts(18.0), 2.8);
            let b = guardband_stage(l, Volts::from_millivolts(18.0), 2.8);
            assert_eq!(a.power.get().to_bits(), b.power.get().to_bits());
            assert_eq!(a.voltage.get().to_bits(), b.voltage.get().to_bits());
        }
    }

    #[test]
    fn row_stage_distinguishes_points_with_different_inputs() {
        // Across the points of an *idle* row the powered flags change, so
        // headrooms must not collide; and factor entries must key on the
        // load voltage so distinct domains never share by accident.
        let soc = pdn_proc::client_soc(Watts::new(18.0));
        let row = RowStage::new();
        let active = Scenario::active_fixed_tdp_frequency(
            &soc,
            pdn_workload::WorkloadType::MultiThread,
            ApplicationRatio::new(0.6).unwrap(),
        )
        .unwrap();
        let core = active.load(DomainKind::Core0);
        let sa = active.load(DomainKind::Sa);
        assert_ne!(core.voltage, sa.voltage, "test premise: distinct rail voltages");
        let fc = row.guardband_factor(DomainKind::Core0, core, Volts::from_millivolts(18.0), 2.8);
        let fs = row.guardband_factor(DomainKind::Sa, sa, Volts::from_millivolts(18.0), 2.8);
        assert_ne!(fc.to_bits(), fs.to_bits(), "different voltages must miss the factor cache");

        let deep = Scenario::idle(&soc, pdn_proc::PackageCState::C6);
        let shallow = Scenario::idle(&soc, pdn_proc::PackageCState::C0Min);
        let domains = [DomainKind::Core0, DomainKind::Core1, DomainKind::Llc];
        let direct = DirectStager;
        let a = row.virus_headroom(&shallow, &domains);
        let b = row.virus_headroom(&deep, &domains);
        assert_eq!(a.get().to_bits(), direct.virus_headroom(&shallow, &domains).get().to_bits());
        assert_eq!(b.get().to_bits(), direct.virus_headroom(&deep, &domains).get().to_bits());
        assert_ne!(a, b, "powered mask must separate idle states sharing a row stager");
    }

    #[test]
    fn assemble_rejects_energy_creation() {
        let bd = LossBreakdown::default();
        assert!(PdnEvaluation::assemble(Watts::new(2.0), Watts::new(1.9), bd, Amps::ZERO, vec![])
            .is_err());
        assert!(
            PdnEvaluation::assemble(Watts::ZERO, Watts::new(1.0), bd, Amps::ZERO, vec![]).is_err()
        );
    }

    #[test]
    fn assemble_computes_etee_and_loss() {
        let bd = LossBreakdown {
            vr_loss: Watts::new(0.6),
            conduction_compute: Watts::new(0.25),
            conduction_sa_io: Watts::new(0.05),
            other: Watts::new(0.1),
        };
        let e =
            PdnEvaluation::assemble(Watts::new(3.0), Watts::new(4.0), bd, Amps::new(2.0), vec![])
                .unwrap();
        assert!((e.etee.get() - 0.75).abs() < 1e-12);
        assert!((e.total_loss().get() - 1.0).abs() < 1e-12);
        assert!((bd.total().get() - 1.0).abs() < 1e-12);
        let fr = bd.fractions_of(e.input_power);
        assert!((fr.iter().sum::<f64>() - 0.25).abs() < 1e-12);
    }
}
