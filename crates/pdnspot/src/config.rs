//! One validated configuration object for the evaluation engine.
//!
//! Before this module, the engine's knobs were free-floating parameters
//! scattered across call sites: a [`Workers`] argument here, a memo
//! capacity there, a hard-coded chunk heuristic inside the scheduler,
//! and (with `pdn-serve`) an admission-queue depth that had nowhere to
//! live at all. [`EngineConfig`] consolidates them behind one
//! builder-style API with a validated [`build`](EngineConfigBuilder::build):
//! every consumer — the unified [`crate::batch::evaluate`] entry point,
//! the sweep helpers, and the serve daemon — reads the same struct, and
//! an invalid combination is rejected once, at construction, instead of
//! panicking mid-campaign.
//!
//! ```
//! use pdnspot::prelude::*;
//!
//! let cfg = EngineConfig::builder()
//!     .workers(Workers::Fixed(4))
//!     .memo_capacity(1 << 14)
//!     .build()?;
//! assert_eq!(cfg.workers(), Workers::Fixed(4));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::batch::Workers;
use crate::error::PdnError;
use crate::memo::{MemoCache, DEFAULT_CAPACITY, DEFAULT_SHARDS};
use serde::{Deserialize, Serialize};

/// Default bound on the serve daemon's admission queue
/// ([`EngineConfig::admission_depth`]).
pub const DEFAULT_ADMISSION_DEPTH: usize = 1024;

/// Validated engine configuration (see the module docs).
///
/// Construct with [`EngineConfig::builder`]; [`EngineConfig::default`]
/// is the validated all-defaults configuration. The struct is plain data
/// — cloning is cheap and it is `Send + Sync`, so one instance can be
/// shared by every worker of a daemon.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineConfig {
    workers: Workers,
    chunk_size: Option<usize>,
    memo_shards: usize,
    memo_capacity: usize,
    admission_depth: usize,
}

impl EngineConfig {
    /// Starts a builder preloaded with the defaults.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder::default()
    }

    /// Worker-pool sizing for batch runs (default [`Workers::Auto`]).
    pub fn workers(&self) -> Workers {
        self.workers
    }

    /// Scheduler chunk-claim size override; `None` (the default) keeps
    /// the built-in heuristic. The chunk size never affects reported
    /// values (the determinism contract of [`crate::batch`]), only how
    /// many items a worker claims per atomic operation.
    pub fn chunk_size(&self) -> Option<usize> {
        self.chunk_size
    }

    /// Lock-stripe count of memo caches built from this config (default
    /// [`DEFAULT_SHARDS`]).
    pub fn memo_shards(&self) -> usize {
        self.memo_shards
    }

    /// Total entry budget of memo caches built from this config —
    /// doubling as the per-tenant eviction budget in `pdn-serve`
    /// (default [`DEFAULT_CAPACITY`]).
    pub fn memo_capacity(&self) -> usize {
        self.memo_capacity
    }

    /// Bound on the serve daemon's admission queue; requests beyond it
    /// are shed with an `Overloaded` error (default
    /// [`DEFAULT_ADMISSION_DEPTH`]).
    pub fn admission_depth(&self) -> usize {
        self.admission_depth
    }

    /// Builds a [`MemoCache`] with this config's shard count and
    /// capacity budget.
    pub fn memo_cache(&self) -> MemoCache {
        MemoCache::with_shards(self.memo_shards, self.memo_capacity)
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfigBuilder::default().build().expect("defaults are valid")
    }
}

/// Builder for [`EngineConfig`]; see the module docs.
#[derive(Debug, Clone)]
pub struct EngineConfigBuilder {
    workers: Workers,
    chunk_size: Option<usize>,
    memo_shards: usize,
    memo_capacity: usize,
    admission_depth: usize,
}

impl Default for EngineConfigBuilder {
    fn default() -> Self {
        Self {
            workers: Workers::Auto,
            chunk_size: None,
            memo_shards: DEFAULT_SHARDS,
            memo_capacity: DEFAULT_CAPACITY,
            admission_depth: DEFAULT_ADMISSION_DEPTH,
        }
    }
}

impl EngineConfigBuilder {
    /// Sets the worker-pool sizing.
    pub fn workers(mut self, workers: Workers) -> Self {
        self.workers = workers;
        self
    }

    /// Overrides the scheduler's chunk-claim size (must be ≥ 1).
    pub fn chunk_size(mut self, chunk: usize) -> Self {
        self.chunk_size = Some(chunk);
        self
    }

    /// Sets the memo-cache shard count (must be ≥ 1).
    pub fn memo_shards(mut self, shards: usize) -> Self {
        self.memo_shards = shards;
        self
    }

    /// Sets the memo-cache total entry budget (must be ≥ 1).
    pub fn memo_capacity(mut self, capacity: usize) -> Self {
        self.memo_capacity = capacity;
        self
    }

    /// Sets the admission-queue bound (must be ≥ 1).
    pub fn admission_depth(mut self, depth: usize) -> Self {
        self.admission_depth = depth;
        self
    }

    /// Validates and freezes the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::Scenario`] naming the offending knob when a
    /// value is out of range (`Fixed(0)` workers, a zero chunk size,
    /// zero memo shards or capacity, a zero admission depth).
    pub fn build(self) -> Result<EngineConfig, PdnError> {
        if self.workers == Workers::Fixed(0) {
            return Err(PdnError::Scenario(
                "EngineConfig: workers must be Fixed(n >= 1), Serial, or Auto".into(),
            ));
        }
        if self.chunk_size == Some(0) {
            return Err(PdnError::Scenario("EngineConfig: chunk_size must be >= 1".into()));
        }
        if self.memo_shards == 0 {
            return Err(PdnError::Scenario("EngineConfig: memo_shards must be >= 1".into()));
        }
        if self.memo_capacity == 0 {
            return Err(PdnError::Scenario("EngineConfig: memo_capacity must be >= 1".into()));
        }
        if self.admission_depth == 0 {
            return Err(PdnError::Scenario("EngineConfig: admission_depth must be >= 1".into()));
        }
        Ok(EngineConfig {
            workers: self.workers,
            chunk_size: self.chunk_size,
            memo_shards: self.memo_shards,
            memo_capacity: self.memo_capacity,
            admission_depth: self.admission_depth,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorCode;

    #[test]
    fn defaults_build_and_expose_every_knob() {
        let cfg = EngineConfig::default();
        assert_eq!(cfg.workers(), Workers::Auto);
        assert_eq!(cfg.chunk_size(), None);
        assert_eq!(cfg.memo_shards(), DEFAULT_SHARDS);
        assert_eq!(cfg.memo_capacity(), DEFAULT_CAPACITY);
        assert_eq!(cfg.admission_depth(), DEFAULT_ADMISSION_DEPTH);
        let cache = cfg.memo_cache();
        assert_eq!(cache.shard_count(), DEFAULT_SHARDS);
        assert_eq!(cache.capacity(), DEFAULT_CAPACITY);
    }

    #[test]
    fn builder_round_trips_every_knob() {
        let cfg = EngineConfig::builder()
            .workers(Workers::Fixed(3))
            .chunk_size(4)
            .memo_shards(8)
            .memo_capacity(256)
            .admission_depth(32)
            .build()
            .unwrap();
        assert_eq!(cfg.workers(), Workers::Fixed(3));
        assert_eq!(cfg.chunk_size(), Some(4));
        assert_eq!(cfg.memo_shards(), 8);
        assert_eq!(cfg.memo_capacity(), 256);
        assert_eq!(cfg.admission_depth(), 32);
        assert_eq!(cfg.memo_cache().shard_count(), 8);
    }

    #[test]
    fn invalid_knobs_are_rejected_by_name() {
        let cases: Vec<(EngineConfigBuilder, &str)> = vec![
            (EngineConfig::builder().workers(Workers::Fixed(0)), "workers"),
            (EngineConfig::builder().chunk_size(0), "chunk_size"),
            (EngineConfig::builder().memo_shards(0), "memo_shards"),
            (EngineConfig::builder().memo_capacity(0), "memo_capacity"),
            (EngineConfig::builder().admission_depth(0), "admission_depth"),
        ];
        for (builder, knob) in cases {
            let err = builder.build().unwrap_err();
            assert_eq!(err.code(), ErrorCode::Scenario);
            assert!(err.to_string().contains(knob), "{err} should name {knob}");
        }
    }
}
