//! One validated configuration object for the evaluation engine.
//!
//! Before this module, the engine's knobs were free-floating parameters
//! scattered across call sites: a [`Workers`] argument here, a memo
//! capacity there, a hard-coded chunk heuristic inside the scheduler,
//! and (with `pdn-serve`) an admission-queue depth that had nowhere to
//! live at all. [`EngineConfig`] consolidates them behind one
//! builder-style API with a validated [`build`](EngineConfigBuilder::build):
//! every consumer — the unified [`crate::batch::evaluate`] entry point,
//! the sweep helpers, and the serve daemon — reads the same struct, and
//! an invalid combination is rejected once, at construction, instead of
//! panicking mid-campaign.
//!
//! ```
//! use pdnspot::prelude::*;
//!
//! let cfg = EngineConfig::builder()
//!     .workers(Workers::Fixed(4))
//!     .memo_capacity(1 << 14)
//!     .build()?;
//! assert_eq!(cfg.workers(), Workers::Fixed(4));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::batch::Workers;
use crate::error::PdnError;
use crate::memo::{MemoCache, DEFAULT_CAPACITY, DEFAULT_SHARDS};
use serde::{Deserialize, Serialize};

/// Default bound on the serve daemon's admission queue
/// ([`EngineConfig::admission_depth`]).
pub const DEFAULT_ADMISSION_DEPTH: usize = 1024;

/// Default queue-age shedding threshold in milliseconds
/// ([`EngineConfig::shed_age_ms`]).
pub const DEFAULT_SHED_AGE_MS: u64 = 2_000;

/// Default per-connection response buffer, in responses
/// ([`EngineConfig::write_buffer`]).
pub const DEFAULT_WRITE_BUFFER: usize = 128;

/// Default per-connection write deadline in milliseconds
/// ([`EngineConfig::write_timeout_ms`]).
pub const DEFAULT_WRITE_TIMEOUT_MS: u64 = 2_000;

/// Validated engine configuration (see the module docs).
///
/// Construct with [`EngineConfig::builder`]; [`EngineConfig::default`]
/// is the validated all-defaults configuration. The struct is plain data
/// — cloning is cheap and it is `Send + Sync`, so one instance can be
/// shared by every worker of a daemon.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineConfig {
    workers: Workers,
    chunk_size: Option<usize>,
    memo_shards: usize,
    memo_capacity: usize,
    admission_depth: usize,
    shed_age_ms: u64,
    tenant_quota: usize,
    write_buffer: usize,
    write_timeout_ms: u64,
}

impl EngineConfig {
    /// Starts a builder preloaded with the defaults.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder::default()
    }

    /// Worker-pool sizing for batch runs (default [`Workers::Auto`]).
    pub fn workers(&self) -> Workers {
        self.workers
    }

    /// Scheduler chunk-claim size override; `None` (the default) keeps
    /// the built-in heuristic. The chunk size never affects reported
    /// values (the determinism contract of [`crate::batch`]), only how
    /// many items a worker claims per atomic operation.
    pub fn chunk_size(&self) -> Option<usize> {
        self.chunk_size
    }

    /// Lock-stripe count of memo caches built from this config (default
    /// [`DEFAULT_SHARDS`]).
    pub fn memo_shards(&self) -> usize {
        self.memo_shards
    }

    /// Total entry budget of memo caches built from this config —
    /// doubling as the per-tenant eviction budget in `pdn-serve`
    /// (default [`DEFAULT_CAPACITY`]).
    pub fn memo_capacity(&self) -> usize {
        self.memo_capacity
    }

    /// Bound on the serve daemon's admission queue; requests beyond it
    /// are shed with an `Overloaded` error (default
    /// [`DEFAULT_ADMISSION_DEPTH`]).
    pub fn admission_depth(&self) -> usize {
        self.admission_depth
    }

    /// Queue-age load-shedding threshold in milliseconds: the serve
    /// dispatcher sheds (answers `Overloaded` with a `RetryAfter` hint)
    /// any admitted request that waited longer than this before being
    /// dispatched, instead of burning capacity on work the client has
    /// likely given up on. `0` disables age shedding (default
    /// [`DEFAULT_SHED_AGE_MS`]).
    pub fn shed_age_ms(&self) -> u64 {
        self.shed_age_ms
    }

    /// Per-tenant admission budget: the most requests one tenant may
    /// hold in the admission queue at once. `0` (the default) derives
    /// the budget from the depth — see
    /// [`EngineConfig::tenant_quota_for`].
    pub fn tenant_quota(&self) -> usize {
        self.tenant_quota
    }

    /// The effective per-tenant admission budget for a queue of
    /// `depth`: the configured [`EngineConfig::tenant_quota`], or
    /// `max(1, depth / 4)` when unset — one noisy tenant can fill at
    /// most a quarter of the queue before being shed, leaving room for
    /// everyone else.
    pub fn tenant_quota_for(&self, depth: usize) -> usize {
        match self.tenant_quota {
            0 => (depth / 4).max(1),
            quota => quota.min(depth),
        }
    }

    /// Bound on one connection's buffered responses (the slow-client
    /// defense): the dispatcher never blocks on a stalled client —
    /// past this many undelivered responses the connection is evicted
    /// (default [`DEFAULT_WRITE_BUFFER`]).
    pub fn write_buffer(&self) -> usize {
        self.write_buffer
    }

    /// Per-connection socket write deadline in milliseconds; a client
    /// that stalls a single frame write longer than this is evicted
    /// (default [`DEFAULT_WRITE_TIMEOUT_MS`]).
    pub fn write_timeout_ms(&self) -> u64 {
        self.write_timeout_ms
    }

    /// Builds a [`MemoCache`] with this config's shard count and
    /// capacity budget.
    pub fn memo_cache(&self) -> MemoCache {
        MemoCache::with_shards(self.memo_shards, self.memo_capacity)
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfigBuilder::default().build().expect("defaults are valid")
    }
}

/// Builder for [`EngineConfig`]; see the module docs.
#[derive(Debug, Clone)]
pub struct EngineConfigBuilder {
    workers: Workers,
    chunk_size: Option<usize>,
    memo_shards: usize,
    memo_capacity: usize,
    admission_depth: usize,
    shed_age_ms: u64,
    tenant_quota: usize,
    write_buffer: usize,
    write_timeout_ms: u64,
}

impl Default for EngineConfigBuilder {
    fn default() -> Self {
        Self {
            workers: Workers::Auto,
            chunk_size: None,
            memo_shards: DEFAULT_SHARDS,
            memo_capacity: DEFAULT_CAPACITY,
            admission_depth: DEFAULT_ADMISSION_DEPTH,
            shed_age_ms: DEFAULT_SHED_AGE_MS,
            tenant_quota: 0,
            write_buffer: DEFAULT_WRITE_BUFFER,
            write_timeout_ms: DEFAULT_WRITE_TIMEOUT_MS,
        }
    }
}

impl EngineConfigBuilder {
    /// Sets the worker-pool sizing.
    pub fn workers(mut self, workers: Workers) -> Self {
        self.workers = workers;
        self
    }

    /// Overrides the scheduler's chunk-claim size (must be ≥ 1).
    pub fn chunk_size(mut self, chunk: usize) -> Self {
        self.chunk_size = Some(chunk);
        self
    }

    /// Sets the memo-cache shard count (must be ≥ 1).
    pub fn memo_shards(mut self, shards: usize) -> Self {
        self.memo_shards = shards;
        self
    }

    /// Sets the memo-cache total entry budget (must be ≥ 1).
    pub fn memo_capacity(mut self, capacity: usize) -> Self {
        self.memo_capacity = capacity;
        self
    }

    /// Sets the admission-queue bound (must be ≥ 1).
    pub fn admission_depth(mut self, depth: usize) -> Self {
        self.admission_depth = depth;
        self
    }

    /// Sets the queue-age shedding threshold in milliseconds (`0`
    /// disables age shedding).
    pub fn shed_age_ms(mut self, ms: u64) -> Self {
        self.shed_age_ms = ms;
        self
    }

    /// Sets the per-tenant admission budget (`0` = derive from depth).
    pub fn tenant_quota(mut self, quota: usize) -> Self {
        self.tenant_quota = quota;
        self
    }

    /// Sets the per-connection response buffer bound (must be ≥ 1).
    pub fn write_buffer(mut self, responses: usize) -> Self {
        self.write_buffer = responses;
        self
    }

    /// Sets the per-connection write deadline in milliseconds (must be
    /// ≥ 1).
    pub fn write_timeout_ms(mut self, ms: u64) -> Self {
        self.write_timeout_ms = ms;
        self
    }

    /// Validates and freezes the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::Scenario`] naming the offending knob when a
    /// value is out of range (`Fixed(0)` workers, a zero chunk size,
    /// zero memo shards or capacity, a zero admission depth).
    pub fn build(self) -> Result<EngineConfig, PdnError> {
        if self.workers == Workers::Fixed(0) {
            return Err(PdnError::Scenario(
                "EngineConfig: workers must be Fixed(n >= 1), Serial, or Auto".into(),
            ));
        }
        if self.chunk_size == Some(0) {
            return Err(PdnError::Scenario("EngineConfig: chunk_size must be >= 1".into()));
        }
        if self.memo_shards == 0 {
            return Err(PdnError::Scenario("EngineConfig: memo_shards must be >= 1".into()));
        }
        if self.memo_capacity == 0 {
            return Err(PdnError::Scenario("EngineConfig: memo_capacity must be >= 1".into()));
        }
        if self.admission_depth == 0 {
            return Err(PdnError::Scenario("EngineConfig: admission_depth must be >= 1".into()));
        }
        if self.write_buffer == 0 {
            return Err(PdnError::Scenario("EngineConfig: write_buffer must be >= 1".into()));
        }
        if self.write_timeout_ms == 0 {
            return Err(PdnError::Scenario("EngineConfig: write_timeout_ms must be >= 1".into()));
        }
        Ok(EngineConfig {
            workers: self.workers,
            chunk_size: self.chunk_size,
            memo_shards: self.memo_shards,
            memo_capacity: self.memo_capacity,
            admission_depth: self.admission_depth,
            shed_age_ms: self.shed_age_ms,
            tenant_quota: self.tenant_quota,
            write_buffer: self.write_buffer,
            write_timeout_ms: self.write_timeout_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorCode;

    #[test]
    fn defaults_build_and_expose_every_knob() {
        let cfg = EngineConfig::default();
        assert_eq!(cfg.workers(), Workers::Auto);
        assert_eq!(cfg.chunk_size(), None);
        assert_eq!(cfg.memo_shards(), DEFAULT_SHARDS);
        assert_eq!(cfg.memo_capacity(), DEFAULT_CAPACITY);
        assert_eq!(cfg.admission_depth(), DEFAULT_ADMISSION_DEPTH);
        assert_eq!(cfg.shed_age_ms(), DEFAULT_SHED_AGE_MS);
        assert_eq!(cfg.tenant_quota(), 0, "0 = derive from depth");
        assert_eq!(cfg.write_buffer(), DEFAULT_WRITE_BUFFER);
        assert_eq!(cfg.write_timeout_ms(), DEFAULT_WRITE_TIMEOUT_MS);
        let cache = cfg.memo_cache();
        assert_eq!(cache.shard_count(), DEFAULT_SHARDS);
        assert_eq!(cache.capacity(), DEFAULT_CAPACITY);
    }

    #[test]
    fn builder_round_trips_every_knob() {
        let cfg = EngineConfig::builder()
            .workers(Workers::Fixed(3))
            .chunk_size(4)
            .memo_shards(8)
            .memo_capacity(256)
            .admission_depth(32)
            .shed_age_ms(500)
            .tenant_quota(7)
            .write_buffer(16)
            .write_timeout_ms(250)
            .build()
            .unwrap();
        assert_eq!(cfg.workers(), Workers::Fixed(3));
        assert_eq!(cfg.chunk_size(), Some(4));
        assert_eq!(cfg.memo_shards(), 8);
        assert_eq!(cfg.memo_capacity(), 256);
        assert_eq!(cfg.admission_depth(), 32);
        assert_eq!(cfg.shed_age_ms(), 500);
        assert_eq!(cfg.tenant_quota(), 7);
        assert_eq!(cfg.write_buffer(), 16);
        assert_eq!(cfg.write_timeout_ms(), 250);
        assert_eq!(cfg.memo_cache().shard_count(), 8);
    }

    #[test]
    fn invalid_knobs_are_rejected_by_name() {
        let cases: Vec<(EngineConfigBuilder, &str)> = vec![
            (EngineConfig::builder().workers(Workers::Fixed(0)), "workers"),
            (EngineConfig::builder().chunk_size(0), "chunk_size"),
            (EngineConfig::builder().memo_shards(0), "memo_shards"),
            (EngineConfig::builder().memo_capacity(0), "memo_capacity"),
            (EngineConfig::builder().admission_depth(0), "admission_depth"),
            (EngineConfig::builder().write_buffer(0), "write_buffer"),
            (EngineConfig::builder().write_timeout_ms(0), "write_timeout_ms"),
        ];
        for (builder, knob) in cases {
            let err = builder.build().unwrap_err();
            assert_eq!(err.code(), ErrorCode::Scenario);
            assert!(err.to_string().contains(knob), "{err} should name {knob}");
        }
    }

    #[test]
    fn tenant_quota_derivation_and_clamping() {
        let auto = EngineConfig::default();
        assert_eq!(auto.tenant_quota_for(1024), 256, "auto = depth / 4");
        assert_eq!(auto.tenant_quota_for(2), 1, "auto never reaches zero");
        let fixed = EngineConfig::builder().tenant_quota(100).build().unwrap();
        assert_eq!(fixed.tenant_quota_for(1024), 100);
        assert_eq!(fixed.tenant_quota_for(8), 8, "quota is clamped to the depth");
    }
}
