//! Deterministic parallel evaluation of PDN design-space lattices.
//!
//! Every figure in the paper is a fan-out: the same scenario lattice
//! (TDP × workload type × AR, plus idle power states) evaluated across
//! several PDN topologies. Building one scenario is expensive — the
//! Fig. 4 fixed-TDP-frequency operating point runs a 48-step bisection
//! whose every probe constructs a full [`Scenario`] — while each PDN
//! evaluation of a finished scenario is cheap. This module exploits both
//! facts:
//!
//! * a shared [scenario cache](ScenarioCache) guarantees each lattice
//!   **row** — one varying innermost axis, every other coordinate fixed —
//!   is built **exactly once** no matter how many PDNs or threads consume
//!   it, with the row-invariant front half (bisection solve, virus
//!   tables, per-domain hoists) computed once per row;
//! * a scoped-thread worker pool (sized from
//!   [`std::thread::available_parallelism`]) fans the `pdn × row`
//!   task lattice out — each task runs the row kernel
//!   ([`Pdn::evaluate_row`]) with a task-local lock-free
//!   [`RowStage`] — and merges per-point results back into **stable
//!   lattice order**, so parallel and serial runs return bit-identical
//!   values;
//! * failures are captured **per point** — a scenario the solver cannot
//!   bracket or a regulator that rejects an operating point records its
//!   lattice coordinates ([`PdnError::Lattice`]) instead of aborting the
//!   campaign;
//! * [`BatchStats`] reports points evaluated, scenario-cache hit rate,
//!   and per-worker wall time, and is printed by the figure binaries.
//!
//! # Determinism contract
//!
//! For a fixed grid, PDN set, and provider, [`evaluate`] returns the
//! same [`BatchOutcome::evaluations`] (same order, same floating-point
//! bits) for every [`Workers`] and chunk-size choice in the
//! [`EngineConfig`]. Scheduling only changes *which thread* computes a
//! task, never the arithmetic: tasks share no mutable state besides the
//! write-once scenario cache, and results are merged by task index.
//! Only [`BatchStats`] (timings, worker count) varies between runs.

use crate::config::EngineConfig;
use crate::error::PdnError;
use crate::etee::{PdnEvaluation, RowStage};
use crate::memo::MemoCache;
use crate::scenario::{DomainLoad, Scenario};
use crate::topology::Pdn;
use pdn_proc::{DomainTable, PackageCState, SocSpec};
use pdn_units::{ApplicationRatio, Watts};
use pdn_workload::WorkloadType;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// A source of SoC specifications, one per TDP design point.
///
/// The sweep and batch APIs previously took ad-hoc
/// `impl Fn(Watts) -> SocSpec` closures; this trait names that contract
/// once. A blanket impl covers plain closures and functions (so
/// `pdn_proc::client_soc` still works verbatim), and [`ClientSoc`] is
/// the named provider for the paper's client SoC family.
///
/// Providers must be [`Sync`]: the batch engine shares one provider
/// across its worker threads.
pub trait SocProvider: Sync {
    /// Builds the SoC specification of the `tdp` design point.
    fn soc_for(&self, tdp: Watts) -> SocSpec;
}

impl<F: Fn(Watts) -> SocSpec + Sync> SocProvider for F {
    fn soc_for(&self, tdp: Watts) -> SocSpec {
        self(tdp)
    }
}

/// The paper's client SoC family ([`pdn_proc::client_soc`]) as a named
/// provider.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientSoc;

impl SocProvider for ClientSoc {
    fn soc_for(&self, tdp: Watts) -> SocSpec {
        pdn_proc::client_soc(tdp)
    }
}

/// A design-space lattice: the cartesian axes every batch campaign
/// sweeps.
///
/// Active points span TDP × workload type × AR at the Fig. 4
/// fixed-TDP-frequency operating points; idle points span TDP × package
/// C-state. Build one with [`SweepGrid::active`] or
/// [`SweepGrid::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    tdps: Vec<f64>,
    workload_types: Vec<WorkloadType>,
    ars: Vec<f64>,
    idle_states: Vec<PackageCState>,
}

/// Incremental constructor for [`SweepGrid`] (see
/// [`SweepGrid::builder`]).
#[derive(Debug, Clone, Default)]
pub struct SweepGridBuilder {
    tdps: Vec<f64>,
    workload_types: Vec<WorkloadType>,
    ars: Vec<f64>,
    idle_states: Vec<PackageCState>,
}

impl SweepGridBuilder {
    /// Sets the TDP axis (watts).
    #[must_use]
    pub fn tdps(mut self, tdps: &[f64]) -> Self {
        self.tdps = tdps.to_vec();
        self
    }

    /// Sets the workload-type axis of the active sub-lattice.
    #[must_use]
    pub fn workload_types(mut self, types: &[WorkloadType]) -> Self {
        self.workload_types = types.to_vec();
        self
    }

    /// Sets the AR axis of the active sub-lattice (fractions).
    #[must_use]
    pub fn ars(mut self, ars: &[f64]) -> Self {
        self.ars = ars.to_vec();
        self
    }

    /// Sets the package power-state axis of the idle sub-lattice.
    #[must_use]
    pub fn idle_states(mut self, states: &[PackageCState]) -> Self {
        self.idle_states = states.to_vec();
        self
    }

    /// Validates the axes and builds the grid.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::Scenario`] if the TDP axis is empty or
    /// non-positive/non-finite, an AR is invalid, or the grid contains
    /// no point at all (no workload × AR pair and no idle state).
    pub fn build(self) -> Result<SweepGrid, PdnError> {
        if self.tdps.is_empty() {
            return Err(PdnError::Scenario("sweep grid needs at least one TDP".into()));
        }
        for &tdp in &self.tdps {
            if !tdp.is_finite() || tdp <= 0.0 {
                return Err(PdnError::Scenario(format!("invalid TDP {tdp} in sweep grid")));
            }
        }
        for &ar in &self.ars {
            ApplicationRatio::new(ar).map_err(PdnError::Units)?;
        }
        let has_active = !self.workload_types.is_empty() && !self.ars.is_empty();
        if !has_active && self.idle_states.is_empty() {
            return Err(PdnError::Scenario(
                "sweep grid is empty: provide workload types and ARs, or idle states".into(),
            ));
        }
        Ok(SweepGrid {
            tdps: self.tdps,
            workload_types: self.workload_types,
            ars: self.ars,
            idle_states: self.idle_states,
        })
    }
}

impl SweepGrid {
    /// Starts an empty builder.
    pub fn builder() -> SweepGridBuilder {
        SweepGridBuilder::default()
    }

    /// An active-only grid over TDP × workload type × AR.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::Scenario`] on empty or invalid axes.
    pub fn active(
        tdps: &[f64],
        workload_types: &[WorkloadType],
        ars: &[f64],
    ) -> Result<Self, PdnError> {
        Self::builder().tdps(tdps).workload_types(workload_types).ars(ars).build()
    }

    /// The TDP axis (watts).
    pub fn tdps(&self) -> &[f64] {
        &self.tdps
    }

    /// The workload-type axis.
    pub fn workload_types(&self) -> &[WorkloadType] {
        &self.workload_types
    }

    /// The AR axis (fractions).
    pub fn ars(&self) -> &[f64] {
        &self.ars
    }

    /// The idle power-state axis.
    pub fn idle_states(&self) -> &[PackageCState] {
        &self.idle_states
    }

    /// Number of points in the active sub-lattice.
    pub fn n_active(&self) -> usize {
        self.tdps.len() * self.workload_types.len() * self.ars.len()
    }

    /// Total number of lattice points.
    pub fn n_points(&self) -> usize {
        self.n_active() + self.tdps.len() * self.idle_states.len()
    }

    /// Enumerates the lattice in its canonical order: active points
    /// TDP-major (TDP, then workload type, then AR), followed by idle
    /// points (TDP, then power state). Batch results follow this order.
    pub fn points(&self) -> Vec<LatticePoint> {
        (0..self.n_points()).map(|idx| self.point_at(idx)).collect()
    }

    /// The lattice point at position `idx` of the [`SweepGrid::points`]
    /// order, recovered by index arithmetic. The batch engine walks the
    /// lattice through this accessor, so a campaign never materialises
    /// the point list (let alone the `pdn × point` task list).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.n_points()`.
    pub fn point_at(&self, idx: usize) -> LatticePoint {
        assert!(idx < self.n_points(), "lattice index {idx} out of range");
        let n_active = self.n_active();
        if idx < n_active {
            let per_tdp = self.workload_types.len() * self.ars.len();
            let rem = idx % per_tdp;
            LatticePoint::Active {
                tdp_idx: idx / per_tdp,
                wl_idx: rem / self.ars.len(),
                ar_idx: rem % self.ars.len(),
            }
        } else {
            let rem = idx - n_active;
            LatticePoint::Idle {
                tdp_idx: rem / self.idle_states.len(),
                state_idx: rem % self.idle_states.len(),
            }
        }
    }

    /// Human-readable coordinates of a point (used in
    /// [`PdnError::Lattice`]).
    pub fn describe(&self, point: LatticePoint) -> String {
        match point {
            LatticePoint::Active { tdp_idx, wl_idx, ar_idx } => format!(
                "tdp={}W wl={} ar={:.2}",
                self.tdps[tdp_idx], self.workload_types[wl_idx], self.ars[ar_idx]
            ),
            LatticePoint::Idle { tdp_idx, state_idx } => {
                format!("tdp={}W state={}", self.tdps[tdp_idx], self.idle_states[state_idx])
            }
        }
    }

    /// Number of active rows (TDP × workload type, each spanning the AR
    /// axis). Zero when the active sub-lattice is empty.
    pub fn n_active_rows(&self) -> usize {
        if self.n_active() == 0 {
            0
        } else {
            self.tdps.len() * self.workload_types.len()
        }
    }

    /// Number of idle rows (one per TDP, each spanning the power-state
    /// axis). Zero when the idle sub-lattice is empty.
    pub fn n_idle_rows(&self) -> usize {
        if self.idle_states.is_empty() {
            0
        } else {
            self.tdps.len()
        }
    }

    /// Total number of lattice rows. Every point belongs to exactly one
    /// row, and walking the rows in index order visits the points in
    /// their canonical [`SweepGrid::points`] order.
    pub fn n_rows(&self) -> usize {
        self.n_active_rows() + self.n_idle_rows()
    }

    /// The row at position `idx`: active rows first (TDP-major, then
    /// workload type), then one idle row per TDP.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.n_rows()`.
    pub fn row_at(&self, idx: usize) -> LatticeRow {
        assert!(idx < self.n_rows(), "lattice row index {idx} out of range");
        let n_active_rows = self.n_active_rows();
        if idx < n_active_rows {
            LatticeRow::Active {
                tdp_idx: idx / self.workload_types.len(),
                wl_idx: idx % self.workload_types.len(),
            }
        } else {
            LatticeRow::Idle { tdp_idx: idx - n_active_rows }
        }
    }

    /// The contiguous range of [`SweepGrid::points`] indices a row
    /// covers: active rows span the AR axis, idle rows the power-state
    /// axis.
    pub fn row_span(&self, row: LatticeRow) -> std::ops::Range<usize> {
        match row {
            LatticeRow::Active { tdp_idx, wl_idx } => {
                let start = (tdp_idx * self.workload_types.len() + wl_idx) * self.ars.len();
                start..start + self.ars.len()
            }
            LatticeRow::Idle { tdp_idx } => {
                let start = self.n_active() + tdp_idx * self.idle_states.len();
                start..start + self.idle_states.len()
            }
        }
    }

    /// Human-readable coordinates of a row (the varying axis shown as
    /// `*`), used in [`PdnError::Lattice`] for row-level build failures.
    pub fn describe_row(&self, row: LatticeRow) -> String {
        match row {
            LatticeRow::Active { tdp_idx, wl_idx } => {
                format!("tdp={}W wl={} ar=*", self.tdps[tdp_idx], self.workload_types[wl_idx])
            }
            LatticeRow::Idle { tdp_idx } => format!("tdp={}W state=*", self.tdps[tdp_idx]),
        }
    }

    /// The position of `point` in the [`SweepGrid::points`] order — the
    /// inverse of [`SweepGrid::point_at`].
    ///
    /// # Panics
    ///
    /// Panics if any coordinate of `point` is out of range for this
    /// grid's axes.
    pub fn point_index(&self, point: LatticePoint) -> usize {
        match point {
            LatticePoint::Active { tdp_idx, wl_idx, ar_idx } => {
                assert!(
                    tdp_idx < self.tdps.len()
                        && wl_idx < self.workload_types.len()
                        && ar_idx < self.ars.len(),
                    "active point {point:?} out of range"
                );
                (tdp_idx * self.workload_types.len() + wl_idx) * self.ars.len() + ar_idx
            }
            LatticePoint::Idle { tdp_idx, state_idx } => {
                assert!(
                    tdp_idx < self.tdps.len() && state_idx < self.idle_states.len(),
                    "idle point {point:?} out of range"
                );
                self.n_active() + tdp_idx * self.idle_states.len() + state_idx
            }
        }
    }

    /// Computes the dirtied sub-lattice between this grid and `old`: the
    /// per-axis indices at which the two grids disagree. `self` is the
    /// *new* grid (the one a delta re-sweep evaluates); `old` is the grid
    /// a prior campaign ran on.
    ///
    /// Axes are compared pointwise and exactly (`f64` values by their
    /// bits), so any change an evaluation could observe marks the index
    /// dirty. An axis whose *length* changed cannot be aligned pointwise
    /// and is marked fully dirty — every index of the new axis — which
    /// makes every point touching it dirty and leaves nothing stale to
    /// reuse.
    pub fn diff(&self, old: &SweepGrid) -> GridDelta {
        fn dirty_by<T>(new: &[T], old: &[T], same: impl Fn(&T, &T) -> bool) -> Vec<usize> {
            if new.len() != old.len() {
                return (0..new.len()).collect();
            }
            new.iter()
                .zip(old)
                .enumerate()
                .filter_map(|(i, (n, o))| (!same(n, o)).then_some(i))
                .collect()
        }
        GridDelta {
            tdps: dirty_by(&self.tdps, &old.tdps, |a, b| a.to_bits() == b.to_bits()),
            workload_types: dirty_by(&self.workload_types, &old.workload_types, |a, b| a == b),
            ars: dirty_by(&self.ars, &old.ars, |a, b| a.to_bits() == b.to_bits()),
            idle_states: dirty_by(&self.idle_states, &old.idle_states, |a, b| a == b),
        }
    }
}

/// The dirtied slab between two [`SweepGrid`]s, as computed by
/// [`SweepGrid::diff`]: the per-axis indices whose values changed.
///
/// A lattice point is **dirty** — its prior evaluation is stale — when
/// any of its coordinates lands on a dirty axis index. The dirty set is
/// therefore a union of axis-aligned slabs (one per dirty index), which
/// [`evaluate_delta`] re-evaluates without touching the clean remainder.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GridDelta {
    /// Dirty indices into the new grid's TDP axis (sorted).
    tdps: Vec<usize>,
    /// Dirty indices into the new grid's workload-type axis (sorted).
    workload_types: Vec<usize>,
    /// Dirty indices into the new grid's AR axis (sorted).
    ars: Vec<usize>,
    /// Dirty indices into the new grid's idle-state axis (sorted).
    idle_states: Vec<usize>,
}

impl GridDelta {
    /// Whether the delta is empty (the grids were identical; nothing to
    /// re-evaluate).
    pub fn is_empty(&self) -> bool {
        self.tdps.is_empty()
            && self.workload_types.is_empty()
            && self.ars.is_empty()
            && self.idle_states.is_empty()
    }

    /// Whether `point` is dirty under this delta.
    pub fn contains(&self, point: LatticePoint) -> bool {
        match point {
            LatticePoint::Active { tdp_idx, wl_idx, ar_idx } => {
                self.tdps.contains(&tdp_idx)
                    || self.workload_types.contains(&wl_idx)
                    || self.ars.contains(&ar_idx)
            }
            LatticePoint::Idle { tdp_idx, state_idx } => {
                self.tdps.contains(&tdp_idx) || self.idle_states.contains(&state_idx)
            }
        }
    }

    /// Number of dirty points of `grid` (per PDN).
    pub fn n_dirty_points(&self, grid: &SweepGrid) -> usize {
        let clean_t = grid.tdps.len() - self.tdps.len();
        let clean_active = if grid.n_active() == 0 {
            0
        } else {
            clean_t
                * (grid.workload_types.len() - self.workload_types.len())
                * (grid.ars.len() - self.ars.len())
        };
        let clean_idle = clean_t * (grid.idle_states.len() - self.idle_states.len());
        grid.n_points() - clean_active - clean_idle
    }
}

/// Coordinates of one point in a [`SweepGrid`] lattice (indices into the
/// grid's axes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LatticePoint {
    /// An active operating point.
    Active {
        /// Index into [`SweepGrid::tdps`].
        tdp_idx: usize,
        /// Index into [`SweepGrid::workload_types`].
        wl_idx: usize,
        /// Index into [`SweepGrid::ars`].
        ar_idx: usize,
    },
    /// An idle (package C-state) point.
    Idle {
        /// Index into [`SweepGrid::tdps`].
        tdp_idx: usize,
        /// Index into [`SweepGrid::idle_states`].
        state_idx: usize,
    },
}

impl LatticePoint {
    /// The TDP-axis index of the point.
    pub fn tdp_idx(self) -> usize {
        match self {
            LatticePoint::Active { tdp_idx, .. } | LatticePoint::Idle { tdp_idx, .. } => tdp_idx,
        }
    }
}

/// Coordinates of one row in a [`SweepGrid`] lattice: every axis fixed
/// except the innermost one (AR for active rows, power state for idle
/// rows), which the row kernel sweeps in one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LatticeRow {
    /// An active row: one (TDP, workload type) pair across the AR axis.
    Active {
        /// Index into [`SweepGrid::tdps`].
        tdp_idx: usize,
        /// Index into [`SweepGrid::workload_types`].
        wl_idx: usize,
    },
    /// An idle row: one TDP across the power-state axis.
    Idle {
        /// Index into [`SweepGrid::tdps`].
        tdp_idx: usize,
    },
}

impl LatticeRow {
    /// The TDP-axis index of the row.
    pub fn tdp_idx(self) -> usize {
        match self {
            LatticeRow::Active { tdp_idx, .. } | LatticeRow::Idle { tdp_idx } => tdp_idx,
        }
    }
}

/// Worker-pool sizing for batch runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Workers {
    /// One worker per available hardware thread (capped at the task
    /// count).
    #[default]
    Auto,
    /// Single-threaded execution on the calling thread (the reference
    /// path of the determinism contract).
    Serial,
    /// Exactly this many workers (clamped to at least 1, at most the
    /// task count).
    Fixed(usize),
}

impl Workers {
    /// Resolves the worker count for `tasks` work items.
    pub fn count(self, tasks: usize) -> usize {
        let want = match self {
            Workers::Serial => 1,
            Workers::Fixed(n) => n.max(1),
            Workers::Auto => std::thread::available_parallelism().map(usize::from).unwrap_or(1),
        };
        want.min(tasks.max(1))
    }
}

/// Applies `f` to every item of `items` on a scoped worker pool,
/// returning results in item order.
///
/// This is the engine's scheduling primitive, exposed for other fan-outs
/// (the figure kernels and the runtime interval simulator use it
/// directly). Each worker owns a contiguous range of the items and pulls
/// chunks from it through an atomic claim cursor; a worker that drains
/// its range steals chunks from the other ranges, so uneven item costs
/// balance automatically while the common case — every worker busy on
/// its own range — needs no cross-worker traffic. Each worker collects
/// `(index, result)` pairs locally and the pairs are merged and sorted at
/// the end, which restores deterministic ordering regardless of
/// scheduling. `f` runs exactly once per item.
pub fn par_map<T, R, F>(items: &[T], workers: Workers, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_timed(items, workers, f).results
}

/// [`par_map`] plus a [`BatchStats`] record of the run — the
/// instrumented primitive for fan-outs with no scenario lattice (the
/// figure kernels and benches). Scenario-cache counters stay zero.
pub fn par_map_stats<T, R, F>(items: &[T], workers: Workers, f: F) -> (Vec<R>, BatchStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let start = Instant::now();
    let run = par_map_timed(items, workers, f);
    let stats = BatchStats {
        points: items.len(),
        evaluations: items.len(),
        failed: 0,
        scenario_builds: 0,
        scenario_lookups: 0,
        memo_hits: 0,
        memo_misses: 0,
        memo_evictions: 0,
        workers: run.worker_wall.len(),
        worker_stolen: run.worker_stolen,
        worker_idle_probes: run.worker_idle_probes,
        worker_wall: run.worker_wall,
        wall: start.elapsed(),
    };
    (run.results, stats)
}

/// The outcome of [`par_map_timed`]: ordered results plus scheduling
/// telemetry.
struct ParMapRun<R> {
    results: Vec<R>,
    worker_wall: Vec<Duration>,
    worker_stolen: Vec<usize>,
    worker_idle_probes: Vec<usize>,
}

/// [`par_map`] plus per-worker scheduling telemetry (the engine's
/// instrumented path). Thin slice adapter over [`par_map_run_indexed`].
fn par_map_timed<T, R, F>(items: &[T], workers: Workers, f: F) -> ParMapRun<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_run_indexed(items.len(), workers, None, |i| f(i, &items[i]))
}

/// The index-driven scheduling core: applies `f` to every index in
/// `0..n` on a scoped worker pool and returns the results in index
/// order. Fan-outs whose work items are pure index arithmetic (the
/// `pdn × point` lattice of [`evaluate`]) drive this directly
/// and never allocate a task list.
///
/// Scheduling: the indices are split into one contiguous range per
/// worker, each guarded by an atomic claim cursor. A worker claims
/// fixed-size chunks from its own range first (one relaxed `fetch_add`
/// per chunk, no sharing in the common case), then sweeps the other
/// ranges in ring order stealing whatever chunks remain. Cursors only
/// advance, so one sweep is exhaustive and every index is claimed
/// exactly once. Which worker computes an index never affects the
/// index's arithmetic, and the final index-keyed merge restores lattice
/// order — results are bit-identical for every worker count.
fn par_map_run_indexed<R, F>(
    n: usize,
    workers: Workers,
    chunk_override: Option<usize>,
    f: F,
) -> ParMapRun<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let n_workers = workers.count(n);
    if n_workers <= 1 {
        let start = Instant::now();
        let results = (0..n).map(&f).collect();
        return ParMapRun {
            results,
            worker_wall: vec![start.elapsed()],
            worker_stolen: vec![0],
            worker_idle_probes: vec![0],
        };
    }

    let base = n / n_workers;
    let extra = n % n_workers;
    let mut ranges: Vec<(AtomicUsize, usize)> = Vec::with_capacity(n_workers);
    let mut next_start = 0;
    for w in 0..n_workers {
        let len = base + usize::from(w < extra);
        ranges.push((AtomicUsize::new(next_start), next_start + len));
        next_start += len;
    }
    // Chunked claiming amortises the atomic over several items while
    // keeping the range tails small enough to steal. Chunk size affects
    // only claim granularity, never values (the determinism contract),
    // so an override is safe to expose as a tuning knob.
    let chunk = chunk_override.map_or_else(|| (base / 8).clamp(1, 16), |c| c.max(1));

    let (mut pairs, worker_wall, worker_stolen, worker_idle_probes) = std::thread::scope(|scope| {
        let ranges = &ranges;
        let f = &f;
        let handles: Vec<_> = (0..n_workers)
            .map(|w| {
                scope.spawn(move || {
                    let start = Instant::now();
                    let mut local = Vec::new();
                    let mut stolen = 0usize;
                    let mut idle_probes = 0usize;
                    for probe in 0..n_workers {
                        let victim = (w + probe) % n_workers;
                        let (cursor, end) = &ranges[victim];
                        let mut claimed_any = false;
                        loop {
                            let lo = cursor.fetch_add(chunk, Ordering::Relaxed);
                            if lo >= *end {
                                break;
                            }
                            let hi = (lo + chunk).min(*end);
                            claimed_any = true;
                            if probe > 0 {
                                stolen += hi - lo;
                            }
                            for i in lo..hi {
                                local.push((i, f(i)));
                            }
                        }
                        if probe > 0 && !claimed_any {
                            idle_probes += 1;
                        }
                    }
                    (local, stolen, idle_probes, start.elapsed())
                })
            })
            .collect();
        let mut pairs = Vec::with_capacity(n);
        let mut walls = Vec::with_capacity(n_workers);
        let mut stolen = Vec::with_capacity(n_workers);
        let mut idle = Vec::with_capacity(n_workers);
        for handle in handles {
            let (local, s, ip, wall) = handle.join().expect("batch worker panicked");
            pairs.extend(local);
            walls.push(wall);
            stolen.push(s);
            idle.push(ip);
        }
        (pairs, walls, stolen, idle)
    });
    pairs.sort_unstable_by_key(|&(i, _)| i);
    ParMapRun {
        results: pairs.into_iter().map(|(_, r)| r).collect(),
        worker_wall,
        worker_stolen,
        worker_idle_probes,
    }
}

/// The write-once scenario store shared by all workers of a batch run.
///
/// Indexed by lattice-row position (not floating-point keys), with a
/// per-TDP SoC sub-cache. [`OnceLock`] gives build-exactly-once
/// semantics: the first worker to need a row builds all of its
/// scenarios in one call through the row constructors (which hoist the
/// bisection solve, virus tables, and per-domain power terms out of the
/// per-point loop); concurrent requesters block until the row is ready,
/// and every later lookup is a hit.
struct ScenarioCache<'g, P: ?Sized> {
    grid: &'g SweepGrid,
    provider: &'g P,
    socs: Vec<OnceLock<SocSpec>>,
    /// Per-(TDP, workload type) fixed-TDP frequency scalars. The 48-step
    /// bisection behind [`Scenario::active_fixed_tdp_frequency`] is
    /// AR-independent, so a whole AR row shares one solve.
    solved_t: Vec<OnceLock<Result<f64, PdnError>>>,
    /// Per-TDP active-point (TDP-sized) virus load tables.
    active_virus: Vec<OnceLock<[DomainTable<DomainLoad>; 2]>>,
    /// Per-TDP idle-point (fmin-sized) virus load tables.
    idle_virus: Vec<OnceLock<[DomainTable<DomainLoad>; 2]>>,
    /// Validated AR axis plus each AR's formatted name suffix, built once
    /// per sweep: the fixed-precision float `Display` in a scenario name
    /// costs more than the rest of the point's construction, and the
    /// suffix set is shared by every active row.
    #[allow(clippy::type_complexity)]
    ar_axis: OnceLock<Result<(Vec<ApplicationRatio>, Vec<String>), PdnError>>,
    rows: Vec<OnceLock<Result<Vec<Scenario>, PdnError>>>,
    lookups: AtomicUsize,
    builds: AtomicUsize,
}

impl<'g, P: SocProvider + ?Sized> ScenarioCache<'g, P> {
    fn new(grid: &'g SweepGrid, provider: &'g P) -> Self {
        let n_tdps = grid.tdps.len();
        Self {
            grid,
            provider,
            socs: (0..n_tdps).map(|_| OnceLock::new()).collect(),
            solved_t: (0..n_tdps * grid.workload_types.len()).map(|_| OnceLock::new()).collect(),
            active_virus: (0..n_tdps).map(|_| OnceLock::new()).collect(),
            idle_virus: (0..n_tdps).map(|_| OnceLock::new()).collect(),
            ar_axis: OnceLock::new(),
            rows: (0..grid.n_rows()).map(|_| OnceLock::new()).collect(),
            lookups: AtomicUsize::new(0),
            builds: AtomicUsize::new(0),
        }
    }

    fn soc(&self, tdp_idx: usize) -> &SocSpec {
        self.socs[tdp_idx]
            .get_or_init(|| self.provider.soc_for(Watts::new(self.grid.tdps[tdp_idx])))
    }

    fn solved_t(&self, tdp_idx: usize, wl_idx: usize, soc: &SocSpec) -> &Result<f64, PdnError> {
        self.solved_t[tdp_idx * self.grid.workload_types.len() + wl_idx]
            .get_or_init(|| Scenario::solve_t_fixed_tdp(soc, self.grid.workload_types[wl_idx]))
    }

    fn ar_axis(&self) -> &Result<(Vec<ApplicationRatio>, Vec<String>), PdnError> {
        self.ar_axis.get_or_init(|| {
            let ars: Vec<ApplicationRatio> = self
                .grid
                .ars
                .iter()
                .map(|&ar| ApplicationRatio::new(ar).map_err(PdnError::Units))
                .collect::<Result<_, _>>()?;
            let suffixes = ars.iter().map(|&ar| Scenario::ar_suffix(ar)).collect();
            Ok((ars, suffixes))
        })
    }

    fn active_virus(&self, tdp_idx: usize, soc: &SocSpec) -> [DomainTable<DomainLoad>; 2] {
        *self.active_virus[tdp_idx].get_or_init(|| Scenario::tdp_virus_loads(soc))
    }

    fn idle_virus(&self, tdp_idx: usize, soc: &SocSpec) -> [DomainTable<DomainLoad>; 2] {
        *self.idle_virus[tdp_idx].get_or_init(|| Scenario::fmin_virus_loads(soc))
    }

    /// Builds one row's scenarios through the row constructors.
    /// Bit-identical to the unstaged per-point [`Scenario`] constructors:
    /// the hoisted values are exactly what those constructors would
    /// recompute at every point of the row.
    fn build_row(&self, row: LatticeRow) -> Result<Vec<Scenario>, PdnError> {
        let soc = self.soc(row.tdp_idx());
        match row {
            LatticeRow::Active { tdp_idx, wl_idx } => {
                let (ars, suffixes) = match self.ar_axis() {
                    Ok(axis) => axis,
                    Err(e) => return Err(e.clone()),
                };
                let t = self.solved_t(tdp_idx, wl_idx, soc).clone()?;
                let virus = self.active_virus(tdp_idx, soc);
                Scenario::active_fixed_tdp_row(
                    soc,
                    self.grid.workload_types[wl_idx],
                    ars,
                    suffixes,
                    t,
                    &virus,
                )
            }
            LatticeRow::Idle { tdp_idx } => {
                let virus = self.idle_virus(tdp_idx, soc);
                Ok(Scenario::idle_row(soc, &self.grid.idle_states, &virus))
            }
        }
    }

    fn row(&self, row_idx: usize, row: LatticeRow) -> &Result<Vec<Scenario>, PdnError> {
        // Counters advance per *point* so hit rates stay comparable with
        // the historical per-point cache: one row request counts one
        // lookup per point it covers, and a build counts every point it
        // constructs.
        let len = self.grid.row_span(row).len();
        self.lookups.fetch_add(len, Ordering::Relaxed);
        self.rows[row_idx].get_or_init(|| {
            self.builds.fetch_add(len, Ordering::Relaxed);
            // Failures are stored pre-shared: every PDN consuming the
            // row clones the error, and a clone of a shared error is a
            // refcount bump instead of a deep copy.
            self.build_row(row).map_err(|e| {
                PdnError::Lattice {
                    pdn: None,
                    point: self.grid.describe_row(row),
                    source: Box::new(e),
                }
                .into_shared()
            })
        })
    }

    /// Consumes the cache, yielding the rows in lattice order (unvisited
    /// rows stay unbuilt and come back as `None`).
    fn into_rows(self) -> Vec<Option<Result<Vec<Scenario>, PdnError>>> {
        self.rows.into_iter().map(OnceLock::into_inner).collect()
    }
}

/// Instrumentation of one batch run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchStats {
    /// Lattice points in the grid.
    pub points: usize,
    /// `pdn × point` evaluations performed.
    pub evaluations: usize,
    /// Evaluations that ended in a captured per-point error.
    pub failed: usize,
    /// Scenarios built (cache misses).
    pub scenario_builds: usize,
    /// Scenario-cache lookups.
    pub scenario_lookups: usize,
    /// ETEE memo-cache hits recorded during the run (all three memo
    /// counters stay zero when the run had no [`MemoCache`]).
    pub memo_hits: usize,
    /// ETEE memo-cache misses recorded during the run.
    pub memo_misses: usize,
    /// ETEE memo-cache entries evicted during the run.
    pub memo_evictions: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Items each worker claimed from another worker's range (work
    /// stealing; all zero on serial runs and balanced workloads).
    pub worker_stolen: Vec<usize>,
    /// Steal sweeps in which a worker found every other range already
    /// drained (it went idle instead of stealing).
    pub worker_idle_probes: Vec<usize>,
    /// Wall time each worker spent inside the run.
    pub worker_wall: Vec<Duration>,
    /// End-to-end wall time of the run.
    pub wall: Duration,
}

impl BatchStats {
    /// Fraction of scenario lookups served from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.scenario_lookups == 0 {
            return 0.0;
        }
        (self.scenario_lookups - self.scenario_builds) as f64 / self.scenario_lookups as f64
    }

    /// Fraction of ETEE memo-cache lookups served from the cache (zero
    /// when the run performed no memo lookups).
    pub fn memo_hit_rate(&self) -> f64 {
        let lookups = self.memo_hits + self.memo_misses;
        if lookups == 0 {
            return 0.0;
        }
        self.memo_hits as f64 / lookups as f64
    }

    /// The busiest worker's wall time.
    pub fn max_worker_wall(&self) -> Duration {
        self.worker_wall.iter().copied().max().unwrap_or_default()
    }

    /// Total items claimed across worker-range boundaries.
    pub fn total_stolen(&self) -> usize {
        self.worker_stolen.iter().sum()
    }

    /// The machine-independent slice of the [`Display`](fmt::Display)
    /// footer: grid and scenario-cache counts, no wall-clock,
    /// worker-pool, or steal figures — and no memo counters, whose
    /// hit/miss split depends on how concurrent workers interleave on
    /// the shared cache. Figure artefacts embed this form so
    /// re-rendering on any machine diffs clean against the committed
    /// file.
    pub fn deterministic_footer(&self) -> String {
        format!(
            "[batch] {} evaluations over {} points ({} failed); scenario cache {:.1}% hits \
             ({} builds / {} lookups)",
            self.evaluations,
            self.points,
            self.failed,
            100.0 * self.cache_hit_rate(),
            self.scenario_builds,
            self.scenario_lookups,
        )
    }

    /// Folds another run's counters into this one — used by figure
    /// binaries that combine several batch calls under a single printed
    /// footer. Wall times add (the runs happened one after the other);
    /// the worker count keeps the larger pool.
    pub fn absorb(&mut self, other: &BatchStats) {
        self.points += other.points;
        self.evaluations += other.evaluations;
        self.failed += other.failed;
        self.scenario_builds += other.scenario_builds;
        self.scenario_lookups += other.scenario_lookups;
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
        self.memo_evictions += other.memo_evictions;
        self.workers = self.workers.max(other.workers);
        self.worker_stolen.extend(other.worker_stolen.iter().copied());
        self.worker_idle_probes.extend(other.worker_idle_probes.iter().copied());
        self.worker_wall.extend(other.worker_wall.iter().copied());
        self.wall += other.wall;
    }
}

impl fmt::Display for BatchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[batch] {} evaluations over {} points ({} failed); scenario cache {:.1}% hits \
             ({} builds / {} lookups); {} workers, wall {:.1} ms (busiest worker {:.1} ms)",
            self.evaluations,
            self.points,
            self.failed,
            100.0 * self.cache_hit_rate(),
            self.scenario_builds,
            self.scenario_lookups,
            self.workers,
            self.wall.as_secs_f64() * 1e3,
            self.max_worker_wall().as_secs_f64() * 1e3,
        )?;
        let stolen = self.total_stolen();
        if stolen > 0 {
            write!(f, "; {stolen} stolen")?;
        }
        let memo_lookups = self.memo_hits + self.memo_misses;
        if memo_lookups > 0 {
            write!(
                f,
                "; memo {:.1}% hits ({} hits / {} lookups, {} evicted)",
                100.0 * self.memo_hit_rate(),
                self.memo_hits,
                memo_lookups,
                self.memo_evictions,
            )?;
        }
        Ok(())
    }
}

/// One `pdn × point` evaluation of a batch run.
#[derive(Debug, Clone, PartialEq)]
pub struct PointEvaluation {
    /// Index into the PDN set the run was given.
    pub pdn_idx: usize,
    /// The lattice point evaluated.
    pub point: LatticePoint,
    /// The evaluation, or the captured per-point failure.
    pub result: Result<PdnEvaluation, PdnError>,
}

/// The result of [`evaluate`]: ordered evaluations plus run
/// statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// Evaluations in stable order: PDN-major, each PDN's block in
    /// [`SweepGrid::points`] order.
    pub evaluations: Vec<PointEvaluation>,
    /// Run instrumentation.
    pub stats: BatchStats,
    n_points: usize,
}

impl BatchOutcome {
    /// The evaluations of one PDN, in lattice order.
    pub fn for_pdn(&self, pdn_idx: usize) -> &[PointEvaluation] {
        &self.evaluations[pdn_idx * self.n_points..(pdn_idx + 1) * self.n_points]
    }

    /// The first captured error, if any point failed.
    pub fn first_error(&self) -> Option<&PdnError> {
        self.evaluations.iter().find_map(|e| e.result.as_ref().err())
    }
}

/// An all-defaults config with only the worker choice overridden.
#[cfg(test)]
pub(crate) fn config_for(workers: Workers) -> EngineConfig {
    EngineConfig::builder().workers(workers).build().expect("worker-only config is valid")
}

/// Evaluates every PDN over every lattice point of `grid` — the unified
/// batch entry point.
///
/// Scenario rows are built at most once each through the shared cache
/// and reused across PDNs and workers. Workers claim whole `pdn × row`
/// tasks: each task runs the row kernel ([`Pdn::evaluate_row`]) over the
/// row's scenarios with a task-local [`RowStage`], so the
/// PDN-independent staged front half (guardband factors, virus
/// headrooms) is computed once per row with zero locking and zero
/// per-point dispatch. Per-point failures are captured in the
/// corresponding [`PointEvaluation::result`] with their lattice
/// coordinates; the rest of the campaign always completes. The
/// evaluations come back PDN-major in [`SweepGrid::points`] order — the
/// same values and order for every [`EngineConfig::workers`] and
/// [`EngineConfig::chunk_size`] choice (see the module-level determinism
/// contract).
///
/// When `memo` is `Some`, every row goes through
/// [`MemoCache::evaluate_row`]: a row whose every
/// `(PDN fingerprint, scenario fingerprint)` pair is cached — within
/// this run or across earlier calls sharing the cache — returns the
/// stored results without touching the kernel. Memoization never changes
/// a returned value (a hit is a clone of a bit-identical prior result),
/// so this function upholds the determinism contract with or without a
/// cache; the run's hit/miss/eviction deltas are reported in the
/// [`BatchStats`] memo counters. Pass `Some(&config.memo_cache())` for a
/// run-local cache, or share one cache across calls to amortise warm
/// entries.
pub fn evaluate(
    pdns: &[&dyn Pdn],
    grid: &SweepGrid,
    provider: &(impl SocProvider + ?Sized),
    config: &EngineConfig,
    memo: Option<&MemoCache>,
) -> BatchOutcome {
    let start = Instant::now();
    let n_points = grid.n_points();
    let n_rows = grid.n_rows();
    let n_tasks = pdns.len() * n_rows;
    let cache = ScenarioCache::new(grid, provider);
    let memo_before = memo.map(MemoCache::stats);

    let run = par_map_run_indexed(n_tasks, config.workers(), config.chunk_size(), |task_idx| {
        let pdn_idx = task_idx / n_rows;
        let row_idx = task_idx % n_rows;
        let row = grid.row_at(row_idx);
        let span = grid.row_span(row);
        match cache.row(row_idx, row) {
            Ok(scenarios) => {
                let pdn = pdns[pdn_idx];
                // The stage is task-local: one worker owns it for the
                // row's lifetime, so its caches need no locks, and no
                // state leaks between rows.
                let stage = RowStage::new();
                let results = match memo {
                    Some(m) => m.evaluate_row(pdn, scenarios, &stage),
                    None => pdn.evaluate_row(scenarios, &stage),
                };
                results
                    .into_iter()
                    .enumerate()
                    .map(|(i, result)| {
                        result.map_err(|e| PdnError::Lattice {
                            pdn: Some(pdn.kind().to_string()),
                            point: grid.describe(grid.point_at(span.start + i)),
                            source: Box::new(e),
                        })
                    })
                    .collect::<Vec<_>>()
            }
            Err(e) => vec![Err(e.clone()); span.len()],
        }
    });

    // Flattening the per-row result vectors in task order yields the
    // PDN-major canonical point order: rows tile the lattice
    // contiguously and in order (see `SweepGrid::row_span`).
    let mut evaluations: Vec<PointEvaluation> = Vec::with_capacity(pdns.len() * n_points);
    for (task_idx, row_results) in run.results.into_iter().enumerate() {
        let pdn_idx = task_idx / n_rows;
        let span = grid.row_span(grid.row_at(task_idx % n_rows));
        for (i, result) in row_results.into_iter().enumerate() {
            evaluations.push(PointEvaluation {
                pdn_idx,
                point: grid.point_at(span.start + i),
                result,
            });
        }
    }
    let failed = evaluations.iter().filter(|e| e.result.is_err()).count();
    let (memo_hits, memo_misses, memo_evictions) = match (memo_before, memo.map(MemoCache::stats)) {
        (Some(before), Some(after)) => (
            (after.hits - before.hits) as usize,
            (after.misses - before.misses) as usize,
            (after.evictions - before.evictions) as usize,
        ),
        _ => (0, 0, 0),
    };
    let stats = BatchStats {
        points: n_points,
        evaluations: evaluations.len(),
        failed,
        scenario_builds: cache.builds.load(Ordering::Relaxed),
        scenario_lookups: cache.lookups.load(Ordering::Relaxed),
        memo_hits,
        memo_misses,
        memo_evictions,
        workers: run.worker_wall.len(),
        worker_stolen: run.worker_stolen,
        worker_idle_probes: run.worker_idle_probes,
        worker_wall: run.worker_wall,
        wall: start.elapsed(),
    };
    BatchOutcome { evaluations, stats, n_points }
}

/// The result of [`evaluate_delta`]: the dirty-point evaluations plus
/// run statistics.
///
/// Evaluations are sorted PDN-major, then by the point's position in the
/// *full* grid's [`SweepGrid::points`] order — each [`PointEvaluation`]
/// carries full-grid axis indices, ready to scatter into a prior
/// campaign's results (see [`crate::sweep::surfaces_delta`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaOutcome {
    /// Dirty-point evaluations in (PDN, full-grid point index) order.
    pub evaluations: Vec<PointEvaluation>,
    /// Run instrumentation (points counts the dirty points only).
    pub stats: BatchStats,
    n_dirty: usize,
}

impl DeltaOutcome {
    /// The dirty evaluations of one PDN, in full-grid lattice order.
    pub fn for_pdn(&self, pdn_idx: usize) -> &[PointEvaluation] {
        &self.evaluations[pdn_idx * self.n_dirty..(pdn_idx + 1) * self.n_dirty]
    }

    /// Number of dirty points per PDN.
    pub fn n_dirty(&self) -> usize {
        self.n_dirty
    }

    /// The first captured error, if any dirty point failed.
    pub fn first_error(&self) -> Option<&PdnError> {
        self.evaluations.iter().find_map(|e| e.result.as_ref().err())
    }
}

/// Re-evaluates only the dirtied slab of `grid` — the incremental
/// counterpart of [`evaluate`].
///
/// `delta` is the output of [`SweepGrid::diff`] between `grid` (new) and
/// the grid a prior campaign ran on. The dirty set — every point with at
/// least one coordinate on a dirty axis index — is a union of
/// axis-aligned slabs, which this function decomposes into at most four
/// *disjoint* cartesian sub-grids, each handed to [`evaluate`] whole:
///
/// 1. dirty TDPs × every workload type × every AR, plus every idle
///    state (the dirty-TDP slab);
/// 2. clean TDPs × dirty workload types × every AR;
/// 3. clean TDPs × clean workload types × dirty ARs;
/// 4. clean TDPs × dirty idle states.
///
/// Each sub-grid reuses the full row-kernel machinery — shared scenario
/// cache, row tasks, worker pool, optional memoization — and every
/// scenario it builds is bit-identical to the one the full-grid sweep
/// would build at the same coordinates (the per-row hoists depend only
/// on the point's own axis values). A dirty point's evaluation therefore
/// equals the full re-sweep's bit for bit, and the clean points, by
/// construction untouched by the axis change, keep their prior values:
/// patching a prior campaign with this outcome reproduces
/// [`evaluate`] on the new grid exactly.
pub fn evaluate_delta(
    pdns: &[&dyn Pdn],
    grid: &SweepGrid,
    delta: &GridDelta,
    provider: &(impl SocProvider + ?Sized),
    config: &EngineConfig,
    memo: Option<&MemoCache>,
) -> DeltaOutcome {
    let start = Instant::now();
    // Partition an axis into its dirty and clean values, each with a map
    // back to full-axis indices.
    fn split<T: Copy>(axis: &[T], dirty: &[usize]) -> (Vec<T>, Vec<usize>, Vec<T>, Vec<usize>) {
        let (mut dv, mut di, mut cv, mut ci) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for (i, &v) in axis.iter().enumerate() {
            if dirty.contains(&i) {
                dv.push(v);
                di.push(i);
            } else {
                cv.push(v);
                ci.push(i);
            }
        }
        (dv, di, cv, ci)
    }
    let (dirty_t, dirty_t_map, clean_t, clean_t_map) = split(&grid.tdps, &delta.tdps);
    let (dirty_w, dirty_w_map, clean_w, clean_w_map) =
        split(&grid.workload_types, &delta.workload_types);
    let (dirty_a, dirty_a_map, _, _) = split(&grid.ars, &delta.ars);
    let (dirty_s, dirty_s_map, _, _) = split(&grid.idle_states, &delta.idle_states);

    let mut evaluations: Vec<PointEvaluation> = Vec::new();
    let mut stats: Option<BatchStats> = None;
    let mut sweep =
        |sub: SweepGrid, t_map: &[usize], w_map: &[usize], a_map: &[usize], s_map: &[usize]| {
            let outcome = evaluate(pdns, &sub, provider, config, memo);
            for eval in outcome.evaluations {
                let point = match eval.point {
                    LatticePoint::Active { tdp_idx, wl_idx, ar_idx } => LatticePoint::Active {
                        tdp_idx: t_map[tdp_idx],
                        wl_idx: w_map[wl_idx],
                        ar_idx: a_map[ar_idx],
                    },
                    LatticePoint::Idle { tdp_idx, state_idx } => {
                        LatticePoint::Idle { tdp_idx: t_map[tdp_idx], state_idx: s_map[state_idx] }
                    }
                };
                evaluations.push(PointEvaluation { point, ..eval });
            }
            match &mut stats {
                Some(s) => s.absorb(&outcome.stats),
                None => stats = Some(outcome.stats),
            }
        };

    let all_w_map: Vec<usize> = (0..grid.workload_types.len()).collect();
    let all_a_map: Vec<usize> = (0..grid.ars.len()).collect();
    let all_s_map: Vec<usize> = (0..grid.idle_states.len()).collect();
    // Slab 1: everything touching a dirty TDP (active and idle alike).
    if !dirty_t.is_empty() {
        let sub = SweepGrid::builder()
            .tdps(&dirty_t)
            .workload_types(&grid.workload_types)
            .ars(&grid.ars)
            .idle_states(&grid.idle_states)
            .build()
            .expect("sub-axes of a valid grid are valid");
        sweep(sub, &dirty_t_map, &all_w_map, &all_a_map, &all_s_map);
    }
    // Slab 2: dirty workload types at clean TDPs.
    if !clean_t.is_empty() && !dirty_w.is_empty() && !grid.ars.is_empty() {
        let sub = SweepGrid::active(&clean_t, &dirty_w, &grid.ars)
            .expect("sub-axes of a valid grid are valid");
        sweep(sub, &clean_t_map, &dirty_w_map, &all_a_map, &[]);
    }
    // Slab 3: dirty ARs at clean (TDP, workload type) pairs.
    if !clean_t.is_empty() && !clean_w.is_empty() && !dirty_a.is_empty() {
        let sub = SweepGrid::active(&clean_t, &clean_w, &dirty_a)
            .expect("sub-axes of a valid grid are valid");
        sweep(sub, &clean_t_map, &clean_w_map, &dirty_a_map, &[]);
    }
    // Slab 4: dirty idle states at clean TDPs.
    if !clean_t.is_empty() && !dirty_s.is_empty() {
        let sub = SweepGrid::builder()
            .tdps(&clean_t)
            .idle_states(&dirty_s)
            .build()
            .expect("sub-axes of a valid grid are valid");
        sweep(sub, &clean_t_map, &[], &[], &dirty_s_map);
    }

    // The slabs are disjoint and cover the dirty set exactly; sorting by
    // (PDN, full-grid point index) restores one canonical order.
    evaluations.sort_by_key(|e| (e.pdn_idx, grid.point_index(e.point)));
    let n_dirty = delta.n_dirty_points(grid);
    debug_assert_eq!(evaluations.len(), n_dirty * pdns.len());
    let mut stats = stats.unwrap_or(BatchStats {
        points: 0,
        evaluations: 0,
        failed: 0,
        scenario_builds: 0,
        scenario_lookups: 0,
        memo_hits: 0,
        memo_misses: 0,
        memo_evictions: 0,
        workers: 0,
        worker_stolen: Vec::new(),
        worker_idle_probes: Vec::new(),
        worker_wall: Vec::new(),
        wall: Duration::ZERO,
    });
    stats.wall = start.elapsed();
    DeltaOutcome { evaluations, stats, n_dirty }
}

/// Builds every scenario of `grid` in parallel (no PDN evaluation) —
/// the campaign front half, used when the scenarios themselves are the
/// product (e.g. the Fig. 4 validation traces).
///
/// Returns the scenarios in [`SweepGrid::points`] order, each a
/// `Result` carrying lattice coordinates on failure, plus run
/// statistics.
pub fn build_scenarios(
    grid: &SweepGrid,
    provider: &(impl SocProvider + ?Sized),
    workers: Workers,
) -> (Vec<Result<Scenario, PdnError>>, BatchStats) {
    let start = Instant::now();
    let n_points = grid.n_points();
    let n_rows = grid.n_rows();
    let cache = ScenarioCache::new(grid, provider);
    let run = par_map_run_indexed(n_rows, workers, None, |row_idx| {
        cache.row(row_idx, grid.row_at(row_idx)).is_ok()
    });
    let builds = cache.builds.load(Ordering::Relaxed);
    let lookups = cache.lookups.load(Ordering::Relaxed);
    let mut scenarios: Vec<Result<Scenario, PdnError>> = Vec::with_capacity(n_points);
    for (row_idx, slot) in cache.into_rows().into_iter().enumerate() {
        let len = grid.row_span(grid.row_at(row_idx)).len();
        match slot.expect("every row was visited") {
            Ok(row) => scenarios.extend(row.into_iter().map(Ok)),
            Err(e) => scenarios.extend((0..len).map(|_| Err(e.clone()))),
        }
    }
    let failed = scenarios.iter().filter(|s| s.is_err()).count();
    let stats = BatchStats {
        points: n_points,
        evaluations: n_points,
        failed,
        scenario_builds: builds,
        scenario_lookups: lookups,
        memo_hits: 0,
        memo_misses: 0,
        memo_evictions: 0,
        workers: run.worker_wall.len(),
        worker_stolen: run.worker_stolen,
        worker_idle_probes: run.worker_idle_probes,
        worker_wall: run.worker_wall,
        wall: start.elapsed(),
    };
    (scenarios, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ModelParams;
    use crate::topology::{IvrPdn, MbvrPdn, PdnKind};
    use pdn_proc::client_soc;

    fn small_grid() -> SweepGrid {
        SweepGrid::builder()
            .tdps(&[4.0, 18.0])
            .workload_types(&[WorkloadType::MultiThread, WorkloadType::SingleThread])
            .ars(&[0.4, 0.8])
            .idle_states(&[PackageCState::C2, PackageCState::C8])
            .build()
            .unwrap()
    }

    #[test]
    fn builder_rejects_bad_axes() {
        assert!(SweepGrid::builder().build().is_err(), "no TDPs");
        assert!(SweepGrid::builder().tdps(&[18.0]).build().is_err(), "no points");
        assert!(SweepGrid::builder().tdps(&[-1.0]).build().is_err(), "negative TDP");
        assert!(
            SweepGrid::active(&[18.0], &[WorkloadType::MultiThread], &[1.7]).is_err(),
            "AR above 1"
        );
        assert!(SweepGrid::builder()
            .tdps(&[18.0])
            .idle_states(&[PackageCState::C8])
            .build()
            .is_ok());
    }

    #[test]
    fn lattice_order_is_tdp_major_then_idle() {
        let grid = small_grid();
        assert_eq!(grid.n_active(), 8);
        assert_eq!(grid.n_points(), 12);
        let points = grid.points();
        assert_eq!(points[0], LatticePoint::Active { tdp_idx: 0, wl_idx: 0, ar_idx: 0 });
        assert_eq!(points[1], LatticePoint::Active { tdp_idx: 0, wl_idx: 0, ar_idx: 1 });
        assert_eq!(points[2], LatticePoint::Active { tdp_idx: 0, wl_idx: 1, ar_idx: 0 });
        assert_eq!(points[4], LatticePoint::Active { tdp_idx: 1, wl_idx: 0, ar_idx: 0 });
        assert_eq!(points[8], LatticePoint::Idle { tdp_idx: 0, state_idx: 0 });
        assert_eq!(points[11], LatticePoint::Idle { tdp_idx: 1, state_idx: 1 });
    }

    #[test]
    fn point_at_matches_the_materialised_enumeration() {
        let grid = small_grid();
        let mut expected = Vec::new();
        for t in 0..2 {
            for w in 0..2 {
                for a in 0..2 {
                    expected.push(LatticePoint::Active { tdp_idx: t, wl_idx: w, ar_idx: a });
                }
            }
        }
        for t in 0..2 {
            for s in 0..2 {
                expected.push(LatticePoint::Idle { tdp_idx: t, state_idx: s });
            }
        }
        assert_eq!(grid.points(), expected);
        for (i, &p) in expected.iter().enumerate() {
            assert_eq!(grid.point_at(i), p, "index {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn point_at_rejects_out_of_range_indices() {
        small_grid().point_at(12);
    }

    #[test]
    fn rows_tile_the_lattice_in_canonical_order() {
        let grid = small_grid();
        assert_eq!(grid.n_active_rows(), 4);
        assert_eq!(grid.n_idle_rows(), 2);
        assert_eq!(grid.n_rows(), 6);
        // Walking the rows in index order must visit every point index
        // exactly once, in canonical order.
        let covered: Vec<usize> =
            (0..grid.n_rows()).flat_map(|r| grid.row_span(grid.row_at(r))).collect();
        assert_eq!(covered, (0..grid.n_points()).collect::<Vec<_>>());
        // Every point in a row's span shares the row's fixed coordinates.
        for r in 0..grid.n_rows() {
            let row = grid.row_at(r);
            for idx in grid.row_span(row) {
                match (row, grid.point_at(idx)) {
                    (
                        LatticeRow::Active { tdp_idx, wl_idx },
                        LatticePoint::Active { tdp_idx: t, wl_idx: w, .. },
                    ) => assert_eq!((tdp_idx, wl_idx), (t, w)),
                    (LatticeRow::Idle { tdp_idx }, LatticePoint::Idle { tdp_idx: t, .. }) => {
                        assert_eq!(tdp_idx, t);
                    }
                    (row, point) => panic!("row {row:?} spans foreign point {point:?}"),
                }
            }
        }
        assert_eq!(grid.describe_row(grid.row_at(0)), "tdp=4W wl=multi-thread ar=*");
        assert_eq!(grid.describe_row(grid.row_at(4)), "tdp=4W state=*");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn row_at_rejects_out_of_range_indices() {
        small_grid().row_at(6);
    }

    #[test]
    fn staged_scenarios_match_direct_construction() {
        // The per-TDP staging cache (solved frequency scalar + virus
        // tables) must be invisible: every scenario equals the one the
        // unstaged constructors build.
        let grid = small_grid();
        let (scenarios, _) = build_scenarios(&grid, &ClientSoc, Workers::Serial);
        for (idx, got) in scenarios.iter().enumerate() {
            let point = grid.point_at(idx);
            let soc = client_soc(Watts::new(grid.tdps()[point.tdp_idx()]));
            let direct = match point {
                LatticePoint::Active { wl_idx, ar_idx, .. } => {
                    Scenario::active_fixed_tdp_frequency(
                        &soc,
                        grid.workload_types()[wl_idx],
                        ApplicationRatio::new(grid.ars()[ar_idx]).unwrap(),
                    )
                    .unwrap()
                }
                LatticePoint::Idle { state_idx, .. } => {
                    Scenario::idle(&soc, grid.idle_states()[state_idx])
                }
            };
            assert_eq!(*got.as_ref().unwrap(), direct, "{}", grid.describe(point));
        }
    }

    #[test]
    fn memoized_batch_is_bit_identical_and_hits_on_the_second_pass() {
        let params = ModelParams::paper_defaults();
        let ivr = IvrPdn::new(params.clone());
        let mbvr = MbvrPdn::new(params);
        let pdns: [&dyn Pdn; 2] = [&ivr, &mbvr];
        let grid = small_grid();
        let plain = evaluate(&pdns, &grid, &ClientSoc, &config_for(Workers::Serial), None);
        let memo = MemoCache::new();
        let first = evaluate(&pdns, &grid, &ClientSoc, &config_for(Workers::Serial), Some(&memo));
        let second =
            evaluate(&pdns, &grid, &ClientSoc, &config_for(Workers::Fixed(3)), Some(&memo));
        assert_eq!(plain.evaluations, first.evaluations);
        assert_eq!(plain.evaluations, second.evaluations);
        assert_eq!(first.stats.memo_misses, 24, "cold cache misses every task");
        assert_eq!(first.stats.memo_hits, 0);
        assert_eq!(second.stats.memo_hits, 24, "warm cache hits every task");
        assert_eq!(second.stats.memo_misses, 0);
        assert!(second.stats.memo_hit_rate() > 0.8);
        let footer = second.stats.to_string();
        assert!(footer.contains("memo 100.0% hits"), "{footer}");
        assert!(!plain.stats.to_string().contains("memo"), "{}", plain.stats);
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let params = ModelParams::paper_defaults();
        let ivr = IvrPdn::new(params.clone());
        let mbvr = MbvrPdn::new(params);
        let pdns: [&dyn Pdn; 2] = [&ivr, &mbvr];
        let grid = small_grid();
        let serial = evaluate(&pdns, &grid, &ClientSoc, &config_for(Workers::Serial), None);
        let parallel = evaluate(&pdns, &grid, &ClientSoc, &config_for(Workers::Fixed(4)), None);
        assert_eq!(serial.evaluations, parallel.evaluations);
        assert_eq!(serial.stats.workers, 1);
        assert_eq!(parallel.stats.workers, 4.min(serial.stats.evaluations));
        // An explicit chunk size changes claim granularity only, never
        // values (the EngineConfig determinism contract).
        let chunked =
            EngineConfig::builder().workers(Workers::Fixed(4)).chunk_size(1).build().unwrap();
        let chunky = evaluate(&pdns, &grid, &ClientSoc, &chunked, None);
        assert_eq!(serial.evaluations, chunky.evaluations);
    }

    #[test]
    fn scenarios_build_once_across_pdns() {
        let params = ModelParams::paper_defaults();
        let ivr = IvrPdn::new(params.clone());
        let mbvr = MbvrPdn::new(params);
        let pdns: [&dyn Pdn; 2] = [&ivr, &mbvr];
        let grid = small_grid();
        let outcome = evaluate(&pdns, &grid, &ClientSoc, &EngineConfig::default(), None);
        let stats = &outcome.stats;
        assert_eq!(stats.points, 12);
        assert_eq!(stats.evaluations, 24);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.scenario_builds, 12, "one build per point");
        assert_eq!(stats.scenario_lookups, 24, "one lookup per evaluation");
        assert!((stats.cache_hit_rate() - 0.5).abs() < 1e-12);
        let footer = stats.to_string();
        assert!(footer.contains("24 evaluations over 12 points"), "{footer}");
        assert!(footer.contains("50.0% hits"), "{footer}");
    }

    #[test]
    fn for_pdn_slices_the_lattice_blocks() {
        let params = ModelParams::paper_defaults();
        let ivr = IvrPdn::new(params.clone());
        let mbvr = MbvrPdn::new(params);
        let pdns: [&dyn Pdn; 2] = [&ivr, &mbvr];
        let grid = small_grid();
        let outcome = evaluate(&pdns, &grid, &ClientSoc, &EngineConfig::default(), None);
        let block = outcome.for_pdn(1);
        assert_eq!(block.len(), 12);
        assert!(block.iter().all(|e| e.pdn_idx == 1));
        assert_eq!(block[0].point, LatticePoint::Active { tdp_idx: 0, wl_idx: 0, ar_idx: 0 });
        assert!(outcome.first_error().is_none());
    }

    /// A PDN that fails above a TDP threshold — exercises per-point
    /// error capture.
    #[derive(Debug)]
    struct FailsAbove {
        inner: IvrPdn,
        threshold: f64,
    }

    impl Pdn for FailsAbove {
        fn kind(&self) -> PdnKind {
            self.inner.kind()
        }

        fn params(&self) -> &ModelParams {
            self.inner.params()
        }

        fn evaluate(&self, scenario: &Scenario) -> Result<PdnEvaluation, PdnError> {
            if scenario.tdp.get() > self.threshold {
                return Err(PdnError::Scenario("synthetic failure".into()));
            }
            self.inner.evaluate(scenario)
        }
    }

    #[test]
    fn failing_point_is_reported_with_coordinates_and_rest_completes() {
        let flaky =
            FailsAbove { inner: IvrPdn::new(ModelParams::paper_defaults()), threshold: 10.0 };
        let pdns: [&dyn Pdn; 1] = [&flaky];
        let grid = SweepGrid::active(&[4.0, 18.0], &[WorkloadType::MultiThread], &[0.56]).unwrap();
        let outcome = evaluate(&pdns, &grid, &ClientSoc, &config_for(Workers::Fixed(2)), None);
        assert_eq!(outcome.stats.failed, 1);
        assert!(outcome.evaluations[0].result.is_ok(), "4 W point completes");
        let err = outcome.evaluations[1].result.as_ref().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("tdp=18W"), "coordinates in {msg}");
        assert!(msg.contains("wl=multi-thread"), "workload in {msg}");
        assert!(msg.contains("synthetic failure"), "source in {msg}");
        assert!(std::error::Error::source(err).is_some());
    }

    #[test]
    fn build_scenarios_returns_lattice_order() {
        let grid = small_grid();
        let (scenarios, stats) = build_scenarios(&grid, &ClientSoc, Workers::Auto);
        assert_eq!(scenarios.len(), 12);
        assert_eq!(stats.scenario_builds, 12);
        assert_eq!(stats.failed, 0);
        // Spot-check against a direct construction.
        let soc = client_soc(Watts::new(4.0));
        let direct = Scenario::active_fixed_tdp_frequency(
            &soc,
            WorkloadType::MultiThread,
            ApplicationRatio::new(0.4).unwrap(),
        )
        .unwrap();
        assert_eq!(*scenarios[0].as_ref().unwrap(), direct);
        assert!(scenarios[8].as_ref().unwrap().is_idle());
    }

    #[test]
    fn diff_marks_exactly_the_changed_indices() {
        let old = small_grid();
        let mut new = old.clone();
        assert!(new.diff(&old).is_empty(), "identical grids produce an empty delta");
        new.tdps[1] = 19.0;
        new.ars[0] = 0.41;
        let delta = new.diff(&old);
        assert_eq!(delta.tdps, vec![1]);
        assert_eq!(delta.ars, vec![0]);
        assert!(delta.workload_types.is_empty());
        assert!(delta.idle_states.is_empty());
        // Dirty: tdp slab (wl 2 × ar 2 active + 2 idle = 6) plus the
        // ar-0 column of the clean tdp (2 wl × 1 ar = 2).
        assert_eq!(delta.n_dirty_points(&new), 8);
        assert!(delta.contains(LatticePoint::Active { tdp_idx: 1, wl_idx: 0, ar_idx: 1 }));
        assert!(delta.contains(LatticePoint::Active { tdp_idx: 0, wl_idx: 1, ar_idx: 0 }));
        assert!(!delta.contains(LatticePoint::Active { tdp_idx: 0, wl_idx: 1, ar_idx: 1 }));
        assert!(delta.contains(LatticePoint::Idle { tdp_idx: 1, state_idx: 0 }));
        assert!(!delta.contains(LatticePoint::Idle { tdp_idx: 0, state_idx: 1 }));
    }

    #[test]
    fn diff_of_resized_axis_is_fully_dirty() {
        let old = small_grid();
        let mut new = old.clone();
        new.ars.push(0.9);
        let delta = new.diff(&old);
        assert_eq!(delta.ars, vec![0, 1, 2]);
        // Every active point is dirty; idle points stay clean.
        assert_eq!(delta.n_dirty_points(&new), new.n_active());
    }

    #[test]
    fn point_index_inverts_point_at() {
        let grid = small_grid();
        for idx in 0..grid.n_points() {
            assert_eq!(grid.point_index(grid.point_at(idx)), idx);
        }
    }

    #[test]
    fn delta_matches_the_full_resweep_bit_for_bit() {
        let params = ModelParams::paper_defaults();
        let ivr = IvrPdn::new(params.clone());
        let mbvr = MbvrPdn::new(params);
        let pdns: [&dyn Pdn; 2] = [&ivr, &mbvr];
        let old = small_grid();
        let mut new = old.clone();
        new.tdps[0] = 6.0; // dirties one TDP slab (active + idle)
        new.idle_states[1] = PackageCState::C6; // and one idle column
        let delta = new.diff(&old);
        let full = evaluate(&pdns, &new, &ClientSoc, &config_for(Workers::Serial), None);
        let partial =
            evaluate_delta(&pdns, &new, &delta, &ClientSoc, &config_for(Workers::Fixed(3)), None);
        assert_eq!(partial.stats.failed, 0);
        assert_eq!(partial.n_dirty(), delta.n_dirty_points(&new));
        assert_eq!(partial.evaluations.len(), 2 * partial.n_dirty());
        for eval in &partial.evaluations {
            assert!(delta.contains(eval.point), "only dirty points re-evaluate");
            let full_eval = &full.for_pdn(eval.pdn_idx)[new.point_index(eval.point)];
            assert_eq!(full_eval.point, eval.point);
            let (a, b) = (eval.result.as_ref().unwrap(), full_eval.result.as_ref().unwrap());
            assert_eq!(a.etee.get().to_bits(), b.etee.get().to_bits());
            assert_eq!(a.input_power.get().to_bits(), b.input_power.get().to_bits());
        }
        // Patching the old campaign with the delta reproduces the full
        // re-sweep everywhere (clean points were never invalidated).
        let mut patched = evaluate(&pdns, &old, &ClientSoc, &config_for(Workers::Serial), None);
        for eval in &partial.evaluations {
            let idx = eval.pdn_idx * new.n_points() + new.point_index(eval.point);
            patched.evaluations[idx] = PointEvaluation {
                pdn_idx: eval.pdn_idx,
                point: eval.point,
                result: eval.result.clone(),
            };
        }
        assert_eq!(patched.evaluations, full.evaluations);
    }

    #[test]
    fn empty_delta_evaluates_nothing() {
        let ivr = IvrPdn::new(ModelParams::paper_defaults());
        let pdns: [&dyn Pdn; 1] = [&ivr];
        let grid = small_grid();
        let delta = grid.diff(&grid);
        let outcome =
            evaluate_delta(&pdns, &grid, &delta, &ClientSoc, &config_for(Workers::Serial), None);
        assert!(outcome.evaluations.is_empty());
        assert_eq!(outcome.n_dirty(), 0);
        assert_eq!(outcome.stats.evaluations, 0);
        assert!(outcome.first_error().is_none());
    }

    #[test]
    fn deterministic_footer_carries_counts_and_drops_timings() {
        let ivr = IvrPdn::new(ModelParams::paper_defaults());
        let pdns: [&dyn Pdn; 1] = [&ivr];
        let outcome =
            evaluate(&pdns, &small_grid(), &ClientSoc, &config_for(Workers::Fixed(3)), None);
        let footer = outcome.stats.deterministic_footer();
        assert!(footer.starts_with("[batch] "), "{footer}");
        assert!(footer.contains("evaluations over"), "{footer}");
        assert!(footer.contains("scenario cache"), "{footer}");
        for unstable in ["workers", "wall", "ms", "stolen", "memo"] {
            assert!(!footer.contains(unstable), "{unstable} leaked into {footer}");
        }
        // Same counts regardless of pool shape or wall clock.
        let serial = evaluate(&pdns, &small_grid(), &ClientSoc, &config_for(Workers::Serial), None);
        assert_eq!(serial.stats.deterministic_footer(), footer);
    }

    #[test]
    fn par_map_preserves_order_and_visits_once() {
        let items: Vec<usize> = (0..97).collect();
        let visits = AtomicUsize::new(0);
        let out = par_map(&items, Workers::Fixed(5), |i, &x| {
            visits.fetch_add(1, Ordering::Relaxed);
            assert_eq!(i, x);
            x * 3
        });
        assert_eq!(out, (0..97).map(|x| x * 3).collect::<Vec<_>>());
        assert_eq!(visits.load(Ordering::Relaxed), 97);
    }

    #[test]
    fn idle_workers_steal_from_a_stalled_range() {
        // Worker 0 owns items 0..10 and its first item blocks until every
        // other item has finished, so items 1..9 can only complete via
        // stealing. The order of the output must still be lattice order.
        let items: Vec<usize> = (0..30).collect();
        let done = AtomicUsize::new(0);
        let (out, stats) = par_map_stats(&items, Workers::Fixed(3), |i, &x| {
            if i == 0 {
                while done.load(Ordering::Relaxed) < 29 {
                    std::thread::yield_now();
                }
            } else {
                done.fetch_add(1, Ordering::Relaxed);
            }
            x * 7
        });
        assert_eq!(out, (0..30).map(|x| x * 7).collect::<Vec<_>>());
        assert_eq!(stats.workers, 3);
        assert_eq!(stats.worker_stolen.len(), 3);
        assert_eq!(stats.worker_idle_probes.len(), 3);
        assert!(stats.total_stolen() >= 9, "items 1..9 must be stolen: {stats:?}");
        let footer = stats.to_string();
        assert!(footer.contains("stolen"), "{footer}");
    }

    #[test]
    fn serial_run_reports_zero_steal_telemetry() {
        let items: Vec<usize> = (0..5).collect();
        let (_, stats) = par_map_stats(&items, Workers::Serial, |_, &x| x);
        assert_eq!(stats.worker_stolen, vec![0]);
        assert_eq!(stats.worker_idle_probes, vec![0]);
        assert!(!stats.to_string().contains("stolen"));
    }

    #[test]
    fn workers_resolution() {
        assert_eq!(Workers::Serial.count(100), 1);
        assert_eq!(Workers::Fixed(4).count(100), 4);
        assert_eq!(Workers::Fixed(0).count(100), 1);
        assert_eq!(Workers::Fixed(8).count(3), 3, "never more workers than tasks");
        assert!(Workers::Auto.count(1000) >= 1);
    }

    #[test]
    fn client_soc_provider_matches_the_free_function() {
        let a = ClientSoc.soc_for(Watts::new(18.0));
        let b = client_soc(Watts::new(18.0));
        assert_eq!(a.tdp, b.tdp);
        // The closure blanket impl accepts the free function directly.
        fn takes_provider(p: &impl SocProvider) -> SocSpec {
            p.soc_for(Watts::new(4.0))
        }
        assert_eq!(takes_provider(&client_soc).tdp, Watts::new(4.0));
    }
}
