//! PDNspot: a validated architectural power-delivery-network model.
//!
//! PDNspot is the framework contribution of the FlexWatts paper (§3): it
//! models the three commonly-used client-processor PDNs — integrated
//! voltage regulators ([`topology::IvrPdn`]), motherboard voltage
//! regulators ([`topology::MbvrPdn`]), low-dropout regulators
//! ([`topology::LdoPdn`]) — plus the Skylake-X-style hybrid
//! ([`topology::IPlusMbvrPdn`]), and evaluates, for any processor TDP and
//! workload:
//!
//! * **end-to-end power-conversion efficiency** (ETEE, Eq. 1) with a full
//!   loss breakdown (Fig. 5): VR inefficiencies, I²R/load-line conduction,
//!   guardband and power-gate overheads;
//! * **performance** via the §3.3 power-budget model ([`perf`]);
//! * **board area and bill of materials** via the Iccmax-driven §3.2 model
//!   ([`areabom`]);
//! * **validation** against an independent component-level reference
//!   simulator standing in for the paper's lab measurements
//!   ([`validation`]).
//!
//! The FlexWatts hybrid PDN itself lives in the `flexwatts` crate and
//! implements this crate's [`topology::Pdn`] trait.
//!
//! # Examples
//!
//! ```
//! use pdn_units::{ApplicationRatio, Watts};
//! use pdn_workload::WorkloadType;
//! use pdnspot::params::ModelParams;
//! use pdnspot::scenario::Scenario;
//! use pdnspot::topology::{IvrPdn, MbvrPdn, Pdn};
//!
//! let params = ModelParams::paper_defaults();
//! let soc = pdn_proc::client_soc(Watts::new(4.0));
//! let scenario = Scenario::active_budget(
//!     &soc,
//!     WorkloadType::SingleThread,
//!     ApplicationRatio::new(0.6)?,
//!     &params,
//! )?;
//! let ivr = IvrPdn::new(params.clone());
//! let mbvr = MbvrPdn::new(params.clone());
//! // §5 Observation 1: at 4 W TDP, MBVR beats IVR.
//! let e_ivr = ivr.evaluate(&scenario)?;
//! let e_mbvr = mbvr.evaluate(&scenario)?;
//! assert!(e_mbvr.etee.get() > e_ivr.etee.get());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod areabom;
pub mod batch;
pub mod config;
pub mod error;
pub mod etee;
pub mod memo;
pub mod params;
pub mod perf;
pub mod prelude;
pub mod scenario;
pub mod sweep;
pub mod topology;
pub mod transient;
pub mod validation;

pub use batch::{BatchStats, ClientSoc, DeltaOutcome, GridDelta, SocProvider, SweepGrid, Workers};
pub use config::{EngineConfig, EngineConfigBuilder};
pub use error::{ErrorCode, PdnError};
pub use etee::{
    DirectStager, LossBreakdown, PdnEvaluation, RailReport, RowStage, StagedPoint, Stager,
};
pub use memo::{MemoCache, MemoEntry, MemoPdn, MemoStats};
pub use params::ModelParams;
pub use scenario::{DomainLoad, Scenario};
pub use topology::{IPlusMbvrPdn, IvrPdn, LdoPdn, MbvrPdn, Pdn, PdnKind};
