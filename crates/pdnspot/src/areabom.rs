//! Board area and bill-of-materials (BOM) model (§3.2 of the paper).
//!
//! The board area and cost of an off-chip VR are functions mainly of the
//! maximum current (Iccmax) it must be electrically designed for. VR
//! sharing (the LDO and FlexWatts PDNs share one `V_IN` for the compute
//! domains) reduces the summed Iccmax and therefore area and BOM. Below
//! 18 W TDP, platforms consolidate rails into a power-management IC
//! (PMIC); above that, discrete voltage-regulator modules (VRMs) are used.
//!
//! The Iccmax→(area, cost) mapping substitutes for the Texas Instruments
//! catalogue data the paper obtained from the vendor; it is calibrated so
//! the Fig. 8(d,e) factors hold (MBVR 2.1–4.2× the IVR BOM, LDO 1.6–3.1×,
//! FlexWatts/I+MBVR comparable to IVR).

use crate::error::PdnError;
use crate::topology::{OffchipRail, Pdn};
use pdn_proc::SocSpec;
use pdn_units::{SquareMillimeters, Usd, Watts};
use serde::{Deserialize, Serialize};

/// TDP at or below which the platform uses a PMIC instead of discrete
/// VRMs (§3.2).
pub const PMIC_TDP_LIMIT: Watts = Watts::new(18.0);

/// The Iccmax→(area, cost) catalogue, standing in for the TI vendor data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VrCatalog {
    /// Fixed board area per discrete rail (controller, layout keep-out).
    pub area_base_mm2: f64,
    /// Area scaling coefficient (mm² per A^`area_exp`).
    pub area_coeff: f64,
    /// Area superlinearity: high-current rails need disproportionately
    /// large inductors and capacitor banks.
    pub area_exp: f64,
    /// Fixed cost per discrete rail.
    pub cost_base_usd: f64,
    /// Cost scaling coefficient ($ per A^`cost_exp`).
    pub cost_coeff: f64,
    /// Cost superlinearity.
    pub cost_exp: f64,
    /// Area factor a PMIC applies to the summed discrete equivalents.
    pub pmic_area_factor: f64,
    /// Fixed PMIC area (package + passives).
    pub pmic_area_base_mm2: f64,
    /// Cost factor a PMIC applies to the summed discrete equivalents.
    pub pmic_cost_factor: f64,
    /// Fixed PMIC cost.
    pub pmic_cost_base_usd: f64,
}

impl VrCatalog {
    /// The calibrated TI-style catalogue used throughout the reproduction.
    pub fn paper_calibrated() -> Self {
        Self {
            area_base_mm2: 14.0,
            area_coeff: 4.6,
            area_exp: 1.12,
            cost_base_usd: 0.20,
            cost_coeff: 0.085,
            cost_exp: 1.10,
            pmic_area_factor: 0.62,
            pmic_area_base_mm2: 16.0,
            pmic_cost_factor: 0.58,
            pmic_cost_base_usd: 0.30,
        }
    }

    /// Board area of one discrete rail sized for `rail.iccmax`.
    pub fn rail_area(&self, rail: &OffchipRail) -> SquareMillimeters {
        SquareMillimeters::new(
            self.area_base_mm2 + self.area_coeff * rail.iccmax.get().powf(self.area_exp),
        )
    }

    /// Cost of one discrete rail sized for `rail.iccmax`.
    pub fn rail_cost(&self, rail: &OffchipRail) -> Usd {
        Usd::new(self.cost_base_usd + self.cost_coeff * rail.iccmax.get().powf(self.cost_exp))
    }
}

/// The board footprint of a PDN for one SoC design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Footprint {
    /// Total board area of the off-chip VR solution.
    pub area: SquareMillimeters,
    /// Total BOM cost of the off-chip VR solution.
    pub cost: Usd,
    /// Whether the rails were consolidated into a PMIC.
    pub pmic: bool,
    /// The rails the solution was sized for.
    pub rails: Vec<OffchipRail>,
}

/// Computes the §3.2 board-area/BOM footprint of a PDN on a SoC.
///
/// # Errors
///
/// Propagates rail-sizing errors from the topology.
pub fn pdn_footprint(
    pdn: &dyn Pdn,
    soc: &SocSpec,
    catalog: &VrCatalog,
) -> Result<Footprint, PdnError> {
    let rails = pdn.offchip_rails(soc)?;
    let pmic = soc.tdp <= PMIC_TDP_LIMIT;
    let (area, cost) = if pmic {
        // A PMIC integrates the controllers of all rails into one package,
        // so only the current-dependent parts (inductors, bulk capacitors)
        // are summed, at the consolidation factor.
        let area_sum: f64 =
            rails.iter().map(|r| catalog.rail_area(r).get() - catalog.area_base_mm2).sum();
        let cost_sum: f64 =
            rails.iter().map(|r| catalog.rail_cost(r).get() - catalog.cost_base_usd).sum();
        (
            catalog.pmic_area_base_mm2 + catalog.pmic_area_factor * area_sum,
            catalog.pmic_cost_base_usd + catalog.pmic_cost_factor * cost_sum,
        )
    } else {
        let area_sum: f64 = rails.iter().map(|r| catalog.rail_area(r).get()).sum();
        let cost_sum: f64 = rails.iter().map(|r| catalog.rail_cost(r).get()).sum();
        (area_sum, cost_sum)
    };
    Ok(Footprint { area: SquareMillimeters::new(area), cost: Usd::new(cost), pmic, rails })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ModelParams;
    use crate::topology::{IPlusMbvrPdn, IvrPdn, LdoPdn, MbvrPdn};
    use pdn_proc::client_soc;

    fn footprints(tdp: f64) -> [Footprint; 4] {
        let soc = client_soc(Watts::new(tdp));
        let catalog = VrCatalog::paper_calibrated();
        let params = ModelParams::paper_defaults();
        [
            pdn_footprint(&IvrPdn::new(params.clone()), &soc, &catalog).unwrap(),
            pdn_footprint(&MbvrPdn::new(params.clone()), &soc, &catalog).unwrap(),
            pdn_footprint(&LdoPdn::new(params.clone()), &soc, &catalog).unwrap(),
            pdn_footprint(&IPlusMbvrPdn::new(params), &soc, &catalog).unwrap(),
        ]
    }

    #[test]
    fn pmic_used_only_at_low_tdp() {
        let low = footprints(10.0);
        let high = footprints(25.0);
        assert!(low.iter().all(|f| f.pmic));
        assert!(high.iter().all(|f| !f.pmic));
    }

    #[test]
    fn fig8d_bom_ordering_holds_across_tdps() {
        for tdp in [4.0, 18.0, 50.0] {
            let [ivr, mbvr, ldo, iplus] = footprints(tdp);
            let norm = |f: &Footprint| f.cost.get() / ivr.cost.get();
            let m = norm(&mbvr);
            let l = norm(&ldo);
            let i = norm(&iplus);
            assert!(
                (1.5..=4.5).contains(&m),
                "MBVR BOM at {tdp} W should be 2.1–4.2× IVR-ish: {m:.2}"
            );
            assert!((1.2..=3.4).contains(&l), "LDO BOM at {tdp} W: {l:.2}");
            assert!(m > l, "MBVR must cost more than LDO at {tdp} W");
            assert!(i < 1.45, "I+MBVR must be comparable to IVR at {tdp} W: {i:.2}");
        }
    }

    #[test]
    fn fig8e_area_ordering_holds_across_tdps() {
        for tdp in [4.0, 18.0, 50.0] {
            let [ivr, mbvr, ldo, iplus] = footprints(tdp);
            let norm = |f: &Footprint| f.area.get() / ivr.area.get();
            let m = norm(&mbvr);
            let l = norm(&ldo);
            let i = norm(&iplus);
            assert!((1.4..=4.8).contains(&m), "MBVR area at {tdp} W: {m:.2}");
            assert!((1.1..=3.5).contains(&l), "LDO area at {tdp} W: {l:.2}");
            assert!(m > l, "MBVR must take more board than LDO at {tdp} W");
            assert!(i < 1.5, "I+MBVR area comparable to IVR at {tdp} W: {i:.2}");
        }
    }

    #[test]
    fn footprint_grows_with_tdp() {
        let catalog = VrCatalog::paper_calibrated();
        let params = ModelParams::paper_defaults();
        let pdn = MbvrPdn::new(params);
        let small = pdn_footprint(&pdn, &client_soc(Watts::new(25.0)), &catalog).unwrap();
        let large = pdn_footprint(&pdn, &client_soc(Watts::new(50.0)), &catalog).unwrap();
        assert!(large.area > small.area);
        assert!(large.cost > small.cost);
    }

    #[test]
    fn rail_sharing_reduces_summed_iccmax() {
        // §7: FlexWatts/LDO share one VR between cores, LLC, and graphics,
        // reducing the summed design current versus MBVR's dedicated rails.
        let soc = client_soc(Watts::new(50.0));
        let params = ModelParams::paper_defaults();
        let sum = |pdn: &dyn Pdn| -> f64 {
            pdn.offchip_rails(&soc).unwrap().iter().map(|r| r.iccmax.get()).sum()
        };
        let mbvr = sum(&MbvrPdn::new(params.clone()));
        let ldo = sum(&LdoPdn::new(params.clone()));
        let ivr = sum(&IvrPdn::new(params));
        assert!(ldo < mbvr, "shared V_IN must cut current: LDO {ldo:.0} A vs MBVR {mbvr:.0} A");
        assert!(ivr < ldo, "the 1.8 V V_IN carries the least current: {ivr:.0} A");
    }
}
