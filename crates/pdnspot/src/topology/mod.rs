//! PDN topologies: the power-flow models of Fig. 1.
//!
//! Each topology composes the shared [`crate::etee`] stages into the
//! paper's per-PDN equations:
//!
//! * [`IvrPdn`] — two-stage: board `V_IN` at 1.8 V feeding six on-die IVRs
//!   (Eqs. 6–9, Fig. 1a);
//! * [`MbvrPdn`] — one-stage board VRs per domain group plus on-die power
//!   gates (Eqs. 2–5, Fig. 1b);
//! * [`LdoPdn`] — board `V_IN` at the maximum compute voltage feeding
//!   on-die LDOs, with SA/IO on dedicated board VRs (Eqs. 10–12, Fig. 1c);
//! * [`IPlusMbvrPdn`] — the Skylake-X hybrid (§7): IVR for compute
//!   domains, dedicated board VRs for SA/IO.
//!
//! The FlexWatts hybrid implements the same [`Pdn`] trait in the
//! `flexwatts` crate.

mod iplus;
mod ivr;
mod ldo;
mod mbvr;

pub use iplus::IPlusMbvrPdn;
pub use ivr::IvrPdn;
pub use ldo::LdoPdn;
pub use mbvr::MbvrPdn;

use crate::error::PdnError;
use crate::etee::{
    board_vr_stage, load_line_domain_stage, DirectStager, LoadLineStep, PdnEvaluation,
    RailLoadLine, RailReport, RowStage, StagedPoint, Stager,
};
use crate::memo::Fnv1a;
use crate::params::ModelParams;
use crate::scenario::Scenario;
use pdn_proc::{DomainKind, SocSpec};
use pdn_units::{Amps, Ohms, Volts, Watts};
use pdn_vr::{BuckConverter, OperatingPoint, VoltageRegulator};
use pdn_workload::WorkloadType;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The PDN architectures compared throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PdnKind {
    /// Integrated voltage regulators (state of the art; Fig. 1a).
    Ivr,
    /// Motherboard voltage regulators (Fig. 1b).
    Mbvr,
    /// Low-dropout regulators (Fig. 1c).
    Ldo,
    /// Skylake-X hybrid: IVR compute + board SA/IO.
    IPlusMbvr,
    /// The paper's contribution: hybrid adaptive IVR/LDO.
    FlexWatts,
}

impl fmt::Display for PdnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PdnKind::Ivr => "IVR",
            PdnKind::Mbvr => "MBVR",
            PdnKind::Ldo => "LDO",
            PdnKind::IPlusMbvr => "I+MBVR",
            PdnKind::FlexWatts => "FlexWatts",
        };
        f.write_str(s)
    }
}

/// An off-chip voltage regulator with its design current, the input to the
/// §3.2 board-area/BOM model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OffchipRail {
    /// Rail name.
    pub name: String,
    /// Maximum current the rail must be electrically designed for.
    pub iccmax: Amps,
    /// Rail output voltage at the design point.
    pub voltage: Volts,
}

/// A power delivery network that PDNspot can evaluate.
pub trait Pdn: fmt::Debug + Send + Sync {
    /// Which architecture this is.
    fn kind(&self) -> PdnKind;

    /// The parameter set the topology was built with.
    fn params(&self) -> &ModelParams;

    /// Evaluates the end-to-end power flow for a scenario.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError`] when a regulator cannot serve its operating
    /// point or the scenario is inconsistent.
    fn evaluate(&self, scenario: &Scenario) -> Result<PdnEvaluation, PdnError>;

    /// [`Pdn::evaluate`] with a shared per-point staging cache: topologies
    /// that route their PDN-independent stages through a [`Stager`] reuse
    /// partials other PDNs already computed at the same lattice point.
    /// Must return exactly the bits [`Pdn::evaluate`] would; the default
    /// ignores the cache and evaluates directly.
    ///
    /// # Errors
    ///
    /// Same contract as [`Pdn::evaluate`].
    fn evaluate_staged(
        &self,
        scenario: &Scenario,
        staged: &StagedPoint,
    ) -> Result<PdnEvaluation, PdnError> {
        let _ = staged;
        self.evaluate(scenario)
    }

    /// Evaluates one lattice **row** — scenarios that share every sweep
    /// coordinate except one — in a single call, routing the
    /// PDN-independent stages through a shared [`RowStage`].
    ///
    /// The batch engine hands every PDN of a row the same stager, so
    /// guardband factors and virus headrooms are computed once per row
    /// instead of once per point; the returned vector is index-aligned
    /// with `scenarios` and must contain exactly the bits a per-point
    /// [`Pdn::evaluate`] loop would produce. The default does that loop
    /// directly (ignoring the stager), which keeps external [`Pdn`]
    /// implementations correct by construction.
    fn evaluate_row(
        &self,
        scenarios: &[Scenario],
        row: &RowStage,
    ) -> Vec<Result<PdnEvaluation, PdnError>> {
        let _ = row;
        scenarios.iter().map(|s| self.evaluate(s)).collect()
    }

    /// A 64-bit identity token for result memoization: two PDNs may share
    /// a token only if they evaluate every scenario to identical bits
    /// (same topology, same full parameter set). `None` — the default —
    /// opts out of caching entirely ([`crate::memo::MemoCache`] bypasses
    /// PDNs without a token rather than risking a stale identity).
    fn memo_token(&self) -> Option<u64> {
        None
    }

    /// The off-chip rails the topology needs for a SoC, sized at the
    /// TDP-limited power virus with a 10 % electrical design margin (§3.2).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from the sizing scenarios.
    fn offchip_rails(&self, soc: &SocSpec) -> Result<Vec<OffchipRail>, PdnError> {
        let mut merged: BTreeMap<String, OffchipRail> = BTreeMap::new();
        for wl in [WorkloadType::MultiThread, WorkloadType::Graphics] {
            let virus = Scenario::power_virus_at_tdp(soc, wl)?;
            let eval = self.evaluate(&virus)?;
            for rail in eval.rails {
                let entry = merged.entry(rail.name.clone()).or_insert_with(|| OffchipRail {
                    name: rail.name.clone(),
                    iccmax: Amps::ZERO,
                    voltage: rail.voltage,
                });
                if rail.current > entry.iccmax {
                    entry.iccmax = rail.current;
                    entry.voltage = rail.voltage;
                }
            }
        }
        const DESIGN_MARGIN: f64 = 1.1;
        Ok(merged
            .into_values()
            .map(|mut r| {
                r.iccmax = r.iccmax * DESIGN_MARGIN;
                r
            })
            .collect())
    }
}

/// Outcome of pushing one domain through an on-chip conversion stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DomainStage {
    /// Power demanded from the shared input rail.
    pub input_power: Watts,
    /// Guardband/power-gate overhead incurred (the "other" bucket).
    pub overhead: Watts,
    /// On-chip VR conversion loss incurred.
    pub vr_loss: Watts,
}

/// Pushes one powered domain through tolerance band + on-die IVR
/// conversion (the per-domain part of Eqs. 2 and 6).
pub fn ivr_domain_stage(
    scenario: &Scenario,
    kind: DomainKind,
    params: &ModelParams,
    ivr: &BuckConverter,
) -> Result<DomainStage, PdnError> {
    ivr_domain_stage_with(scenario, kind, params, ivr, &DirectStager)
}

/// [`ivr_domain_stage`] with the guardband routed through a [`Stager`], so
/// batch sweeps share the Eq. 2 partial across PDNs with the same TOB.
pub fn ivr_domain_stage_with(
    scenario: &Scenario,
    kind: DomainKind,
    params: &ModelParams,
    ivr: &BuckConverter,
    stager: &impl Stager,
) -> Result<DomainStage, PdnError> {
    let load = scenario.load(kind);
    if !load.powered || load.nominal_power.get() <= 0.0 {
        return Ok(DomainStage {
            input_power: Watts::ZERO,
            overhead: Watts::ZERO,
            vr_loss: Watts::ZERO,
        });
    }
    let gb = stager.guardband(kind, load, params.ivr_tob.total(), params.leakage_exponent);
    let iout = gb.power / gb.voltage;
    let ps = ivr.best_power_state(iout).min(params.ivr_lightload_cap);
    let op = OperatingPoint::new(params.vin_level, gb.voltage, iout).with_power_state(ps);
    let pin = ivr.input_power(op)?;
    Ok(DomainStage {
        input_power: pin,
        overhead: gb.power - load.nominal_power,
        vr_loss: pin - gb.power,
    })
}

/// Pushes one powered domain through tolerance band + power gate, yielding
/// the power it demands from a dedicated board rail (MBVR-style flow).
pub fn gated_domain_stage(
    scenario: &Scenario,
    kind: DomainKind,
    tob: Volts,
    r_pg: Ohms,
    delta: f64,
) -> (Watts, Volts, Watts) {
    gated_domain_stage_with(scenario, kind, tob, r_pg, delta, &DirectStager)
}

/// [`gated_domain_stage`] with the guardband + gate routed through a
/// [`Stager`].
pub fn gated_domain_stage_with(
    scenario: &Scenario,
    kind: DomainKind,
    tob: Volts,
    r_pg: Ohms,
    delta: f64,
    stager: &impl Stager,
) -> (Watts, Volts, Watts) {
    let load = scenario.load(kind);
    if !load.powered || load.nominal_power.get() <= 0.0 {
        return (Watts::ZERO, load.voltage, Watts::ZERO);
    }
    let pg = stager.gated(kind, load, tob, r_pg, delta);
    (pg.power, pg.voltage, pg.power - load.nominal_power)
}

/// A dedicated board rail serving one narrow-range domain (SA or IO):
/// guardband + gate + load line + board VR (the MBVR flow of Eqs. 2–5
/// applied to a single domain).
#[allow(clippy::too_many_arguments)]
pub fn dedicated_rail_flow(
    scenario: &Scenario,
    kind: DomainKind,
    tob: Volts,
    r_pg: Ohms,
    r_ll: Ohms,
    vr: &BuckConverter,
    params: &ModelParams,
) -> Result<(Watts, Watts, Watts, Watts, RailReport), PdnError> {
    dedicated_rail_flow_with(scenario, kind, tob, r_pg, r_ll, vr, params, &DirectStager)
}

/// [`dedicated_rail_flow`] with the PDN-independent stages routed through
/// a [`Stager`].
#[allow(clippy::too_many_arguments)]
pub fn dedicated_rail_flow_with(
    scenario: &Scenario,
    kind: DomainKind,
    tob: Volts,
    r_pg: Ohms,
    r_ll: Ohms,
    vr: &BuckConverter,
    params: &ModelParams,
    stager: &impl Stager,
) -> Result<(Watts, Watts, Watts, Watts, RailReport), PdnError> {
    let (lane, overhead) = dedicated_rail_lane(scenario, kind, tob, r_pg, r_ll, params, stager);
    let step = load_line_domain_stage(
        lane.power,
        lane.voltage,
        lane.p_peak,
        lane.r_ll,
        lane.leakage_fraction,
        params.leakage_exponent,
    );
    dedicated_rail_finish(step, vr, params, overhead)
}

/// Front half of [`dedicated_rail_flow_with`] — guardband + power gate —
/// yielding the rail's load-line lane and the Eq. 2 overhead, so callers
/// with several dedicated rails can advance the load-line fixed points in
/// lockstep ([`crate::etee::load_line_domain_stages`]) instead of paying
/// each chain's latency back-to-back.
pub(crate) fn dedicated_rail_lane(
    scenario: &Scenario,
    kind: DomainKind,
    tob: Volts,
    r_pg: Ohms,
    r_ll: Ohms,
    params: &ModelParams,
    stager: &impl Stager,
) -> (RailLoadLine, Watts) {
    let (p_d, v_d, overhead) =
        gated_domain_stage_with(scenario, kind, tob, r_pg, params.leakage_exponent, stager);
    let lane = RailLoadLine {
        power: p_d,
        voltage: v_d,
        p_peak: stager.rail_virus_power(scenario, &[kind], p_d),
        r_ll,
        leakage_fraction: scenario.load(kind).leakage_fraction,
    };
    (lane, overhead)
}

/// Back half of [`dedicated_rail_flow_with`]: the board VR behind an
/// already-advanced load-line step.
pub(crate) fn dedicated_rail_finish(
    step: LoadLineStep,
    vr: &BuckConverter,
    params: &ModelParams,
    overhead: Watts,
) -> Result<(Watts, Watts, Watts, Watts, RailReport), PdnError> {
    let (pin, rail) = board_vr_stage(
        vr,
        params.supply_voltage,
        step.v_ll,
        step.p_ll,
        params.board_lightload_cap,
    )?;
    let vr_loss = pin - step.p_ll;
    Ok((pin, overhead, step.extra, vr_loss, rail))
}

/// Builds a [`Pdn::memo_token`] from a topology kind, a topology-private
/// `flavor` discriminating sub-configurations (e.g. FlexWatts modes), and
/// the full parameter fingerprint. Two tokens collide only when all three
/// inputs match, which is exactly the "identical evaluations" contract.
pub fn pdn_memo_token(kind: PdnKind, flavor: u64, params: &ModelParams) -> u64 {
    let mut h = Fnv1a::new();
    h.write(kind as u64);
    h.write(flavor);
    h.write(params.fingerprint());
    h.finish()
}

/// The on-die power-gate impedance used by all topologies. Table 2 quotes
/// 1–2 mΩ for the small domains; the wide cores/LLC gate arrays are nearer
/// 0.5 mΩ, which reproduces the paper's "e.g. 10 mV" gate drop (§3.1) at
/// core currents.
pub fn power_gate_impedance() -> Ohms {
    Ohms::from_milliohms(0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pdn_kind_displays_paper_names() {
        assert_eq!(PdnKind::Ivr.to_string(), "IVR");
        assert_eq!(PdnKind::IPlusMbvr.to_string(), "I+MBVR");
        assert_eq!(PdnKind::FlexWatts.to_string(), "FlexWatts");
    }

    #[test]
    fn pdn_trait_is_object_safe() {
        fn _takes_dyn(_: &dyn Pdn) {}
    }
}
