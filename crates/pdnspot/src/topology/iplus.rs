//! The I+MBVR hybrid PDN (§7, Intel Skylake-X): IVRs for the compute
//! domains, dedicated board VRs for SA and IO.

use super::{
    dedicated_rail_finish, dedicated_rail_lane, ivr_domain_stage_with, pdn_memo_token, Pdn, PdnKind,
};
use crate::error::PdnError;
use crate::etee::{
    board_vr_stage, load_line_domain_stages, load_line_stage, DirectStager, LossBreakdown,
    PdnEvaluation, RailReport, RowStage, StagedPoint, Stager,
};
use crate::params::ModelParams;
use crate::scenario::Scenario;
use pdn_proc::{DomainKind, DomainTable};
use pdn_units::{Amps, Watts};
use pdn_vr::{presets, BuckConverter};

/// The IVR+MBVR hybrid: like the IVR PDN it regulates the wide-range
/// domains in two stages through `V_IN`, but like the LDO PDN it removes
/// the second stage for SA/IO, giving those narrow-range domains one-stage
/// efficiency.
///
/// # Examples
///
/// ```
/// use pdn_units::{ApplicationRatio, Watts};
/// use pdn_workload::WorkloadType;
/// use pdnspot::{IPlusMbvrPdn, IvrPdn, ModelParams, Pdn, Scenario};
///
/// let params = ModelParams::paper_defaults();
/// let soc = pdn_proc::client_soc(Watts::new(18.0));
/// let s = Scenario::active_budget(
///     &soc,
///     WorkloadType::MultiThread,
///     ApplicationRatio::new(0.6)?,
///     &params,
/// )?;
/// let iplus = IPlusMbvrPdn::new(params.clone()).evaluate(&s)?;
/// let ivr = IvrPdn::new(params).evaluate(&s)?;
/// assert!(iplus.etee.get() > ivr.etee.get(), "I+MBVR beats IVR (§7.1)");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct IPlusMbvrPdn {
    params: ModelParams,
    vin_vr: BuckConverter,
    sa_vr: BuckConverter,
    io_vr: BuckConverter,
    ivrs: DomainTable<Option<BuckConverter>>,
}

impl IPlusMbvrPdn {
    /// Builds the I+MBVR PDN: four compute IVRs plus `V_IN`, `V_SA`,
    /// `V_IO` board rails.
    pub fn new(params: ModelParams) -> Self {
        let ivrs = DomainTable::from_fn(|k| {
            k.is_wide_range().then(|| presets::ivr(&format!("IVR_{}", k.rail_name())))
        });
        Self {
            params,
            vin_vr: presets::vin_board_vr(),
            sa_vr: presets::sa_board_vr(),
            io_vr: presets::io_board_vr(),
            ivrs,
        }
    }

    /// [`Pdn::evaluate`] with the PDN-independent stages routed through a
    /// [`Stager`]; returns the same bits for any stager implementation.
    pub fn evaluate_with(
        &self,
        scenario: &Scenario,
        stager: &impl Stager,
    ) -> Result<PdnEvaluation, PdnError> {
        let p = &self.params;
        let mut breakdown = LossBreakdown::default();
        let mut rails: Vec<RailReport> = Vec::new();
        let mut p_batt = Watts::ZERO;
        let mut chip_current = Amps::ZERO;

        // Compute domains: the IVR flow (Eqs. 6–9) restricted to the
        // wide-range group.
        let mut p_in = Watts::ZERO;
        for &kind in &DomainKind::WIDE_RANGE {
            let ivr = self.ivrs.get(kind).as_ref().expect("wide-range domains carry an IVR");
            let stage = ivr_domain_stage_with(scenario, kind, p, ivr, stager)?;
            p_in += stage.input_power;
            breakdown.other += stage.overhead;
            breakdown.vr_loss += stage.vr_loss;
        }
        if p_in.get() > 0.0 {
            let step = load_line_stage(p_in, p.vin_level, scenario.ar, p.ivr_loadlines.vin);
            breakdown.conduction_compute += step.extra;
            chip_current += p_in / p.vin_level;
            let (pin, rail) = board_vr_stage(
                &self.vin_vr,
                p.supply_voltage,
                step.v_ll,
                step.p_ll,
                p.board_lightload_cap,
            )?;
            breakdown.vr_loss += pin - step.p_ll;
            p_batt += pin;
            rails.push(rail);
        }

        // SA/IO: dedicated one-stage board rails (the MBVR flow), their
        // load-line fixed points advanced in lockstep. Per rail this is
        // `dedicated_rail_flow_with` with the same operations in the same
        // order, so the bits are unchanged.
        let tob = p.ivr_tob.total();
        let r_pg = super::power_gate_impedance();
        let (sa_lane, sa_overhead) = dedicated_rail_lane(
            scenario,
            DomainKind::Sa,
            tob,
            r_pg,
            p.mbvr_loadlines.sa,
            p,
            stager,
        );
        let (io_lane, io_overhead) = dedicated_rail_lane(
            scenario,
            DomainKind::Io,
            tob,
            r_pg,
            p.mbvr_loadlines.io,
            p,
            stager,
        );
        let steps = load_line_domain_stages(&[sa_lane, io_lane], p.leakage_exponent);
        for (l, (overhead, vr)) in
            [(sa_overhead, &self.sa_vr), (io_overhead, &self.io_vr)].into_iter().enumerate()
        {
            let (pin, overhead, conduction, vr_loss, rail) =
                dedicated_rail_finish(steps[l], vr, p, overhead)?;
            if pin.get() > 0.0 {
                breakdown.other += overhead;
                breakdown.conduction_sa_io += conduction;
                breakdown.vr_loss += vr_loss;
                chip_current += rail.current;
                p_batt += pin;
                rails.push(rail);
            }
        }

        PdnEvaluation::assemble(
            scenario.total_nominal_power(),
            p_batt,
            breakdown,
            chip_current,
            rails,
        )
    }
}

impl Pdn for IPlusMbvrPdn {
    fn kind(&self) -> PdnKind {
        PdnKind::IPlusMbvr
    }

    fn params(&self) -> &ModelParams {
        &self.params
    }

    fn evaluate(&self, scenario: &Scenario) -> Result<PdnEvaluation, PdnError> {
        self.evaluate_with(scenario, &DirectStager)
    }

    fn evaluate_staged(
        &self,
        scenario: &Scenario,
        staged: &StagedPoint,
    ) -> Result<PdnEvaluation, PdnError> {
        self.evaluate_with(scenario, staged)
    }

    fn evaluate_row(
        &self,
        scenarios: &[Scenario],
        row: &RowStage,
    ) -> Vec<Result<PdnEvaluation, PdnError>> {
        scenarios.iter().map(|s| self.evaluate_with(s, row)).collect()
    }

    fn memo_token(&self) -> Option<u64> {
        Some(pdn_memo_token(PdnKind::IPlusMbvr, 0, &self.params))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::IvrPdn;
    use pdn_proc::{client_soc, PackageCState};
    use pdn_units::ApplicationRatio;
    use pdn_workload::WorkloadType;

    fn ar(v: f64) -> ApplicationRatio {
        ApplicationRatio::new(v).unwrap()
    }

    #[test]
    fn three_offchip_rails() {
        let pdn = IPlusMbvrPdn::new(ModelParams::paper_defaults());
        let soc = client_soc(Watts::new(18.0));
        let rails = pdn.offchip_rails(&soc).unwrap();
        assert_eq!(rails.len(), 3, "I+MBVR uses V_IN, V_SA, V_IO");
    }

    #[test]
    fn beats_ivr_at_every_tdp() {
        let params = ModelParams::paper_defaults();
        let iplus = IPlusMbvrPdn::new(params.clone());
        let ivr = IvrPdn::new(params);
        for tdp in [4.0, 18.0, 50.0] {
            let soc = client_soc(Watts::new(tdp));
            let s =
                Scenario::active_budget(&soc, WorkloadType::MultiThread, ar(0.6), iplus.params())
                    .unwrap();
            let e_iplus = iplus.evaluate(&s).unwrap().etee.get();
            let e_ivr = ivr.evaluate(&s).unwrap().etee.get();
            assert!(e_iplus > e_ivr, "I+MBVR must beat IVR at {tdp} W: {e_iplus:.3} vs {e_ivr:.3}");
        }
    }

    #[test]
    fn power_is_conserved() {
        let pdn = IPlusMbvrPdn::new(ModelParams::paper_defaults());
        let soc = client_soc(Watts::new(25.0));
        let s =
            Scenario::active_budget(&soc, WorkloadType::Graphics, ar(0.7), pdn.params()).unwrap();
        let e = pdn.evaluate(&s).unwrap();
        let accounted = e.nominal_power + e.breakdown.total();
        assert!((accounted.get() - e.input_power.get()).abs() < 1e-6);
    }

    #[test]
    fn idle_states_better_than_ivr() {
        let params = ModelParams::paper_defaults();
        let iplus = IPlusMbvrPdn::new(params.clone());
        let ivr = IvrPdn::new(params);
        let soc = client_soc(Watts::new(18.0));
        let s = Scenario::idle(&soc, PackageCState::C8);
        assert!(iplus.evaluate(&s).unwrap().etee.get() > ivr.evaluate(&s).unwrap().etee.get());
    }
}
