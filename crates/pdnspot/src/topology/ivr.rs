//! The IVR PDN (Fig. 1a; Eqs. 6–9): one board `V_IN` VR at 1.8 V feeding
//! six on-die integrated voltage regulators.

use super::{ivr_domain_stage_with, pdn_memo_token, Pdn, PdnKind};
use crate::error::PdnError;
use crate::etee::{
    board_vr_stage, load_line_stage, DirectStager, LossBreakdown, PdnEvaluation, RowStage,
    StagedPoint, Stager,
};
use crate::params::ModelParams;
use crate::scenario::Scenario;
use pdn_proc::{DomainKind, DomainTable};
use pdn_units::Watts;
use pdn_vr::{presets, BuckConverter};

/// The integrated-voltage-regulator PDN — the state of the art the paper
/// compares against (Intel 4th/5th/10th-generation Core).
///
/// # Examples
///
/// ```
/// use pdn_units::{ApplicationRatio, Watts};
/// use pdn_workload::WorkloadType;
/// use pdnspot::{IvrPdn, ModelParams, Pdn, Scenario};
///
/// let params = ModelParams::paper_defaults();
/// let soc = pdn_proc::client_soc(Watts::new(50.0));
/// let s = Scenario::active_budget(
///     &soc,
///     WorkloadType::MultiThread,
///     ApplicationRatio::new(0.6)?,
///     &params,
/// )?;
/// let eval = IvrPdn::new(params).evaluate(&s)?;
/// assert!(eval.etee.get() > 0.70);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct IvrPdn {
    params: ModelParams,
    vin_vr: BuckConverter,
    ivrs: DomainTable<BuckConverter>,
}

impl IvrPdn {
    /// Builds the IVR PDN with its six per-domain IVRs and `V_IN` board VR.
    pub fn new(params: ModelParams) -> Self {
        let ivrs = DomainTable::from_fn(|k| presets::ivr(&format!("IVR_{}", k.rail_name())));
        Self { params, vin_vr: presets::vin_board_vr(), ivrs }
    }

    /// [`Pdn::evaluate`] with the PDN-independent stages routed through a
    /// [`Stager`]; returns the same bits for any stager implementation.
    pub fn evaluate_with(
        &self,
        scenario: &Scenario,
        stager: &impl Stager,
    ) -> Result<PdnEvaluation, PdnError> {
        let p = &self.params;
        let mut breakdown = LossBreakdown::default();
        let mut p_in = Watts::ZERO;
        let mut p_in_compute = Watts::ZERO;
        let mut p_in_sa_io = Watts::ZERO;

        for kind in DomainKind::ALL {
            let stage = ivr_domain_stage_with(scenario, kind, p, self.ivrs.get(kind), stager)?;
            p_in += stage.input_power;
            breakdown.other += stage.overhead;
            breakdown.vr_loss += stage.vr_loss;
            if kind.is_wide_range() {
                p_in_compute += stage.input_power;
            } else {
                p_in_sa_io += stage.input_power;
            }
        }

        // Eq. 7/8: load line on the shared V_IN rail, with the conduction
        // cost attributed proportionally to the compute and SA/IO shares.
        let step = load_line_stage(p_in, p.vin_level, scenario.ar, p.ivr_loadlines.vin);
        if p_in.get() > 0.0 {
            let compute_share = p_in_compute.get() / p_in.get();
            breakdown.conduction_compute += step.extra * compute_share;
            breakdown.conduction_sa_io += step.extra * (1.0 - compute_share);
        }
        let _ = p_in_sa_io;

        // Eq. 9: the first-stage board VR.
        let (p_batt, rail) = board_vr_stage(
            &self.vin_vr,
            p.supply_voltage,
            step.v_ll,
            step.p_ll,
            p.board_lightload_cap,
        )?;
        breakdown.vr_loss += p_batt - step.p_ll;

        let chip_input_current =
            if p_in.get() > 0.0 { p_in / p.vin_level } else { pdn_units::Amps::ZERO };
        PdnEvaluation::assemble(
            scenario.total_nominal_power(),
            p_batt,
            breakdown,
            chip_input_current,
            vec![rail],
        )
    }
}

impl Pdn for IvrPdn {
    fn kind(&self) -> PdnKind {
        PdnKind::Ivr
    }

    fn params(&self) -> &ModelParams {
        &self.params
    }

    fn evaluate(&self, scenario: &Scenario) -> Result<PdnEvaluation, PdnError> {
        self.evaluate_with(scenario, &DirectStager)
    }

    fn evaluate_staged(
        &self,
        scenario: &Scenario,
        staged: &StagedPoint,
    ) -> Result<PdnEvaluation, PdnError> {
        self.evaluate_with(scenario, staged)
    }

    fn evaluate_row(
        &self,
        scenarios: &[Scenario],
        row: &RowStage,
    ) -> Vec<Result<PdnEvaluation, PdnError>> {
        scenarios.iter().map(|s| self.evaluate_with(s, row)).collect()
    }

    fn memo_token(&self) -> Option<u64> {
        Some(pdn_memo_token(PdnKind::Ivr, 0, &self.params))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdn_proc::{client_soc, PackageCState};
    use pdn_units::ApplicationRatio;
    use pdn_workload::WorkloadType;

    fn ar(v: f64) -> ApplicationRatio {
        ApplicationRatio::new(v).unwrap()
    }

    #[test]
    fn single_offchip_rail() {
        let pdn = IvrPdn::new(ModelParams::paper_defaults());
        let soc = client_soc(Watts::new(18.0));
        let rails = pdn.offchip_rails(&soc).unwrap();
        assert_eq!(rails.len(), 1, "IVR PDN uses one off-chip VR");
        assert_eq!(rails[0].name, "V_IN");
    }

    #[test]
    fn power_is_conserved() {
        let pdn = IvrPdn::new(ModelParams::paper_defaults());
        let soc = client_soc(Watts::new(18.0));
        let s = Scenario::active_budget(&soc, WorkloadType::MultiThread, ar(0.6), pdn.params())
            .unwrap();
        let e = pdn.evaluate(&s).unwrap();
        let accounted = e.nominal_power + e.breakdown.total();
        assert!(
            (accounted.get() - e.input_power.get()).abs() < 1e-6,
            "nominal + losses must equal input: {accounted} vs {}",
            e.input_power
        );
    }

    #[test]
    fn etee_improves_from_low_tdp() {
        // Observation 1: two-stage conversion hurts most at low power, so
        // the 4 W point is the IVR PDN's worst across the TDP range.
        let pdn = IvrPdn::new(ModelParams::paper_defaults());
        let at = |tdp: f64| {
            let soc = client_soc(Watts::new(tdp));
            let s = Scenario::active_budget(&soc, WorkloadType::MultiThread, ar(0.6), pdn.params())
                .unwrap();
            pdn.evaluate(&s).unwrap().etee.get()
        };
        let low = at(4.0);
        assert!(at(18.0) > low, "18 W should beat 4 W");
        assert!(at(50.0) > low, "50 W should beat 4 W");
    }

    #[test]
    fn idle_states_are_inefficient() {
        // Observation 3: deep C-states pay the two-stage overhead.
        let pdn = IvrPdn::new(ModelParams::paper_defaults());
        let soc = client_soc(Watts::new(18.0));
        let c6 = pdn.evaluate(&Scenario::idle(&soc, PackageCState::C6)).unwrap();
        let c8 = pdn.evaluate(&Scenario::idle(&soc, PackageCState::C8)).unwrap();
        assert!(c8.etee.get() < c6.etee.get(), "C8's tiny currents hurt the two-stage IVR");
        assert!(c8.etee.get() < 0.76, "IVR C8 ETEE should be poor: {}", c8.etee);
    }

    #[test]
    fn chip_input_current_uses_the_high_vin() {
        let pdn = IvrPdn::new(ModelParams::paper_defaults());
        let soc = client_soc(Watts::new(50.0));
        let s = Scenario::active_budget(&soc, WorkloadType::MultiThread, ar(0.6), pdn.params())
            .unwrap();
        let e = pdn.evaluate(&s).unwrap();
        // ~40 W at 1.8 V is ≈ 25 A, far below what a 1 V rail would carry.
        assert!(e.chip_input_current.get() < 40.0);
        assert!(e.chip_input_current.get() > 10.0);
    }
}
