//! The LDO PDN (Fig. 1c; Eqs. 10–12): a board `V_IN` VR at the maximum
//! compute voltage feeding on-die LDO VRs, with SA/IO on dedicated board
//! VRs (AMD Zen style).

use super::{dedicated_rail_finish, dedicated_rail_lane, pdn_memo_token, Pdn, PdnKind};
use crate::error::PdnError;
use crate::etee::{
    board_vr_stage, load_line_domain_stages, DirectStager, LossBreakdown, PdnEvaluation,
    RailLoadLine, RailReport, RowStage, StagedPoint, Stager,
};
use crate::params::ModelParams;
use crate::scenario::Scenario;
use pdn_proc::{DomainKind, DomainTable};
use pdn_units::{Amps, Watts};
use pdn_vr::{presets, BuckConverter, LdoRegulator, OperatingPoint, VoltageRegulator};

/// The low-dropout-regulator PDN. The power-management unit sets `V_IN` to
/// the maximum voltage required across the compute domains; domains needing
/// exactly that voltage run their LDO in bypass mode, lower-voltage domains
/// regulate (at `η = Vout/Vin · Ie`), and idle domains use the LDO as a
/// power gate (§2.3).
///
/// # Examples
///
/// ```
/// use pdn_units::{ApplicationRatio, Watts};
/// use pdn_workload::WorkloadType;
/// use pdnspot::{LdoPdn, ModelParams, Pdn, Scenario};
///
/// let params = ModelParams::paper_defaults();
/// let soc = pdn_proc::client_soc(Watts::new(4.0));
/// let s = Scenario::active_budget(
///     &soc,
///     WorkloadType::SingleThread,
///     ApplicationRatio::new(0.6)?,
///     &params,
/// )?;
/// let eval = LdoPdn::new(params).evaluate(&s)?;
/// assert!(eval.etee.get() > 0.72, "LDO is efficient at low TDP");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct LdoPdn {
    params: ModelParams,
    vin_vr: BuckConverter,
    sa_vr: BuckConverter,
    io_vr: BuckConverter,
    ldos: DomainTable<Option<LdoRegulator>>,
}

impl LdoPdn {
    /// Builds the LDO PDN: four on-die LDOs (cores, LLC, graphics), a board
    /// `V_IN`, and dedicated `V_SA`/`V_IO` board rails.
    pub fn new(params: ModelParams) -> Self {
        let ldos = DomainTable::from_fn(|k| {
            k.is_wide_range().then(|| presets::ldo(&format!("LDO_{}", k.rail_name())))
        });
        Self {
            params,
            vin_vr: presets::compute_board_vr("V_IN"),
            sa_vr: presets::sa_board_vr(),
            io_vr: presets::io_board_vr(),
            ldos,
        }
    }

    /// [`Pdn::evaluate`] with the PDN-independent stages routed through a
    /// [`Stager`]; returns the same bits for any stager implementation.
    pub fn evaluate_with(
        &self,
        scenario: &Scenario,
        stager: &impl Stager,
    ) -> Result<PdnEvaluation, PdnError> {
        let p = &self.params;
        let tob = p.ldo_tob.total();
        let mut breakdown = LossBreakdown::default();
        let mut rails: Vec<RailReport> = Vec::new();
        let mut p_batt = Watts::ZERO;
        let mut chip_current = Amps::ZERO;

        // The PMU raises V_IN to the highest guardbanded compute voltage.
        let vin_rail = scenario.max_voltage_among(&DomainKind::WIDE_RANGE).map(|v| v + tob);

        let mut p_in = Watts::ZERO;
        let mut fl_weighted = 0.0;
        let mut vin_lane: Option<RailLoadLine> = None;
        if let Some(vin_rail) = vin_rail {
            for &kind in &DomainKind::WIDE_RANGE {
                let load = scenario.load(kind);
                if !load.powered || load.nominal_power.get() <= 0.0 {
                    continue; // the LDO acts as a power gate
                }
                // Eq. 2 guardband, then Eq. 10/11 LDO conversion.
                let gb = stager.guardband(kind, load, tob, p.leakage_exponent);
                breakdown.other += gb.power - load.nominal_power;
                let iout = gb.power / gb.voltage;
                let op = OperatingPoint::new(vin_rail, gb.voltage, iout);
                let ldo = self.ldos.get(kind).as_ref().expect("wide-range domains carry an LDO");
                let eta = ldo.efficiency(op)?;
                let pin_d = gb.power / eta;
                breakdown.vr_loss += pin_d - gb.power;
                fl_weighted += load.leakage_fraction.get() * pin_d.get();
                p_in += pin_d;
            }

            vin_lane = (p_in.get() > 0.0).then(|| {
                // Eqs. 7–8 applied to the LDO V_IN rail. Bypassed domains
                // see the rail directly, so the physical domain-load
                // variant applies (excess voltage burns Eq. 2 power).
                let fl = pdn_units::Ratio::new(fl_weighted / p_in.get())
                    .expect("weighted mean of valid fractions");
                RailLoadLine {
                    power: p_in,
                    voltage: vin_rail,
                    p_peak: stager.rail_virus_power(scenario, &DomainKind::WIDE_RANGE, p_in),
                    r_ll: p.ldo_loadlines.vin,
                    leakage_fraction: fl,
                }
            });
        }

        // All three board rails' load-line fixed points in lockstep, then
        // their VRs in the original V_IN → SA → IO order (each rail sees
        // the same operations in the same order as the rail-at-a-time
        // walk, so the bits are unchanged).
        let r_pg = super::power_gate_impedance();
        let (sa_lane, sa_overhead) =
            dedicated_rail_lane(scenario, DomainKind::Sa, tob, r_pg, p.ldo_loadlines.sa, p, stager);
        let (io_lane, io_overhead) =
            dedicated_rail_lane(scenario, DomainKind::Io, tob, r_pg, p.ldo_loadlines.io, p, stager);
        let mut lanes = [sa_lane, io_lane, io_lane];
        let n_lanes = if let Some(vin) = vin_lane {
            lanes = [vin, sa_lane, io_lane];
            3
        } else {
            2
        };
        let steps = load_line_domain_stages(&lanes[..n_lanes], p.leakage_exponent);
        let mut next = 0;
        if let Some(vin) = vin_lane {
            let step = steps[next];
            next += 1;
            breakdown.conduction_compute += step.extra;
            chip_current += vin.power / vin.voltage;
            // Eq. 12 first term: the V_IN board VR.
            let (pin, rail) = board_vr_stage(
                &self.vin_vr,
                p.supply_voltage,
                step.v_ll,
                step.p_ll,
                p.board_lightload_cap,
            )?;
            breakdown.vr_loss += pin - step.p_ll;
            p_batt += pin;
            rails.push(rail);
        }

        // Eq. 12 second term: dedicated SA/IO rails (MBVR-style flow).
        for (overhead, vr) in [(sa_overhead, &self.sa_vr), (io_overhead, &self.io_vr)] {
            let (pin, overhead, conduction, vr_loss, rail) =
                dedicated_rail_finish(steps[next], vr, p, overhead)?;
            next += 1;
            if pin.get() > 0.0 {
                breakdown.other += overhead;
                breakdown.conduction_sa_io += conduction;
                breakdown.vr_loss += vr_loss;
                chip_current += rail.current;
                p_batt += pin;
                rails.push(rail);
            }
        }

        PdnEvaluation::assemble(
            scenario.total_nominal_power(),
            p_batt,
            breakdown,
            chip_current,
            rails,
        )
    }
}

impl Pdn for LdoPdn {
    fn kind(&self) -> PdnKind {
        PdnKind::Ldo
    }

    fn params(&self) -> &ModelParams {
        &self.params
    }

    fn evaluate(&self, scenario: &Scenario) -> Result<PdnEvaluation, PdnError> {
        self.evaluate_with(scenario, &DirectStager)
    }

    fn evaluate_staged(
        &self,
        scenario: &Scenario,
        staged: &StagedPoint,
    ) -> Result<PdnEvaluation, PdnError> {
        self.evaluate_with(scenario, staged)
    }

    fn evaluate_row(
        &self,
        scenarios: &[Scenario],
        row: &RowStage,
    ) -> Vec<Result<PdnEvaluation, PdnError>> {
        scenarios.iter().map(|s| self.evaluate_with(s, row)).collect()
    }

    fn memo_token(&self) -> Option<u64> {
        Some(pdn_memo_token(PdnKind::Ldo, 0, &self.params))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::MbvrPdn;
    use pdn_proc::{client_soc, PackageCState};
    use pdn_units::ApplicationRatio;
    use pdn_workload::WorkloadType;

    fn ar(v: f64) -> ApplicationRatio {
        ApplicationRatio::new(v).unwrap()
    }

    #[test]
    fn three_offchip_rails() {
        let pdn = LdoPdn::new(ModelParams::paper_defaults());
        let soc = client_soc(Watts::new(18.0));
        let rails = pdn.offchip_rails(&soc).unwrap();
        assert_eq!(rails.len(), 3, "LDO uses V_IN, V_SA, V_IO");
    }

    #[test]
    fn power_is_conserved() {
        let pdn = LdoPdn::new(ModelParams::paper_defaults());
        let soc = client_soc(Watts::new(18.0));
        for wl in [WorkloadType::SingleThread, WorkloadType::Graphics] {
            let s = Scenario::active_budget(&soc, wl, ar(0.6), pdn.params()).unwrap();
            let e = pdn.evaluate(&s).unwrap();
            let accounted = e.nominal_power + e.breakdown.total();
            assert!((accounted.get() - e.input_power.get()).abs() < 1e-6, "{wl}");
        }
    }

    #[test]
    fn graphics_workloads_hurt_the_ldo_pdn() {
        // Observation 2: the voltage gap between GFX (high) and cores (low)
        // forces the core LDOs into deep, inefficient regulation.
        let params = ModelParams::paper_defaults();
        let ldo = LdoPdn::new(params.clone());
        let mbvr = MbvrPdn::new(params);
        let soc = client_soc(Watts::new(18.0));
        let cpu = Scenario::active_budget(&soc, WorkloadType::MultiThread, ar(0.6), ldo.params())
            .unwrap();
        let gfx =
            Scenario::active_budget(&soc, WorkloadType::Graphics, ar(0.6), ldo.params()).unwrap();
        let gap_cpu =
            ldo.evaluate(&cpu).unwrap().etee.get() - mbvr.evaluate(&cpu).unwrap().etee.get();
        let gap_gfx =
            ldo.evaluate(&gfx).unwrap().etee.get() - mbvr.evaluate(&gfx).unwrap().etee.get();
        assert!(
            gap_gfx < gap_cpu,
            "LDO should lose more ground to MBVR on graphics: CPU gap {gap_cpu:.3}, GFX gap {gap_gfx:.3}"
        );
    }

    #[test]
    fn bypass_mode_on_the_hottest_domain() {
        // The domain defining V_IN runs in bypass; its LDO loss is tiny.
        let pdn = LdoPdn::new(ModelParams::paper_defaults());
        let soc = client_soc(Watts::new(18.0));
        let s = Scenario::active_budget(&soc, WorkloadType::MultiThread, ar(0.6), pdn.params())
            .unwrap();
        let e = pdn.evaluate(&s).unwrap();
        // All compute domains share one voltage here, so every LDO is in
        // bypass and the on-chip VR loss is a small share of input power.
        let vr_frac = e.breakdown.vr_loss.get() / e.input_power.get();
        assert!(vr_frac < 0.25, "bypass should keep VR loss modest: {vr_frac:.3}");
    }

    #[test]
    fn idle_states_remain_efficient() {
        let pdn = LdoPdn::new(ModelParams::paper_defaults());
        let soc = client_soc(Watts::new(18.0));
        let c8 = pdn.evaluate(&Scenario::idle(&soc, PackageCState::C8)).unwrap();
        assert!(c8.etee.get() > 0.60, "LDO C8 ETEE should stay decent: {}", c8.etee);
    }
}
