//! The MBVR PDN (Fig. 1b; Eqs. 2–5): one-stage motherboard VRs per domain
//! group, with on-die power gates.

use super::{gated_domain_stage_with, pdn_memo_token, power_gate_impedance, Pdn, PdnKind};
use crate::error::PdnError;
use crate::etee::{
    board_vr_stage, load_line_domain_stages, DirectStager, LossBreakdown, PdnEvaluation,
    RailLoadLine, RailReport, RowStage, StagedPoint, Stager, MAX_RAIL_LANES,
};
use crate::params::ModelParams;
use crate::scenario::Scenario;
use pdn_proc::DomainKind;
use pdn_units::{Amps, Ohms, Volts, Watts};
use pdn_vr::{presets, BuckConverter};

/// One board rail and the domains it serves.
#[derive(Debug)]
struct RailGroup {
    vr: BuckConverter,
    domains: Vec<DomainKind>,
    compute: bool,
}

/// The motherboard-voltage-regulator PDN (Intel 2nd/3rd/6th–9th-generation
/// Core): `V_Cores` feeds both cores and the LLC, `V_GFX` the graphics,
/// `V_SA`/`V_IO` the narrow-range domains.
///
/// # Examples
///
/// ```
/// use pdn_units::{ApplicationRatio, Watts};
/// use pdn_workload::WorkloadType;
/// use pdnspot::{MbvrPdn, ModelParams, Pdn, Scenario};
///
/// let params = ModelParams::paper_defaults();
/// let soc = pdn_proc::client_soc(Watts::new(4.0));
/// let s = Scenario::active_budget(
///     &soc,
///     WorkloadType::SingleThread,
///     ApplicationRatio::new(0.6)?,
///     &params,
/// )?;
/// let eval = MbvrPdn::new(params).evaluate(&s)?;
/// assert!(eval.etee.get() > 0.72, "MBVR is efficient at low TDP");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct MbvrPdn {
    params: ModelParams,
    groups: Vec<RailGroup>,
}

impl MbvrPdn {
    /// Builds the MBVR PDN with its four board rails.
    pub fn new(params: ModelParams) -> Self {
        let groups = vec![
            RailGroup {
                vr: presets::compute_board_vr("V_Cores"),
                domains: vec![DomainKind::Core0, DomainKind::Core1, DomainKind::Llc],
                compute: true,
            },
            RailGroup {
                vr: presets::compute_board_vr("V_GFX"),
                domains: vec![DomainKind::Gfx],
                compute: true,
            },
            RailGroup { vr: presets::sa_board_vr(), domains: vec![DomainKind::Sa], compute: false },
            RailGroup { vr: presets::io_board_vr(), domains: vec![DomainKind::Io], compute: false },
        ];
        Self { params, groups }
    }

    fn group_loadline(&self, group: &RailGroup) -> Ohms {
        if group.compute {
            self.params.mbvr_loadlines.compute
        } else if group.domains.contains(&DomainKind::Sa) {
            self.params.mbvr_loadlines.sa
        } else {
            self.params.mbvr_loadlines.io
        }
    }

    /// [`Pdn::evaluate`] with the PDN-independent stages routed through a
    /// [`Stager`]; returns the same bits for any stager implementation.
    pub fn evaluate_with(
        &self,
        scenario: &Scenario,
        stager: &impl Stager,
    ) -> Result<PdnEvaluation, PdnError> {
        let p = &self.params;
        let tob = p.mbvr_tob.total();
        let r_pg = power_gate_impedance();
        let mut breakdown = LossBreakdown::default();
        let mut rails: Vec<RailReport> = Vec::new();
        let mut p_batt = Watts::ZERO;
        let mut chip_current = Amps::ZERO;

        // Phase 1 — Eq. 2 + power gate for each domain, collecting each
        // powered group's rail-level load. The per-accumulator addition
        // order matches the single-loop walk (group order), so the split
        // into phases changes no bits.
        let mut lanes: [RailLoadLine; MAX_RAIL_LANES] = [RailLoadLine {
            power: Watts::ZERO,
            voltage: Volts::ZERO,
            p_peak: Watts::ZERO,
            r_ll: Ohms::new(0.0),
            leakage_fraction: pdn_units::Ratio::ZERO,
        }; MAX_RAIL_LANES];
        let mut active: [Option<&RailGroup>; MAX_RAIL_LANES] = [None; MAX_RAIL_LANES];
        let mut n_lanes = 0;
        for group in &self.groups {
            let mut p_d = Watts::ZERO;
            let mut v_d = Volts::ZERO;
            let mut fl_weighted = 0.0;
            for &kind in &group.domains {
                let (pwr, v, overhead) =
                    gated_domain_stage_with(scenario, kind, tob, r_pg, p.leakage_exponent, stager);
                p_d += pwr;
                breakdown.other += overhead;
                fl_weighted += scenario.load(kind).leakage_fraction.get() * pwr.get();
                // The shared rail supplies the highest voltage any member
                // requires.
                if pwr.get() > 0.0 {
                    v_d = v_d.max(v);
                }
            }
            if p_d.get() <= 0.0 {
                continue; // the whole group is gated; its rail is off
            }
            let group_fl = pdn_units::Ratio::new(fl_weighted / p_d.get())
                .expect("weighted mean of valid fractions");
            lanes[n_lanes] = RailLoadLine {
                power: p_d,
                voltage: v_d,
                p_peak: stager.rail_virus_power(scenario, &group.domains, p_d),
                r_ll: self.group_loadline(group),
                leakage_fraction: group_fl,
            };
            active[n_lanes] = Some(group);
            n_lanes += 1;
            chip_current += p_d / v_d;
        }

        // Phase 2 — Eqs. 3–4: the powered groups' load lines, advanced in
        // lockstep so their fixed-point chains overlap.
        let steps = load_line_domain_stages(&lanes[..n_lanes], p.leakage_exponent);

        // Phase 3 — Eq. 5 term: each group's board VR, in group order.
        for l in 0..n_lanes {
            let group = active[l].expect("lane count matches active groups");
            let step = steps[l];
            if group.compute {
                breakdown.conduction_compute += step.extra;
            } else {
                breakdown.conduction_sa_io += step.extra;
            }
            let (pin, rail) = board_vr_stage(
                &group.vr,
                p.supply_voltage,
                step.v_ll,
                step.p_ll,
                p.board_lightload_cap,
            )?;
            breakdown.vr_loss += pin - step.p_ll;
            p_batt += pin;
            rails.push(rail);
        }

        PdnEvaluation::assemble(
            scenario.total_nominal_power(),
            p_batt,
            breakdown,
            chip_current,
            rails,
        )
    }
}

impl Pdn for MbvrPdn {
    fn kind(&self) -> PdnKind {
        PdnKind::Mbvr
    }

    fn params(&self) -> &ModelParams {
        &self.params
    }

    fn evaluate(&self, scenario: &Scenario) -> Result<PdnEvaluation, PdnError> {
        self.evaluate_with(scenario, &DirectStager)
    }

    fn evaluate_staged(
        &self,
        scenario: &Scenario,
        staged: &StagedPoint,
    ) -> Result<PdnEvaluation, PdnError> {
        self.evaluate_with(scenario, staged)
    }

    fn evaluate_row(
        &self,
        scenarios: &[Scenario],
        row: &RowStage,
    ) -> Vec<Result<PdnEvaluation, PdnError>> {
        scenarios.iter().map(|s| self.evaluate_with(s, row)).collect()
    }

    fn memo_token(&self) -> Option<u64> {
        Some(pdn_memo_token(PdnKind::Mbvr, 0, &self.params))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdn_proc::{client_soc, PackageCState};
    use pdn_units::ApplicationRatio;
    use pdn_workload::WorkloadType;

    fn ar(v: f64) -> ApplicationRatio {
        ApplicationRatio::new(v).unwrap()
    }

    #[test]
    fn four_offchip_rails_when_everything_runs() {
        let pdn = MbvrPdn::new(ModelParams::paper_defaults());
        let soc = client_soc(Watts::new(18.0));
        let rails = pdn.offchip_rails(&soc).unwrap();
        assert_eq!(rails.len(), 4, "MBVR uses V_Cores, V_GFX, V_SA, V_IO");
        let names: Vec<&str> = rails.iter().map(|r| r.name.as_str()).collect();
        assert!(names.contains(&"V_Cores") && names.contains(&"V_GFX"));
    }

    #[test]
    fn gated_gfx_rail_is_off_in_cpu_workloads() {
        let pdn = MbvrPdn::new(ModelParams::paper_defaults());
        let soc = client_soc(Watts::new(18.0));
        let s = Scenario::active_budget(&soc, WorkloadType::SingleThread, ar(0.6), pdn.params())
            .unwrap();
        let e = pdn.evaluate(&s).unwrap();
        assert!(
            !e.rails.iter().any(|r| r.name == "V_GFX"),
            "single-thread gates GFX, so its rail should be off"
        );
    }

    #[test]
    fn power_is_conserved() {
        let pdn = MbvrPdn::new(ModelParams::paper_defaults());
        let soc = client_soc(Watts::new(50.0));
        let s =
            Scenario::active_budget(&soc, WorkloadType::Graphics, ar(0.7), pdn.params()).unwrap();
        let e = pdn.evaluate(&s).unwrap();
        let accounted = e.nominal_power + e.breakdown.total();
        assert!((accounted.get() - e.input_power.get()).abs() < 1e-6);
    }

    #[test]
    fn etee_nearly_flat_in_ar() {
        // Observation 2 (reproduction note, see EXPERIMENTS.md): the paper
        // measures a mildly *rising* MBVR ETEE with AR; our parametric
        // board-VR substitute yields a flat-to-slightly-falling trend. The
        // load-line amortisation mechanism is present (the conduction
        // share falls with AR), but board-VR conduction growth offsets it.
        // This test pins the reproduced behaviour: ETEE varies by < 2 %
        // absolute over the full AR sweep, and the conduction share falls.
        let pdn = MbvrPdn::new(ModelParams::paper_defaults());
        let soc = client_soc(Watts::new(50.0));
        let eval = |a: f64| {
            let s = Scenario::active_fixed_tdp_frequency(&soc, WorkloadType::MultiThread, ar(a))
                .unwrap();
            pdn.evaluate(&s).unwrap()
        };
        let lo = eval(0.4);
        let hi = eval(0.8);
        let delta = (hi.etee.get() - lo.etee.get()).abs();
        assert!(delta < 0.02, "MBVR ETEE should be nearly flat in AR: Δ = {delta:.4}");
        let cc_lo = lo.breakdown.conduction_compute.get() / lo.input_power.get();
        let cc_hi = hi.breakdown.conduction_compute.get() / hi.input_power.get();
        assert!(
            cc_hi < cc_lo,
            "the load-line share must amortise with AR: {cc_lo:.3} → {cc_hi:.3}"
        );
    }

    #[test]
    fn idle_states_remain_efficient() {
        // Observation 3: one-stage regulation keeps C-state ETEE high.
        let pdn = MbvrPdn::new(ModelParams::paper_defaults());
        let soc = client_soc(Watts::new(18.0));
        let c8 = pdn.evaluate(&Scenario::idle(&soc, PackageCState::C8)).unwrap();
        assert!(c8.etee.get() > 0.60, "MBVR C8 ETEE should stay decent: {}", c8.etee);
    }

    #[test]
    fn chip_input_current_is_high_at_low_voltage() {
        let pdn = MbvrPdn::new(ModelParams::paper_defaults());
        let ivr = crate::topology::IvrPdn::new(ModelParams::paper_defaults());
        let soc = client_soc(Watts::new(50.0));
        let s = Scenario::active_budget(&soc, WorkloadType::MultiThread, ar(0.56), pdn.params())
            .unwrap();
        let i_mbvr = pdn.evaluate(&s).unwrap().chip_input_current;
        let i_ivr = ivr.evaluate(&s).unwrap().chip_input_current;
        let ratio = i_mbvr.get() / i_ivr.get();
        assert!(
            ratio > 1.3 && ratio < 3.0,
            "Fig. 5: MBVR chip input current well above IVR's, got {ratio:.2}×"
        );
    }
}
