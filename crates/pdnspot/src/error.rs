//! Error type for PDN evaluation.

use std::fmt;

/// Error produced by PDNspot evaluations.
#[derive(Debug, Clone, PartialEq)]
pub enum PdnError {
    /// A regulator rejected its operating point.
    Vr(pdn_vr::VrError),
    /// A quantity or curve failed validation.
    Units(pdn_units::UnitsError),
    /// The scenario is inconsistent (e.g. no powered domain, or a solver
    /// could not bracket a solution).
    Scenario(String),
}

impl fmt::Display for PdnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdnError::Vr(e) => write!(f, "regulator error: {e}"),
            PdnError::Units(e) => write!(f, "units error: {e}"),
            PdnError::Scenario(msg) => write!(f, "scenario error: {msg}"),
        }
    }
}

impl std::error::Error for PdnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PdnError::Vr(e) => Some(e),
            PdnError::Units(e) => Some(e),
            PdnError::Scenario(_) => None,
        }
    }
}

impl From<pdn_vr::VrError> for PdnError {
    fn from(e: pdn_vr::VrError) -> Self {
        PdnError::Vr(e)
    }
}

impl From<pdn_units::UnitsError> for PdnError {
    fn from(e: pdn_units::UnitsError) -> Self {
        PdnError::Units(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_chain() {
        let e = PdnError::from(pdn_units::UnitsError::NotFinite { what: "ratio" });
        assert!(e.to_string().contains("units"));
        assert!(std::error::Error::source(&e).is_some());
        let s = PdnError::Scenario("no powered domain".into());
        assert!(s.to_string().contains("no powered domain"));
        assert!(std::error::Error::source(&s).is_none());
    }
}
