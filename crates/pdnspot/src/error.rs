//! Error type for PDN evaluation, designed to cross a wire.
//!
//! [`PdnError`] started life as a library-only enum; the `pdn-serve`
//! daemon forces it to be **wire-ready**:
//!
//! * the enum is `#[non_exhaustive]` so new failure classes can ship
//!   without breaking downstream matches;
//! * every error maps to a stable [`ErrorCode`] (via [`PdnError::code`])
//!   whose `u16` discriminants are frozen protocol constants — clients
//!   on older protocol revisions can still classify errors they have
//!   never seen spelled out;
//! * the [`PdnError::Wire`] variant is the decoded form of an error that
//!   crossed the wire: it preserves the original code and rendered
//!   message even when the native variant (a regulator error full of
//!   `&'static str` fields) cannot be rebuilt on the receiving side.
//!
//! The serve protocol's `ServeError` frame (in the `pdn-serve` crate)
//! converts losslessly to and from this type: structured variants
//! (scenario, degradation, lattice coordinates) round-trip field by
//! field, and leaf regulator/units errors round-trip as code + message.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable wire-level classification of a [`PdnError`].
///
/// The `u16` values are frozen protocol constants: they are what the
/// `pdn-serve` framing writes on the wire, so **never renumber them** —
/// add new codes at the end instead. [`ErrorCode::from_wire`] maps
/// unknown discriminants to [`ErrorCode::Unknown`] rather than failing,
/// which keeps old clients compatible with new servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ErrorCode {
    /// A regulator rejected its operating point ([`PdnError::Vr`]).
    Vr,
    /// A quantity or curve failed validation ([`PdnError::Units`]).
    Units,
    /// The scenario is inconsistent ([`PdnError::Scenario`]).
    Scenario,
    /// A component degraded out of its envelope ([`PdnError::Degraded`]).
    Degraded,
    /// A batch campaign failed at a lattice point ([`PdnError::Lattice`]).
    Lattice,
    /// A malformed, truncated, or corrupt protocol frame.
    Protocol,
    /// The server's admission queue is full; retry later.
    Overloaded,
    /// A snapshot could not be written, read, or validated.
    Snapshot,
    /// The server is shutting down and no longer accepts work.
    Shutdown,
    /// The request is well-formed but names something the server does not
    /// serve (an unknown PDN, an unresident surface, a disabled feature).
    Unsupported,
    /// The request's deadline expired before (or while) the server could
    /// answer it. The work it named may still have completed for other
    /// waiters coalesced onto the same point.
    DeadlineExceeded,
    /// The server isolated an internal failure (a panicking evaluation)
    /// while answering this request. Retryable once: a second panic on
    /// the same bit-exact request quarantines it as
    /// [`ErrorCode::Poisoned`].
    Internal,
    /// The bit-exact request has panicked the server repeatedly and is
    /// quarantined. Terminal: retrying the identical bytes will never
    /// succeed.
    Poisoned,
    /// An error code this build does not know (sent by a newer peer).
    Unknown,
}

impl ErrorCode {
    /// The frozen wire discriminant.
    pub fn to_wire(self) -> u16 {
        match self {
            ErrorCode::Vr => 1,
            ErrorCode::Units => 2,
            ErrorCode::Scenario => 3,
            ErrorCode::Degraded => 4,
            ErrorCode::Lattice => 5,
            ErrorCode::Protocol => 6,
            ErrorCode::Overloaded => 7,
            ErrorCode::Snapshot => 8,
            ErrorCode::Shutdown => 9,
            ErrorCode::Unsupported => 10,
            ErrorCode::DeadlineExceeded => 11,
            ErrorCode::Internal => 12,
            ErrorCode::Poisoned => 13,
            ErrorCode::Unknown => 0xFFFF,
        }
    }

    /// Decodes a wire discriminant; unknown values map to
    /// [`ErrorCode::Unknown`] (never an error — forward compatibility).
    pub fn from_wire(raw: u16) -> Self {
        match raw {
            1 => ErrorCode::Vr,
            2 => ErrorCode::Units,
            3 => ErrorCode::Scenario,
            4 => ErrorCode::Degraded,
            5 => ErrorCode::Lattice,
            6 => ErrorCode::Protocol,
            7 => ErrorCode::Overloaded,
            8 => ErrorCode::Snapshot,
            9 => ErrorCode::Shutdown,
            10 => ErrorCode::Unsupported,
            11 => ErrorCode::DeadlineExceeded,
            12 => ErrorCode::Internal,
            13 => ErrorCode::Poisoned,
            _ => ErrorCode::Unknown,
        }
    }

    /// Whether a client may retry the same request unchanged and expect
    /// it to eventually succeed.
    ///
    /// Retryable codes are transient server conditions: load shedding
    /// ([`ErrorCode::Overloaded`]), an expired deadline
    /// ([`ErrorCode::DeadlineExceeded`]), and a first isolated panic
    /// ([`ErrorCode::Internal`] — bounded, because a repeat panic on the
    /// same bytes becomes the terminal [`ErrorCode::Poisoned`]). Every
    /// other code describes the request or the server state itself, and
    /// retrying unchanged bytes cannot help. Retryable errors may carry
    /// a `RetryAfter` hint on the wire; clients without one should back
    /// off exponentially from ~10 ms.
    pub fn is_retryable(self) -> bool {
        matches!(self, ErrorCode::Overloaded | ErrorCode::DeadlineExceeded | ErrorCode::Internal)
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::Vr => "vr",
            ErrorCode::Units => "units",
            ErrorCode::Scenario => "scenario",
            ErrorCode::Degraded => "degraded",
            ErrorCode::Lattice => "lattice",
            ErrorCode::Protocol => "protocol",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Snapshot => "snapshot",
            ErrorCode::Shutdown => "shutdown",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::DeadlineExceeded => "deadline-exceeded",
            ErrorCode::Internal => "internal",
            ErrorCode::Poisoned => "poisoned",
            ErrorCode::Unknown => "unknown",
        };
        f.write_str(s)
    }
}

/// Error produced by PDNspot evaluations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PdnError {
    /// A regulator rejected its operating point.
    Vr(pdn_vr::VrError),
    /// A quantity or curve failed validation.
    Units(pdn_units::UnitsError),
    /// The scenario is inconsistent (e.g. no powered domain, or a solver
    /// could not bracket a solution).
    Scenario(String),
    /// A component left (or refused to enter) its full-function envelope:
    /// an invalid protection configuration, exhausted switch retries, a
    /// latched safe-mode watchdog. Produced by validation paths and by
    /// fault-tolerant runtimes running under a strict degradation policy,
    /// where "carry on degraded" is not acceptable and the caller must see
    /// the loss of service quality as an error.
    Degraded {
        /// The component that degraded (e.g. `MaxCurrentProtection`,
        /// `FlexWattsRuntime`).
        component: String,
        /// Human-readable description of the degradation.
        reason: String,
    },
    /// A reference-counted view of another error, used where one failure
    /// fans out to many consumers (a failing lattice point reported once
    /// per PDN): cloning bumps a refcount instead of deep-copying the
    /// error. Transparent in `Display` and `source`.
    Shared(std::sync::Arc<PdnError>),
    /// A batch campaign failed at a specific lattice point (see
    /// [`crate::batch`]); carries the failing coordinates so a single bad
    /// point can be located inside a large sweep.
    Lattice {
        /// Display name of the PDN being evaluated, or `None` when
        /// scenario construction itself failed (before any PDN ran).
        pdn: Option<String>,
        /// Human-readable lattice coordinates (e.g. `tdp=18W wl=MT
        /// ar=0.56`).
        point: String,
        /// The underlying failure.
        source: Box<PdnError>,
    },
    /// An error that crossed the wire and whose native variant cannot be
    /// rebuilt on this side (regulator/units errors carry `&'static str`
    /// fields that only exist in the producing process). The original
    /// [`ErrorCode`] and rendered message are preserved, so
    /// [`PdnError::code`] and `Display` behave exactly as they did at the
    /// sender.
    Wire {
        /// The stable classification the sender reported.
        code: ErrorCode,
        /// The sender's rendered error message.
        message: String,
    },
}

impl fmt::Display for PdnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdnError::Vr(e) => write!(f, "regulator error: {e}"),
            PdnError::Units(e) => write!(f, "units error: {e}"),
            PdnError::Scenario(msg) => write!(f, "scenario error: {msg}"),
            PdnError::Degraded { component, reason } => {
                write!(f, "{component} degraded: {reason}")
            }
            PdnError::Shared(inner) => fmt::Display::fmt(inner, f),
            PdnError::Lattice { pdn: Some(pdn), point, source } => {
                write!(f, "evaluation of {pdn} failed at lattice point [{point}]: {source}")
            }
            PdnError::Lattice { pdn: None, point, source } => {
                write!(f, "scenario construction failed at lattice point [{point}]: {source}")
            }
            PdnError::Wire { message, .. } => f.write_str(message),
        }
    }
}

impl std::error::Error for PdnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PdnError::Vr(e) => Some(e),
            PdnError::Units(e) => Some(e),
            PdnError::Scenario(_) => None,
            PdnError::Degraded { .. } => None,
            PdnError::Shared(inner) => std::error::Error::source(inner.as_ref()),
            PdnError::Lattice { source, .. } => Some(source.as_ref()),
            PdnError::Wire { .. } => None,
        }
    }
}

impl PdnError {
    /// Wraps this error in a reference-counted [`PdnError::Shared`] so
    /// subsequent clones are refcount bumps; already-shared errors are
    /// returned unchanged (no nesting).
    pub fn into_shared(self) -> Self {
        match self {
            PdnError::Shared(_) => self,
            other => PdnError::Shared(std::sync::Arc::new(other)),
        }
    }

    /// The stable wire-level classification of this error.
    ///
    /// [`PdnError::Shared`] is transparent (reports the inner code);
    /// [`PdnError::Lattice`] reports [`ErrorCode::Lattice`] — the
    /// coordinates, not the leaf cause, are what a sweeping client routes
    /// on, and the leaf code survives in the serialized cause chain.
    pub fn code(&self) -> ErrorCode {
        match self {
            PdnError::Vr(_) => ErrorCode::Vr,
            PdnError::Units(_) => ErrorCode::Units,
            PdnError::Scenario(_) => ErrorCode::Scenario,
            PdnError::Degraded { .. } => ErrorCode::Degraded,
            PdnError::Shared(inner) => inner.code(),
            PdnError::Lattice { .. } => ErrorCode::Lattice,
            PdnError::Wire { code, .. } => *code,
        }
    }
}

impl From<pdn_vr::VrError> for PdnError {
    fn from(e: pdn_vr::VrError) -> Self {
        PdnError::Vr(e)
    }
}

impl From<pdn_units::UnitsError> for PdnError {
    fn from(e: pdn_units::UnitsError) -> Self {
        PdnError::Units(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_chain() {
        let e = PdnError::from(pdn_units::UnitsError::NotFinite { what: "ratio" });
        assert!(e.to_string().contains("units"));
        assert!(std::error::Error::source(&e).is_some());
        let s = PdnError::Scenario("no powered domain".into());
        assert!(s.to_string().contains("no powered domain"));
        assert!(std::error::Error::source(&s).is_none());
    }

    #[test]
    fn degraded_errors_name_the_component() {
        let e = PdnError::Degraded {
            component: "MaxCurrentProtection".into(),
            reason: "vin_iccmax must be positive".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("MaxCurrentProtection") && msg.contains("positive"), "{msg}");
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn shared_errors_are_transparent() {
        let inner = PdnError::Lattice {
            pdn: None,
            point: "tdp=4W state=C8".into(),
            source: Box::new(PdnError::Scenario("no powered domain".into())),
        };
        let shared = inner.clone().into_shared();
        assert_eq!(shared.to_string(), inner.to_string());
        assert_eq!(shared.code(), inner.code());
        assert_eq!(
            std::error::Error::source(&shared).map(ToString::to_string),
            std::error::Error::source(&inner).map(ToString::to_string)
        );
        // Re-sharing does not nest.
        assert_eq!(shared.clone().into_shared(), shared);
    }

    #[test]
    fn lattice_errors_carry_coordinates_and_chain() {
        let inner = PdnError::Scenario("no powered domain".into());
        let e = PdnError::Lattice {
            pdn: Some("IVR".into()),
            point: "tdp=18W wl=MT ar=0.56".into(),
            source: Box::new(inner.clone()),
        };
        let msg = e.to_string();
        assert!(msg.contains("IVR") && msg.contains("tdp=18W"), "{msg}");
        assert!(msg.contains("no powered domain"), "{msg}");
        assert_eq!(std::error::Error::source(&e).map(ToString::to_string), Some(inner.to_string()));
        let build = PdnError::Lattice {
            pdn: None,
            point: "tdp=4W state=C8".into(),
            source: Box::new(inner),
        };
        assert!(build.to_string().contains("scenario construction"), "{build}");
    }

    #[test]
    fn every_variant_reports_its_stable_code() {
        let cases: Vec<(PdnError, ErrorCode)> = vec![
            (PdnError::from(pdn_units::UnitsError::NotFinite { what: "x" }), ErrorCode::Units),
            (
                PdnError::Vr(pdn_vr::VrError::UnsupportedOperatingPoint {
                    regulator: "buck".into(),
                    reason: "duty".into(),
                }),
                ErrorCode::Vr,
            ),
            (PdnError::Scenario("bad".into()), ErrorCode::Scenario),
            (
                PdnError::Degraded { component: "PMU".into(), reason: "latched".into() },
                ErrorCode::Degraded,
            ),
            (
                PdnError::Lattice {
                    pdn: None,
                    point: "tdp=4W".into(),
                    source: Box::new(PdnError::Scenario("bad".into())),
                },
                ErrorCode::Lattice,
            ),
            (
                PdnError::Wire { code: ErrorCode::Overloaded, message: "queue full".into() },
                ErrorCode::Overloaded,
            ),
        ];
        for (err, code) in cases {
            assert_eq!(err.code(), code, "{err}");
        }
    }

    #[test]
    fn error_codes_round_trip_and_tolerate_unknowns() {
        let all = [
            ErrorCode::Vr,
            ErrorCode::Units,
            ErrorCode::Scenario,
            ErrorCode::Degraded,
            ErrorCode::Lattice,
            ErrorCode::Protocol,
            ErrorCode::Overloaded,
            ErrorCode::Snapshot,
            ErrorCode::Shutdown,
            ErrorCode::Unsupported,
            ErrorCode::DeadlineExceeded,
            ErrorCode::Internal,
            ErrorCode::Poisoned,
            ErrorCode::Unknown,
        ];
        let mut seen = std::collections::HashSet::new();
        for code in all {
            assert_eq!(ErrorCode::from_wire(code.to_wire()), code);
            assert!(seen.insert(code.to_wire()), "duplicate wire value for {code}");
        }
        assert_eq!(ErrorCode::from_wire(31999), ErrorCode::Unknown);
        assert!(ErrorCode::Overloaded.is_retryable());
        assert!(ErrorCode::DeadlineExceeded.is_retryable());
        assert!(
            ErrorCode::Internal.is_retryable(),
            "first panic is retryable (quarantine bounds it)"
        );
        assert!(!ErrorCode::Poisoned.is_retryable(), "quarantined requests are terminal");
        assert!(!ErrorCode::Scenario.is_retryable());
        assert!(!ErrorCode::Shutdown.is_retryable());
    }

    #[test]
    fn wire_errors_preserve_sender_rendering() {
        let native = PdnError::from(pdn_units::UnitsError::NotFinite { what: "ratio" });
        let decoded = PdnError::Wire { code: native.code(), message: native.to_string() };
        assert_eq!(decoded.to_string(), native.to_string());
        assert_eq!(decoded.code(), native.code());
    }
}
