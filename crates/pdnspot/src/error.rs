//! Error type for PDN evaluation.

use std::fmt;

/// Error produced by PDNspot evaluations.
#[derive(Debug, Clone, PartialEq)]
pub enum PdnError {
    /// A regulator rejected its operating point.
    Vr(pdn_vr::VrError),
    /// A quantity or curve failed validation.
    Units(pdn_units::UnitsError),
    /// The scenario is inconsistent (e.g. no powered domain, or a solver
    /// could not bracket a solution).
    Scenario(String),
    /// A component left (or refused to enter) its full-function envelope:
    /// an invalid protection configuration, exhausted switch retries, a
    /// latched safe-mode watchdog. Produced by validation paths and by
    /// fault-tolerant runtimes running under a strict degradation policy,
    /// where "carry on degraded" is not acceptable and the caller must see
    /// the loss of service quality as an error.
    Degraded {
        /// The component that degraded (e.g. `MaxCurrentProtection`,
        /// `FlexWattsRuntime`).
        component: String,
        /// Human-readable description of the degradation.
        reason: String,
    },
    /// A reference-counted view of another error, used where one failure
    /// fans out to many consumers (a failing lattice point reported once
    /// per PDN): cloning bumps a refcount instead of deep-copying the
    /// error. Transparent in `Display` and `source`.
    Shared(std::sync::Arc<PdnError>),
    /// A batch campaign failed at a specific lattice point (see
    /// [`crate::batch`]); carries the failing coordinates so a single bad
    /// point can be located inside a large sweep.
    Lattice {
        /// Display name of the PDN being evaluated, or `None` when
        /// scenario construction itself failed (before any PDN ran).
        pdn: Option<String>,
        /// Human-readable lattice coordinates (e.g. `tdp=18W wl=MT
        /// ar=0.56`).
        point: String,
        /// The underlying failure.
        source: Box<PdnError>,
    },
}

impl fmt::Display for PdnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdnError::Vr(e) => write!(f, "regulator error: {e}"),
            PdnError::Units(e) => write!(f, "units error: {e}"),
            PdnError::Scenario(msg) => write!(f, "scenario error: {msg}"),
            PdnError::Degraded { component, reason } => {
                write!(f, "{component} degraded: {reason}")
            }
            PdnError::Shared(inner) => fmt::Display::fmt(inner, f),
            PdnError::Lattice { pdn: Some(pdn), point, source } => {
                write!(f, "evaluation of {pdn} failed at lattice point [{point}]: {source}")
            }
            PdnError::Lattice { pdn: None, point, source } => {
                write!(f, "scenario construction failed at lattice point [{point}]: {source}")
            }
        }
    }
}

impl std::error::Error for PdnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PdnError::Vr(e) => Some(e),
            PdnError::Units(e) => Some(e),
            PdnError::Scenario(_) => None,
            PdnError::Degraded { .. } => None,
            PdnError::Shared(inner) => std::error::Error::source(inner.as_ref()),
            PdnError::Lattice { source, .. } => Some(source.as_ref()),
        }
    }
}

impl PdnError {
    /// Wraps this error in a reference-counted [`PdnError::Shared`] so
    /// subsequent clones are refcount bumps; already-shared errors are
    /// returned unchanged (no nesting).
    pub fn into_shared(self) -> Self {
        match self {
            PdnError::Shared(_) => self,
            other => PdnError::Shared(std::sync::Arc::new(other)),
        }
    }
}

impl From<pdn_vr::VrError> for PdnError {
    fn from(e: pdn_vr::VrError) -> Self {
        PdnError::Vr(e)
    }
}

impl From<pdn_units::UnitsError> for PdnError {
    fn from(e: pdn_units::UnitsError) -> Self {
        PdnError::Units(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_chain() {
        let e = PdnError::from(pdn_units::UnitsError::NotFinite { what: "ratio" });
        assert!(e.to_string().contains("units"));
        assert!(std::error::Error::source(&e).is_some());
        let s = PdnError::Scenario("no powered domain".into());
        assert!(s.to_string().contains("no powered domain"));
        assert!(std::error::Error::source(&s).is_none());
    }

    #[test]
    fn degraded_errors_name_the_component() {
        let e = PdnError::Degraded {
            component: "MaxCurrentProtection".into(),
            reason: "vin_iccmax must be positive".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("MaxCurrentProtection") && msg.contains("positive"), "{msg}");
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn shared_errors_are_transparent() {
        let inner = PdnError::Lattice {
            pdn: None,
            point: "tdp=4W state=C8".into(),
            source: Box::new(PdnError::Scenario("no powered domain".into())),
        };
        let shared = inner.clone().into_shared();
        assert_eq!(shared.to_string(), inner.to_string());
        assert_eq!(
            std::error::Error::source(&shared).map(ToString::to_string),
            std::error::Error::source(&inner).map(ToString::to_string)
        );
        // Re-sharing does not nest.
        assert_eq!(shared.clone().into_shared(), shared);
    }

    #[test]
    fn lattice_errors_carry_coordinates_and_chain() {
        let inner = PdnError::Scenario("no powered domain".into());
        let e = PdnError::Lattice {
            pdn: Some("IVR".into()),
            point: "tdp=18W wl=MT ar=0.56".into(),
            source: Box::new(inner.clone()),
        };
        let msg = e.to_string();
        assert!(msg.contains("IVR") && msg.contains("tdp=18W"), "{msg}");
        assert!(msg.contains("no powered domain"), "{msg}");
        assert_eq!(std::error::Error::source(&e).map(ToString::to_string), Some(inner.to_string()));
        let build = PdnError::Lattice {
            pdn: None,
            point: "tdp=4W state=C8".into(),
            source: Box::new(inner),
        };
        assert!(build.to_string().contains("scenario construction"), "{build}");
    }
}
