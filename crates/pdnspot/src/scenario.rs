//! Scenarios: the per-domain operating conditions a PDN is evaluated at.
//!
//! A [`Scenario`] fixes everything the power-flow models need: which
//! domains are powered, their nominal power, rail voltage, the package-
//! level application ratio (AR), and the power state. Scenarios are built
//! from a SoC specification plus a workload description, so the same
//! scenario can be fed to every PDN topology for an apples-to-apples ETEE
//! comparison (Figs. 4 and 5 of the paper).

use crate::error::PdnError;
use crate::params::ModelParams;
use pdn_proc::{DomainKind, DomainState, DomainTable, HoistedDomainPower, PackageCState, SocSpec};
use pdn_units::{ApplicationRatio, Celsius, Hertz, Ratio, Volts, Watts};
use pdn_workload::WorkloadType;
use serde::{Deserialize, Serialize};

/// The fraction of TDP assumed to reach the loads when constructing
/// budget-limited scenarios (a representative ETEE; the per-PDN frequency
/// optimisation for the performance figures lives in [`crate::perf`]).
pub const NOMINAL_BUDGET_FRACTION: f64 = 0.78;

/// Rail guardbands are sized for the Turbo Boost virus, which briefly
/// exceeds TDP (§1); this is the headroom factor applied to the TDP virus.
pub const TURBO_VIRUS_MARGIN: f64 = 1.3;

/// Operating conditions of one domain within a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DomainLoad {
    /// Nominal power consumed by the domain (`P_NOM` in Fig. 1).
    pub nominal_power: Watts,
    /// Nominal rail voltage required by the domain (`V_NOM`).
    pub voltage: Volts,
    /// Leakage fraction used by the Eq. 2 guardband.
    pub leakage_fraction: Ratio,
    /// Whether the domain is powered at all.
    pub powered: bool,
}

impl DomainLoad {
    /// An unpowered (gated) domain.
    pub fn gated() -> Self {
        Self {
            nominal_power: Watts::ZERO,
            voltage: Volts::new(0.45),
            leakage_fraction: Ratio::ZERO,
            powered: false,
        }
    }
}

/// A complete evaluation scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable label.
    pub name: String,
    /// Workload type (predictor input `WL_TYPE`).
    pub workload_type: WorkloadType,
    /// Package application ratio (guardbands are sized for `P/AR`).
    pub ar: ApplicationRatio,
    /// `Some` when the package resides in an idle/C0MIN state.
    pub power_state: Option<PackageCState>,
    /// Junction temperature.
    pub tj: Celsius,
    /// TDP of the SoC the scenario was built for.
    pub tdp: Watts,
    loads: DomainTable<DomainLoad>,
    /// Power-virus load sets (one per virus workload type) at the
    /// TDP-limited frequency, used to size shared-rail load-line
    /// guardbands (§2.4: the guardband must survive the maximum possible
    /// current of the rail).
    virus: [DomainTable<DomainLoad>; 2],
    /// Extra headroom applied on top of the virus sums (Turbo Boost can
    /// briefly exceed TDP, and rails must survive it; §1).
    virus_margin: f64,
}

impl Scenario {
    /// Builds an active scenario at explicit compute frequencies.
    ///
    /// Domain roles follow the workload type (§7.1): single-thread gates
    /// core 1 and graphics; multi-thread gates only graphics; graphics
    /// workloads run the LLC at a higher frequency/voltage than the cores.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::Scenario`] if no domain ends up powered.
    pub fn active(
        soc: &SocSpec,
        workload_type: WorkloadType,
        ar: ApplicationRatio,
        f_cores: Hertz,
        f_gfx: Hertz,
    ) -> Result<Self, PdnError> {
        Self::active_with_virus(soc, workload_type, ar, f_cores, f_gfx, Self::tdp_virus_loads(soc))
    }

    /// [`Scenario::active`] with the TDP virus load sets supplied by the
    /// caller. The virus sets depend only on the SoC, so batch sweeps
    /// compute them once per TDP and pass the cached tables here; the
    /// construction is otherwise identical to [`Scenario::active`].
    fn active_with_virus(
        soc: &SocSpec,
        workload_type: WorkloadType,
        ar: ApplicationRatio,
        f_cores: Hertz,
        f_gfx: Hertz,
        virus: [DomainTable<DomainLoad>; 2],
    ) -> Result<Self, PdnError> {
        let loads = Self::domain_loads_at(soc, workload_type, ar, f_cores, f_gfx);
        if loads.values().all(|l| !l.powered) {
            return Err(PdnError::Scenario("no powered domain in scenario".into()));
        }
        Ok(Self {
            name: format!("{}-{}W-ar{:.0}", workload_type, soc.tdp.get(), ar.percent()),
            workload_type,
            ar,
            power_state: None,
            tj: soc.tj_active,
            tdp: soc.tdp,
            loads,
            virus,
            virus_margin: TURBO_VIRUS_MARGIN,
        })
    }

    /// Computes the per-domain loads of an active operating point.
    fn domain_loads_at(
        soc: &SocSpec,
        workload_type: WorkloadType,
        ar: ApplicationRatio,
        f_cores: Hertz,
        f_gfx: Hertz,
    ) -> DomainTable<DomainLoad> {
        let tj = soc.tj_active;
        DomainTable::from_fn(|kind| {
            let cfg = soc.domain(kind);
            if !workload_type.domain_powered(kind) {
                return DomainLoad::gated();
            }
            let frequency = Self::domain_frequency(soc, workload_type, kind, f_cores, f_gfx);
            let activity = Self::domain_activity(workload_type, kind, ar);
            let state = DomainState::active(frequency, activity);
            DomainLoad {
                nominal_power: cfg.nominal_power(&state, tj),
                voltage: cfg.voltage_for(&state),
                leakage_fraction: cfg.power.guardband_leakage_fraction,
                powered: true,
            }
        })
    }

    /// The operating frequency of one powered domain at an active point.
    /// Shared by [`Scenario::domain_loads_at`] and the row constructor so
    /// both paths make the identical choice.
    fn domain_frequency(
        soc: &SocSpec,
        workload_type: WorkloadType,
        kind: DomainKind,
        f_cores: Hertz,
        f_gfx: Hertz,
    ) -> Hertz {
        let cfg = soc.domain(kind);
        match kind {
            DomainKind::Core0 | DomainKind::Core1 => f_cores,
            DomainKind::Gfx => f_gfx,
            DomainKind::Llc => {
                if workload_type == WorkloadType::Graphics {
                    // §7.1: graphics demand pushes the LLC above the
                    // core clock; scale the GFX clock position into the
                    // LLC range.
                    let gfx_cfg = soc.domain(DomainKind::Gfx);
                    let t = (f_gfx.get() - gfx_cfg.fmin.get())
                        / (gfx_cfg.fmax.get() - gfx_cfg.fmin.get()).max(1.0);
                    let llc_from_gfx =
                        Hertz::new(cfg.fmin.get() + 0.8 * t * (cfg.fmax.get() - cfg.fmin.get()));
                    f_cores.max(llc_from_gfx)
                } else {
                    f_cores
                }
            }
            DomainKind::Sa | DomainKind::Io => cfg.fmax,
        }
    }

    /// The activity of one powered domain given the package AR. SA/IO
    /// activity tracks the workload but stays moderate; in graphics
    /// workloads the cores mostly wait on the GPU (§7.1 gives them only
    /// 10–20 % of the budget); the other compute domains carry the package
    /// AR. Shared by [`Scenario::domain_loads_at`] and the row constructor.
    fn domain_activity(
        workload_type: WorkloadType,
        kind: DomainKind,
        ar: ApplicationRatio,
    ) -> ApplicationRatio {
        match kind {
            DomainKind::Sa | DomainKind::Io => {
                ApplicationRatio::new((ar.get() * 0.8).clamp(0.05, 1.0))
                    .expect("scaled AR is valid")
            }
            DomainKind::Core0 | DomainKind::Core1 if workload_type == WorkloadType::Graphics => {
                ApplicationRatio::new((ar.get() * 0.25).clamp(0.05, 1.0))
                    .expect("scaled AR is valid")
            }
            _ => ar,
        }
    }

    /// Per-domain power-virus loads: for each domain, the AR = 1 power at
    /// the highest frequency the TDP sustains for the workload type that
    /// stresses that domain hardest (multi-thread for cores/LLC, graphics
    /// for GFX). Served from the process-wide [`staging`] cache: the tables
    /// are a pure function of the SoC, so the cached copy is bit-identical
    /// to a fresh computation.
    pub(crate) fn tdp_virus_loads(soc: &SocSpec) -> [DomainTable<DomainLoad>; 2] {
        staging::for_soc(soc).tdp_virus(soc)
    }

    /// Uncached [`Scenario::tdp_virus_loads`]: the two 48-step virus
    /// bisections plus load assembly. Called once per SoC by the staging
    /// cache (and by tests pinning cache transparency).
    fn tdp_virus_loads_uncached(soc: &SocSpec) -> [DomainTable<DomainLoad>; 2] {
        [WorkloadType::MultiThread, WorkloadType::Graphics].map(|wl| {
            let t = Self::solve_t_for_nominal(soc, wl, soc.tdp);
            let (f_cores, f_gfx) = Self::frequency_point(soc, wl, t);
            Self::domain_loads_at(soc, wl, ApplicationRatio::POWER_VIRUS, f_cores, f_gfx)
        })
    }

    /// Infallible bisection of the frequency scalar for a nominal-power
    /// target (used for virus sizing, where domain loads always exist).
    fn solve_t_for_nominal(soc: &SocSpec, workload_type: WorkloadType, budget: Watts) -> f64 {
        let nominal_at = |t: f64| -> Watts {
            let (f_cores, f_gfx) = Self::frequency_point(soc, workload_type, t);
            Self::domain_loads_at(soc, workload_type, ApplicationRatio::POWER_VIRUS, f_cores, f_gfx)
                .values()
                .filter(|l| l.powered)
                .map(|l| l.nominal_power)
                .sum()
        };
        if nominal_at(1.0) <= budget {
            return 1.0;
        }
        if nominal_at(0.0) >= budget {
            return 0.0;
        }
        let (mut lo, mut hi) = (0.0, 1.0);
        for _ in 0..48 {
            let mid = 0.5 * (lo + hi);
            if nominal_at(mid) > budget {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        lo
    }

    /// The worst-case (power-virus) power a rail serving `domains` must be
    /// guardbanded for: the largest *simultaneous* virus total across the
    /// virus workload types (a rail need not survive the multi-thread and
    /// graphics viruses at once — the TDP forbids it).
    ///
    /// A domain counts towards the guardband when it is powered, or when
    /// the scheduler could wake it without a PMU reconfiguration: an idle
    /// sibling core can receive a thread at any instant, so the shared
    /// cores rail keeps its virus headroom even in single-thread phases;
    /// a parked graphics engine, by contrast, only comes up through a
    /// driver flow during which the PMU re-setpoints the rails.
    ///
    /// Never less than the rail's running power.
    pub fn rail_virus_power(&self, domains: &[DomainKind], running: Watts) -> Watts {
        self.rail_virus_headroom(domains).max(running)
    }

    /// The load-independent part of [`Scenario::rail_virus_power`]: the
    /// margined virus total for a rail serving `domains`. Depends only on
    /// the scenario, so batch sweeps cache it per (point, rail) and clamp
    /// against the running power afterwards.
    pub fn rail_virus_headroom(&self, domains: &[DomainKind]) -> Watts {
        // In graphics configurations the second core is parked by the
        // configuration itself (the driver/scheduler keeps it off), so
        // the sibling-wake rule does not apply there.
        let siblings_wakeable = self.workload_type != WorkloadType::Graphics
            && (self.load(DomainKind::Core0).powered || self.load(DomainKind::Core1).powered);
        let counts = |k: DomainKind| -> bool {
            if self.load(k).powered {
                return true;
            }
            matches!(k, DomainKind::Core0 | DomainKind::Core1) && siblings_wakeable
        };
        let virus = self
            .virus
            .iter()
            .map(|set| {
                domains
                    .iter()
                    .filter(|k| counts(**k))
                    .map(|&k| set.get(k).nominal_power)
                    .sum::<Watts>()
            })
            .fold(Watts::ZERO, Watts::max);
        virus * self.virus_margin
    }

    /// Builds an active scenario whose compute frequency is chosen so that
    /// the total nominal power fills [`NOMINAL_BUDGET_FRACTION`] of the TDP
    /// — the PDN-independent operating point used for the ETEE comparisons
    /// of Figs. 4 and 5.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::Scenario`] if the budget cannot be bracketed.
    pub fn active_budget(
        soc: &SocSpec,
        workload_type: WorkloadType,
        ar: ApplicationRatio,
        _params: &ModelParams,
    ) -> Result<Self, PdnError> {
        let budget = Watts::new(soc.tdp.get() * NOMINAL_BUDGET_FRACTION);
        Self::active_with_budget(soc, workload_type, ar, budget)
    }

    /// Builds an active scenario whose compute frequency is chosen so that
    /// the total nominal power fills an explicit `budget` (clamping at the
    /// architectural frequency limits when the budget cannot be reached).
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::Scenario`] if no domain ends up powered.
    pub fn active_with_budget(
        soc: &SocSpec,
        workload_type: WorkloadType,
        ar: ApplicationRatio,
        budget: Watts,
    ) -> Result<Self, PdnError> {
        let t = Self::solve_t_for_budget(soc, workload_type, ar, budget)?;
        let (f_cores, f_gfx) = Self::frequency_point(soc, workload_type, t);
        Scenario::active(soc, workload_type, ar, f_cores, f_gfx)
    }

    /// Builds the Fig. 4-style scenario: the compute frequency is the one a
    /// TDP-limited part ships with (the AR = 1 power virus fills the TDP),
    /// and the workload then runs at that *fixed* frequency with its own
    /// AR. Varying AR along this constructor sweeps the Fig. 4 x-axis.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::Scenario`] if no domain ends up powered.
    pub fn active_fixed_tdp_frequency(
        soc: &SocSpec,
        workload_type: WorkloadType,
        ar: ApplicationRatio,
    ) -> Result<Self, PdnError> {
        let t = Self::solve_t_fixed_tdp(soc, workload_type)?;
        let (f_cores, f_gfx) = Self::frequency_point(soc, workload_type, t);
        Scenario::active(soc, workload_type, ar, f_cores, f_gfx)
    }

    /// The frequency scalar of the [`Scenario::active_fixed_tdp_frequency`]
    /// design point. Independent of AR — and a pure function of the
    /// (SoC, workload type) pair — so it is served from the process-wide
    /// [`staging`] cache; a hit returns the exact bits a fresh 48-step
    /// bisection would produce.
    pub(crate) fn solve_t_fixed_tdp(
        soc: &SocSpec,
        workload_type: WorkloadType,
    ) -> Result<f64, PdnError> {
        staging::for_soc(soc).solved_t(soc, workload_type)
    }

    /// [`Scenario::active_fixed_tdp_frequency`] with the frequency scalar
    /// and virus tables precomputed by the caller. Feeding back the values
    /// the unstaged constructor would itself compute yields a bit-identical
    /// scenario. The batch engine now builds whole rows through
    /// [`Scenario::active_fixed_tdp_row`]; this per-point form remains as
    /// the reference the row constructor's bit-identity tests compare
    /// against.
    #[cfg(test)]
    pub(crate) fn active_fixed_tdp_staged(
        soc: &SocSpec,
        workload_type: WorkloadType,
        ar: ApplicationRatio,
        t: f64,
        virus: [DomainTable<DomainLoad>; 2],
    ) -> Result<Self, PdnError> {
        let (f_cores, f_gfx) = Self::frequency_point(soc, workload_type, t);
        Self::active_with_virus(soc, workload_type, ar, f_cores, f_gfx, virus)
    }

    /// The formatted AR suffix of a scenario name — the exact `{:.0}`
    /// rendering of [`ApplicationRatio::percent`] the per-point
    /// constructor embeds, split out so a sweep can format each distinct
    /// AR once instead of once per lattice point.
    pub(crate) fn ar_suffix(ar: ApplicationRatio) -> String {
        format!("{:.0}", ar.percent())
    }

    /// Row-at-a-time counterpart of `active_fixed_tdp_staged`:
    /// builds every scenario of one AR row (fixed SoC, workload type and
    /// frequency scalar; AR varying) in a single call. The per-domain
    /// frequency choice, V/f interpolation, leakage `powf`/`exp`
    /// ([`DomainConfig::hoist_active`](pdn_proc::DomainConfig::hoist_active))
    /// and the name prefix are computed once for the row; the per-point
    /// work reduces to one multiply-add chain per powered domain — in the
    /// exact operation order of [`Scenario::domain_loads_at`] — plus two
    /// string copies for the name, so every returned scenario is
    /// bit-identical to the per-point constructor's.
    ///
    /// `ar_suffixes` must hold [`Scenario::ar_suffix`] of each entry of
    /// `ars` (the batch cache formats them once per sweep: float `Display`
    /// with a fixed precision costs more than the rest of a point's name).
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::Scenario`] if no domain ends up powered (the
    /// powered set is AR-independent, so the whole row fails identically).
    pub(crate) fn active_fixed_tdp_row(
        soc: &SocSpec,
        workload_type: WorkloadType,
        ars: &[ApplicationRatio],
        ar_suffixes: &[String],
        t: f64,
        virus: &[DomainTable<DomainLoad>; 2],
    ) -> Result<Vec<Self>, PdnError> {
        assert_eq!(ars.len(), ar_suffixes.len(), "one formatted suffix per application ratio");
        let (f_cores, f_gfx) = Self::frequency_point(soc, workload_type, t);
        let tj = soc.tj_active;
        let hoisted: DomainTable<Option<HoistedDomainPower>> = DomainTable::from_fn(|kind| {
            if !workload_type.domain_powered(kind) {
                return None;
            }
            let frequency = Self::domain_frequency(soc, workload_type, kind, f_cores, f_gfx);
            Some(soc.domain(kind).hoist_active(frequency, tj))
        });
        if hoisted.values().all(Option::is_none) {
            return Err(PdnError::Scenario("no powered domain in scenario".into()));
        }
        let prefix = format!("{}-{}W-ar", workload_type, soc.tdp.get());
        Ok(ars
            .iter()
            .zip(ar_suffixes)
            .map(|(&ar, suffix)| {
                let loads = DomainTable::from_fn(|kind| match hoisted.get(kind) {
                    None => DomainLoad::gated(),
                    Some(h) => DomainLoad {
                        nominal_power: h.nominal_at(Self::domain_activity(workload_type, kind, ar)),
                        voltage: h.voltage(),
                        leakage_fraction: h.leakage_fraction(),
                        powered: true,
                    },
                });
                let mut name = String::with_capacity(prefix.len() + suffix.len());
                name.push_str(&prefix);
                name.push_str(suffix);
                Self {
                    name,
                    workload_type,
                    ar,
                    power_state: None,
                    tj,
                    tdp: soc.tdp,
                    loads,
                    virus: *virus,
                    virus_margin: TURBO_VIRUS_MARGIN,
                }
            })
            .collect())
    }

    /// Bisects the frequency scalar `t` so that the scenario's nominal
    /// power meets `budget` (clamping at the range ends).
    fn solve_t_for_budget(
        soc: &SocSpec,
        workload_type: WorkloadType,
        ar: ApplicationRatio,
        budget: Watts,
    ) -> Result<f64, PdnError> {
        // Each probe needs only the per-domain loads — not the name or the
        // virus load sets a full `Scenario::active` would also construct
        // (the virus sizing runs its own bisections). The powered check and
        // the canonical-order sum match `Scenario::active` +
        // `total_nominal_power` exactly, so the bracketing decisions — and
        // therefore the solved `t` — are bit-identical.
        let nominal_at = |t: f64| -> Result<Watts, PdnError> {
            let (f_cores, f_gfx) = Self::frequency_point(soc, workload_type, t);
            let loads = Self::domain_loads_at(soc, workload_type, ar, f_cores, f_gfx);
            if loads.values().all(|l| !l.powered) {
                return Err(PdnError::Scenario("no powered domain in scenario".into()));
            }
            Ok(loads.values().filter(|l| l.powered).map(|l| l.nominal_power).sum())
        };
        // The nominal power is monotone in t; bisect t ∈ [0, 1].
        if nominal_at(1.0)? <= budget {
            return Ok(1.0);
        }
        if nominal_at(0.0)? >= budget {
            return Ok(0.0);
        }
        let mut lo = 0.0;
        let mut hi = 1.0;
        for _ in 0..48 {
            let mid = 0.5 * (lo + hi);
            if nominal_at(mid)? > budget {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Ok(lo)
    }

    /// Maps a scalar `t ∈ [0, 1]` to compute frequencies consistent with
    /// the workload type's budget split (§7.1: graphics workloads keep the
    /// cores at the bottom third of their range).
    pub fn frequency_point(soc: &SocSpec, workload_type: WorkloadType, t: f64) -> (Hertz, Hertz) {
        let t = t.clamp(0.0, 1.0);
        let cores = soc.domain(DomainKind::Core0);
        let gfx = soc.domain(DomainKind::Gfx);
        let lerp = |lo: Hertz, hi: Hertz, x: f64| Hertz::new(lo.get() + x * (hi.get() - lo.get()));
        match workload_type {
            WorkloadType::Graphics => {
                (lerp(cores.fmin, cores.fmax, t * 0.18), lerp(gfx.fmin, gfx.fmax, t))
            }
            WorkloadType::BatteryLife => (cores.fmin, gfx.fmin),
            _ => (lerp(cores.fmin, cores.fmax, t), gfx.fmin),
        }
    }

    /// Builds an idle-state scenario (Fig. 4j and the battery-life model).
    ///
    /// Domain powers come from the paper-calibrated
    /// [`PackageCState::nominal_domain_powers`]; voltages are the fixed
    /// SA/IO rail levels and the minimum compute voltage for C0MIN.
    pub fn idle(soc: &SocSpec, state: PackageCState) -> Self {
        Self::idle_staged(soc, state, Self::fmin_virus_loads(soc))
    }

    /// [`Scenario::idle`] with the fmin virus tables precomputed by the
    /// caller (they depend only on the SoC; same bit-identity contract as
    /// `active_fixed_tdp_staged`).
    pub(crate) fn idle_staged(
        soc: &SocSpec,
        state: PackageCState,
        virus: [DomainTable<DomainLoad>; 2],
    ) -> Self {
        let powers = state.nominal_domain_powers();
        let loads = DomainTable::from_fn(|kind| {
            let cfg = soc.domain(kind);
            match powers.get(&kind) {
                Some(&p) => DomainLoad {
                    nominal_power: p,
                    voltage: cfg.vf.voltage_at(cfg.fmin),
                    leakage_fraction: cfg.power.guardband_leakage_fraction,
                    powered: true,
                },
                None => DomainLoad::gated(),
            }
        });
        Self {
            name: format!("{state}-{}W", soc.tdp.get()),
            workload_type: WorkloadType::BatteryLife,
            // Idle currents are steady: no power-virus headroom needed.
            ar: ApplicationRatio::POWER_VIRUS,
            power_state: Some(state),
            tj: pdn_proc::soc::TJ_BATTERY_LIFE,
            tdp: soc.tdp,
            loads,
            // The PMU re-setpoints the rails for the low-frequency idle
            // configuration, so the guardband covers the virus at the
            // *minimum* frequency, not the TDP design point, and turbo is
            // not reachable without first leaving the idle state.
            virus,
            virus_margin: 1.0,
        }
    }

    /// Row-at-a-time counterpart of [`Scenario::idle_staged`]: builds the
    /// scenarios of one idle row (fixed SoC; package C-state varying). The
    /// fmin V/f interpolation — state-independent, since every idle state
    /// runs its powered rails at the minimum setpoint — and the name suffix
    /// are hoisted out of the per-state loop; every returned scenario is
    /// bit-identical to [`Scenario::idle_staged`]'s.
    pub(crate) fn idle_row(
        soc: &SocSpec,
        states: &[PackageCState],
        virus: &[DomainTable<DomainLoad>; 2],
    ) -> Vec<Self> {
        let fmin_voltage = DomainTable::from_fn(|kind| {
            let cfg = soc.domain(kind);
            cfg.vf.voltage_at(cfg.fmin)
        });
        let suffix = format!("-{}W", soc.tdp.get());
        states
            .iter()
            .map(|&state| {
                let powers = state.nominal_domain_powers();
                let loads = DomainTable::from_fn(|kind| match powers.get(&kind) {
                    Some(&p) => DomainLoad {
                        nominal_power: p,
                        voltage: *fmin_voltage.get(kind),
                        leakage_fraction: soc.domain(kind).power.guardband_leakage_fraction,
                        powered: true,
                    },
                    None => DomainLoad::gated(),
                });
                Self {
                    name: format!("{state}{suffix}"),
                    workload_type: WorkloadType::BatteryLife,
                    ar: ApplicationRatio::POWER_VIRUS,
                    power_state: Some(state),
                    tj: pdn_proc::soc::TJ_BATTERY_LIFE,
                    tdp: soc.tdp,
                    loads,
                    virus: *virus,
                    virus_margin: 1.0,
                }
            })
            .collect()
    }

    /// Per-domain power-virus loads at the minimum operating frequencies —
    /// the rail guardband basis for C0MIN/idle configurations, where DVFS
    /// has already lowered every setpoint. Served from the process-wide
    /// [`staging`] cache (same transparency contract as
    /// [`Scenario::tdp_virus_loads`]).
    pub(crate) fn fmin_virus_loads(soc: &SocSpec) -> [DomainTable<DomainLoad>; 2] {
        staging::for_soc(soc).fmin_virus(soc)
    }

    /// Uncached [`Scenario::fmin_virus_loads`] (no bisection — fmin is
    /// fixed). Called once per SoC by the staging cache.
    fn fmin_virus_loads_uncached(soc: &SocSpec) -> [DomainTable<DomainLoad>; 2] {
        [WorkloadType::MultiThread, WorkloadType::Graphics].map(|wl| {
            let cores = soc.domain(DomainKind::Core0);
            let gfx = soc.domain(DomainKind::Gfx);
            Self::domain_loads_at(soc, wl, ApplicationRatio::POWER_VIRUS, cores.fmin, gfx.fmin)
        })
    }

    /// Builds the power-virus scenario used to size Iccmax (§3.2): every
    /// role-appropriate domain at maximum frequency with AR = 1.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::Scenario`] if no domain ends up powered.
    pub fn power_virus(soc: &SocSpec, workload_type: WorkloadType) -> Result<Self, PdnError> {
        let cores = soc.domain(DomainKind::Core0);
        let gfx = soc.domain(DomainKind::Gfx);
        Scenario::active(soc, workload_type, ApplicationRatio::POWER_VIRUS, cores.fmax, gfx.fmax)
    }

    /// Builds the TDP-limited power-virus scenario used to size off-chip
    /// VRs: AR = 1 at the highest frequency the TDP (plus a turbo margin)
    /// sustains. Platforms size their VRs for the part's own power class,
    /// not the architectural maximum.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::Scenario`] if no domain ends up powered.
    pub fn power_virus_at_tdp(
        soc: &SocSpec,
        workload_type: WorkloadType,
    ) -> Result<Self, PdnError> {
        const TURBO_MARGIN: f64 = 1.25;
        Scenario::active_with_budget(
            soc,
            workload_type,
            ApplicationRatio::POWER_VIRUS,
            Watts::new(soc.tdp.get() * TURBO_MARGIN),
        )
    }

    /// The load of one domain.
    pub fn load(&self, kind: DomainKind) -> &DomainLoad {
        self.loads.get(kind)
    }

    /// Iterates `(kind, load)` pairs in canonical domain order.
    pub fn loads(&self) -> impl Iterator<Item = (DomainKind, &DomainLoad)> {
        self.loads.iter()
    }

    /// Total nominal power of all powered domains (the ETEE numerator).
    pub fn total_nominal_power(&self) -> Watts {
        self.loads.values().filter(|l| l.powered).map(|l| l.nominal_power).sum()
    }

    /// Whether this scenario is an idle/C-state scenario.
    pub fn is_idle(&self) -> bool {
        self.power_state.is_some_and(|s| !s.compute_powered())
    }

    /// A 64-bit fingerprint of every field the power-flow models read,
    /// hashing exact `f64` bit patterns (no rounding): two scenarios share
    /// a fingerprint only if they are numerically indistinguishable to
    /// every PDN. The derived `name` label is excluded. Used as the
    /// scenario half of the [`crate::memo`] cache key.
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::memo::Fnv1a::new();
        h.write(self.workload_type as u64);
        h.write(self.ar.get().to_bits());
        h.write(match self.power_state {
            None => u64::MAX,
            Some(s) => s as u64,
        });
        h.write(self.tj.get().to_bits());
        h.write(self.tdp.get().to_bits());
        let mut write_load = |l: &DomainLoad| {
            h.write(l.nominal_power.get().to_bits());
            h.write(l.voltage.get().to_bits());
            h.write(l.leakage_fraction.get().to_bits());
            h.write(u64::from(l.powered));
        };
        for l in self.loads.values() {
            write_load(l);
        }
        for set in &self.virus {
            for l in set.values() {
                write_load(l);
            }
        }
        h.write(self.virus_margin.to_bits());
        h.finish()
    }

    /// The highest rail voltage among a set of powered domains — the level
    /// a shared rail must supply (LDO-mode V_IN, §2.3).
    pub fn max_voltage_among(&self, domains: &[DomainKind]) -> Option<Volts> {
        domains
            .iter()
            .filter_map(|k| {
                let l = self.load(*k);
                l.powered.then_some(l.voltage)
            })
            .max_by(|a, b| a.get().total_cmp(&b.get()))
    }
}

/// Process-wide cache of the expensive SoC-pure staging computations: the
/// fixed-TDP frequency solve (48-step bisection per workload type) and the
/// two virus load-set families. Every cached value is a pure function of
/// the SoC specification, keyed by an exact-bits fingerprint of every
/// field the constructors read, so a hit returns precisely the bits a
/// fresh computation would produce — the same transparency model the
/// [`crate::memo`] cache uses for evaluations. Without this cache a batch
/// sweep pays ≈ 300 µs of re-bisection per `evaluate` call and every
/// [`Scenario::active`] pays ≈ 28 µs of virus sizing.
mod staging {
    use super::{DomainLoad, PdnError, Scenario};
    use crate::memo::Fnv1a;
    use pdn_proc::{DomainTable, SocSpec};
    use pdn_units::ApplicationRatio;
    use pdn_workload::WorkloadType;
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex, OnceLock};

    /// Cached solver results for one SoC. Fields populate lazily on first
    /// use; only successful solves are stored (errors always recompute, so
    /// they propagate fresh).
    #[derive(Debug, Default)]
    pub(super) struct SocStaging {
        /// `solve_t_fixed_tdp` result, indexed by workload-type discriminant.
        solved_t: Mutex<[Option<f64>; 4]>,
        tdp_virus: OnceLock<[DomainTable<DomainLoad>; 2]>,
        fmin_virus: OnceLock<[DomainTable<DomainLoad>; 2]>,
    }

    impl SocStaging {
        pub(super) fn solved_t(
            &self,
            soc: &SocSpec,
            workload_type: WorkloadType,
        ) -> Result<f64, PdnError> {
            let idx = workload_type as usize;
            if let Some(t) = self.solved_t.lock().expect("staging mutex poisoned")[idx] {
                return Ok(t);
            }
            let t = Scenario::solve_t_for_budget(
                soc,
                workload_type,
                ApplicationRatio::POWER_VIRUS,
                soc.tdp,
            )?;
            self.solved_t.lock().expect("staging mutex poisoned")[idx] = Some(t);
            Ok(t)
        }

        pub(super) fn tdp_virus(&self, soc: &SocSpec) -> [DomainTable<DomainLoad>; 2] {
            *self.tdp_virus.get_or_init(|| Scenario::tdp_virus_loads_uncached(soc))
        }

        pub(super) fn fmin_virus(&self, soc: &SocSpec) -> [DomainTable<DomainLoad>; 2] {
            *self.fmin_virus.get_or_init(|| Scenario::fmin_virus_loads_uncached(soc))
        }
    }

    /// Bound on distinct SoCs tracked at once; past it the registry is
    /// cleared wholesale (every entry is recomputable, so eviction only
    /// costs time, never correctness).
    const CAP: usize = 512;

    fn registry() -> &'static Mutex<HashMap<u64, Arc<SocStaging>>> {
        static REGISTRY: OnceLock<Mutex<HashMap<u64, Arc<SocStaging>>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// The staging slot for `soc`, creating it on first sight.
    pub(super) fn for_soc(soc: &SocSpec) -> Arc<SocStaging> {
        let key = soc_fingerprint(soc);
        let mut map = registry().lock().expect("staging registry poisoned");
        if map.len() >= CAP && !map.contains_key(&key) {
            map.clear();
        }
        map.entry(key).or_default().clone()
    }

    /// Exact-bits fingerprint of every SoC field the scenario constructors
    /// read (TDP, active junction temperature, and per domain: frequency
    /// limits, the full power model, and the V/f knot table). The derived
    /// `name` and the reporting-only process node are excluded — no solver
    /// reads them.
    fn soc_fingerprint(soc: &SocSpec) -> u64 {
        let mut h = Fnv1a::new();
        h.write(soc.tdp.get().to_bits());
        h.write(soc.tj_active.get().to_bits());
        for (kind, cfg) in soc.domains() {
            h.write(kind as u64);
            h.write(cfg.fmin.get().to_bits());
            h.write(cfg.fmax.get().to_bits());
            let p = &cfg.power;
            h.write(p.ceff.to_bits());
            h.write(p.leak_ref.get().to_bits());
            h.write(p.vref.get().to_bits());
            h.write(p.tref.get().to_bits());
            h.write(p.leak_voltage_exp.to_bits());
            h.write(p.leak_temp_coeff.to_bits());
            h.write(p.guardband_leakage_fraction.get().to_bits());
            h.write(p.clock_fraction.to_bits());
            for (f, v) in cfg.vf.points() {
                h.write(f.get().to_bits());
                h.write(v.get().to_bits());
            }
            // Knot-list terminator: keeps differently shaped curves from
            // aliasing under concatenation.
            h.write(u64::MAX);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdn_proc::client_soc;

    fn ar(v: f64) -> ApplicationRatio {
        ApplicationRatio::new(v).unwrap()
    }

    #[test]
    fn single_thread_gates_core1_and_gfx() {
        let soc = client_soc(Watts::new(18.0));
        let s = Scenario::active(
            &soc,
            WorkloadType::SingleThread,
            ar(0.6),
            Hertz::from_gigahertz(2.0),
            Hertz::from_gigahertz(0.1),
        )
        .unwrap();
        assert!(s.load(DomainKind::Core0).powered);
        assert!(!s.load(DomainKind::Core1).powered);
        assert!(!s.load(DomainKind::Gfx).powered);
        assert!(s.load(DomainKind::Sa).powered);
        assert_eq!(s.load(DomainKind::Core1).nominal_power, Watts::ZERO);
    }

    #[test]
    fn graphics_runs_llc_hotter_than_cores() {
        let soc = client_soc(Watts::new(25.0));
        let s = Scenario::active(
            &soc,
            WorkloadType::Graphics,
            ar(0.7),
            Hertz::from_gigahertz(1.0),
            Hertz::from_gigahertz(1.1),
        )
        .unwrap();
        let v_core = s.load(DomainKind::Core0).voltage;
        let v_llc = s.load(DomainKind::Llc).voltage;
        let v_gfx = s.load(DomainKind::Gfx).voltage;
        assert!(v_llc > v_core, "LLC {v_llc} should exceed cores {v_core}");
        assert!(v_gfx > v_core, "GFX {v_gfx} should exceed cores {v_core}");
    }

    #[test]
    fn budget_scenario_fills_the_nominal_budget() {
        let soc = client_soc(Watts::new(18.0));
        let p = ModelParams::paper_defaults();
        let s = Scenario::active_budget(&soc, WorkloadType::MultiThread, ar(0.6), &p).unwrap();
        let total = s.total_nominal_power().get();
        let budget = 18.0 * NOMINAL_BUDGET_FRACTION;
        assert!(
            (total - budget).abs() / budget < 0.01,
            "nominal {total} should track budget {budget}"
        );
    }

    #[test]
    fn low_tdp_budget_scenario_saturates_at_a_low_frequency() {
        let soc = client_soc(Watts::new(4.0));
        let p = ModelParams::paper_defaults();
        let s = Scenario::active_budget(&soc, WorkloadType::SingleThread, ar(0.6), &p).unwrap();
        // At 4 W the cores cannot be anywhere near fmax: their load voltage
        // must be near the bottom of the V/f curve.
        assert!(s.load(DomainKind::Core0).voltage.get() < 0.72);
    }

    #[test]
    fn idle_scenario_reproduces_cstate_powers() {
        let soc = client_soc(Watts::new(18.0));
        let s = Scenario::idle(&soc, PackageCState::C8);
        assert!(s.is_idle());
        assert!((s.total_nominal_power().get() - 0.13).abs() < 1e-9);
        assert!(!s.load(DomainKind::Core0).powered);
        assert!(s.load(DomainKind::Sa).powered);
    }

    #[test]
    fn c0min_scenario_keeps_compute_powered() {
        let soc = client_soc(Watts::new(18.0));
        let s = Scenario::idle(&soc, PackageCState::C0Min);
        assert!(!s.is_idle(), "C0MIN counts as active residency");
        assert!(s.load(DomainKind::Core0).powered);
        assert!((s.total_nominal_power().get() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn power_virus_has_ar_one_and_max_power() {
        let soc = client_soc(Watts::new(50.0));
        let pv = Scenario::power_virus(&soc, WorkloadType::MultiThread).unwrap();
        assert_eq!(pv.ar, ApplicationRatio::POWER_VIRUS);
        let budget = Scenario::active_budget(
            &soc,
            WorkloadType::MultiThread,
            ar(0.6),
            &ModelParams::paper_defaults(),
        )
        .unwrap();
        assert!(pv.total_nominal_power() > budget.total_nominal_power());
    }

    #[test]
    fn max_voltage_among_skips_gated_domains() {
        let soc = client_soc(Watts::new(18.0));
        let s = Scenario::active(
            &soc,
            WorkloadType::SingleThread,
            ar(0.5),
            Hertz::from_gigahertz(3.0),
            Hertz::from_gigahertz(1.2),
        )
        .unwrap();
        let vmax = s.max_voltage_among(&[DomainKind::Core0, DomainKind::Gfx]).unwrap();
        // GFX is gated in single-thread, so the max is the core voltage.
        assert_eq!(vmax, s.load(DomainKind::Core0).voltage);
        assert!(s.max_voltage_among(&[DomainKind::Gfx]).is_none());
    }

    #[test]
    fn battery_life_frequency_point_is_minimum() {
        let soc = client_soc(Watts::new(18.0));
        let (fc, fg) = Scenario::frequency_point(&soc, WorkloadType::BatteryLife, 0.9);
        assert_eq!(fc, soc.domain(DomainKind::Core0).fmin);
        assert_eq!(fg, soc.domain(DomainKind::Gfx).fmin);
    }

    #[test]
    fn active_row_matches_per_point_constructor_bit_for_bit() {
        let types = [WorkloadType::SingleThread, WorkloadType::MultiThread, WorkloadType::Graphics];
        for tdp in [4.0, 18.0, 50.0] {
            let soc = client_soc(Watts::new(tdp));
            for wl in types {
                let t = Scenario::solve_t_fixed_tdp(&soc, wl).unwrap();
                let virus = Scenario::tdp_virus_loads(&soc);
                let ars: Vec<_> = (1..=9).map(|i| ar(f64::from(i) * 0.1)).collect();
                let suffixes: Vec<_> = ars.iter().map(|&a| Scenario::ar_suffix(a)).collect();
                let row =
                    Scenario::active_fixed_tdp_row(&soc, wl, &ars, &suffixes, t, &virus).unwrap();
                assert_eq!(row.len(), ars.len());
                for (got, &a) in row.iter().zip(&ars) {
                    let point = Scenario::active_fixed_tdp_staged(&soc, wl, a, t, virus).unwrap();
                    assert_eq!(*got, point, "{wl} tdp={tdp} ar={a}");
                    assert_eq!(got.fingerprint(), point.fingerprint());
                    // And against the fully unstaged constructor.
                    let direct = Scenario::active_fixed_tdp_frequency(&soc, wl, a).unwrap();
                    assert_eq!(*got, direct);
                }
            }
        }
    }

    #[test]
    fn idle_row_matches_per_point_constructor_bit_for_bit() {
        let soc = client_soc(Watts::new(25.0));
        let virus = Scenario::fmin_virus_loads(&soc);
        let row = Scenario::idle_row(&soc, &PackageCState::ALL, &virus);
        assert_eq!(row.len(), PackageCState::ALL.len());
        for (got, &state) in row.iter().zip(PackageCState::ALL.iter()) {
            assert_eq!(*got, Scenario::idle_staged(&soc, state, virus));
            assert_eq!(*got, Scenario::idle(&soc, state));
            assert_eq!(got.fingerprint(), Scenario::idle(&soc, state).fingerprint());
        }
    }

    #[test]
    fn staging_cache_is_bit_transparent() {
        let soc = client_soc(Watts::new(7.5));
        let direct = Scenario::solve_t_for_budget(
            &soc,
            WorkloadType::MultiThread,
            ApplicationRatio::POWER_VIRUS,
            soc.tdp,
        )
        .unwrap();
        let cached = Scenario::solve_t_fixed_tdp(&soc, WorkloadType::MultiThread).unwrap();
        let warm = Scenario::solve_t_fixed_tdp(&soc, WorkloadType::MultiThread).unwrap();
        assert_eq!(direct.to_bits(), cached.to_bits());
        assert_eq!(cached.to_bits(), warm.to_bits());
        assert_eq!(Scenario::tdp_virus_loads(&soc), Scenario::tdp_virus_loads_uncached(&soc));
        assert_eq!(Scenario::fmin_virus_loads(&soc), Scenario::fmin_virus_loads_uncached(&soc));
    }

    #[test]
    fn staging_cache_distinguishes_socs() {
        use pdn_proc::ClientSocBuilder;
        // Same TDP, different leakage bin: the exact-bits fingerprint must
        // keep their cached virus tables apart.
        let base = client_soc(Watts::new(15.0));
        let binned = ClientSocBuilder::new(Watts::new(15.0)).leakage_scale(1.07).build();
        assert_ne!(Scenario::tdp_virus_loads(&base), Scenario::tdp_virus_loads(&binned));
        assert_eq!(Scenario::tdp_virus_loads(&binned), Scenario::tdp_virus_loads_uncached(&binned));
    }
}
