//! The §3.3 performance model.
//!
//! A client processor operates at the highest compute frequency whose
//! *total platform power* — nominal load power divided by the PDN's ETEE —
//! fits inside the TDP. A PDN with a higher ETEE therefore frees budget
//! that the power manager reallocates into clock frequency, and a
//! workload's performance gain is its performance scalability times the
//! relative frequency gain (§3.3, footnote 5).
//!
//! This module provides:
//!
//! * [`solve_operating_point`] — the TDP-constrained frequency solver;
//! * [`relative_performance`] — a workload's performance under one PDN
//!   normalised to a baseline PDN (the Fig. 7/8 y-axis);
//! * [`frequency_sensitivity`] — the extra budget needed for a 1 % clock
//!   increase (Fig. 2a);
//! * [`budget_breakdown`] — the share of the TDP going to SA+IO, CPU, LLC
//!   and PDN loss (Fig. 2b);
//! * [`battery_life_average_power`] — residency-weighted average power of
//!   a battery-life workload (Fig. 8c).

use crate::error::PdnError;
use crate::etee::PdnEvaluation;
use crate::scenario::Scenario;
use crate::topology::Pdn;
use pdn_proc::{DomainKind, SocSpec};
use pdn_units::{ApplicationRatio, Hertz, Ratio, Watts};
use pdn_workload::{BatteryLifeWorkload, WorkloadType};

/// A solved TDP-constrained operating point.
#[derive(Debug, Clone)]
pub struct OperatingPoint {
    /// The frequency scalar `t ∈ [0, 1]` along the workload's frequency
    /// trajectory.
    pub t: f64,
    /// Core clock frequency.
    pub f_cores: Hertz,
    /// Graphics clock frequency.
    pub f_gfx: Hertz,
    /// The scenario at the operating point.
    pub scenario: Scenario,
    /// The PDN evaluation at the operating point.
    pub evaluation: PdnEvaluation,
}

impl OperatingPoint {
    /// The frequency that matters for the workload's performance: graphics
    /// clock for graphics workloads, core clock otherwise.
    pub fn performance_frequency(&self, workload_type: WorkloadType) -> Hertz {
        match workload_type {
            WorkloadType::Graphics => self.f_gfx,
            _ => self.f_cores,
        }
    }
}

/// Finds the highest compute frequency at which the platform input power
/// (through `pdn`) fits within the SoC's TDP, for a workload of the given
/// type and AR.
///
/// # Errors
///
/// Returns [`PdnError`] if the PDN cannot evaluate the scenario even at
/// minimum frequency.
pub fn solve_operating_point(
    soc: &SocSpec,
    pdn: &dyn Pdn,
    workload_type: WorkloadType,
    ar: ApplicationRatio,
) -> Result<OperatingPoint, PdnError> {
    let build = |t: f64| -> Result<(Scenario, PdnEvaluation), PdnError> {
        let (f_cores, f_gfx) = Scenario::frequency_point(soc, workload_type, t);
        let scenario = Scenario::active(soc, workload_type, ar, f_cores, f_gfx)?;
        let eval = pdn.evaluate(&scenario)?;
        Ok((scenario, eval))
    };
    let fits = |t: f64| -> Result<bool, PdnError> { Ok(build(t)?.1.input_power <= soc.tdp) };

    let t = if fits(1.0)? {
        1.0
    } else if !fits(0.0)? {
        0.0 // thermally over-subscribed even at fmin; run at the floor
    } else {
        let (mut lo, mut hi) = (0.0, 1.0);
        for _ in 0..48 {
            let mid = 0.5 * (lo + hi);
            if fits(mid)? {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    };
    let (f_cores, f_gfx) = Scenario::frequency_point(soc, workload_type, t);
    let (scenario, evaluation) = build(t)?;
    Ok(OperatingPoint { t, f_cores, f_gfx, scenario, evaluation })
}

/// Performance of a workload under `pdn` relative to the same workload
/// under `baseline`, as plotted in Figs. 7 and 8 (baseline = IVR = 1.0).
///
/// This follows the paper's §3.3 methodology exactly: solve the baseline
/// PDN's TDP-limited operating point, evaluate *the same scenario* through
/// the candidate PDN, and reallocate the spared PDN loss into clock
/// frequency at the baseline point's marginal cost (the Fig. 2a curve):
/// "the additional 250 mW saved by using PDN2 could be allocated to
/// increasing the CPU cores' clock frequency by 28 %". The frequency gain
/// is clamped at the architectural maximum, and the result is
/// `1 + scalability · Δf/f`.
///
/// # Errors
///
/// Propagates solver errors from either PDN.
pub fn relative_performance(
    soc: &SocSpec,
    pdn: &dyn Pdn,
    baseline: &dyn Pdn,
    workload_type: WorkloadType,
    ar: ApplicationRatio,
    perf_scalability: Ratio,
) -> Result<f64, PdnError> {
    let base = solve_operating_point(soc, baseline, workload_type, ar)?;
    let ours = pdn.evaluate(&base.scenario)?;
    // Budget spared (or owed) by the candidate PDN at the same load.
    let saved = base.evaluation.input_power - ours.input_power;
    // Marginal cost of +1 % clock at the baseline operating point.
    let per_percent = frequency_sensitivity(soc, baseline, workload_type, ar)?;
    if per_percent.get() <= 0.0 {
        return Ok(1.0);
    }
    let mut delta_pct = saved.get() / per_percent.get();
    // The clock cannot exceed the architectural maximum.
    let f_base = base.performance_frequency(workload_type);
    let f_max = match workload_type {
        WorkloadType::Graphics => soc.domain(DomainKind::Gfx).fmax,
        _ => soc.domain(DomainKind::Core0).fmax,
    };
    let headroom_pct = ((f_max.get() / f_base.get()) - 1.0) * 100.0;
    delta_pct = delta_pct.clamp(-50.0, headroom_pct.max(0.0));
    Ok(1.0 + perf_scalability.get() * delta_pct / 100.0)
}

/// The additional power budget required to raise the performance-relevant
/// clock by 1 % from the solved operating point (Fig. 2a's y-axis).
///
/// # Errors
///
/// Propagates solver/evaluation errors.
pub fn frequency_sensitivity(
    soc: &SocSpec,
    pdn: &dyn Pdn,
    workload_type: WorkloadType,
    ar: ApplicationRatio,
) -> Result<Watts, PdnError> {
    let op = solve_operating_point(soc, pdn, workload_type, ar)?;
    // Step the performance clock by 1 %. A part already at its maximum
    // frequency is probed downward instead (the derivative is the same to
    // first order and the architectural clamp would otherwise hide it).
    let step = if op.t >= 1.0 { 1.0 / 1.01 } else { 1.01 };
    let (f_cores, f_gfx) = match workload_type {
        WorkloadType::Graphics => (op.f_cores, op.f_gfx * step),
        _ => (op.f_cores * step, op.f_gfx),
    };
    let bumped = Scenario::active(soc, workload_type, ar, f_cores, f_gfx)?;
    let bumped_eval = pdn.evaluate(&bumped)?;
    Ok((bumped_eval.input_power - op.evaluation.input_power).abs())
}

/// One row of the Fig. 2b power-budget breakdown: shares of the platform
/// input power at the TDP-limited operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetBreakdown {
    /// Share going to the SA and IO domains.
    pub sa_io: Ratio,
    /// Share going to the CPU cores.
    pub cpu: Ratio,
    /// Share going to the LLC (plus graphics when powered).
    pub llc_gfx: Ratio,
    /// Share lost in the PDN.
    pub pdn_loss: Ratio,
}

/// Computes the Fig. 2b budget breakdown for a CPU-intensive workload at
/// the TDP operating point of `pdn`.
///
/// # Errors
///
/// Propagates solver errors.
pub fn budget_breakdown(
    soc: &SocSpec,
    pdn: &dyn Pdn,
    ar: ApplicationRatio,
) -> Result<BudgetBreakdown, PdnError> {
    let op = solve_operating_point(soc, pdn, WorkloadType::MultiThread, ar)?;
    let input = op.evaluation.input_power.get();
    let share = |w: Watts| Ratio::new((w.get() / input).clamp(0.0, 1.0)).expect("share in [0,1]");
    let load = |k: DomainKind| op.scenario.load(k).nominal_power;
    let cpu = load(DomainKind::Core0) + load(DomainKind::Core1);
    let llc_gfx = load(DomainKind::Llc) + load(DomainKind::Gfx);
    let sa_io = load(DomainKind::Sa) + load(DomainKind::Io);
    Ok(BudgetBreakdown {
        sa_io: share(sa_io),
        cpu: share(cpu),
        llc_gfx: share(llc_gfx),
        pdn_loss: share(op.evaluation.total_loss()),
    })
}

/// Residency-weighted average platform power of a battery-life workload
/// (the §5 video-playback formula:
/// `Σ P_state · R_state / η_state`), used for Fig. 8c.
///
/// # Errors
///
/// Propagates evaluation errors from the idle-state scenarios.
pub fn battery_life_average_power(
    soc: &SocSpec,
    pdn: &dyn Pdn,
    workload: BatteryLifeWorkload,
) -> Result<Watts, PdnError> {
    let mut total = Watts::ZERO;
    for (state, residency) in workload.residency().entries() {
        if residency.get() <= 0.0 {
            continue;
        }
        let scenario = Scenario::idle(soc, state);
        let eval = pdn.evaluate(&scenario)?;
        total += eval.input_power * residency.get();
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ModelParams;
    use crate::topology::{IvrPdn, LdoPdn, MbvrPdn};
    use pdn_proc::client_soc;

    fn ar(v: f64) -> ApplicationRatio {
        ApplicationRatio::new(v).unwrap()
    }

    #[test]
    fn operating_point_respects_tdp() {
        let soc = client_soc(Watts::new(10.0));
        let pdn = IvrPdn::new(ModelParams::paper_defaults());
        let op = solve_operating_point(&soc, &pdn, WorkloadType::MultiThread, ar(0.7)).unwrap();
        assert!(
            op.evaluation.input_power.get() <= 10.0 + 1e-6,
            "input {} must fit the TDP",
            op.evaluation.input_power
        );
        // The solver should leave almost no budget unused (unless clamped).
        if op.t < 1.0 {
            assert!(op.evaluation.input_power.get() > 9.9);
        }
    }

    #[test]
    fn better_pdn_buys_higher_frequency_at_4w() {
        let soc = client_soc(Watts::new(4.0));
        let params = ModelParams::paper_defaults();
        let ivr = IvrPdn::new(params.clone());
        let mbvr = MbvrPdn::new(params.clone());
        let op_ivr =
            solve_operating_point(&soc, &ivr, WorkloadType::SingleThread, ar(0.6)).unwrap();
        let op_mbvr =
            solve_operating_point(&soc, &mbvr, WorkloadType::SingleThread, ar(0.6)).unwrap();
        assert!(
            op_mbvr.f_cores > op_ivr.f_cores,
            "MBVR's higher ETEE must buy clock: {} vs {}",
            op_mbvr.f_cores.gigahertz(),
            op_ivr.f_cores.gigahertz()
        );
    }

    #[test]
    fn relative_performance_gain_matches_fig7_scale_at_4w() {
        // Fig. 7 / §7.1: MBVR and LDO average > 22 % over IVR at 4 W for
        // highly scalable benchmarks.
        let soc = client_soc(Watts::new(4.0));
        let params = ModelParams::paper_defaults();
        let ivr = IvrPdn::new(params.clone());
        let ldo = LdoPdn::new(params.clone());
        let perf = relative_performance(
            &soc,
            &ldo,
            &ivr,
            WorkloadType::SingleThread,
            ar(0.7),
            Ratio::new(1.0).unwrap(),
        )
        .unwrap();
        assert!(
            perf > 1.10 && perf < 1.45,
            "LDO at 4 W should gain ≈ 20–30 % over IVR for a fully scalable workload: {perf:.3}"
        );
    }

    #[test]
    fn scalability_damps_the_gain() {
        let soc = client_soc(Watts::new(4.0));
        let params = ModelParams::paper_defaults();
        let ivr = IvrPdn::new(params.clone());
        let mbvr = MbvrPdn::new(params.clone());
        let strong = relative_performance(
            &soc,
            &mbvr,
            &ivr,
            WorkloadType::SingleThread,
            ar(0.6),
            Ratio::new(1.0).unwrap(),
        )
        .unwrap();
        let weak = relative_performance(
            &soc,
            &mbvr,
            &ivr,
            WorkloadType::SingleThread,
            ar(0.6),
            Ratio::new(0.4).unwrap(),
        )
        .unwrap();
        assert!(strong > weak, "{strong:.3} vs {weak:.3}");
        assert!(weak > 1.0);
        // Exactly proportional damping of the gain.
        assert!(((strong - 1.0) * 0.4 - (weak - 1.0)).abs() < 1e-9);
    }

    #[test]
    fn frequency_sensitivity_grows_with_tdp() {
        // Fig. 2a: a 4 W part needs ≈ 10 mW per 1 % clock; a 50 W part
        // needs hundreds of mW (log scale from 1 to 1000 mW).
        let params = ModelParams::paper_defaults();
        let pdn = IvrPdn::new(params);
        let small = frequency_sensitivity(
            &client_soc(Watts::new(4.0)),
            &pdn,
            WorkloadType::MultiThread,
            ar(0.7),
        )
        .unwrap();
        let large = frequency_sensitivity(
            &client_soc(Watts::new(50.0)),
            &pdn,
            WorkloadType::MultiThread,
            ar(0.7),
        )
        .unwrap();
        assert!(small.milliwatts() > 1.0 && small.milliwatts() < 60.0, "4 W sensitivity = {small}");
        assert!(
            large.milliwatts() > 100.0 && large.milliwatts() < 1500.0,
            "50 W sensitivity = {large}"
        );
        assert!(large.get() > 5.0 * small.get());
    }

    #[test]
    fn budget_breakdown_matches_fig2b_shape() {
        let params = ModelParams::paper_defaults();
        // Fig. 2b uses the worst-loss PDN per TDP: IVR at 4 W.
        let ivr = IvrPdn::new(params.clone());
        let low = budget_breakdown(&client_soc(Watts::new(4.0)), &ivr, ar(0.7)).unwrap();
        let mbvr = MbvrPdn::new(params);
        let high = budget_breakdown(&client_soc(Watts::new(50.0)), &mbvr, ar(0.7)).unwrap();
        // At 4 W a small share goes to the CPU; at 50 W about half.
        assert!(low.cpu.get() < 0.35, "4 W CPU share {:.2}", low.cpu.get());
        assert!(high.cpu.get() > 0.38, "50 W CPU share {:.2}", high.cpu.get());
        assert!(high.cpu > low.cpu);
        // SA+IO share shrinks as TDP grows (nearly constant absolute power).
        assert!(low.sa_io > high.sa_io);
        // PDN loss is a noticeable chunk everywhere (≥ 15 %).
        assert!(low.pdn_loss.get() > 0.15 && high.pdn_loss.get() > 0.15);
        let sum =
            |b: &BudgetBreakdown| b.sa_io.get() + b.cpu.get() + b.llc_gfx.get() + b.pdn_loss.get();
        assert!((sum(&low) - 1.0).abs() < 0.02);
        assert!((sum(&high) - 1.0).abs() < 0.02);
    }

    #[test]
    fn battery_life_power_is_tdp_insensitive_and_pdn_sensitive() {
        let params = ModelParams::paper_defaults();
        let ivr = IvrPdn::new(params.clone());
        let mbvr = MbvrPdn::new(params);
        let wl = BatteryLifeWorkload::VideoPlayback;
        let at_18 = battery_life_average_power(&client_soc(Watts::new(18.0)), &ivr, wl).unwrap();
        let at_50 = battery_life_average_power(&client_soc(Watts::new(50.0)), &ivr, wl).unwrap();
        // §7.1: nearly the same average power regardless of TDP.
        assert!((at_18.get() - at_50.get()).abs() / at_18.get() < 0.05);
        // §5 Observation 3: MBVR ≈ 12 % below IVR for video playback.
        let m = battery_life_average_power(&client_soc(Watts::new(18.0)), &mbvr, wl).unwrap();
        let gap = 1.0 - m.get() / at_18.get();
        assert!((0.08..=0.17).contains(&gap), "video playback gap {gap:.3}");
    }
}
