//! Design-space exploration utilities.
//!
//! PDNspot's stated purpose is "multi-dimensional architecture-space
//! exploration of modern processor PDNs" (§3). This module provides the
//! sweep machinery the paper's figures are built from: ETEE surfaces over
//! (TDP × AR) per workload type, series extraction, and a crossover
//! finder that locates the TDP at which one PDN overtakes another
//! (§5 Observation 1: "the ETEE crossover point ... exists at some TDP
//! between 4 W and 50 W").

use crate::error::PdnError;
use crate::scenario::Scenario;
use crate::topology::Pdn;
use pdn_proc::SocSpec;
use pdn_units::{ApplicationRatio, Watts};
use pdn_workload::WorkloadType;
use serde::{Deserialize, Serialize};

/// An ETEE surface: one value per (TDP, AR) lattice point for one PDN and
/// workload type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EteeSurface {
    /// The PDN's display name.
    pub pdn: String,
    /// The workload type swept.
    pub workload_type: WorkloadType,
    /// TDP axis (watts).
    pub tdps: Vec<f64>,
    /// AR axis (fractions).
    pub ars: Vec<f64>,
    /// Row-major ETEE values (`values[t * ars.len() + a]`).
    pub values: Vec<f64>,
}

impl EteeSurface {
    /// The ETEE at a lattice point.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn at(&self, tdp_idx: usize, ar_idx: usize) -> f64 {
        self.values[tdp_idx * self.ars.len() + ar_idx]
    }

    /// The fixed-AR series over TDP (one Fig. 8-style line).
    pub fn tdp_series(&self, ar_idx: usize) -> Vec<(f64, f64)> {
        self.tdps
            .iter()
            .enumerate()
            .map(|(i, &tdp)| (tdp, self.at(i, ar_idx)))
            .collect()
    }

    /// The fixed-TDP series over AR (one Fig. 4-style curve).
    pub fn ar_series(&self, tdp_idx: usize) -> Vec<(f64, f64)> {
        self.ars
            .iter()
            .enumerate()
            .map(|(j, &ar)| (ar, self.at(tdp_idx, j)))
            .collect()
    }
}

/// Sweeps a PDN's ETEE over a (TDP × AR) lattice at the fixed-TDP-frequency
/// operating points (the Fig. 4 methodology).
///
/// `soc_for` builds the SoC at each TDP (normally `pdn_proc::client_soc`).
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn etee_surface(
    pdn: &dyn Pdn,
    workload_type: WorkloadType,
    tdps: &[f64],
    ars: &[f64],
    soc_for: impl Fn(Watts) -> SocSpec,
) -> Result<EteeSurface, PdnError> {
    let mut values = Vec::with_capacity(tdps.len() * ars.len());
    for &tdp in tdps {
        let soc = soc_for(Watts::new(tdp));
        for &ar in ars {
            let ar = ApplicationRatio::new(ar).map_err(PdnError::Units)?;
            let scenario = Scenario::active_fixed_tdp_frequency(&soc, workload_type, ar)?;
            values.push(pdn.evaluate(&scenario)?.etee.get());
        }
    }
    Ok(EteeSurface {
        pdn: pdn.kind().to_string(),
        workload_type,
        tdps: tdps.to_vec(),
        ars: ars.to_vec(),
        values,
    })
}

/// The result of a crossover search between two PDNs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Crossover {
    /// `a` is at least as efficient as `b` over the whole range.
    AlwaysFirst,
    /// `b` is at least as efficient as `a` over the whole range.
    AlwaysSecond,
    /// The ETEE orders swap near this TDP.
    At(Watts),
}

/// Finds the TDP at which `a` overtakes `b` (or vice versa) for a workload
/// type and AR, by bisection over `[lo, hi]` watts.
///
/// The comparison uses the Fig. 4 fixed-TDP-frequency operating points.
/// The search assumes a single crossover in the range, which holds for the
/// paper's PDN pairs (the ETEE difference is monotone in TDP).
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn crossover_tdp(
    a: &dyn Pdn,
    b: &dyn Pdn,
    workload_type: WorkloadType,
    ar: ApplicationRatio,
    range: (f64, f64),
    soc_for: impl Fn(Watts) -> SocSpec,
) -> Result<Crossover, PdnError> {
    let advantage = |tdp: f64| -> Result<f64, PdnError> {
        let soc = soc_for(Watts::new(tdp));
        let s = Scenario::active_fixed_tdp_frequency(&soc, workload_type, ar)?;
        Ok(a.evaluate(&s)?.etee.get() - b.evaluate(&s)?.etee.get())
    };
    let (mut lo, mut hi) = range;
    let at_lo = advantage(lo)?;
    let at_hi = advantage(hi)?;
    if at_lo >= 0.0 && at_hi >= 0.0 {
        return Ok(Crossover::AlwaysFirst);
    }
    if at_lo <= 0.0 && at_hi <= 0.0 {
        return Ok(Crossover::AlwaysSecond);
    }
    let rising = at_hi > at_lo;
    for _ in 0..32 {
        let mid = 0.5 * (lo + hi);
        let v = advantage(mid)?;
        if (v > 0.0) == rising {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(Crossover::At(Watts::new(0.5 * (lo + hi))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ModelParams;
    use crate::topology::{IvrPdn, MbvrPdn};
    use pdn_proc::client_soc;

    #[test]
    fn surface_series_extraction() {
        let pdn = IvrPdn::new(ModelParams::paper_defaults());
        let surface = etee_surface(
            &pdn,
            WorkloadType::MultiThread,
            &[4.0, 18.0, 50.0],
            &[0.4, 0.8],
            client_soc,
        )
        .unwrap();
        assert_eq!(surface.values.len(), 6);
        let series = surface.tdp_series(0);
        assert_eq!(series.len(), 3);
        assert_eq!(series[0].0, 4.0);
        let ar_series = surface.ar_series(1);
        assert_eq!(ar_series.len(), 2);
        assert!(ar_series.iter().all(|&(_, e)| (0.0..=1.0).contains(&e)));
    }

    #[test]
    fn spec_crossover_lands_near_18w() {
        // §5 Observation 1 / §7.1: the SPEC-class crossover between IVR
        // and MBVR sits near 18 W.
        let params = ModelParams::paper_defaults();
        let ivr = IvrPdn::new(params.clone());
        let mbvr = MbvrPdn::new(params);
        let ar = ApplicationRatio::new(0.56).unwrap();
        match crossover_tdp(&ivr, &mbvr, WorkloadType::MultiThread, ar, (4.0, 50.0), client_soc)
            .unwrap()
        {
            Crossover::At(tdp) => {
                assert!(
                    (10.0..=26.0).contains(&tdp.get()),
                    "SPEC crossover at {tdp} (paper: ≈ 18 W)"
                );
            }
            other => panic!("expected a crossover, got {other:?}"),
        }
    }

    #[test]
    fn graphics_crossover_sits_above_the_spec_one() {
        let params = ModelParams::paper_defaults();
        let ivr = IvrPdn::new(params.clone());
        let mbvr = MbvrPdn::new(params);
        let ar = ApplicationRatio::new(0.56).unwrap();
        let spec = crossover_tdp(
            &ivr,
            &mbvr,
            WorkloadType::MultiThread,
            ar,
            (4.0, 50.0),
            client_soc,
        )
        .unwrap();
        let gfx = crossover_tdp(
            &ivr,
            &mbvr,
            WorkloadType::Graphics,
            ar,
            (4.0, 50.0),
            client_soc,
        )
        .unwrap();
        let (Crossover::At(spec), Crossover::At(gfx)) = (spec, gfx) else {
            panic!("both pairs must cross in range");
        };
        assert!(
            gfx.get() > spec.get() - 2.0,
            "graphics crossover {gfx} should not sit far below SPEC's {spec}"
        );
    }

    #[test]
    fn degenerate_ranges_report_dominance() {
        let params = ModelParams::paper_defaults();
        let ivr = IvrPdn::new(params.clone());
        let mbvr = MbvrPdn::new(params);
        let ar = ApplicationRatio::new(0.56).unwrap();
        // Restricted to low TDPs, MBVR dominates outright.
        let c = crossover_tdp(&mbvr, &ivr, WorkloadType::MultiThread, ar, (4.0, 10.0), client_soc)
            .unwrap();
        assert_eq!(c, Crossover::AlwaysFirst);
        let c = crossover_tdp(&ivr, &mbvr, WorkloadType::MultiThread, ar, (4.0, 10.0), client_soc)
            .unwrap();
        assert_eq!(c, Crossover::AlwaysSecond);
    }
}
