//! Design-space exploration utilities.
//!
//! PDNspot's stated purpose is "multi-dimensional architecture-space
//! exploration of modern processor PDNs" (§3). This module provides the
//! sweep machinery the paper's figures are built from: ETEE surfaces over
//! (TDP × AR) per workload type, series extraction, and a crossover
//! finder that locates the TDP at which one PDN overtakes another
//! (§5 Observation 1: "the ETEE crossover point ... exists at some TDP
//! between 4 W and 50 W").
//!
//! Surfaces are produced by the [`crate::batch`] engine: one
//! [`SweepGrid`] evaluation shared across all requested PDNs, scenarios
//! built once and reused, workers fanned out over the lattice.

use crate::batch::{SocProvider, SweepGrid};
use crate::config::EngineConfig;
use crate::error::PdnError;
use crate::memo::MemoCache;
use crate::scenario::Scenario;
use crate::topology::Pdn;
use pdn_units::{ApplicationRatio, Watts};
use pdn_workload::WorkloadType;
use serde::{Deserialize, Serialize};

/// An ETEE surface: one value per (TDP, AR) lattice point for one PDN and
/// workload type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EteeSurface {
    /// The PDN's display name.
    pub pdn: String,
    /// The workload type swept.
    pub workload_type: WorkloadType,
    /// TDP axis (watts).
    pub tdps: Vec<f64>,
    /// AR axis (fractions).
    pub ars: Vec<f64>,
    /// Row-major ETEE values (`values[t * ars.len() + a]`).
    pub values: Vec<f64>,
}

impl EteeSurface {
    /// The ETEE at a lattice point, or `None` when either index is out
    /// of range.
    pub fn get(&self, tdp_idx: usize, ar_idx: usize) -> Option<f64> {
        if tdp_idx >= self.tdps.len() || ar_idx >= self.ars.len() {
            return None;
        }
        self.values.get(tdp_idx * self.ars.len() + ar_idx).copied()
    }

    /// The ETEE at a lattice point.
    ///
    /// Prefer [`EteeSurface::get`] when the indices are not known to be
    /// in range (e.g. when they come from user input or another
    /// surface's axes).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn at(&self, tdp_idx: usize, ar_idx: usize) -> f64 {
        self.get(tdp_idx, ar_idx).unwrap_or_else(|| {
            panic!(
                "ETEE surface index ({tdp_idx}, {ar_idx}) out of range for {}x{} lattice",
                self.tdps.len(),
                self.ars.len()
            )
        })
    }

    /// The ETEE at an arbitrary `(tdp, ar)` query, bilinearly
    /// interpolated between the surface's knots
    /// ([`pdn_units::bilinear`]).
    ///
    /// Returns `None` when the query lies outside the axis hull (no
    /// extrapolation) or is not finite. A query landing exactly on a
    /// lattice knot returns the stored value bit-for-bit — identical to
    /// [`EteeSurface::at`] on the corresponding indices.
    pub fn sample(&self, tdp: f64, ar: f64) -> Option<f64> {
        pdn_units::bilinear(&self.tdps, &self.ars, &self.values, tdp, ar)
    }

    /// [`EteeSurface::sample`] over a batch of `(tdp, ar)` queries,
    /// returned in query order.
    pub fn sample_many(&self, queries: &[(f64, f64)]) -> Vec<Option<f64>> {
        queries.iter().map(|&(tdp, ar)| self.sample(tdp, ar)).collect()
    }

    /// The fixed-AR series over TDP (one Fig. 8-style line).
    pub fn tdp_series(&self, ar_idx: usize) -> Vec<(f64, f64)> {
        self.tdps
            .iter()
            .enumerate()
            .filter_map(|(i, &tdp)| self.get(i, ar_idx).map(|e| (tdp, e)))
            .collect()
    }

    /// The fixed-TDP series over AR (one Fig. 4-style curve).
    pub fn ar_series(&self, tdp_idx: usize) -> Vec<(f64, f64)> {
        self.ars
            .iter()
            .enumerate()
            .filter_map(|(j, &ar)| self.get(tdp_idx, j).map(|e| (ar, e)))
            .collect()
    }
}

/// Sweeps every PDN's ETEE over the active lattice of `grid` at the
/// fixed-TDP-frequency operating points (the Fig. 4 methodology) — the
/// unified surface entry point.
///
/// Returns one surface per `(pdn, workload type)` pair, PDN-major, plus
/// the run's [`crate::batch::BatchStats`]. The grid must be active-only
/// (no idle states): an idle point has no (AR, TDP) surface position.
/// When `memo` is `Some`, evaluations route through the cache via
/// [`crate::batch::evaluate`]; memoization never changes a surface
/// value, a warm cache only skips re-evaluations.
///
/// # Errors
///
/// Returns the first captured per-point error (with lattice
/// coordinates), or [`PdnError::Scenario`] if the grid has idle states.
pub fn surfaces(
    pdns: &[&dyn Pdn],
    grid: &SweepGrid,
    provider: &(impl SocProvider + ?Sized),
    config: &EngineConfig,
    memo: Option<&MemoCache>,
) -> Result<(Vec<EteeSurface>, crate::batch::BatchStats), PdnError> {
    if !grid.idle_states().is_empty() {
        return Err(PdnError::Scenario(
            "ETEE surfaces are defined on active lattices only; build the grid without \
             idle states"
                .into(),
        ));
    }
    let outcome = crate::batch::evaluate(pdns, grid, provider, config, memo);
    let (n_wl, n_ars) = (grid.workload_types().len(), grid.ars().len());
    let mut surfaces = Vec::with_capacity(pdns.len() * n_wl);
    for (pdn_idx, pdn) in pdns.iter().enumerate() {
        let block = outcome.for_pdn(pdn_idx);
        for (wl_idx, &workload_type) in grid.workload_types().iter().enumerate() {
            let mut values = Vec::with_capacity(grid.tdps().len() * n_ars);
            for tdp_idx in 0..grid.tdps().len() {
                for ar_idx in 0..n_ars {
                    // Active lattice order is TDP-major: (t, w, a).
                    let point_idx = (tdp_idx * n_wl + wl_idx) * n_ars + ar_idx;
                    match &block[point_idx].result {
                        Ok(eval) => values.push(eval.etee.get()),
                        Err(e) => return Err(e.clone()),
                    }
                }
            }
            surfaces.push(EteeSurface {
                pdn: pdn.kind().to_string(),
                workload_type,
                tdps: grid.tdps().to_vec(),
                ars: grid.ars().to_vec(),
                values,
            });
        }
    }
    Ok((surfaces, outcome.stats))
}

/// Patches a prior [`surfaces`] campaign in place after an axis change —
/// the incremental re-sweep entry point.
///
/// `grid` is the *new* grid and `delta` the output of
/// [`SweepGrid::diff`] against the grid `surfaces` was computed on. Only
/// the dirtied slab is re-evaluated (through
/// [`crate::batch::evaluate_delta`]); each dirty `(TDP, AR)` cell of the
/// matching surface is overwritten with its fresh value and every
/// surface's axes are refreshed to the new grid's. Because a dirty
/// point's delta evaluation is bit-identical to the full re-sweep's and
/// clean cells are untouched by the axis change, the patched surfaces
/// equal a from-scratch [`surfaces`] call on the new grid bit for bit.
///
/// `surfaces` must be the PDN-major slice a prior [`surfaces`] call
/// returned for the same `pdns` (one surface per `(pdn, workload type)`
/// pair, axes sized like `grid`'s).
///
/// # Errors
///
/// Returns [`PdnError::Scenario`] when the grid has idle states or the
/// surface slice does not line up with `pdns` × `grid`, and propagates
/// the first captured per-point evaluation error.
pub fn surfaces_delta(
    pdns: &[&dyn Pdn],
    grid: &SweepGrid,
    delta: &crate::batch::GridDelta,
    surfaces: &mut [EteeSurface],
    provider: &(impl SocProvider + ?Sized),
    config: &EngineConfig,
    memo: Option<&MemoCache>,
) -> Result<crate::batch::BatchStats, PdnError> {
    if !grid.idle_states().is_empty() {
        return Err(PdnError::Scenario(
            "ETEE surfaces are defined on active lattices only; build the grid without \
             idle states"
                .into(),
        ));
    }
    let n_wl = grid.workload_types().len();
    if surfaces.len() != pdns.len() * n_wl {
        return Err(PdnError::Scenario(format!(
            "surface slice has {} entries; {} PDNs x {} workload types need {}",
            surfaces.len(),
            pdns.len(),
            n_wl,
            pdns.len() * n_wl
        )));
    }
    for (i, surface) in surfaces.iter().enumerate() {
        let (pdn, wl) = (pdns[i / n_wl], grid.workload_types()[i % n_wl]);
        if surface.pdn != pdn.kind().to_string()
            || surface.workload_type != wl
            || surface.tdps.len() != grid.tdps().len()
            || surface.ars.len() != grid.ars().len()
            || surface.values.len() != grid.tdps().len() * grid.ars().len()
        {
            return Err(PdnError::Scenario(format!(
                "surface {i} ({} / {}, {}x{}) does not match PDN {} / {} on a {}x{} grid",
                surface.pdn,
                surface.workload_type,
                surface.tdps.len(),
                surface.ars.len(),
                pdn.kind(),
                wl,
                grid.tdps().len(),
                grid.ars().len()
            )));
        }
    }
    let outcome = crate::batch::evaluate_delta(pdns, grid, delta, provider, config, memo);
    let n_ars = grid.ars().len();
    for eval in &outcome.evaluations {
        let crate::batch::LatticePoint::Active { tdp_idx, wl_idx, ar_idx } = eval.point else {
            unreachable!("active-only grids produce active points");
        };
        match &eval.result {
            Ok(e) => {
                surfaces[eval.pdn_idx * n_wl + wl_idx].values[tdp_idx * n_ars + ar_idx] =
                    e.etee.get();
            }
            Err(e) => return Err(e.clone()),
        }
    }
    for surface in surfaces.iter_mut() {
        surface.tdps.clear();
        surface.tdps.extend_from_slice(grid.tdps());
        surface.ars.clear();
        surface.ars.extend_from_slice(grid.ars());
    }
    Ok(outcome.stats)
}

/// The result of a crossover search between two PDNs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Crossover {
    /// `a` is at least as efficient as `b` over the whole range.
    AlwaysFirst,
    /// `b` is at least as efficient as `a` over the whole range.
    AlwaysSecond,
    /// The ETEE orders swap near this TDP.
    At(Watts),
}

/// How many TDP samples the parallel bracketing scan of
/// [`crossover`] evaluates before bisecting.
const CROSSOVER_SCAN_POINTS: usize = 9;

/// Finds the TDP at which `a` overtakes `b` (or vice versa) for a
/// workload type and AR over `[lo, hi]` watts — the unified crossover
/// entry point.
///
/// The comparison uses the Fig. 4 fixed-TDP-frequency operating points.
/// A coarse [`CROSSOVER_SCAN_POINTS`]-sample scan runs on the batch
/// engine (both PDNs share each scan scenario through the cache); the
/// sign change it brackets is then polished by serial bisection. The
/// search assumes a single crossover in the range, which holds for the
/// paper's PDN pairs (the ETEE difference is monotone in TDP).
///
/// Both the bracketing scan and the bisection probes route their
/// evaluations through `memo` when it is `Some`, so repeated searches
/// over the same PDN pair (or searches sharing scan scenarios with other
/// campaigns) skip re-evaluation. Memoization never changes the result:
/// a cached search returns exactly what the uncached one would.
///
/// # Errors
///
/// Propagates evaluation errors (with lattice coordinates for scan
/// failures).
#[allow(clippy::too_many_arguments)]
pub fn crossover(
    a: &dyn Pdn,
    b: &dyn Pdn,
    workload_type: WorkloadType,
    ar: ApplicationRatio,
    range: (f64, f64),
    provider: &(impl SocProvider + ?Sized),
    config: &EngineConfig,
    memo: Option<&MemoCache>,
) -> Result<Crossover, PdnError> {
    let (lo, hi) = range;
    let scan_tdps: Vec<f64> = (0..CROSSOVER_SCAN_POINTS)
        .map(|i| lo + (hi - lo) * i as f64 / (CROSSOVER_SCAN_POINTS - 1) as f64)
        .collect();
    let grid = SweepGrid::active(&scan_tdps, &[workload_type], &[ar.get()])?;
    let pdns: [&dyn Pdn; 2] = [a, b];
    let outcome = crate::batch::evaluate(&pdns, &grid, provider, config, memo);
    let advantage_at = |idx: usize| -> Result<f64, PdnError> {
        let etee = |pdn_idx: usize| -> Result<f64, PdnError> {
            match &outcome.for_pdn(pdn_idx)[idx].result {
                Ok(eval) => Ok(eval.etee.get()),
                Err(e) => Err(e.clone()),
            }
        };
        Ok(etee(0)? - etee(1)?)
    };

    // Dominance is judged at the endpoints, as the bisection always did.
    let at_lo = advantage_at(0)?;
    let at_hi = advantage_at(CROSSOVER_SCAN_POINTS - 1)?;
    if at_lo >= 0.0 && at_hi >= 0.0 {
        return Ok(Crossover::AlwaysFirst);
    }
    if at_lo <= 0.0 && at_hi <= 0.0 {
        return Ok(Crossover::AlwaysSecond);
    }

    // The scan brackets the sign change; bisection polishes it.
    let mut bracket = (0, CROSSOVER_SCAN_POINTS - 1);
    let mut prev = at_lo;
    for i in 1..CROSSOVER_SCAN_POINTS {
        let here = advantage_at(i)?;
        if (prev > 0.0) != (here > 0.0) {
            bracket = (i - 1, i);
            break;
        }
        prev = here;
    }
    let advantage = |tdp: f64| -> Result<f64, PdnError> {
        let soc = provider.soc_for(Watts::new(tdp));
        let s = Scenario::active_fixed_tdp_frequency(&soc, workload_type, ar)?;
        let (ea, eb) = match memo {
            Some(m) => (m.evaluate(a, &s)?, m.evaluate(b, &s)?),
            None => (a.evaluate(&s)?, b.evaluate(&s)?),
        };
        Ok(ea.etee.get() - eb.etee.get())
    };
    let (mut blo, mut bhi) = (scan_tdps[bracket.0], scan_tdps[bracket.1]);
    let rising = advantage_at(bracket.1)? > advantage_at(bracket.0)?;
    for _ in 0..32 {
        let mid = 0.5 * (blo + bhi);
        let v = advantage(mid)?;
        if (v > 0.0) == rising {
            bhi = mid;
        } else {
            blo = mid;
        }
    }
    Ok(Crossover::At(Watts::new(0.5 * (blo + bhi))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{config_for, ClientSoc, Workers};
    use crate::params::ModelParams;
    use crate::topology::{IvrPdn, MbvrPdn};

    fn cfg(workers: Workers) -> EngineConfig {
        config_for(workers)
    }

    #[test]
    fn surface_series_extraction() {
        let ivr = IvrPdn::new(ModelParams::paper_defaults());
        let pdns: [&dyn Pdn; 1] = [&ivr];
        let grid = SweepGrid::active(&[4.0, 18.0, 50.0], &[WorkloadType::MultiThread], &[0.4, 0.8])
            .unwrap();
        let (surfaces, stats) =
            surfaces(&pdns, &grid, &ClientSoc, &cfg(Workers::Auto), None).unwrap();
        assert_eq!(surfaces.len(), 1);
        let surface = &surfaces[0];
        assert_eq!(surface.values.len(), 6);
        assert_eq!(stats.scenario_builds, 6);
        let series = surface.tdp_series(0);
        assert_eq!(series.len(), 3);
        assert_eq!(series[0].0, 4.0);
        let ar_series = surface.ar_series(1);
        assert_eq!(ar_series.len(), 2);
        assert!(ar_series.iter().all(|&(_, e)| (0.0..=1.0).contains(&e)));
    }

    #[test]
    fn get_is_checked_and_at_panics_out_of_range() {
        let surface = EteeSurface {
            pdn: "IVR".into(),
            workload_type: WorkloadType::MultiThread,
            tdps: vec![4.0, 18.0],
            ars: vec![0.4],
            values: vec![0.6, 0.7],
        };
        assert_eq!(surface.get(1, 0), Some(0.7));
        assert_eq!(surface.get(2, 0), None);
        assert_eq!(surface.get(0, 1), None);
        assert_eq!(surface.at(1, 0), 0.7);
        assert!(std::panic::catch_unwind(|| surface.at(2, 0)).is_err());
        // Out-of-range series are empty rather than panicking.
        assert!(surface.tdp_series(3).is_empty());
        assert!(surface.ar_series(9).is_empty());
    }

    #[test]
    fn surfaces_cover_pdn_and_workload_axes_pdn_major() {
        let params = ModelParams::paper_defaults();
        let ivr = IvrPdn::new(params.clone());
        let mbvr = MbvrPdn::new(params);
        let pdns: [&dyn Pdn; 2] = [&ivr, &mbvr];
        let grid = SweepGrid::active(
            &[4.0, 18.0],
            &[WorkloadType::MultiThread, WorkloadType::Graphics],
            &[0.56],
        )
        .unwrap();
        let (surfaces, stats) =
            surfaces(&pdns, &grid, &ClientSoc, &cfg(Workers::Auto), None).unwrap();
        assert_eq!(surfaces.len(), 4);
        assert_eq!(surfaces[0].pdn, "IVR");
        assert_eq!(surfaces[0].workload_type, WorkloadType::MultiThread);
        assert_eq!(surfaces[1].workload_type, WorkloadType::Graphics);
        assert_eq!(surfaces[2].pdn, "MBVR");
        // 2 PDNs × 4 points share 4 scenario builds.
        assert_eq!(stats.scenario_builds, 4);
        assert_eq!(stats.scenario_lookups, 8);
    }

    #[test]
    fn surfaces_reject_idle_grids() {
        let ivr = IvrPdn::new(ModelParams::paper_defaults());
        let pdns: [&dyn Pdn; 1] = [&ivr];
        let grid = SweepGrid::builder()
            .tdps(&[18.0])
            .workload_types(&[WorkloadType::MultiThread])
            .ars(&[0.5])
            .idle_states(&[pdn_proc::PackageCState::C8])
            .build()
            .unwrap();
        assert!(surfaces(&pdns, &grid, &ClientSoc, &cfg(Workers::Auto), None).is_err());
    }

    #[test]
    fn sample_matches_at_on_every_knot_bit_for_bit() {
        let ivr = IvrPdn::new(ModelParams::paper_defaults());
        let pdns: [&dyn Pdn; 1] = [&ivr];
        let grid =
            SweepGrid::active(&[4.0, 18.0, 50.0], &[WorkloadType::MultiThread], &[0.4, 0.56, 0.8])
                .unwrap();
        let (surfaces, _) = surfaces(&pdns, &grid, &ClientSoc, &cfg(Workers::Auto), None).unwrap();
        let surface = &surfaces[0];
        for (i, &tdp) in surface.tdps.iter().enumerate() {
            for (j, &ar) in surface.ars.iter().enumerate() {
                let sampled = surface.sample(tdp, ar).unwrap();
                assert_eq!(
                    sampled.to_bits(),
                    surface.at(i, j).to_bits(),
                    "on-knot sample must equal at({i}, {j}) exactly"
                );
            }
        }
        // Interior queries interpolate within the bracketing knots.
        let mid = surface.sample(11.0, 0.48).unwrap();
        let corners = [surface.at(0, 0), surface.at(0, 1), surface.at(1, 0), surface.at(1, 1)];
        let (lo, hi) = corners
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        assert!((lo..=hi).contains(&mid), "{mid} outside [{lo}, {hi}]");
        // Outside the hull: no extrapolation.
        assert_eq!(surface.sample(3.9, 0.5), None);
        assert_eq!(surface.sample(50.1, 0.5), None);
        assert_eq!(surface.sample(18.0, 0.39), None);
        // Batched queries match the scalar path.
        let queries = [(4.0, 0.4), (11.0, 0.48), (60.0, 0.5)];
        assert_eq!(
            surface.sample_many(&queries),
            queries.iter().map(|&(t, a)| surface.sample(t, a)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn memoized_crossover_matches_uncached_and_hits_when_warm() {
        let params = ModelParams::paper_defaults();
        let ivr = IvrPdn::new(params.clone());
        let mbvr = MbvrPdn::new(params);
        let ar = ApplicationRatio::new(0.56).unwrap();
        let plain = crossover(
            &ivr,
            &mbvr,
            WorkloadType::MultiThread,
            ar,
            (4.0, 50.0),
            &ClientSoc,
            &cfg(Workers::Serial),
            None,
        )
        .unwrap();
        let memo = crate::memo::MemoCache::new();
        let cold = crossover(
            &ivr,
            &mbvr,
            WorkloadType::MultiThread,
            ar,
            (4.0, 50.0),
            &ClientSoc,
            &cfg(Workers::Serial),
            Some(&memo),
        )
        .unwrap();
        let after_cold = memo.stats();
        let warm = crossover(
            &ivr,
            &mbvr,
            WorkloadType::MultiThread,
            ar,
            (4.0, 50.0),
            &ClientSoc,
            &cfg(Workers::Serial),
            Some(&memo),
        )
        .unwrap();
        assert_eq!(plain, cold, "memoization must not change the crossover");
        assert_eq!(plain, warm);
        assert_eq!(after_cold.hits, 0, "cold cache cannot hit");
        let after_warm = memo.stats();
        let warm_lookups = after_warm.lookups() - after_cold.lookups();
        let warm_hits = after_warm.hits - after_cold.hits;
        assert_eq!(warm_hits, warm_lookups, "a repeated search is fully cached");
        assert!(warm_lookups > 0);
    }

    #[test]
    fn memoized_surfaces_match_uncached() {
        let params = ModelParams::paper_defaults();
        let ivr = IvrPdn::new(params.clone());
        let mbvr = MbvrPdn::new(params);
        let pdns: [&dyn Pdn; 2] = [&ivr, &mbvr];
        let grid =
            SweepGrid::active(&[4.0, 18.0], &[WorkloadType::MultiThread], &[0.4, 0.8]).unwrap();
        let (plain, _) = surfaces(&pdns, &grid, &ClientSoc, &cfg(Workers::Serial), None).unwrap();
        let memo = crate::memo::MemoCache::new();
        let (cold, _) =
            surfaces(&pdns, &grid, &ClientSoc, &cfg(Workers::Serial), Some(&memo)).unwrap();
        let (warm, warm_stats) =
            surfaces(&pdns, &grid, &ClientSoc, &cfg(Workers::Serial), Some(&memo)).unwrap();
        assert_eq!(plain, cold);
        assert_eq!(plain, warm);
        assert_eq!(warm_stats.memo_hits, 8, "2 PDNs x 4 points all hit on the second pass");
    }

    #[test]
    fn surfaces_delta_patches_to_the_full_resweep_bit_for_bit() {
        let params = ModelParams::paper_defaults();
        let ivr = IvrPdn::new(params.clone());
        let mbvr = MbvrPdn::new(params);
        let pdns: [&dyn Pdn; 2] = [&ivr, &mbvr];
        let old = SweepGrid::active(
            &[4.0, 18.0, 50.0],
            &[WorkloadType::MultiThread, WorkloadType::Graphics],
            &[0.4, 0.56, 0.8],
        )
        .unwrap();
        let (mut patched, _) =
            surfaces(&pdns, &old, &ClientSoc, &cfg(Workers::Serial), None).unwrap();
        // Perturb one TDP and one AR: the dirty slab is their union.
        let new = SweepGrid::active(
            &[4.0, 20.0, 50.0],
            &[WorkloadType::MultiThread, WorkloadType::Graphics],
            &[0.4, 0.56, 0.75],
        )
        .unwrap();
        let delta = new.diff(&old);
        let stats = surfaces_delta(
            &pdns,
            &new,
            &delta,
            &mut patched,
            &ClientSoc,
            &cfg(Workers::Auto),
            None,
        )
        .unwrap();
        // 1 dirty TDP x 2 wl x 3 ars + 2 clean TDPs x 2 wl x 1 dirty ar,
        // for each of the two PDNs.
        assert_eq!(stats.evaluations, 2 * (6 + 4));
        let (full, _) = surfaces(&pdns, &new, &ClientSoc, &cfg(Workers::Serial), None).unwrap();
        assert_eq!(patched.len(), full.len());
        for (p, f) in patched.iter().zip(&full) {
            assert_eq!(p.pdn, f.pdn);
            assert_eq!(p.workload_type, f.workload_type);
            assert_eq!(p.tdps, f.tdps);
            assert_eq!(p.ars, f.ars);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&p.values), bits(&f.values), "{} / {}", p.pdn, p.workload_type);
        }
    }

    #[test]
    fn surfaces_delta_rejects_mismatched_slices_and_idle_grids() {
        let ivr = IvrPdn::new(ModelParams::paper_defaults());
        let pdns: [&dyn Pdn; 1] = [&ivr];
        let grid =
            SweepGrid::active(&[4.0, 18.0], &[WorkloadType::MultiThread], &[0.4, 0.8]).unwrap();
        let (mut surfs, _) =
            surfaces(&pdns, &grid, &ClientSoc, &cfg(Workers::Serial), None).unwrap();
        let delta = grid.diff(&grid);
        // Wrong slice length.
        assert!(surfaces_delta(
            &pdns,
            &grid,
            &delta,
            &mut surfs[..0],
            &ClientSoc,
            &cfg(Workers::Serial),
            None
        )
        .is_err());
        // Wrong PDN identity.
        let mbvr = MbvrPdn::new(ModelParams::paper_defaults());
        let wrong: [&dyn Pdn; 1] = [&mbvr];
        assert!(surfaces_delta(
            &wrong,
            &grid,
            &delta,
            &mut surfs,
            &ClientSoc,
            &cfg(Workers::Serial),
            None
        )
        .is_err());
        // Idle grids are rejected like `surfaces`.
        let idle = SweepGrid::builder()
            .tdps(&[18.0])
            .idle_states(&[pdn_proc::PackageCState::C8])
            .build()
            .unwrap();
        assert!(surfaces_delta(
            &pdns,
            &idle,
            &idle.diff(&idle),
            &mut surfs,
            &ClientSoc,
            &cfg(Workers::Serial),
            None
        )
        .is_err());
        // The aligned call still succeeds (empty delta patches nothing).
        let stats = surfaces_delta(
            &pdns,
            &grid,
            &delta,
            &mut surfs,
            &ClientSoc,
            &cfg(Workers::Serial),
            None,
        )
        .unwrap();
        assert_eq!(stats.evaluations, 0);
    }

    #[test]
    fn spec_crossover_lands_near_18w() {
        // §5 Observation 1 / §7.1: the SPEC-class crossover between IVR
        // and MBVR sits near 18 W.
        let params = ModelParams::paper_defaults();
        let ivr = IvrPdn::new(params.clone());
        let mbvr = MbvrPdn::new(params);
        let ar = ApplicationRatio::new(0.56).unwrap();
        match crossover(
            &ivr,
            &mbvr,
            WorkloadType::MultiThread,
            ar,
            (4.0, 50.0),
            &ClientSoc,
            &cfg(Workers::Auto),
            None,
        )
        .unwrap()
        {
            Crossover::At(tdp) => {
                assert!(
                    (10.0..=26.0).contains(&tdp.get()),
                    "SPEC crossover at {tdp} (paper: ≈ 18 W)"
                );
            }
            other => panic!("expected a crossover, got {other:?}"),
        }
    }

    #[test]
    fn graphics_crossover_sits_above_the_spec_one() {
        let params = ModelParams::paper_defaults();
        let ivr = IvrPdn::new(params.clone());
        let mbvr = MbvrPdn::new(params);
        let ar = ApplicationRatio::new(0.56).unwrap();
        let spec = crossover(
            &ivr,
            &mbvr,
            WorkloadType::MultiThread,
            ar,
            (4.0, 50.0),
            &ClientSoc,
            &cfg(Workers::Auto),
            None,
        )
        .unwrap();
        let gfx = crossover(
            &ivr,
            &mbvr,
            WorkloadType::Graphics,
            ar,
            (4.0, 50.0),
            &ClientSoc,
            &cfg(Workers::Auto),
            None,
        )
        .unwrap();
        let (Crossover::At(spec), Crossover::At(gfx)) = (spec, gfx) else {
            panic!("both pairs must cross in range");
        };
        assert!(
            gfx.get() > spec.get() - 2.0,
            "graphics crossover {gfx} should not sit far below SPEC's {spec}"
        );
    }

    #[test]
    fn degenerate_ranges_report_dominance() {
        let params = ModelParams::paper_defaults();
        let ivr = IvrPdn::new(params.clone());
        let mbvr = MbvrPdn::new(params);
        let ar = ApplicationRatio::new(0.56).unwrap();
        // Restricted to low TDPs, MBVR dominates outright.
        let c = crossover(
            &mbvr,
            &ivr,
            WorkloadType::MultiThread,
            ar,
            (4.0, 10.0),
            &ClientSoc,
            &cfg(Workers::Auto),
            None,
        )
        .unwrap();
        assert_eq!(c, Crossover::AlwaysFirst);
        let c = crossover(
            &ivr,
            &mbvr,
            WorkloadType::MultiThread,
            ar,
            (4.0, 10.0),
            &ClientSoc,
            &cfg(Workers::Auto),
            None,
        )
        .unwrap();
        assert_eq!(c, Crossover::AlwaysSecond);
    }
}
