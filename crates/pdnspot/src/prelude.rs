//! The one-line import for PDNspot campaigns.
//!
//! ```
//! use pdnspot::prelude::*;
//!
//! let params = ModelParams::paper_defaults();
//! let ivr = IvrPdn::new(params.clone());
//! let mbvr = MbvrPdn::new(params);
//! let pdns: [&dyn Pdn; 2] = [&ivr, &mbvr];
//! let grid = SweepGrid::active(&[4.0, 18.0], &[WorkloadType::MultiThread], &[0.56])?;
//! let cfg = EngineConfig::default();
//! let outcome = evaluate(&pdns, &grid, &ClientSoc, &cfg, None);
//! assert_eq!(outcome.stats.failed, 0);
//! # Ok::<(), pdnspot::PdnError>(())
//! ```

pub use crate::batch::{
    build_scenarios, evaluate, evaluate_delta, par_map, par_map_stats, BatchOutcome, BatchStats,
    ClientSoc, DeltaOutcome, GridDelta, LatticePoint, PointEvaluation, SocProvider, SweepGrid,
    SweepGridBuilder, Workers,
};
pub use crate::config::{EngineConfig, EngineConfigBuilder, DEFAULT_ADMISSION_DEPTH};
pub use crate::error::{ErrorCode, PdnError};
pub use crate::etee::{LossBreakdown, PdnEvaluation, RailReport};
pub use crate::memo::{MemoCache, MemoEntry, MemoPdn, MemoStats};
pub use crate::params::ModelParams;
pub use crate::scenario::{DomainLoad, Scenario};
pub use crate::sweep::{crossover, surfaces, surfaces_delta, Crossover, EteeSurface};
pub use crate::topology::{IPlusMbvrPdn, IvrPdn, LdoPdn, MbvrPdn, Pdn, PdnKind};
pub use crate::validation::{validate, validate_with, ReferenceSystem, ValidationReport};
pub use pdn_units::{ApplicationRatio, Watts};
pub use pdn_workload::WorkloadType;
