//! Transient (di/dt) voltage-noise model.
//!
//! A PDN must "provide transient current required by a processor domain
//! and filter out the noise currents injected by a domain" (§2.1). The
//! decoupling capacitors on board, package, and die act as charge
//! reservoirs against instantaneous current steps; the first voltage
//! droop after a step of magnitude `ΔI` is governed by the characteristic
//! impedance of the loop feeding the load:
//!
//! `ΔV ≈ ΔI · sqrt(L_loop / C_eff)`
//!
//! The three PDNs carry very different decoupling budgets (§2.3): the
//! MBVR PDN's long board-VR-to-die path leaves room for large board and
//! package capacitor banks, while the IVR PDN relies on the limited
//! die/package capacitance next to its integrated regulators — which is
//! exactly why the paper lists "higher sensitivity to di/dt noise than the
//! MBVR PDN" among IVR's disadvantages.
//!
//! FlexWatts's mode switch changes `V_IN` by more than a volt; §6's
//! "voltage noise-free mode-switching" claim is that doing so inside the
//! package-C6 flow (compute current ≈ 0) injects no observable droop.
//! [`TransientModel::switch_droop`] quantifies that claim, and the
//! `flexwatts` crate's tests assert it.

use crate::topology::PdnKind;
use pdn_units::{Amps, Volts};
use serde::{Deserialize, Serialize};

/// Decoupling capacitance available to one PDN, by placement (§2.1 lists
/// board, package, and die reservoirs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecouplingBudget {
    /// Bulk capacitance on the motherboard (farads).
    pub board_f: f64,
    /// Mid-frequency capacitance on the package (farads).
    pub package_f: f64,
    /// High-frequency MIM/die capacitance (farads).
    pub die_f: f64,
}

impl DecouplingBudget {
    /// The effective capacitance protecting against a fast load step: the
    /// die capacitance responds first, the package bank shortly after;
    /// board bulk is too far away for the first droop.
    pub fn fast_effective(&self) -> f64 {
        self.die_f + 0.35 * self.package_f
    }
}

/// The transient model of one PDN topology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransientModel {
    /// Which PDN this budget describes.
    pub pdn: PdnKind,
    /// Loop inductance from the last regulation stage to the load (henry).
    pub loop_inductance_h: f64,
    /// The decoupling budget.
    pub decoupling: DecouplingBudget,
}

impl TransientModel {
    /// Paper-calibrated budgets (§2.3's qualitative comparison made
    /// quantitative): MBVR's long path allows plentiful board/package
    /// decap; IVR integrates regulation but can only afford limited
    /// die/package capacitance; the LDO PDN sits between; FlexWatts shares
    /// the IVR's capacitor banks in both modes (§6, Fig. 6).
    pub fn paper_calibrated(pdn: PdnKind) -> Self {
        let (loop_nh, board_uf, package_uf, die_nf) = match pdn {
            // Long loop but by far the biggest banks: lowest L/C.
            PdnKind::Mbvr => (0.50, 900.0, 100.0, 300.0),
            // LDO regulates on die from a nearby board rail.
            PdnKind::Ldo => (0.45, 600.0, 45.0, 300.0),
            // IVR: short loop but thin reservoirs next to the FIVR
            // bridges: highest L/C.
            PdnKind::Ivr => (0.22, 300.0, 18.0, 220.0),
            // Hybrids share the IVR's on-die banks plus the dedicated
            // SA/IO board rails' bulk.
            PdnKind::IPlusMbvr | PdnKind::FlexWatts => (0.25, 450.0, 20.0, 220.0),
        };
        Self {
            pdn,
            loop_inductance_h: loop_nh * 1e-9,
            decoupling: DecouplingBudget {
                board_f: board_uf * 1e-6,
                package_f: package_uf * 1e-6,
                die_f: die_nf * 1e-9,
            },
        }
    }

    /// First-droop magnitude for an instantaneous load step `ΔI`:
    /// `ΔV ≈ ΔI · sqrt(L / C_fast)`.
    pub fn first_droop(&self, delta_i: Amps) -> Volts {
        let c = self.decoupling.fast_effective();
        Volts::new(delta_i.get() * (self.loop_inductance_h / c).sqrt())
    }

    /// The droop injected by reconfiguring the hybrid PDN while the
    /// compute domains carry `compute_current`. In the package-C6 flow the
    /// compute current is (near) zero — the §6 noise-free guarantee; a
    /// hypothetical hot switch interrupts the full load current for the
    /// reconfiguration instant.
    pub fn switch_droop(&self, compute_current: Amps) -> Volts {
        self.first_droop(compute_current)
    }

    /// Whether a droop stays inside a noise budget, conventionally a
    /// fraction of the minimum operating voltage (the margin the
    /// tolerance band and load line do not already spend).
    pub fn within_noise_budget(&self, droop: Volts, rail: Volts) -> bool {
        droop.get() <= NOISE_BUDGET_FRACTION * rail.get()
    }
}

/// Droop budget as a fraction of the rail voltage (a typical client
/// processor allocates ~5 % of the rail to unmitigated fast droop).
pub const NOISE_BUDGET_FRACTION: f64 = 0.05;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ivr_is_most_droop_sensitive() {
        // §2.3: IVR's limited decoupling makes it the most sensitive to
        // di/dt noise; MBVR the least.
        let step = Amps::new(10.0);
        let ivr = TransientModel::paper_calibrated(PdnKind::Ivr).first_droop(step);
        let mbvr = TransientModel::paper_calibrated(PdnKind::Mbvr).first_droop(step);
        let ldo = TransientModel::paper_calibrated(PdnKind::Ldo).first_droop(step);
        assert!(ivr > ldo, "IVR {ivr} vs LDO {ldo}");
        assert!(ldo > mbvr, "LDO {ldo} vs MBVR {mbvr}");
    }

    #[test]
    fn typical_steps_stay_inside_the_budget() {
        // Ordinary workload steps (a few amperes of instantaneous di/dt
        // at the package) must not violate the noise budget on any PDN —
        // the §3.4 assumption that existing decap handles emergencies.
        let rail = Volts::new(0.85);
        for kind in [PdnKind::Ivr, PdnKind::Mbvr, PdnKind::Ldo, PdnKind::FlexWatts] {
            let m = TransientModel::paper_calibrated(kind);
            let droop = m.first_droop(Amps::new(6.0));
            assert!(m.within_noise_budget(droop, rail), "{kind}: droop {droop} exceeds the budget");
        }
    }

    #[test]
    fn droop_scales_linearly_with_step() {
        let m = TransientModel::paper_calibrated(PdnKind::FlexWatts);
        let one = m.first_droop(Amps::new(1.0));
        let ten = m.first_droop(Amps::new(10.0));
        assert!((ten.get() - 10.0 * one.get()).abs() < 1e-12);
    }

    #[test]
    fn idle_switching_injects_no_droop() {
        // The §6 guarantee: with compute gated (C6), the reconfiguration
        // step current is zero and so is the droop.
        let m = TransientModel::paper_calibrated(PdnKind::FlexWatts);
        assert_eq!(m.switch_droop(Amps::ZERO), Volts::ZERO);
    }

    #[test]
    fn hot_switching_would_violate_the_budget() {
        // The counterfactual that motivates the C6 flow: interrupting a
        // 30 A compute load mid-switch blows far past the noise budget.
        let m = TransientModel::paper_calibrated(PdnKind::FlexWatts);
        let droop = m.switch_droop(Amps::new(30.0));
        assert!(
            !m.within_noise_budget(droop, Volts::new(0.85)),
            "a hot switch at 30 A must violate the budget: droop {droop}"
        );
    }
}
