//! PDNspot validation against a reference "measured" system (§4 of the
//! paper).
//!
//! The paper validates its three power models against power measurements
//! on real Intel Broadwell (IVR), Skylake (MBVR), and Skylake-with-
//! emulated-LDO systems, reporting ≈ 99 % average ETEE accuracy over 200
//! traces. Real hardware and a Keysight power analyzer are not available
//! here, so [`ReferenceSystem`] substitutes the closest synthetic
//! equivalent (see DESIGN.md): an independent *measurement path* that
//!
//! 1. re-integrates every rail's input power from **tabulated efficiency
//!    surfaces** (sampled like a lab sweep, with interpolation error)
//!    rather than the parametric device models the analytical path uses;
//! 2. applies seeded per-unit manufacturing variation to those surfaces
//!    (VR efficiency spread, leakage bin) — every physical unit differs
//!    from the datasheet;
//! 3. adds per-measurement instrument noise at the accuracy of the
//!    paper's Keysight N6781A SMU (±0.025 %).
//!
//! Validation then compares model-predicted ETEE against the reference
//! measurement, exactly as §4.3 does.

use crate::batch::{par_map, Workers};
use crate::error::PdnError;
use crate::scenario::Scenario;
use crate::topology::Pdn;
use pdn_units::{Efficiency, Volts, Watts};
use pdn_vr::{
    CompiledSurface, EfficiencySurface, OperatingPoint, Placement, VoltageRegulator, VrPowerState,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// A reference system standing in for a lab unit on the bench.
///
/// The instrument-noise generator sits behind a [`Mutex`] so a reference
/// unit can be shared across batch workers; measurement noise is still
/// drawn strictly in measurement order (see [`validate_with`]), keeping
/// campaigns reproducible for a fixed seed.
#[derive(Debug)]
pub struct ReferenceSystem {
    /// Per-rail tabulated efficiency surfaces with unit variation baked
    /// in, compiled to the flattened query form — reintegration runs once
    /// per rail per measurement, so lookups sit on the campaign hot path.
    surfaces: BTreeMap<String, CompiledSurface>,
    /// Per-unit systematic bias that the surfaces do not capture (board
    /// parasitics, sensor calibration): a single multiplicative factor.
    unit_bias: f64,
    /// Standard deviation of per-measurement instrument noise.
    noise_sd: f64,
    rng: Mutex<StdRng>,
}

impl ReferenceSystem {
    /// "Puts a unit on the bench": samples every board-VR preset into a
    /// tabulated surface, perturbed by seeded manufacturing variation.
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut surfaces = BTreeMap::new();
        let vins = [Volts::new(7.2)];
        let vouts: Vec<Volts> = [0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.2, 1.5, 1.8, 1.95]
            .iter()
            .map(|&v| Volts::new(v))
            .collect();
        let states = [
            VrPowerState::Ps0,
            VrPowerState::Ps1,
            VrPowerState::Ps2,
            VrPowerState::Ps3,
            VrPowerState::Ps4,
        ];
        let devices: Vec<pdn_vr::BuckConverter> = vec![
            pdn_vr::presets::vin_board_vr(),
            pdn_vr::presets::compute_board_vr("V_Cores"),
            pdn_vr::presets::compute_board_vr("V_GFX"),
            pdn_vr::presets::compute_board_vr("V_IN_LDO"),
            pdn_vr::presets::sa_board_vr(),
            pdn_vr::presets::io_board_vr(),
        ];
        for device in &devices {
            let surface = EfficiencySurface::sample(
                device,
                &vins,
                &vouts,
                &states,
                (0.02, device.iccmax().get() * 0.98),
                40,
            )
            .expect("preset devices produce valid surfaces");
            // Per-unit VR efficiency spread: ±0.8 % multiplicative.
            let spread = 1.0 + rng.random_range(-0.008..0.008);
            let perturbed = perturb_surface(&surface, spread);
            // The LDO PDN names its (low-voltage, compute-class) rail
            // "V_IN" too; keep it under a separate key and disambiguate by
            // rail voltage at measurement time.
            surfaces.entry(device.name().to_string()).or_insert_with(|| perturbed.compile());
        }
        let unit_bias = 1.0 + rng.random_range(-0.006..0.006);
        Self {
            surfaces,
            unit_bias,
            noise_sd: 0.00025, // Keysight N6781A: 99.975 % accuracy
            rng: Mutex::new(StdRng::seed_from_u64(seed.wrapping_add(0x5EED))),
        }
    }

    /// "Measures" the platform input power of `pdn` running `scenario`:
    /// the rail structure comes from the model, but each rail's input
    /// power is re-integrated through the unit's tabulated surfaces, with
    /// bias and instrument noise applied.
    ///
    /// Equivalent to [`ReferenceSystem::reintegrate`] followed by one
    /// noise draw; batch campaigns use the two halves separately so the
    /// pure reintegration can fan out across workers while noise is
    /// drawn serially in measurement order.
    ///
    /// # Errors
    ///
    /// Propagates model evaluation errors (a scenario the model cannot
    /// evaluate cannot be set up on the bench either).
    pub fn measure_input_power(
        &self,
        pdn: &dyn Pdn,
        scenario: &Scenario,
    ) -> Result<Watts, PdnError> {
        Ok(self.reintegrate(pdn, scenario)? * self.noise_factor())
    }

    /// The deterministic half of a measurement: evaluates `pdn`, then
    /// re-integrates each rail's input power through the unit's tabulated
    /// surfaces with the per-unit bias applied — everything except the
    /// per-measurement instrument noise. Pure: safe to fan out across
    /// batch workers in any order.
    ///
    /// # Errors
    ///
    /// Propagates model evaluation errors.
    pub fn reintegrate(&self, pdn: &dyn Pdn, scenario: &Scenario) -> Result<Watts, PdnError> {
        let eval = pdn.evaluate(scenario)?;
        let supply = pdn.params().supply_voltage;
        let mut measured = Watts::ZERO;
        for rail in &eval.rails {
            if rail.input_power.get() <= 0.0 {
                continue;
            }
            let rail_output = rail.voltage * rail.current;
            // Disambiguate the two V_IN flavours: the IVR-style first
            // stage outputs ≈ 1.8 V, the LDO-style one a compute voltage.
            let key = if rail.name == "V_IN" && rail.voltage.get() < 1.5 {
                "V_IN_LDO"
            } else {
                rail.name.as_str()
            };
            let remeasured = match self.surfaces.get(key) {
                Some(surface) => {
                    let op = OperatingPoint::new(supply, rail.voltage, rail.current);
                    // The bench unit's VR picks its own power state by
                    // load, exactly as the model's device does: the
                    // deepest state whose current capability covers the
                    // load.
                    let mut ps = VrPowerState::Ps0;
                    for candidate in VrPowerState::ALL {
                        let capability = surface.iccmax() * candidate.current_capability_factor();
                        if rail.current <= capability {
                            ps = candidate;
                        } else {
                            break;
                        }
                    }
                    match surface.efficiency(op.with_power_state(ps)) {
                        Ok(eta) => rail_output / eta,
                        Err(_) => rail.input_power,
                    }
                }
                None => rail.input_power,
            };
            measured += remeasured;
        }
        Ok(measured * self.unit_bias)
    }

    /// Draws one multiplicative instrument-noise factor. Stateful: the
    /// draw order defines the measurement sequence, so callers must
    /// apply noise serially in a stable order.
    fn noise_factor(&self) -> f64 {
        let mut rng = self.rng.lock().expect("noise rng poisoned");
        1.0 + rng.random_range(-self.noise_sd..self.noise_sd)
    }
}

fn perturb_surface(surface: &EfficiencySurface, spread: f64) -> EfficiencySurface {
    let entries = surface
        .entries()
        .iter()
        .map(|e| pdn_vr::table::SurfaceEntry {
            vin: e.vin,
            vout: e.vout,
            power_state: e.power_state,
            curve: e
                .curve
                .map_y(|y| (y * spread).clamp(1e-4, 0.999))
                .expect("perturbation preserves curve validity"),
        })
        .collect();
    EfficiencySurface::new(
        format!("{}_unit", surface.name()),
        Placement::Motherboard,
        surface.iccmax(),
        entries,
    )
    .expect("perturbed surface is valid")
}

/// One validation sample: predicted vs measured ETEE for one trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidationSample {
    /// ETEE predicted by the analytical model.
    pub predicted: Efficiency,
    /// ETEE derived from the reference-system measurement.
    pub measured: Efficiency,
}

impl ValidationSample {
    /// Accuracy of this sample: `1 − |pred − meas| / meas` (§4.3).
    pub fn accuracy(&self) -> f64 {
        1.0 - (self.predicted.get() - self.measured.get()).abs() / self.measured.get()
    }
}

/// The outcome of a validation campaign (the §4.3 accuracy statistics).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// All samples, in evaluation order.
    pub samples: Vec<ValidationSample>,
}

impl ValidationReport {
    /// Mean accuracy across samples.
    pub fn mean_accuracy(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(ValidationSample::accuracy).sum::<f64>() / self.samples.len() as f64
    }

    /// Minimum accuracy across samples.
    pub fn min_accuracy(&self) -> f64 {
        self.samples.iter().map(ValidationSample::accuracy).fold(f64::INFINITY, f64::min)
    }

    /// Maximum accuracy across samples.
    pub fn max_accuracy(&self) -> f64 {
        self.samples.iter().map(ValidationSample::accuracy).fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Runs a validation campaign with an automatically sized worker pool
/// (see [`validate_with`]).
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn validate(
    pdn: &dyn Pdn,
    reference: &ReferenceSystem,
    scenarios: &[Scenario],
) -> Result<ValidationReport, PdnError> {
    validate_with(pdn, reference, scenarios, Workers::Auto)
}

/// Runs a validation campaign: evaluates `pdn` on every scenario both
/// analytically and on the reference system, collecting predicted vs
/// measured ETEE pairs.
///
/// The deterministic work — model evaluation and surface reintegration —
/// fans out over the batch worker pool; the per-measurement instrument
/// noise is then drawn serially in scenario order, so the report is
/// identical (same floating-point bits) for every [`Workers`] choice and
/// matches the historical serial campaign exactly.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn validate_with(
    pdn: &dyn Pdn,
    reference: &ReferenceSystem,
    scenarios: &[Scenario],
    workers: Workers,
) -> Result<ValidationReport, PdnError> {
    let measured = par_map(scenarios, workers, |_, scenario| {
        let eval = pdn.evaluate(scenario)?;
        let reintegrated = reference.reintegrate(pdn, scenario)?;
        Ok::<_, PdnError>((eval, reintegrated))
    });
    let mut samples = Vec::with_capacity(scenarios.len());
    for result in measured {
        let (eval, reintegrated) = result?;
        let measured_input = reintegrated * reference.noise_factor();
        let measured =
            Efficiency::new((eval.nominal_power.get() / measured_input.get()).clamp(1e-6, 1.0))?;
        samples.push(ValidationSample { predicted: eval.etee, measured });
    }
    Ok(ValidationReport { samples })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ModelParams;
    use crate::topology::{IvrPdn, LdoPdn, MbvrPdn};
    use pdn_proc::client_soc;
    use pdn_units::ApplicationRatio;
    use pdn_workload::WorkloadType;

    fn scenarios() -> Vec<Scenario> {
        let mut out = Vec::new();
        for tdp in [4.0, 18.0, 50.0] {
            let soc = client_soc(Watts::new(tdp));
            for wl in WorkloadType::ACTIVE_TYPES {
                for ar_pct in [40.0, 60.0, 80.0] {
                    let ar = ApplicationRatio::from_percent(ar_pct).unwrap();
                    out.push(Scenario::active_fixed_tdp_frequency(&soc, wl, ar).unwrap());
                }
            }
        }
        out
    }

    #[test]
    fn all_three_models_validate_above_98_percent() {
        // §4.3: IVR/MBVR/LDO models validate at 99.1/99.4/99.2 % average
        // accuracy; our substitute reference must land in the same band.
        let params = ModelParams::paper_defaults();
        let reference = ReferenceSystem::new(42);
        let scenarios = scenarios();
        for pdn in [
            Box::new(IvrPdn::new(params.clone())) as Box<dyn Pdn>,
            Box::new(MbvrPdn::new(params.clone())),
            Box::new(LdoPdn::new(params.clone())),
        ] {
            let report = validate(pdn.as_ref(), &reference, &scenarios).unwrap();
            let mean = report.mean_accuracy();
            assert!(
                mean > 0.98,
                "{} mean accuracy {mean:.4} below the validation band",
                pdn.kind()
            );
            assert!(report.min_accuracy() > 0.95, "{}", pdn.kind());
            assert!(report.max_accuracy() <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn different_units_measure_differently() {
        let params = ModelParams::paper_defaults();
        let pdn = MbvrPdn::new(params);
        let soc = client_soc(Watts::new(18.0));
        let s = Scenario::active_fixed_tdp_frequency(
            &soc,
            WorkloadType::MultiThread,
            ApplicationRatio::new(0.6).unwrap(),
        )
        .unwrap();
        let a = ReferenceSystem::new(1).measure_input_power(&pdn, &s).unwrap();
        let b = ReferenceSystem::new(2).measure_input_power(&pdn, &s).unwrap();
        assert!((a.get() - b.get()).abs() > 1e-6, "unit variation must show up");
        // ...but both stay close to the model.
        let model = pdn.evaluate(&s).unwrap().input_power;
        for m in [a, b] {
            assert!((m.get() - model.get()).abs() / model.get() < 0.05);
        }
    }

    #[test]
    fn same_unit_is_reproducible_between_campaigns() {
        let params = ModelParams::paper_defaults();
        let pdn = IvrPdn::new(params);
        let soc = client_soc(Watts::new(18.0));
        let s = Scenario::idle(&soc, pdn_proc::PackageCState::C2);
        let a = ReferenceSystem::new(7).measure_input_power(&pdn, &s).unwrap();
        let b = ReferenceSystem::new(7).measure_input_power(&pdn, &s).unwrap();
        // Same seed, same first measurement.
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_validation_matches_serial_bitwise() {
        // The noise stream is consumed per reference unit, so compare two
        // same-seed units: one driven serially, one on four workers.
        let params = ModelParams::paper_defaults();
        let pdn = MbvrPdn::new(params);
        let scenarios = scenarios();
        let serial =
            validate_with(&pdn, &ReferenceSystem::new(11), &scenarios, Workers::Serial).unwrap();
        let parallel =
            validate_with(&pdn, &ReferenceSystem::new(11), &scenarios, Workers::Fixed(4)).unwrap();
        assert_eq!(serial, parallel, "worker count must not change the report");
    }

    #[test]
    fn validation_covers_idle_states_too() {
        let params = ModelParams::paper_defaults();
        let pdn = MbvrPdn::new(params);
        let reference = ReferenceSystem::new(9);
        let soc = client_soc(Watts::new(18.0));
        let scenarios: Vec<Scenario> =
            pdn_proc::PackageCState::ALL.iter().map(|&st| Scenario::idle(&soc, st)).collect();
        let report = validate(&pdn, &reference, &scenarios).unwrap();
        assert_eq!(report.samples.len(), 6);
        assert!(report.mean_accuracy() > 0.95, "{:.4}", report.mean_accuracy());
    }
}
