//! Property-based tests of the trace-file robustness contract, mirroring
//! `proptest_firmware.rs`: decoding must *never* panic — for any byte
//! string it either yields intervals or typed [`ChunkDefect`]s — every
//! corruption of a well-formed file is detected, and a clean round trip
//! is bit-exact.

use pdn_proc::PackageCState;
use pdn_units::{ApplicationRatio, Seconds};
use pdn_workload::tracefile::{
    decode_trace, encode_trace, frame_spans, DefectKind, DefectPolicy, FrameKind,
    BYTES_PER_INTERVAL, MAX_CHUNK_INTERVALS,
};
use pdn_workload::{Trace, TraceInterval, WorkloadType, ZooScenario};
use proptest::collection::vec;
use proptest::prelude::*;

/// A well-formed reference encoding with enough chunks for interesting
/// corruption targets (16 chunks of 16 intervals + header + footer).
fn reference_bytes() -> &'static [u8] {
    static BYTES: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    BYTES.get_or_init(|| {
        let trace = ZooScenario::ServerBurstIdle.generate(0xC0FFEE, 256);
        encode_trace(&trace, 16).unwrap()
    })
}

fn reference_total_intervals() -> u64 {
    256
}

/// Strategy over a single valid interval: every phase tag the format can
/// carry, with finite positive durations and in-range ARs.
fn interval_strategy() -> impl Strategy<Value = TraceInterval> {
    (1e-7f64..5e-3, 0usize..10, 0.01f64..1.0).prop_map(|(duration, variant, ar)| {
        let duration = Seconds::new(duration);
        match variant {
            0 => TraceInterval::active(
                duration,
                WorkloadType::SingleThread,
                ApplicationRatio::new(ar).unwrap(),
            ),
            1 => TraceInterval::active(
                duration,
                WorkloadType::MultiThread,
                ApplicationRatio::new(ar).unwrap(),
            ),
            2 => TraceInterval::active(
                duration,
                WorkloadType::Graphics,
                ApplicationRatio::new(ar).unwrap(),
            ),
            3 => TraceInterval::active(
                duration,
                WorkloadType::BatteryLife,
                ApplicationRatio::new(ar).unwrap(),
            ),
            n => TraceInterval::idle(duration, PackageCState::ALL[n % 6]),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode → decode is the identity on intervals and name, the footer
    /// closes the stream, and a clean file reports zero defects — for any
    /// interval mix and any chunk capacity.
    #[test]
    fn round_trip_is_exact(
        intervals in vec(interval_strategy(), 0..200),
        capacity in 1usize..64,
    ) {
        let trace = Trace::new("roundtrip", intervals);
        let bytes = encode_trace(&trace, capacity).unwrap();
        let (decoded, summary) = decode_trace(&bytes, DefectPolicy::Strict).unwrap();
        prop_assert_eq!(&decoded, &trace);
        prop_assert_eq!(summary.defects.total(), 0);
        prop_assert_eq!(summary.intervals_lost, 0);
        prop_assert!(summary.footer_seen);
        prop_assert_eq!(
            summary.chunks_ok as usize,
            trace.intervals().len().div_ceil(capacity)
        );
    }

    /// Arbitrary bytes never panic the reader under either policy.
    #[test]
    fn decode_never_panics_on_arbitrary_bytes(data in vec(any::<u8>(), 0..512)) {
        let _ = decode_trace(&data, DefectPolicy::Quarantine);
        let _ = decode_trace(&data, DefectPolicy::Strict);
    }

    /// Arbitrary garbage behind a *valid* header never panics, and under
    /// quarantine always yields a (possibly empty) trace with the damage
    /// accounted — the header gate must not be the only line of defence.
    #[test]
    fn garbage_tail_behind_valid_header_is_quarantined(tail in vec(any::<u8>(), 1..512)) {
        let spans = frame_spans(reference_bytes()).unwrap();
        let header = &reference_bytes()[..spans[0].len];
        let mut bytes = header.to_vec();
        bytes.extend_from_slice(&tail);
        let (trace, summary) = decode_trace(&bytes, DefectPolicy::Quarantine).unwrap();
        prop_assert!(summary.defects.total() >= 1, "garbage tail reported clean");
        prop_assert!(trace.intervals().len() as u64 <= reference_total_intervals());
        let _ = decode_trace(&bytes, DefectPolicy::Strict);
    }

    /// Flipping any single bit of a well-formed file is detected: strict
    /// decoding rejects it, and quarantining decoding either fails the
    /// header gate or reports at least one defect — never a silent pass.
    #[test]
    fn any_single_bit_flip_is_detected(offset in 0usize..1 << 20, bit in 0u8..8) {
        let mut corrupt = reference_bytes().to_vec();
        let at = offset % corrupt.len();
        corrupt[at] ^= 1 << bit;
        prop_assert!(
            decode_trace(&corrupt, DefectPolicy::Strict).is_err(),
            "bit {bit} of byte {at} flipped silently past strict decode"
        );
        match decode_trace(&corrupt, DefectPolicy::Quarantine) {
            Err(_) => {} // header damage is always fatal
            Ok((_, summary)) => prop_assert!(
                summary.defects.total() >= 1,
                "bit {bit} of byte {at} flipped silently past quarantine"
            ),
        }
    }

    /// Every truncation is detected without panicking, the original still
    /// decodes, and a quarantining reader never emits more intervals than
    /// the file held.
    #[test]
    fn truncation_is_always_detected(cut in 1usize..1 << 20) {
        let bytes = reference_bytes();
        let keep = bytes.len() - 1 - (cut % (bytes.len() - 1));
        let truncated = &bytes[..keep];
        prop_assert!(decode_trace(truncated, DefectPolicy::Strict).is_err());
        match decode_trace(truncated, DefectPolicy::Quarantine) {
            Err(_) => {} // cut into the header
            Ok((trace, summary)) => {
                prop_assert!(summary.defects.total() >= 1);
                prop_assert!(!summary.footer_seen);
                prop_assert!(trace.intervals().len() as u64 <= reference_total_intervals());
            }
        }
        prop_assert!(decode_trace(bytes, DefectPolicy::Strict).is_ok());
    }

    /// A chunk declaring an oversized payload length is quarantined as
    /// `Oversized`, the reader resynchronises, and every interval in the
    /// file is either emitted or accounted as lost.
    #[test]
    fn oversized_declared_lengths_are_quarantined(
        chunk_pick in 0usize..64,
        extra in 0u32..1 << 24,
    ) {
        let bytes = reference_bytes();
        let spans = frame_spans(bytes).unwrap();
        let chunks: Vec<_> =
            spans.iter().filter(|s| s.kind == FrameKind::Chunk).collect();
        let span = chunks[chunk_pick % chunks.len()];
        let oversized =
            (12 + BYTES_PER_INTERVAL * MAX_CHUNK_INTERVALS) as u32 + 1 + extra;
        let mut corrupt = bytes.to_vec();
        corrupt[span.offset + 4..span.offset + 8]
            .copy_from_slice(&oversized.to_le_bytes());
        prop_assert!(decode_trace(&corrupt, DefectPolicy::Strict).is_err());
        let (trace, summary) = decode_trace(&corrupt, DefectPolicy::Quarantine).unwrap();
        prop_assert!(summary.defects.count(DefectKind::Oversized) >= 1);
        prop_assert!(summary.intervals_lost >= 1, "quarantined chunk lost no intervals");
        prop_assert_eq!(
            trace.intervals().len() as u64 + summary.intervals_lost,
            reference_total_intervals()
        );
    }

    /// Zeroing a whole chunk frame (a torn write) costs exactly that
    /// chunk: the reader resynchronises on the next frame and the index
    /// gap accounts every lost interval — emitted + lost == total.
    #[test]
    fn torn_chunk_loses_exactly_one_chunk(chunk_pick in 0usize..64) {
        let bytes = reference_bytes();
        let spans = frame_spans(bytes).unwrap();
        let chunks: Vec<_> =
            spans.iter().filter(|s| s.kind == FrameKind::Chunk).collect();
        let span = chunks[chunk_pick % chunks.len()];
        let mut corrupt = bytes.to_vec();
        corrupt[span.offset..span.offset + span.len].fill(0);
        let (trace, summary) = decode_trace(&corrupt, DefectPolicy::Quarantine).unwrap();
        prop_assert_eq!(summary.intervals_lost, 16);
        prop_assert_eq!(
            trace.intervals().len() as u64 + summary.intervals_lost,
            reference_total_intervals()
        );
        prop_assert!(summary.defects.total() >= 1);
    }
}
