//! Graphics benchmark profiles (3DMark06, Fig. 8b of the paper).
//!
//! During graphics workloads, 10–20 % of the processor budget goes to the
//! CPU cores and the rest to the graphics engines; the LLC runs at a higher
//! frequency/voltage than the cores because of the memory-bandwidth demand
//! (§7.1). These profiles carry the per-benchmark application ratio and
//! graphics-frequency scalability.

use crate::trace::{Trace, TraceInterval, WorkloadType};
use pdn_units::{ApplicationRatio, Ratio, Seconds};
use serde::{Deserialize, Serialize};

/// A graphics benchmark profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphicsBenchmark {
    /// Benchmark name (3DMark06 sub-test or game workload).
    pub name: &'static str,
    /// Performance scalability with graphics frequency.
    pub perf_scalability: Ratio,
    /// Application ratio of the graphics engines.
    pub ar: ApplicationRatio,
}

impl GraphicsBenchmark {
    /// Produces a steady-state graphics trace of the benchmark.
    pub fn as_trace(&self, duration: Seconds) -> Trace {
        Trace::new(
            self.name,
            vec![TraceInterval::active(duration, WorkloadType::Graphics, self.ar)],
        )
    }
}

const GRAPHICS_TABLE: [(&str, f64, f64); 6] = [
    ("3dmark06.gt1_return_to_proxycon", 0.88, 0.68),
    ("3dmark06.gt2_firefly_forest", 0.90, 0.72),
    ("3dmark06.hdr1_canyon_flight", 0.85, 0.65),
    ("3dmark06.hdr2_deep_freeze", 0.92, 0.75),
    ("crysis.benchmark_gpu", 0.86, 0.70),
    ("3dmark06.batch_combined", 0.89, 0.71),
];

/// The 3DMark06-style graphics suite (plus a Crysis GPU workload, §4.1).
///
/// # Examples
///
/// ```
/// use pdn_workload::graphics::threedmark06;
///
/// let suite = threedmark06();
/// assert!(suite.len() >= 4);
/// assert!(suite.iter().all(|b| b.ar.get() >= 0.6));
/// ```
pub fn threedmark06() -> Vec<GraphicsBenchmark> {
    GRAPHICS_TABLE
        .iter()
        .map(|&(name, scal, ar)| GraphicsBenchmark {
            name,
            perf_scalability: Ratio::new(scal).expect("static scalability is valid"),
            ar: ApplicationRatio::new(ar).expect("static AR is valid"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_nonempty_and_graphics_typed() {
        let suite = threedmark06();
        assert_eq!(suite.len(), 6);
        for b in &suite {
            let t = b.as_trace(Seconds::new(1.0));
            assert_eq!(t.dominant_type(), Some(WorkloadType::Graphics));
        }
    }

    #[test]
    fn graphics_workloads_scale_well_with_gfx_frequency() {
        for b in threedmark06() {
            assert!(b.perf_scalability.get() > 0.8, "{}", b.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = threedmark06().iter().map(|b| b.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 6);
    }
}
