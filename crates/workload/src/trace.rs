//! Interval traces: the representation of workload behaviour over time.
//!
//! A trace is a sequence of intervals, each either *active* (compute
//! domains running with a workload type and application ratio) or *idle*
//! (the package resides in a C-state). PDNspot's steady-state models
//! consume one interval at a time; the FlexWatts runtime simulator walks
//! whole traces.

use pdn_proc::{DomainKind, PackageCState};
use pdn_units::{ApplicationRatio, Ratio, Seconds, UnitsError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The workload types distinguished by the paper's models and by the
/// FlexWatts mode predictor (Algorithm 1 input `WL_TYPE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WorkloadType {
    /// One CPU core active, graphics idle.
    SingleThread,
    /// Both CPU cores active (multi-threaded or multi-programmed),
    /// graphics idle.
    MultiThread,
    /// Graphics engines active; cores lightly loaded (§7.1: 10–20 % of the
    /// budget goes to the cores in graphics workloads).
    Graphics,
    /// Battery-life workload: mostly idle with short active bursts.
    BatteryLife,
}

impl WorkloadType {
    /// The workload types with meaningful active-interval ETEE curves
    /// (Fig. 4a–i rows).
    pub const ACTIVE_TYPES: [WorkloadType; 3] =
        [WorkloadType::SingleThread, WorkloadType::MultiThread, WorkloadType::Graphics];

    /// Whether a domain is powered during an active interval of this type.
    pub fn domain_powered(self, domain: DomainKind) -> bool {
        match domain {
            DomainKind::Core0 | DomainKind::Llc | DomainKind::Sa | DomainKind::Io => true,
            // Graphics workloads park the second core: the GPU does the
            // heavy lifting and the cores get only 10-20 % of the budget
            // (§7.1), which one core at low frequency already consumes.
            DomainKind::Core1 => matches!(self, WorkloadType::MultiThread),
            DomainKind::Gfx => matches!(self, WorkloadType::Graphics),
        }
    }

    /// The fraction of the compute power budget allocated to the CPU cores
    /// (the rest goes to graphics). §7.1: graphics workloads give the cores
    /// 10–20 %; CPU workloads give graphics nothing.
    pub fn core_budget_share(self) -> Ratio {
        let share = match self {
            WorkloadType::Graphics => 0.15,
            _ => 1.0,
        };
        Ratio::new(share).expect("static share is valid")
    }
}

impl fmt::Display for WorkloadType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WorkloadType::SingleThread => "single-thread",
            WorkloadType::MultiThread => "multi-thread",
            WorkloadType::Graphics => "graphics",
            WorkloadType::BatteryLife => "battery-life",
        };
        f.write_str(s)
    }
}

/// What the processor is doing during one trace interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Phase {
    /// Compute domains are executing.
    Active {
        /// The workload type of the interval.
        workload_type: WorkloadType,
        /// Package-level application ratio (AR) of the interval.
        ar: ApplicationRatio,
    },
    /// The package resides in an idle state (or C0MIN).
    Idle(PackageCState),
}

impl Phase {
    /// The AR of the phase; idle phases report the power-virus AR since
    /// their guardband question does not arise.
    pub fn ar(&self) -> ApplicationRatio {
        match self {
            Phase::Active { ar, .. } => *ar,
            Phase::Idle(_) => ApplicationRatio::POWER_VIRUS,
        }
    }

    /// Whether this phase counts as active (C0) residency. The C0MIN
    /// state — active at minimum frequency — counts (§5: R_C0MIN is an
    /// active residency).
    pub fn is_active(&self) -> bool {
        match self {
            Phase::Active { .. } => true,
            Phase::Idle(state) => state.is_active(),
        }
    }
}

/// One interval of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceInterval {
    /// Interval length.
    pub duration: Seconds,
    /// What the processor does in the interval.
    pub phase: Phase,
}

impl TraceInterval {
    /// An active interval.
    ///
    /// The duration is trusted; use [`TraceInterval::try_active`] for
    /// values from an external toolchain or a decoded trace file.
    pub fn active(duration: Seconds, workload_type: WorkloadType, ar: ApplicationRatio) -> Self {
        Self { duration, phase: Phase::Active { workload_type, ar } }
    }

    /// An idle interval in `state`.
    ///
    /// The duration is trusted; use [`TraceInterval::try_idle`] for
    /// values from an external toolchain or a decoded trace file.
    pub fn idle(duration: Seconds, state: PackageCState) -> Self {
        Self { duration, phase: Phase::Idle(state) }
    }

    /// A validated active interval: rejects non-finite or negative
    /// durations with a typed error (the AR is validated by
    /// [`ApplicationRatio`]'s own constructor). This is the entry point
    /// for durations produced by external toolchains — mirroring the
    /// `MaxCurrentProtection::new` input hardening, invalid inputs are
    /// errors, never panics or silent NaN propagation.
    ///
    /// # Errors
    ///
    /// Returns [`UnitsError::NotFinite`] or [`UnitsError::OutOfRange`]
    /// when the duration is NaN, infinite, or negative.
    pub fn try_active(
        duration: Seconds,
        workload_type: WorkloadType,
        ar: ApplicationRatio,
    ) -> Result<Self, UnitsError> {
        let interval = Self::active(duration, workload_type, ar);
        interval.validate()?;
        Ok(interval)
    }

    /// A validated idle interval: rejects non-finite or negative
    /// durations with a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`UnitsError::NotFinite`] or [`UnitsError::OutOfRange`]
    /// when the duration is NaN, infinite, or negative.
    pub fn try_idle(duration: Seconds, state: PackageCState) -> Result<Self, UnitsError> {
        let interval = Self::idle(duration, state);
        interval.validate()?;
        Ok(interval)
    }

    /// Checks the interval's invariants: a finite, non-negative duration
    /// and (for active phases) a finite AR inside `(0, 1]`. The AR bound
    /// is enforced by [`ApplicationRatio`] at construction, but decoded
    /// representations (trace files, wire formats) rebuild intervals from
    /// raw bits and must re-establish it.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a typed [`UnitsError`].
    pub fn validate(&self) -> Result<(), UnitsError> {
        let d = self.duration.get();
        if !d.is_finite() {
            return Err(UnitsError::NotFinite { what: "trace interval duration" });
        }
        if d < 0.0 {
            return Err(UnitsError::OutOfRange {
                what: "trace interval duration",
                value: d,
                range: "[0, +inf)",
            });
        }
        if let Phase::Active { ar, .. } = self.phase {
            // Re-validate through the canonical constructor so the trace
            // layer can never hold an AR the rest of the stack rejects.
            ApplicationRatio::new(ar.get())?;
        }
        Ok(())
    }
}

/// A named sequence of intervals.
///
/// # Examples
///
/// ```
/// use pdn_proc::PackageCState;
/// use pdn_units::{ApplicationRatio, Seconds};
/// use pdn_workload::{Trace, TraceInterval, WorkloadType};
///
/// let trace = Trace::new(
///     "burst",
///     vec![
///         TraceInterval::active(
///             Seconds::from_millis(10.0),
///             WorkloadType::SingleThread,
///             ApplicationRatio::new(0.6)?,
///         ),
///         TraceInterval::idle(Seconds::from_millis(90.0), PackageCState::C8),
///     ],
/// );
/// assert!((trace.total_duration().millis() - 100.0).abs() < 1e-9);
/// assert!((trace.active_residency().get() - 0.1).abs() < 1e-9);
/// # Ok::<(), pdn_units::UnitsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    name: String,
    intervals: Vec<TraceInterval>,
}

impl Trace {
    /// Creates a trace.
    ///
    /// Intervals are trusted; use [`Trace::try_new`] for intervals from
    /// an external toolchain or a decoded trace file.
    pub fn new(name: impl Into<String>, intervals: Vec<TraceInterval>) -> Self {
        Self { name: name.into(), intervals }
    }

    /// Creates a trace after validating every interval
    /// ([`TraceInterval::validate`]): non-finite or negative durations
    /// and out-of-range application ratios are typed errors, never
    /// panics downstream.
    ///
    /// # Errors
    ///
    /// Returns the first interval's violation as a typed [`UnitsError`].
    pub fn try_new(
        name: impl Into<String>,
        intervals: Vec<TraceInterval>,
    ) -> Result<Self, UnitsError> {
        for interval in &intervals {
            interval.validate()?;
        }
        Ok(Self { name: name.into(), intervals })
    }

    /// The trace name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The intervals, in order.
    pub fn intervals(&self) -> &[TraceInterval] {
        &self.intervals
    }

    /// Total trace duration.
    pub fn total_duration(&self) -> Seconds {
        self.intervals.iter().map(|i| i.duration).sum()
    }

    /// The fraction of trace time spent in active phases.
    pub fn active_residency(&self) -> Ratio {
        let total = self.total_duration();
        if total.get() <= 0.0 {
            return Ratio::ZERO;
        }
        let active: Seconds =
            self.intervals.iter().filter(|i| i.phase.is_active()).map(|i| i.duration).sum();
        Ratio::new(active.get() / total.get()).expect("residency of positive durations")
    }

    /// Duration-weighted mean AR over the active intervals, if any.
    pub fn mean_active_ar(&self) -> Option<ApplicationRatio> {
        let mut weighted = 0.0;
        let mut time = 0.0;
        for i in &self.intervals {
            if let Phase::Active { ar, .. } = i.phase {
                weighted += ar.get() * i.duration.get();
                time += i.duration.get();
            }
        }
        if time <= 0.0 {
            None
        } else {
            Some(ApplicationRatio::new(weighted / time).expect("mean of valid ARs is valid"))
        }
    }

    /// The dominant workload type by active time, if the trace has any
    /// active interval.
    pub fn dominant_type(&self) -> Option<WorkloadType> {
        use std::collections::BTreeMap;
        let mut time: BTreeMap<WorkloadType, f64> = BTreeMap::new();
        for i in &self.intervals {
            if let Phase::Active { workload_type, .. } = i.phase {
                *time.entry(workload_type).or_insert(0.0) += i.duration.get();
            }
        }
        time.into_iter().max_by(|a, b| a.1.total_cmp(&b.1)).map(|(t, _)| t)
    }

    /// Appends another trace's intervals (sequential composition).
    pub fn extend(&mut self, other: &Trace) {
        self.intervals.extend_from_slice(&other.intervals);
    }

    /// Repeats this trace `n` times.
    pub fn repeat(&self, n: usize) -> Trace {
        let mut intervals = Vec::with_capacity(self.intervals.len() * n);
        for _ in 0..n {
            intervals.extend_from_slice(&self.intervals);
        }
        Trace::new(format!("{}x{n}", self.name), intervals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ar(v: f64) -> ApplicationRatio {
        ApplicationRatio::new(v).unwrap()
    }

    #[test]
    fn workload_type_domain_roles() {
        use DomainKind::*;
        assert!(WorkloadType::SingleThread.domain_powered(Core0));
        assert!(!WorkloadType::SingleThread.domain_powered(Core1));
        assert!(!WorkloadType::SingleThread.domain_powered(Gfx));
        assert!(WorkloadType::MultiThread.domain_powered(Core1));
        assert!(WorkloadType::Graphics.domain_powered(Gfx));
        for t in WorkloadType::ACTIVE_TYPES {
            assert!(t.domain_powered(Sa) && t.domain_powered(Io) && t.domain_powered(Llc));
        }
    }

    #[test]
    fn graphics_gives_cores_a_small_share() {
        assert!((WorkloadType::Graphics.core_budget_share().get() - 0.15).abs() < 1e-12);
        assert_eq!(WorkloadType::SingleThread.core_budget_share(), Ratio::ONE);
    }

    #[test]
    fn trace_statistics() {
        let t = Trace::new(
            "t",
            vec![
                TraceInterval::active(Seconds::new(1.0), WorkloadType::SingleThread, ar(0.4)),
                TraceInterval::active(Seconds::new(3.0), WorkloadType::MultiThread, ar(0.8)),
                TraceInterval::idle(Seconds::new(4.0), PackageCState::C6),
            ],
        );
        assert_eq!(t.total_duration(), Seconds::new(8.0));
        assert!((t.active_residency().get() - 0.5).abs() < 1e-12);
        let mean = t.mean_active_ar().unwrap();
        assert!((mean.get() - 0.7).abs() < 1e-12);
        assert_eq!(t.dominant_type(), Some(WorkloadType::MultiThread));
    }

    #[test]
    fn empty_trace_statistics() {
        let t = Trace::new("empty", vec![]);
        assert_eq!(t.total_duration(), Seconds::ZERO);
        assert_eq!(t.active_residency(), Ratio::ZERO);
        assert!(t.mean_active_ar().is_none());
        assert!(t.dominant_type().is_none());
    }

    #[test]
    fn repeat_multiplies_duration() {
        let t = Trace::new(
            "frame",
            vec![TraceInterval::idle(Seconds::from_millis(16.7), PackageCState::C8)],
        );
        let movie = t.repeat(100);
        assert_eq!(movie.intervals().len(), 100);
        assert!((movie.total_duration().millis() - 1670.0).abs() < 1e-6);
        assert_eq!(movie.name(), "framex100");
    }

    #[test]
    fn invalid_durations_are_typed_errors() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0, -1e-12] {
            let d = Seconds::new(bad);
            assert!(
                TraceInterval::try_active(d, WorkloadType::SingleThread, ar(0.5)).is_err(),
                "duration {bad} must be rejected"
            );
            assert!(TraceInterval::try_idle(d, PackageCState::C6).is_err());
        }
        // Zero and positive durations are fine.
        assert!(TraceInterval::try_idle(Seconds::ZERO, PackageCState::C6).is_ok());
        assert!(
            TraceInterval::try_active(Seconds::new(0.01), WorkloadType::Graphics, ar(0.7)).is_ok()
        );
    }

    #[test]
    fn try_new_rejects_the_first_bad_interval() {
        let good = TraceInterval::idle(Seconds::new(1.0), PackageCState::C8);
        let bad = TraceInterval::idle(Seconds::new(f64::NAN), PackageCState::C8);
        assert!(Trace::try_new("ok", vec![good, good]).is_ok());
        let err = Trace::try_new("bad", vec![good, bad]).unwrap_err();
        assert!(matches!(err, UnitsError::NotFinite { .. }), "{err:?}");
    }

    #[test]
    fn validate_rejects_smuggled_out_of_range_ar() {
        // An AR rebuilt from raw bits (a decoded trace file) can carry a
        // value the constructor would refuse; validate() must catch it.
        let smuggled: ApplicationRatio = unsafe { std::mem::transmute(1.5f64) };
        let interval =
            TraceInterval::active(Seconds::new(1.0), WorkloadType::SingleThread, smuggled);
        assert!(interval.validate().is_err());
    }

    #[test]
    fn idle_phase_reports_power_virus_ar() {
        let p = Phase::Idle(PackageCState::C8);
        assert_eq!(p.ar(), ApplicationRatio::POWER_VIRUS);
        assert!(!p.is_active());
    }
}
